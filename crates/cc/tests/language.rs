//! Broader language-feature execution tests and diagnostics coverage
//! for the mini-C dialect.

use nfp_cc::{compile, CcError, CompileOptions, FloatMode};
use nfp_sim::{Machine, MachineConfig};

fn run(src: &str, mode: FloatMode) -> (u32, Vec<u32>) {
    let program = compile(src, &CompileOptions::new(mode)).expect("compile failed");
    let mut machine = Machine::new(MachineConfig {
        fpu_enabled: mode == FloatMode::Hard,
        ..MachineConfig::default()
    });
    machine
        .load_image(program.base, &program.words)
        .expect("image fits in RAM");
    let result = machine.run(1_000_000_000).expect("run failed");
    (result.exit_code, result.words)
}

fn run_both(src: &str) -> u32 {
    let (hard, hw) = run(src, FloatMode::Hard);
    let (soft, sw) = run(src, FloatMode::Soft);
    assert_eq!(hard, soft, "exit codes diverge");
    assert_eq!(hw, sw, "emitted words diverge");
    hard
}

fn compile_err(src: &str) -> CcError {
    compile(src, &CompileOptions::new(FloatMode::Hard)).expect_err("expected a compile error")
}

#[test]
fn global_double_arrays() {
    let src = "double w[4] = {0.5, 1.5, -2.0, 8.0};\n\
               int main() { double s = 0.0; for (int i = 0; i < 4; i = i + 1) s = s + w[i]; return (int)s; }";
    assert_eq!(run_both(src), 8);
}

#[test]
fn double_parameters_and_returns_through_deep_calls() {
    let src = "double scale(double x, double f) { return x * f; }\n\
               double twice(double x) { return scale(x, 2.0); }\n\
               double chain(double x) { return twice(twice(twice(x))); }\n\
               int main() { return (int)chain(3.0); }";
    assert_eq!(run_both(src), 24);
}

#[test]
fn ternary_of_double_and_u64() {
    assert_eq!(
        run_both("int main() { int c = 1; double d = c ? 2.5 : -7.5; return (int)(d * 4.0); }"),
        10
    );
    assert_eq!(
        run_both("int main() { int c = 0; u64 v = c ? 5u : 0x700000000u; return (int)(v >> 32); }"),
        7
    );
}

#[test]
fn pointer_to_pointer() {
    let src = "void set(int** pp, int* q) { *pp = q; }\n\
               int main() { int a = 3; int b = 9; int* p = &a; set(&p, &b); return *p; }";
    assert_eq!(run_both(src), 9);
}

#[test]
fn recursion_with_many_locals() {
    // Each frame holds an array; checks frame isolation across depth.
    let src = "int f(int n) {
        int scratch[16];
        for (int i = 0; i < 16; i = i + 1) scratch[i] = n * 16 + i;
        int r = 0;
        if (n > 0) r = f(n - 1);
        for (int i = 0; i < 16; i = i + 1) {
            if (scratch[i] != n * 16 + i) return -1;
        }
        return r + n;
    }
    int main() { return f(10); }";
    assert_eq!(run_both(src), 55);
}

#[test]
fn logical_operators_on_doubles() {
    let src =
        "int main() { double a = 0.0; double b = 2.0; return (a && b) + 2 * (a || b) + 4 * !b; }";
    assert_eq!(run_both(src), 2);
}

#[test]
fn compound_assignment_operators() {
    let src = "int main() {
        int x = 100;
        x += 10; x -= 4; x *= 2; x /= 3; x %= 50;
        uint m = 0xf0u;
        m |= 0x0fu; m &= 0x3fu; m ^= 0x01u; m <<= 2; m >>= 1;
        return x * 1000 + (int)m;
    }";
    let x = ((((100 + 10) - 4) * 2) / 3) % 50;
    let mut m: u32 = 0xf0;
    m |= 0x0f;
    m &= 0x3f;
    m ^= 0x01;
    m <<= 2;
    m >>= 1;
    assert_eq!(run_both(src), (x * 1000 + m as i32) as u32);
}

#[test]
fn while_with_complex_condition() {
    let src = "int main() {
        int a = 0; int b = 100;
        while (a < 20 && b > 50 || a == 0) { a = a + 3; b = b - 7; }
        return a * 100 + b;
    }";
    // native mirror
    let (mut a, mut b) = (0i32, 100i32);
    while (a < 20 && b > 50) || a == 0 {
        a += 3;
        b -= 7;
    }
    assert_eq!(run_both(src), (a * 100 + b) as u32);
}

#[test]
fn uchar_buffers_with_wraparound_arithmetic() {
    let src = "uchar ring[8];\n\
               int main() {
        for (int i = 0; i < 100; i = i + 1) {
            ring[i % 8] = (uchar)(ring[i % 8] + i);
        }
        int s = 0;
        for (int i = 0; i < 8; i = i + 1) s = s + ring[i];
        return s;
    }";
    let mut ring = [0u8; 8];
    for i in 0..100 {
        ring[i % 8] = ring[i % 8].wrapping_add(i as u8);
    }
    let want: u32 = ring.iter().map(|&b| b as u32).sum();
    assert_eq!(run_both(src), want);
}

#[test]
fn mixed_double_u64_casts() {
    let src = "int main() {
        u64 big = 0x4000000000u;           // 2^38
        double d = (double)big;
        d = d / 1048576.0;                 // 2^18 exactly
        u64 back = (u64)d;
        return (int)back;
    }";
    assert_eq!(run_both(src), 1 << 18);
}

#[test]
fn fabs_and_sqrt_on_expressions() {
    let src = "int main() { double x = -16.0; return (int)sqrt(fabs(x)) + (int)fabs(-2.5); }";
    assert_eq!(run_both(src), 6);
}

#[test]
fn define_constants_compose() {
    let src = "#define WIDTH 8\n#define AREA WIDTH\nint main() { return AREA * WIDTH; }";
    assert_eq!(run_both(src), 64);
}

// ---- diagnostics ----

#[test]
fn type_errors_are_reported() {
    assert!(
        compile_err("int main() { int* p; double d = 0.0; p = &d; return 0; }")
            .to_string()
            .contains("convert")
    );
    assert!(
        compile_err("int main() { u64 a = 1u; double d = 1.0; return (int)(a + d); }")
            .to_string()
            .contains("cast explicitly")
    );
    assert!(compile_err("int main() { return *5; }")
        .to_string()
        .contains("dereference"));
}

#[test]
fn parse_errors_are_reported_with_lines() {
    let e = compile_err("int main() {\n  int x = ;\n}");
    assert!(e.to_string().contains("line 2"), "{e}");
    assert!(compile_err("int main() { if x { } }")
        .to_string()
        .contains("expected"));
}

#[test]
fn link_errors_identify_the_caller() {
    let e = compile_err("int main() { return helper(); }\nint helper();");
    // `helper` declared? The dialect has no prototypes: this is a parse
    // error (function needs a body).
    assert!(e.to_string().contains("expected"), "{e}");
    let e2 = compile_err("void f() { g(); }\nvoid g() { f(); }\nint notmain() { return 0; }");
    assert!(
        e2.to_string().contains("_start") || e2.to_string().contains("main"),
        "{e2}"
    );
}

#[test]
fn lexer_rejects_bad_tokens() {
    assert!(compile_err("int main() { return 1 $ 2; }")
        .to_string()
        .contains("unexpected character"));
    assert!(compile_err("#include <stdio.h>\nint main() { return 0; }")
        .to_string()
        .contains("unsupported preprocessor"));
}

#[test]
fn division_by_zero_constant_is_not_folded_into_ub() {
    // 1/0 in dead code must not break compilation; at runtime it traps.
    let program = compile(
        "int main() { int z = 0; return 1 / z; }",
        &CompileOptions::new(FloatMode::Hard),
    )
    .unwrap();
    let mut machine = Machine::boot(&program.words);
    assert!(machine.run(10_000).is_err());
}

#[test]
fn emitted_program_symbols_include_functions() {
    let program = compile(
        "int helper(int v) { return v + 1; }\nint main() { return helper(1); }",
        &CompileOptions::new(FloatMode::Hard),
    )
    .unwrap();
    assert!(program.symbol("main").is_some());
    assert!(program.symbol("helper").is_some());
    assert!(program.symbol("_start") == Some(program.base));
    // Disassembly renders every text word.
    let dump = program.disassemble();
    assert_eq!(dump.lines().count(), program.text_words);
}

#[test]
fn double_constant_pool_is_deduplicated_and_aligned() {
    // The same literal appearing many times must intern to one pool
    // entry, and pool entries must be 8-aligned for `lddf`.
    let src = "double f(double x) { return x * 3.25 + 3.25 - 3.25 / 3.25; }\n\
               int main() { return (int)f(2.0); }";
    let program = compile(src, &CompileOptions::new(FloatMode::Hard)).unwrap();
    let pool_syms: Vec<(&String, &u32)> = program
        .symbols
        .iter()
        .filter(|(n, _)| n.starts_with("__dconst"))
        .collect();
    assert_eq!(pool_syms.len(), 1, "{pool_syms:?}");
    for (_, &addr) in &pool_syms {
        assert_eq!(addr % 8, 0, "pool entry misaligned");
    }
    // And the program still computes correctly.
    let mut machine = Machine::new(MachineConfig::default());
    machine
        .load_image(program.base, &program.words)
        .expect("image fits in RAM");
    let r = machine.run(1_000_000).unwrap();
    assert_eq!(r.exit_code, (2.0f64 * 3.25 + 3.25 - 1.0) as u32);
}

#[test]
fn globals_are_reachability_pruned() {
    let src = "int used = 5;\nint unused[1000];\nint main() { return used; }";
    let program = compile(src, &CompileOptions::new(FloatMode::Hard)).unwrap();
    assert!(program.symbol("used").is_some());
    assert_eq!(program.symbol("unused"), None);
    // The image must be far smaller than the 4 KB the dead array
    // would occupy.
    assert!(program.words.len() < 500, "{} words", program.words.len());
}
