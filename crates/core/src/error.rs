//! Estimation-error metrics (paper Eq. 3 and Table III).

/// Relative estimation error `ε = (x̂ − x_meas) / x_meas` (Eq. 3).
pub fn relative_error(estimated: f64, measured: f64) -> f64 {
    (estimated - measured) / measured
}

/// Error summary over a kernel set (the two rows of Table III).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorSummary {
    /// Mean absolute relative error, `ε̄ = (1/M) Σ |ε_m|`.
    pub mean_abs: f64,
    /// Maximum absolute relative error, `ε_max = max |ε_m|`.
    pub max_abs: f64,
    /// Number of kernels M.
    pub kernels: usize,
}

impl ErrorSummary {
    /// Summarises a slice of signed relative errors.
    ///
    /// # Panics
    /// Panics on an empty slice — a summary over zero kernels is
    /// meaningless.
    pub fn from_errors(errors: &[f64]) -> Self {
        assert!(!errors.is_empty(), "no kernels to summarise");
        let mean_abs = errors.iter().map(|e| e.abs()).sum::<f64>() / errors.len() as f64;
        let max_abs = errors.iter().map(|e| e.abs()).fold(0.0, f64::max);
        ErrorSummary {
            mean_abs,
            max_abs,
            kernels: errors.len(),
        }
    }

    /// Summarises (estimated, measured) pairs.
    pub fn from_pairs(pairs: &[(f64, f64)]) -> Self {
        let errors: Vec<f64> = pairs
            .iter()
            .map(|&(est, meas)| relative_error(est, meas))
            .collect();
        Self::from_errors(&errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_signs() {
        assert!((relative_error(103.0, 100.0) - 0.03).abs() < 1e-12);
        assert!((relative_error(97.0, 100.0) + 0.03).abs() < 1e-12);
    }

    #[test]
    fn summary_mean_and_max() {
        let s = ErrorSummary::from_errors(&[0.01, -0.03, 0.02]);
        assert!((s.mean_abs - 0.02).abs() < 1e-12);
        assert!((s.max_abs - 0.03).abs() < 1e-12);
        assert_eq!(s.kernels, 3);
    }

    #[test]
    fn summary_from_pairs() {
        let s = ErrorSummary::from_pairs(&[(102.0, 100.0), (196.0, 200.0)]);
        assert!((s.mean_abs - 0.02).abs() < 1e-12);
        assert!((s.max_abs - 0.02).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn empty_summary_panics() {
        ErrorSummary::from_errors(&[]);
    }
}
