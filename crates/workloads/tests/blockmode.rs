//! Differential validation of block-batched NFP accounting: on real
//! workload kernels and on randomly generated SPARC programs, the
//! simulator's block mode must be bit-identical to per-instruction
//! stepping — category counters, dynamic instruction count, exit
//! status, CPU registers, and RAM contents.

use nfp_cc::FloatMode;
use nfp_sim::machine::TrapPolicy;
use nfp_sim::{Machine, RAM_BASE};
use nfp_workloads::synth::{random_program, ProgramShape};
use nfp_workloads::{fse_kernels, hevc_kernels, machine_for, Preset, KERNEL_BUDGET};
use proptest::prelude::*;

/// Runs `m` under `budget` and folds everything observable about the
/// final machine state into a comparable tuple. Errors (traps, budget
/// exhaustion) are part of the observation: both modes must fail the
/// same way at the same instant.
fn observe(mut m: Machine, block: bool, budget: u64) -> (String, u64, String, String, String) {
    m.set_block_mode(block);
    let res = m.run(budget);
    (
        format!("{res:?}"),
        m.instret(),
        format!("{:?}", m.counts()),
        format!("{:?}", m.cpu),
        format!("{:?}", m.bus.snapshot_ram()),
    )
}

fn assert_kernel_modes_agree(kernel: &nfp_workloads::Kernel, mode: FloatMode) {
    let stepped = observe(
        machine_for(kernel, mode).expect("machine"),
        false,
        KERNEL_BUDGET,
    );
    let batched = observe(
        machine_for(kernel, mode).expect("machine"),
        true,
        KERNEL_BUDGET,
    );
    assert_eq!(
        stepped.0, batched.0,
        "{} [{mode:?}]: run result diverged",
        kernel.name
    );
    assert_eq!(
        stepped.1, batched.1,
        "{} [{mode:?}]: instret diverged",
        kernel.name
    );
    assert_eq!(
        stepped.2, batched.2,
        "{} [{mode:?}]: category counts diverged",
        kernel.name
    );
    assert_eq!(
        stepped.3, batched.3,
        "{} [{mode:?}]: CPU state diverged",
        kernel.name
    );
    assert_eq!(
        stepped.4, batched.4,
        "{} [{mode:?}]: RAM diverged",
        kernel.name
    );
}

#[test]
fn fse_kernel_is_bit_identical_across_modes() {
    let kernels = fse_kernels(&Preset::quick()).expect("kernels");
    for mode in [FloatMode::Hard, FloatMode::Soft] {
        assert_kernel_modes_agree(&kernels[0], mode);
    }
}

#[test]
fn hevc_kernel_is_bit_identical_across_modes() {
    let kernels = hevc_kernels(&Preset::quick()).expect("kernels");
    assert_kernel_modes_agree(&kernels[0], FloatMode::Hard);
}

fn boot_synthetic(words: &[u32], policy: TrapPolicy) -> Machine {
    let mut m = Machine::boot(words);
    m.set_trap_policy(policy);
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random straight-line programs: every instruction is batchable,
    /// so this pins the pure block-accounting path (including the
    /// doubleword memory traffic the generator emits).
    #[test]
    fn straight_line_programs_agree(body in 4usize..120, seed in 0u64..10_000) {
        let words = random_program(body, seed, ProgramShape::StraightLine).expect("program");
        let a = observe(boot_synthetic(&words, TrapPolicy::Abort), false, 5_000);
        let b = observe(boot_synthetic(&words, TrapPolicy::Abort), true, 5_000);
        prop_assert_eq!(a, b);
    }

    /// Random branchy programs under both trap policies: annulled
    /// delay slots, loops that exhaust the budget mid-block, and falls
    /// off the image edge must all replay identically.
    #[test]
    fn branchy_programs_agree(body in 4usize..120, seed in 0u64..10_000, recover in 0u32..2) {
        let policy = if recover == 1 { TrapPolicy::Recover } else { TrapPolicy::Abort };
        let words = random_program(body, seed, ProgramShape::Branchy).expect("program");
        let a = observe(boot_synthetic(&words, policy), false, 5_000);
        let b = observe(boot_synthetic(&words, policy), true, 5_000);
        prop_assert_eq!(a, b);
    }

    /// Programs whose final image word is the delay slot of a CTI: the
    /// batcher must hand over to the step path exactly at the image
    /// boundary rather than running past it.
    #[test]
    fn cti_tail_programs_agree(body in 2usize..60, seed in 0u64..10_000) {
        let words = random_program(body, seed, ProgramShape::CtiTail).expect("program");
        let a = observe(boot_synthetic(&words, TrapPolicy::Abort), false, 5_000);
        let b = observe(boot_synthetic(&words, TrapPolicy::Abort), true, 5_000);
        prop_assert_eq!(a, b);
    }
}

/// The generator shapes must actually reach RAM_BASE-relative code
/// (guards the literal the generator uses against drift).
#[test]
fn generator_base_matches_simulator_ram_base() {
    let words = random_program(4, 0, ProgramShape::StraightLine).expect("program");
    let m = Machine::boot(&words);
    assert_eq!(m.code_base(), RAM_BASE);
}
