//! CRC-32 (IEEE 802.3, the zlib/PNG polynomial), hand-rolled because
//! the workspace deliberately carries no serialization or checksum
//! dependencies.
//!
//! The campaign journal uses it twice: every record line carries the
//! CRC of its own canonical rendering (a flipped bit anywhere in the
//! record trips the check at merge or resume time), and each shard's
//! final summary record carries a digest over all record lines in plan
//! order (a dropped, duplicated, or reordered-with-loss record trips
//! the shard-level check even when every surviving line is
//! individually intact). Verification costs one table-driven pass per
//! byte — the EnergyAnalyzer-style "cheap check instead of expensive
//! re-simulation" trade.

/// Reflected CRC-32 lookup table for polynomial `0xEDB8_8320`.
const fn table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

const TABLE: [u32; 256] = table();

/// Initial state for an incremental CRC (pass to [`crc32_update`]).
pub(crate) const CRC_INIT: u32 = 0xFFFF_FFFF;

/// Folds `bytes` into a running CRC state. Chain calls for a digest
/// over several buffers, then [`crc32_finish`] the state.
pub(crate) fn crc32_update(mut state: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        state = (state >> 8) ^ TABLE[((state ^ u32::from(b)) & 0xFF) as usize];
    }
    state
}

/// Finalizes an incremental CRC state into the checksum value.
pub(crate) fn crc32_finish(state: u32) -> u32 {
    !state
}

/// One-shot CRC-32 of a byte string.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    crc32_finish(crc32_update(CRC_INIT, bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_standard_check_value() {
        // The canonical CRC-32 test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn known_answer_vectors_pin_the_table() {
        // Fixed vectors cross-checked against zlib's crc32: any silent
        // regression in the hand-rolled table (wrong polynomial,
        // reflection, init, or final xor) breaks at least one of these.
        for (bytes, expect) in [
            (vec![0xFFu8; 4], 0xFFFF_FFFFu32),
            (vec![0xFF; 9], 0xEB20_1890),
            (vec![0xFF; 32], 0xFF6C_AB0B),
            (vec![0x00; 32], 0x190A_55AD),
        ] {
            assert_eq!(crc32(&bytes), expect, "vector {bytes:02x?}");
        }
    }

    #[test]
    fn incremental_updates_equal_one_shot() {
        let whole = crc32(b"journal record line");
        let mut state = CRC_INIT;
        for chunk in [b"journal ".as_slice(), b"record ", b"line"] {
            state = crc32_update(state, chunk);
        }
        assert_eq!(crc32_finish(state), whole);
    }

    #[test]
    fn single_bit_flips_are_detected() {
        let line = b"{\"i\":7,\"at\":8317,\"outcome\":\"SDC\"}";
        let reference = crc32(line);
        let mut flipped = line.to_vec();
        for byte in 0..flipped.len() {
            for bit in 0..8 {
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "missed flip at {byte}:{bit}");
                flipped[byte] ^= 1 << bit;
            }
        }
    }
}
