//! Value-generation strategies: the sampled (non-shrinking) core of
//! the mini-proptest.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree and no shrinking:
/// `sample` draws one concrete value.
pub trait Strategy: Clone {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> O + Clone,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.sample(rng)))
    }

    /// Recursive strategy: `self` is the leaf; `expand` builds one
    /// recursion layer from the strategy for the layer below. `depth`
    /// bounds nesting; `_size` and `_branch` are accepted for API
    /// compatibility but sampling bounds growth by mixing leaves in at
    /// every layer.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _size: u32,
        _branch: u32,
        expand: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let mut layer = self.clone().boxed();
        for _ in 0..depth {
            let leaf = self.clone().boxed();
            let deeper = expand(layer).boxed();
            layer = BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
                if rng.next_u64() & 1 == 0 {
                    leaf.sample(rng)
                } else {
                    deeper.sample(rng)
                }
            }));
        }
        layer
    }
}

/// Type-erased strategy handle (cheaply clonable).
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O + Clone,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always generates a clone of one value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between type-erased strategies (`prop_oneof!`).
pub struct Union<T> {
    choices: Vec<BoxedStrategy<T>>,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            choices: self.choices.clone(),
        }
    }
}

impl<T> Union<T> {
    /// A union over `choices` (must be non-empty).
    pub fn new(choices: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one arm");
        Union { choices }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() % self.choices.len() as u64) as usize;
        self.choices[i].sample(rng)
    }
}

/// Types with a canonical whole-domain strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 != 0
    }
}

/// Whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + (self.end - self.start) * unit
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        self.start + (self.end - self.start) * unit
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}

impl<S: Strategy, const N: usize> Strategy for [S; N] {
    type Value = [S::Value; N];
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        std::array::from_fn(|i| self[i].sample(rng))
    }
}
