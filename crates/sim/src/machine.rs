//! The simulated machine: image loading, predecode, and the run loop.
//!
//! Loading an image predecodes every word once (the analogue of OVP's
//! morphing: the expensive decode happens once and execution dispatches
//! on the predecoded form). Per-category counters are incremented
//! inline in the run loop, not through callbacks, mirroring the
//! implementation note in Section III of the paper.

use crate::bus::{Bus, RAM_BASE};
use crate::cpu::Cpu;
use crate::exec::{step, NullObserver, Observer, StepOut, Trap};
use nfp_sparc::{decode, Category, CategoryCounts, Instr};

/// Software trap number used by programs to halt (`ta 0`); the exit
/// code is read from `%o0`.
pub const TRAP_EXIT: u32 = 0;

/// Machine configuration.
#[derive(Debug, Clone, Copy)]
pub struct MachineConfig {
    /// RAM size in bytes.
    pub ram_size: u32,
    /// Whether the FPU is present (Table IV's design choice).
    pub fpu_enabled: bool,
    /// Whether per-category counters are maintained. Disabling them
    /// gives the "plain ISS" point of the paper's Fig. 1.
    pub count_categories: bool,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            ram_size: crate::bus::DEFAULT_RAM_SIZE,
            fpu_enabled: true,
            count_categories: true,
        }
    }
}

/// Why a run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitReason {
    /// The program executed `ta 0`; carries `%o0` as exit code.
    Halted(u32),
}

/// Simulation-level errors.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum SimError {
    /// An architectural trap with no bare-metal handler.
    Trap(Trap),
    /// A software trap number the host does not implement.
    UnknownSoftTrap { pc: u32, trap: u32 },
    /// The instruction budget ran out before the program halted.
    BudgetExhausted { limit: u64 },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Trap(t) => write!(f, "unhandled trap: {t}"),
            SimError::UnknownSoftTrap { pc, trap } => {
                write!(f, "unknown software trap {trap} at 0x{pc:08x}")
            }
            SimError::BudgetExhausted { limit } => {
                write!(f, "instruction budget of {limit} exhausted")
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<Trap> for SimError {
    fn from(t: Trap) -> Self {
        SimError::Trap(t)
    }
}

/// Result of a completed run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Exit code passed to `ta 0` in `%o0`.
    pub exit_code: u32,
    /// Dynamic instruction count.
    pub instret: u64,
    /// Per-category counts (all zero if counting was disabled).
    pub counts: CategoryCounts,
    /// Console text output.
    pub text: String,
    /// Structured result words emitted by the program.
    pub words: Vec<u32>,
}

/// A loaded machine ready to run.
pub struct Machine {
    /// Architectural CPU state.
    pub cpu: Cpu,
    /// Memory and devices.
    pub bus: Bus,
    config: MachineConfig,
    code_base: u32,
    code: Vec<(Instr, Category)>,
    counts: CategoryCounts,
    instret: u64,
}

impl Machine {
    /// Creates a machine with the given configuration.
    pub fn new(config: MachineConfig) -> Self {
        Machine {
            cpu: Cpu::new(),
            bus: Bus::with_ram(RAM_BASE, config.ram_size),
            config,
            code_base: RAM_BASE,
            code: Vec::new(),
            counts: CategoryCounts::new(),
            instret: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Loads `words` at `base`, predecodes them, sets the entry point
    /// to `base`, and initialises the stack pointer below the top of
    /// RAM.
    pub fn load_image(&mut self, base: u32, words: &[u32]) {
        let mut bytes = Vec::with_capacity(words.len() * 4);
        for w in words {
            bytes.extend_from_slice(&w.to_be_bytes());
        }
        self.bus.write_bytes(base, &bytes);
        self.code_base = base;
        self.code = words
            .iter()
            .map(|&w| {
                let i = decode(w);
                let c = i.category();
                (i, c)
            })
            .collect();
        self.cpu.pc = base;
        self.cpu.npc = base.wrapping_add(4);
        // Stack: top of RAM minus a red zone, 8-byte aligned.
        let sp = (RAM_BASE + self.config.ram_size - 4096) & !7;
        self.cpu.set(nfp_sparc::regs::SP, sp);
    }

    /// Convenience constructor: default config, image at the RAM base.
    pub fn boot(words: &[u32]) -> Self {
        let mut m = Machine::new(MachineConfig::default());
        m.load_image(RAM_BASE, words);
        m
    }

    /// Dynamic instruction count so far.
    pub fn instret(&self) -> u64 {
        self.instret
    }

    /// Per-category counters ("the simulator reads out these registers
    /// and presents the results", paper §III).
    pub fn counts(&self) -> &CategoryCounts {
        &self.counts
    }

    /// Fetches the predecoded instruction at `pc`, falling back to
    /// decoding from memory for execution outside the loaded image.
    #[inline]
    fn fetch(&mut self, pc: u32) -> Result<(Instr, Category), Trap> {
        let idx = pc.wrapping_sub(self.code_base) as usize / 4;
        if pc.is_multiple_of(4) && pc >= self.code_base && idx < self.code.len() {
            Ok(self.code[idx])
        } else {
            self.fetch_slow(pc)
        }
    }

    #[cold]
    fn fetch_slow(&mut self, pc: u32) -> Result<(Instr, Category), Trap> {
        if !pc.is_multiple_of(4) {
            return Err(Trap::Misaligned {
                pc,
                addr: pc,
                size: 4,
            });
        }
        let word = self.bus.load32(pc).map_err(|_| Trap::Unmapped { pc, addr: pc })?;
        let i = decode(word);
        Ok((i, i.category()))
    }

    /// Runs until the program halts, an error occurs, or `max_instrs`
    /// instructions have executed, without an observer (fast path).
    pub fn run(&mut self, max_instrs: u64) -> Result<RunResult, SimError> {
        self.run_observed(max_instrs, &mut NullObserver)
    }

    /// Runs with a per-instruction [`Observer`] (the detailed hardware
    /// model attaches here).
    pub fn run_observed<O: Observer>(
        &mut self,
        max_instrs: u64,
        obs: &mut O,
    ) -> Result<RunResult, SimError> {
        let counting = self.config.count_categories;
        let fpu = self.config.fpu_enabled;
        let limit = self.instret.saturating_add(max_instrs);
        loop {
            if self.instret >= limit {
                return Err(SimError::BudgetExhausted { limit: max_instrs });
            }
            let (instr, cat) = self.fetch(self.cpu.pc)?;
            let outcome = step(&mut self.cpu, &mut self.bus, &instr, fpu, obs)?;
            self.instret += 1;
            if counting {
                self.counts.bump(cat);
            }
            match outcome {
                StepOut::Normal => {}
                StepOut::SoftTrap(TRAP_EXIT) => {
                    let exit_code = self.cpu.get(nfp_sparc::Reg::o(0));
                    return Ok(RunResult {
                        exit_code,
                        instret: self.instret,
                        counts: self.counts,
                        text: self.bus.console.text.clone(),
                        words: self.bus.console.words.clone(),
                    });
                }
                StepOut::SoftTrap(trap) => {
                    return Err(SimError::UnknownSoftTrap {
                        pc: self.cpu.pc,
                        trap,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfp_sparc::asm::Assembler;
    use nfp_sparc::cond::ICond;
    use nfp_sparc::regs::G0;
    use nfp_sparc::{AluOp, Reg};

    fn run_asm(build: impl FnOnce(&mut Assembler)) -> RunResult {
        let mut a = Assembler::new(RAM_BASE);
        build(&mut a);
        let words = a.finish().expect("assembly failed");
        let mut m = Machine::boot(&words);
        m.run(1_000_000).expect("run failed")
    }

    #[test]
    fn exit_code_comes_from_o0() {
        let r = run_asm(|a| {
            a.mov(42, Reg::o(0));
            a.ta(0);
            a.nop();
        });
        assert_eq!(r.exit_code, 42);
        assert_eq!(r.instret, 2);
    }

    #[test]
    fn counted_loop_has_expected_category_counts() {
        // for (i = 10; i != 0; i--) {}  -- 10 iterations
        let r = run_asm(|a| {
            a.mov(10, Reg::l(0));
            a.label("loop");
            a.alu(AluOp::SubCc, Reg::l(0), 1, Reg::l(0));
            a.b(ICond::Ne, "loop");
            a.nop();
            a.mov(0, Reg::o(0));
            a.ta(0);
            a.nop();
        });
        // 1 mov + 10 subcc + 10 branches + 10 delay nops + 1 mov + 1 ta
        assert_eq!(r.counts[Category::IntArith], 12);
        assert_eq!(r.counts[Category::Jump], 10);
        assert_eq!(r.counts[Category::Nop], 10);
        assert_eq!(r.counts[Category::Other], 1);
        assert_eq!(r.instret, 33);
    }

    #[test]
    fn console_output() {
        let r = run_asm(|a| {
            a.set32(crate::bus::CONSOLE_TX, Reg::l(0));
            a.mov(b'O' as i32, Reg::l(1));
            a.st(nfp_sparc::MemSize::Word, Reg::l(1), Reg::l(0), 0);
            a.mov(b'K' as i32, Reg::l(1));
            a.st(nfp_sparc::MemSize::Word, Reg::l(1), Reg::l(0), 0);
            a.mov(7, Reg::l(1));
            a.st(nfp_sparc::MemSize::Word, Reg::l(1), Reg::l(0), 4);
            a.mov(0, Reg::o(0));
            a.ta(0);
            a.nop();
        });
        assert_eq!(r.text, "OK");
        assert_eq!(r.words, vec![7]);
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let mut a = Assembler::new(RAM_BASE);
        a.label("spin").ba("spin").nop();
        let words = a.finish().unwrap();
        let mut m = Machine::boot(&words);
        assert!(matches!(
            m.run(100),
            Err(SimError::BudgetExhausted { limit: 100 })
        ));
    }

    #[test]
    fn unhandled_trap_is_an_error() {
        let mut m = Machine::boot(&[0]); // unimp 0
        assert!(matches!(m.run(10), Err(SimError::Trap(Trap::Illegal { .. }))));
    }

    #[test]
    fn unknown_soft_trap_is_an_error() {
        let mut a = Assembler::new(RAM_BASE);
        a.ta(99).nop();
        let words = a.finish().unwrap();
        let mut m = Machine::boot(&words);
        assert!(matches!(
            m.run(10),
            Err(SimError::UnknownSoftTrap { trap: 99, .. })
        ));
    }

    #[test]
    fn call_and_retl() {
        let r = run_asm(|a| {
            a.mov(5, Reg::o(0));
            a.call("double_it");
            a.nop();
            a.ta(0);
            a.nop();
            a.label("double_it");
            a.alu(AluOp::Add, Reg::o(0), Operand::Reg(Reg::o(0)), Reg::o(0));
            a.retl();
            a.nop();
        });
        assert_eq!(r.exit_code, 10);
    }

    use nfp_sparc::Operand;

    #[test]
    fn counting_can_be_disabled() {
        let mut a = Assembler::new(RAM_BASE);
        a.mov(0, Reg::o(0)).ta(0).nop();
        let words = a.finish().unwrap();
        let mut m = Machine::new(MachineConfig {
            count_categories: false,
            ..MachineConfig::default()
        });
        m.load_image(RAM_BASE, &words);
        let r = m.run(100).unwrap();
        assert_eq!(r.counts.total(), 0);
        assert_eq!(r.instret, 2);
    }

    #[test]
    fn stack_pointer_is_initialised() {
        let mut m = Machine::new(MachineConfig {
            ram_size: 1 << 20,
            ..MachineConfig::default()
        });
        m.load_image(RAM_BASE, &[0x0100_0000]);
        let sp = m.cpu.get(nfp_sparc::regs::SP);
        assert_eq!(sp % 8, 0);
        assert!(sp > RAM_BASE && sp < RAM_BASE + (1 << 20));
    }

    #[test]
    fn execution_outside_image_decodes_from_memory() {
        // Write a tiny program into RAM *by hand* beyond the image and
        // jump to it.
        let mut a = Assembler::new(RAM_BASE);
        a.set32(RAM_BASE + 0x1000, Reg::l(0));
        // store `mov 9, %o0` and `ta 0; nop` at 0x1000
        let prog = [
            nfp_sparc::encode(Instr::Alu {
                op: AluOp::Or,
                rd: Reg::o(0),
                rs1: G0,
                op2: Operand::Imm(9),
            }),
            nfp_sparc::encode(Instr::Ticc {
                cond: ICond::A,
                rs1: G0,
                op2: Operand::Imm(0),
            }),
            nfp_sparc::encode(Instr::NOP),
        ];
        for (k, w) in prog.iter().enumerate() {
            a.set32(*w, Reg::l(1));
            a.st(
                nfp_sparc::MemSize::Word,
                Reg::l(1),
                Reg::l(0),
                (k * 4) as i32,
            );
        }
        a.push(Instr::Jmpl {
            rd: G0,
            rs1: Reg::l(0),
            op2: Operand::Imm(0),
        });
        a.nop();
        let words = a.finish().unwrap();
        let mut m = Machine::boot(&words);
        let r = m.run(1000).unwrap();
        assert_eq!(r.exit_code, 9);
    }
}
