//! Differential fuzzing of the compiler: random expression trees are
//! rendered to mini-C, compiled, executed on the simulator, and
//! compared against a native Rust evaluation of the same tree with the
//! target's semantics (wrapping i32/u64 arithmetic, masked shifts).

use nfp_cc::{compile, CompileOptions, FloatMode};
use nfp_sim::{Machine, MachineConfig};
use proptest::prelude::*;

const INPUT_BASE: u32 = 0x4100_0000;

/// Random integer expression over four i32 variables.
#[derive(Debug, Clone)]
enum IExpr {
    Var(usize),
    Lit(i32),
    Add(Box<IExpr>, Box<IExpr>),
    Sub(Box<IExpr>, Box<IExpr>),
    Mul(Box<IExpr>, Box<IExpr>),
    /// Division by a small positive constant (avoids UB corners).
    DivC(Box<IExpr>, i32),
    RemC(Box<IExpr>, i32),
    And(Box<IExpr>, Box<IExpr>),
    Or(Box<IExpr>, Box<IExpr>),
    Xor(Box<IExpr>, Box<IExpr>),
    ShlC(Box<IExpr>, u32),
    ShrC(Box<IExpr>, u32),
    Neg(Box<IExpr>),
    Not(Box<IExpr>),
    Lt(Box<IExpr>, Box<IExpr>),
    Eq(Box<IExpr>, Box<IExpr>),
    Ternary(Box<IExpr>, Box<IExpr>, Box<IExpr>),
}

impl IExpr {
    fn render(&self) -> String {
        match self {
            IExpr::Var(i) => format!("v{i}"),
            IExpr::Lit(v) => {
                if *v < 0 {
                    format!("(-{})", (*v as i64).abs())
                } else {
                    format!("{v}")
                }
            }
            IExpr::Add(a, b) => format!("({} + {})", a.render(), b.render()),
            IExpr::Sub(a, b) => format!("({} - {})", a.render(), b.render()),
            IExpr::Mul(a, b) => format!("({} * {})", a.render(), b.render()),
            IExpr::DivC(a, c) => format!("({} / {c})", a.render()),
            IExpr::RemC(a, c) => format!("({} % {c})", a.render()),
            IExpr::And(a, b) => format!("({} & {})", a.render(), b.render()),
            IExpr::Or(a, b) => format!("({} | {})", a.render(), b.render()),
            IExpr::Xor(a, b) => format!("({} ^ {})", a.render(), b.render()),
            IExpr::ShlC(a, k) => format!("({} << {k})", a.render()),
            IExpr::ShrC(a, k) => format!("({} >> {k})", a.render()),
            IExpr::Neg(a) => format!("(-{})", a.render()),
            IExpr::Not(a) => format!("(~{})", a.render()),
            IExpr::Lt(a, b) => format!("({} < {})", a.render(), b.render()),
            IExpr::Eq(a, b) => format!("({} == {})", a.render(), b.render()),
            IExpr::Ternary(c, a, b) => {
                format!("({} ? {} : {})", c.render(), a.render(), b.render())
            }
        }
    }

    /// Native evaluation with the target's semantics.
    fn eval(&self, vars: &[i32; 4]) -> i32 {
        match self {
            IExpr::Var(i) => vars[*i],
            IExpr::Lit(v) => *v,
            IExpr::Add(a, b) => a.eval(vars).wrapping_add(b.eval(vars)),
            IExpr::Sub(a, b) => a.eval(vars).wrapping_sub(b.eval(vars)),
            IExpr::Mul(a, b) => a.eval(vars).wrapping_mul(b.eval(vars)),
            IExpr::DivC(a, c) => a.eval(vars).wrapping_div(*c),
            IExpr::RemC(a, c) => a.eval(vars).wrapping_rem(*c),
            IExpr::And(a, b) => a.eval(vars) & b.eval(vars),
            IExpr::Or(a, b) => a.eval(vars) | b.eval(vars),
            IExpr::Xor(a, b) => a.eval(vars) ^ b.eval(vars),
            IExpr::ShlC(a, k) => a.eval(vars).wrapping_shl(*k),
            IExpr::ShrC(a, k) => a.eval(vars).wrapping_shr(*k),
            IExpr::Neg(a) => a.eval(vars).wrapping_neg(),
            IExpr::Not(a) => !a.eval(vars),
            IExpr::Lt(a, b) => (a.eval(vars) < b.eval(vars)) as i32,
            IExpr::Eq(a, b) => (a.eval(vars) == b.eval(vars)) as i32,
            IExpr::Ternary(c, a, b) => {
                if c.eval(vars) != 0 {
                    a.eval(vars)
                } else {
                    b.eval(vars)
                }
            }
        }
    }
}

fn iexpr_strategy() -> impl Strategy<Value = IExpr> {
    let leaf = prop_oneof![
        (0usize..4).prop_map(IExpr::Var),
        any::<i32>().prop_map(IExpr::Lit),
        (-100i32..100).prop_map(IExpr::Lit),
    ];
    leaf.prop_recursive(4, 48, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| IExpr::Add(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| IExpr::Sub(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| IExpr::Mul(a.into(), b.into())),
            (inner.clone(), 1i32..16).prop_map(|(a, c)| IExpr::DivC(a.into(), c)),
            (inner.clone(), 1i32..16).prop_map(|(a, c)| IExpr::RemC(a.into(), c)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| IExpr::And(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| IExpr::Or(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| IExpr::Xor(a.into(), b.into())),
            (inner.clone(), 0u32..32).prop_map(|(a, k)| IExpr::ShlC(a.into(), k)),
            (inner.clone(), 0u32..32).prop_map(|(a, k)| IExpr::ShrC(a.into(), k)),
            inner.clone().prop_map(|a| IExpr::Neg(a.into())),
            inner.clone().prop_map(|a| IExpr::Not(a.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| IExpr::Lt(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| IExpr::Eq(a.into(), b.into())),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, a, b)| IExpr::Ternary(
                c.into(),
                a.into(),
                b.into()
            )),
        ]
    })
}

fn run_int_expr(expr: &IExpr, vars: [i32; 4]) -> i32 {
    let src = format!(
        "int main() {{\n\
           uint* in = (uint*)0x41000000;\n\
           int v0 = (int)in[0]; int v1 = (int)in[1];\n\
           int v2 = (int)in[2]; int v3 = (int)in[3];\n\
           emit((uint)({}));\n\
           return 0;\n\
         }}",
        expr.render()
    );
    let program =
        compile(&src, &CompileOptions::new(FloatMode::Hard)).expect("generated source compiles");
    let mut machine = Machine::new(MachineConfig::default());
    machine
        .load_image(program.base, &program.words)
        .expect("image fits in RAM");
    let mut input = Vec::new();
    for v in vars {
        input.extend_from_slice(&(v as u32).to_be_bytes());
    }
    machine
        .bus
        .write_bytes(INPUT_BASE, &input)
        .expect("input fits in RAM");
    let result = machine.run(50_000_000).expect("run failed");
    result.words[0] as i32
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_int_expressions_match_native(
        expr in iexpr_strategy(),
        vars in [any::<i32>(), any::<i32>(), any::<i32>(), any::<i32>()],
    ) {
        let want = expr.eval(&vars);
        let got = run_int_expr(&expr, vars);
        prop_assert_eq!(got, want, "expr: {}", expr.render());
    }

    #[test]
    fn random_u64_chains_match_native(
        vals in prop::collection::vec(any::<u64>(), 4),
        shifts in prop::collection::vec(0u32..64, 3),
    ) {
        // u64 pipeline: mixes add/sub/mul/shift/xor through variables.
        let src = format!(
            "int main() {{\n\
               uint* in = (uint*)0x41000000;\n\
               u64 a = ((u64)in[0] << 32) | (u64)in[1];\n\
               u64 b = ((u64)in[2] << 32) | (u64)in[3];\n\
               u64 c = ((u64)in[4] << 32) | (u64)in[5];\n\
               u64 d = ((u64)in[6] << 32) | (u64)in[7];\n\
               u64 r = (a + b) * c;\n\
               r = r ^ (d >> {s0});\n\
               r = r - (a << {s1});\n\
               r = r + (r >> {s2});\n\
               r = r * 0x9e3779b97f4a7c15u;\n\
               emit((uint)(r >> 32)); emit((uint)r);\n\
               return 0;\n\
             }}",
            s0 = shifts[0], s1 = shifts[1], s2 = shifts[2],
        );
        let (a, b, c, d) = (vals[0], vals[1], vals[2], vals[3]);
        let mut r = a.wrapping_add(b).wrapping_mul(c);
        r ^= d >> shifts[0];
        r = r.wrapping_sub(a.wrapping_shl(shifts[1]));
        r = r.wrapping_add(r >> shifts[2]);
        r = r.wrapping_mul(0x9e37_79b9_7f4a_7c15);

        let program = compile(&src, &CompileOptions::new(FloatMode::Hard)).unwrap();
        let mut machine = Machine::new(MachineConfig::default());
        machine.load_image(program.base, &program.words).expect("image fits in RAM");
        let mut input = Vec::new();
        for v in [a, b, c, d] {
            input.extend_from_slice(&v.to_be_bytes());
        }
        machine.bus.write_bytes(INPUT_BASE, &input).expect("input fits in RAM");
        let result = machine.run(50_000_000).unwrap();
        let got = ((result.words[0] as u64) << 32) | result.words[1] as u64;
        prop_assert_eq!(got, r);
    }
}

/// Random double expressions: native, hard-float simulated, and
/// soft-float simulated must agree bit-for-bit.
#[derive(Debug, Clone)]
enum DExpr {
    Var(usize),
    Lit(f64),
    Add(Box<DExpr>, Box<DExpr>),
    Sub(Box<DExpr>, Box<DExpr>),
    Mul(Box<DExpr>, Box<DExpr>),
    Div(Box<DExpr>, Box<DExpr>),
    Neg(Box<DExpr>),
    Abs(Box<DExpr>),
    Sqrt(Box<DExpr>),
}

impl DExpr {
    fn render(&self) -> String {
        match self {
            DExpr::Var(i) => format!("v{i}"),
            DExpr::Lit(v) => {
                if v.is_finite() && *v >= 0.0 {
                    format!("{v:?}")
                } else {
                    // negative literals parenthesised; non-finite avoided
                    format!("({v:?})")
                }
            }
            DExpr::Add(a, b) => format!("({} + {})", a.render(), b.render()),
            DExpr::Sub(a, b) => format!("({} - {})", a.render(), b.render()),
            DExpr::Mul(a, b) => format!("({} * {})", a.render(), b.render()),
            DExpr::Div(a, b) => format!("({} / {})", a.render(), b.render()),
            DExpr::Neg(a) => format!("(-{})", a.render()),
            DExpr::Abs(a) => format!("fabs({})", a.render()),
            DExpr::Sqrt(a) => format!("sqrt({})", a.render()),
        }
    }

    fn eval(&self, vars: &[f64; 3]) -> f64 {
        match self {
            DExpr::Var(i) => vars[*i],
            DExpr::Lit(v) => *v,
            DExpr::Add(a, b) => a.eval(vars) + b.eval(vars),
            DExpr::Sub(a, b) => a.eval(vars) - b.eval(vars),
            DExpr::Mul(a, b) => a.eval(vars) * b.eval(vars),
            DExpr::Div(a, b) => a.eval(vars) / b.eval(vars),
            DExpr::Neg(a) => -a.eval(vars),
            DExpr::Abs(a) => a.eval(vars).abs(),
            DExpr::Sqrt(a) => a.eval(vars).sqrt(),
        }
    }
}

fn dexpr_strategy() -> impl Strategy<Value = DExpr> {
    let leaf = prop_oneof![
        (0usize..3).prop_map(DExpr::Var),
        (-1.0e12f64..1.0e12).prop_map(DExpr::Lit),
        (-10.0f64..10.0).prop_map(DExpr::Lit),
    ];
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| DExpr::Add(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| DExpr::Sub(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| DExpr::Mul(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| DExpr::Div(a.into(), b.into())),
            inner.clone().prop_map(|a| DExpr::Neg(a.into())),
            inner.clone().prop_map(|a| DExpr::Abs(a.into())),
            inner.clone().prop_map(|a| DExpr::Sqrt(a.into())),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_double_expressions_match_native_in_both_modes(
        expr in dexpr_strategy(),
        vars in [-1.0e6f64..1.0e6, -1.0e6f64..1.0e6, -1.0e6f64..1.0e6],
    ) {
        let src = format!(
            "int main() {{\n\
               uint* in = (uint*)0x41000000;\n\
               double v0 = __bitsd(((u64)in[0] << 32) | (u64)in[1]);\n\
               double v1 = __bitsd(((u64)in[2] << 32) | (u64)in[3]);\n\
               double v2 = __bitsd(((u64)in[4] << 32) | (u64)in[5]);\n\
               u64 r = __dbits({});\n\
               emit((uint)(r >> 32)); emit((uint)r);\n\
               return 0;\n\
             }}",
            expr.render()
        );
        let want = expr.eval(&vars);
        for mode in [FloatMode::Hard, FloatMode::Soft] {
            let program = compile(&src, &CompileOptions::new(mode)).unwrap();
            let mut machine = Machine::new(MachineConfig {
                fpu_enabled: mode == FloatMode::Hard,
                ..MachineConfig::default()
            });
            machine.load_image(program.base, &program.words).expect("image fits in RAM");
            let mut input = Vec::new();
            for v in vars {
                input.extend_from_slice(&v.to_bits().to_be_bytes());
            }
            machine.bus.write_bytes(INPUT_BASE, &input).expect("input fits in RAM");
            let result = machine.run(200_000_000).unwrap();
            let got = f64::from_bits(((result.words[0] as u64) << 32) | result.words[1] as u64);
            if want.is_nan() {
                prop_assert!(got.is_nan(), "{mode:?}: {} => {got:e}, want NaN", expr.render());
            } else {
                prop_assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "{:?}: {} => {:e}, want {:e}",
                    mode,
                    expr.render(),
                    got,
                    want
                );
            }
        }
    }
}
