//! `mcc` — the mini-C toolchain driver.
//!
//! Compile a mini-C source file to a SPARC V8 boot image and optionally
//! disassemble, run, profile, or NFP-estimate it:
//!
//! ```text
//! mcc prog.mc                 # compile, print image stats
//! mcc prog.mc --soft          # -msoft-float build (no FPU instructions)
//! mcc prog.mc --dump          # disassemble the text section
//! mcc prog.mc --run           # execute on the instruction-set simulator
//! mcc prog.mc --run --trace N # also print the first N executed instructions
//! mcc prog.mc --profile       # per-function hotspot profile
//! mcc prog.mc --estimate      # calibrate + estimate time/energy (Eq. 1)
//! mcc prog.s  --asm --run     # assemble SPARC assembly text instead
//! ```

use nfp_repro::cc::{compile, CompileOptions, FloatMode};
use nfp_repro::core::{calibrate, ClassCounter, Paper};
use nfp_repro::sim::{Machine, MachineConfig, PcHistogram, Tracer};
use nfp_repro::sparc::Category;
use nfp_repro::testbed::Testbed;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(path) = args.iter().find(|a| !a.starts_with("--")) else {
        eprintln!(
            "usage: mcc <file.mc> [--soft] [--dump] [--run] [--trace N] [--profile] [--estimate]"
        );
        return ExitCode::from(2);
    };
    let has = |f: &str| args.iter().any(|a| a == f);
    let trace_n: usize = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);

    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("mcc: cannot read {path}: {e}");
            return ExitCode::from(1);
        }
    };
    let mode = if has("--soft") {
        FloatMode::Soft
    } else {
        FloatMode::Hard
    };
    let program = if has("--asm") {
        // Assemble SPARC text directly (labels, `!` comments, .word).
        match nfp_repro::sparc::parse_program(&source, nfp_repro::sim::RAM_BASE) {
            Ok(words) => {
                let text_words = words.len();
                nfp_repro::cc::Program {
                    base: nfp_repro::sim::RAM_BASE,
                    words,
                    symbols: std::collections::HashMap::new(),
                    text_words,
                }
            }
            Err(e) => {
                eprintln!("mcc: {path}: {e}");
                return ExitCode::from(1);
            }
        }
    } else {
        match compile(&source, &CompileOptions::new(mode)) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("mcc: {path}: {e}");
                return ExitCode::from(1);
            }
        }
    };
    println!(
        "{path}: {} text words, {} data words, {} symbols, {:?} floats",
        program.text_words,
        program.words.len() - program.text_words,
        program.symbols.len(),
        mode,
    );

    if has("--dump") {
        print!("{}", program.disassemble());
    }

    let needs_run = has("--run") || has("--profile") || has("--estimate") || trace_n > 0;
    if !needs_run {
        return ExitCode::SUCCESS;
    }

    let mut machine = Machine::new(MachineConfig {
        fpu_enabled: mode == FloatMode::Hard,
        ..MachineConfig::default()
    });
    machine
        .load_image(program.base, &program.words)
        .expect("image fits in RAM");

    let mut counter = ClassCounter::new(Paper);
    let mut hist = PcHistogram::new(program.base, program.text_words);
    let mut tracer = Tracer::new(trace_n);

    struct Multi<'a> {
        counter: &'a mut ClassCounter<Paper>,
        hist: &'a mut PcHistogram,
        tracer: &'a mut Tracer,
    }
    impl nfp_repro::sim::Observer for Multi<'_> {
        fn observe(&mut self, info: &nfp_repro::sim::ExecInfo) {
            self.counter.observe(info);
            self.hist.observe(info);
            self.tracer.observe(info);
        }
    }
    let mut multi = Multi {
        counter: &mut counter,
        hist: &mut hist,
        tracer: &mut tracer,
    };

    let result = match machine.run_observed(100_000_000_000, &mut multi) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("mcc: runtime error: {e}");
            return ExitCode::from(1);
        }
    };

    if trace_n > 0 {
        println!(
            "-- trace (first {} of {}) --",
            tracer.lines.len(),
            tracer.seen
        );
        for line in &tracer.lines {
            println!("{line}");
        }
    }
    println!(
        "exit code {}; {} instructions executed",
        result.exit_code, result.instret
    );
    if !result.text.is_empty() {
        println!("-- console --\n{}", result.text);
    }
    if !result.words.is_empty() {
        println!("-- emitted words --");
        for w in &result.words {
            println!("0x{w:08x} ({w})");
        }
    }

    if has("--profile") {
        println!("-- instruction categories --");
        for (cat, &n) in Category::ALL.iter().zip(counter.counts()) {
            if n > 0 {
                println!(
                    "  {:<20} {:>12}  ({:5.1}%)",
                    cat.name(),
                    n,
                    n as f64 / result.instret as f64 * 100.0
                );
            }
        }
        println!("-- hottest functions --");
        for (name, count) in hist.by_function(&program.symbols).into_iter().take(12) {
            println!(
                "  {:<28} {:>12}  ({:5.1}%)",
                name,
                count,
                count as f64 / result.instret as f64 * 100.0
            );
        }
    }

    if has("--estimate") {
        eprintln!("calibrating the virtual board (one-off, a few seconds)...");
        let testbed = Testbed::new();
        let calibration = match calibrate(&testbed, &Paper, 1) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("mcc: calibration failed: {e}");
                return ExitCode::from(1);
            }
        };
        let est = calibration.model.estimate(counter.counts());
        println!(
            "-- NFP estimate (Eq. 1) --\n  time   {:.6} s\n  energy {:.6} J",
            est.time_s, est.energy_j
        );
    }

    ExitCode::SUCCESS
}
