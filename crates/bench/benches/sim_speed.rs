//! Fig. 1 micro-benchmark: simulation speed of the three simulator
//! layers on the same workload.
//!
//! * bare ISS (functional only — the fastest point of Fig. 1's x-axis),
//! * ISS with the paper's category counters (the proposed layer;
//!   the overhead of counting is the paper's "only slightly increased
//!   simulation times"),
//! * the detailed hardware model (the CAS-like slow/accurate end).
//!
//! Plus the dispatch-mode comparison: the same FSE kernel under
//! per-instruction stepping, block-batched accounting, threaded-code
//! dispatch, and superblock traces, measured directly and recorded to
//! `BENCH_sim.json` at the workspace root (CI uploads it as an
//! artifact and gates on threaded-dispatch regressions).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nfp_bench::{
    merge_journals, run_sharded, run_supervised, run_worker_connect, shard_journal_path,
    submit_campaign, CampaignConfig, CampaignRequest, Mode, ServeConfig, Server, ShardConfig,
    SupervisorConfig, WorkerIsolation, WorkerPreset,
};
use nfp_cc::FloatMode;
use nfp_sim::{Dispatch, Machine, MachineConfig};
use nfp_testbed::{HwModel, HwObserver};
use nfp_workloads::{fse_kernels, hevc_kernels, machine_for, Kernel, Preset, INPUT_BASE};
use std::time::Instant;

fn kernel() -> Kernel {
    hevc_kernels(&Preset::quick())
        .unwrap()
        .into_iter()
        .next()
        .unwrap()
}

fn instret(kernel: &Kernel) -> u64 {
    let mut machine = machine_for(kernel, FloatMode::Hard).expect("machine");
    machine.run(u64::MAX).unwrap().instret
}

fn bench_sim_layers(c: &mut Criterion) {
    let kernel = kernel();
    let n = instret(&kernel);
    let mut group = c.benchmark_group("sim_speed");
    group.throughput(Throughput::Elements(n));
    group.sample_size(10);

    group.bench_function("bare_iss", |b| {
        b.iter(|| {
            let program =
                nfp_workloads::program(kernel.workload, FloatMode::Hard).expect("program");
            let mut machine = Machine::new(MachineConfig {
                count_categories: false,
                ..MachineConfig::default()
            });
            machine
                .load_image(program.base, &program.words)
                .expect("image fits in RAM");
            machine
                .bus
                .write_bytes(INPUT_BASE, &kernel.input)
                .expect("input fits in RAM");
            machine.run(u64::MAX).unwrap().instret
        })
    });

    group.bench_function("iss_with_counters", |b| {
        b.iter(|| {
            let mut machine = machine_for(&kernel, FloatMode::Hard).expect("machine");
            machine.run(u64::MAX).unwrap().instret
        })
    });

    group.bench_function("detailed_hw_model", |b| {
        b.iter(|| {
            let mut machine = machine_for(&kernel, FloatMode::Hard).expect("machine");
            let mut obs = HwObserver::new(HwModel::default());
            machine.run_observed(u64::MAX, &mut obs).unwrap();
            obs.totals().cycles
        })
    });

    group.finish();
}

/// Median-of-N wall time of one full kernel run in every dispatch
/// mode, returning the per-mode seconds (in `Dispatch::ALL` order)
/// plus the common instret.
///
/// The reps are interleaved round-robin across the modes rather than
/// run as per-mode blocks: on shared/contended runners the available
/// CPU drifts on a seconds timescale, and a blocked schedule lands an
/// entire mode's sample inside one drift phase, skewing the cross-mode
/// ratios that the CI gate consumes. Round-robin spreads every mode
/// across the same phases so the drift cancels out of the ratios.
fn time_modes(kernel: &Kernel, reps: usize) -> ([f64; Dispatch::ALL.len()], u64) {
    let mut times = [(); Dispatch::ALL.len()].map(|()| Vec::with_capacity(reps));
    let mut instret = [0u64; Dispatch::ALL.len()];
    for _ in 0..reps {
        for (i, &dispatch) in Dispatch::ALL.iter().enumerate() {
            let mut machine = machine_for(kernel, FloatMode::Hard).expect("machine");
            machine.set_dispatch(dispatch);
            let start = Instant::now();
            instret[i] = machine.run(u64::MAX).unwrap().instret;
            times[i].push(start.elapsed().as_secs_f64());
        }
    }
    assert!(
        instret.iter().all(|&n| n == instret[0]),
        "modes must retire identically"
    );
    let medians = times.map(|mut t| {
        t.sort_by(|a, b| a.total_cmp(b));
        t[reps / 2]
    });
    (medians, instret[0])
}

/// Median-of-N wall time of a 200-injection supervised campaign with
/// the write-ahead journal on or off — the cost of the crash-safety
/// layer itself — and optionally with the process-isolated worker
/// pool — the cost of subprocess spawning plus the wire protocol.
fn time_supervised(
    kernel: &Kernel,
    journal: Option<&std::path::Path>,
    isolation: WorkerIsolation,
    reps: usize,
) -> f64 {
    let mut times = Vec::with_capacity(reps);
    for _ in 0..reps {
        let mut cfg = SupervisorConfig::new(CampaignConfig {
            injections: 200,
            ..CampaignConfig::default()
        });
        cfg.journal = journal.map(std::path::Path::to_path_buf);
        cfg.isolation = isolation;
        if isolation == WorkerIsolation::Process {
            // Benches run in their own harness binary, so point the
            // pool at the freshly built `repro` explicitly.
            cfg.worker_bin = Some(std::path::PathBuf::from(env!("CARGO_BIN_EXE_repro")));
        }
        let start = Instant::now();
        let outcome = run_supervised(kernel, Mode::Float, &cfg).expect("supervised campaign");
        assert_eq!(
            outcome.process_isolation,
            isolation == WorkerIsolation::Process,
            "requested worker pool did not come up"
        );
        times.push(start.elapsed().as_secs_f64());
    }
    times.sort_by(|a, b| a.total_cmp(b));
    times[reps / 2]
}

/// Median-of-N wall time of the same 200-injection campaign split into
/// `shards` supervised sub-campaigns and merged (`seconds_total`), and
/// of the merge integrity pass alone re-run over the finished journals
/// (`seconds_merge`) — the headers, CRCs, digests, and coverage checks
/// without any simulation.
fn time_sharded(kernel: &Kernel, base: &std::path::Path, shards: u32, reps: usize) -> (f64, f64) {
    let mut totals = Vec::with_capacity(reps);
    let mut merges = Vec::with_capacity(reps);
    let campaign = CampaignConfig {
        injections: 200,
        ..CampaignConfig::default()
    };
    for _ in 0..reps {
        let paths: Vec<std::path::PathBuf> = (0..shards)
            .map(|i| shard_journal_path(base, i, shards))
            .collect();
        for p in &paths {
            let _ = std::fs::remove_file(p);
        }
        let mut sup = SupervisorConfig::new(campaign.clone());
        sup.journal = Some(base.to_path_buf());
        let cfg = ShardConfig::new(sup, shards);
        let start = Instant::now();
        run_sharded(kernel, Mode::Float, &cfg).expect("sharded campaign");
        totals.push(start.elapsed().as_secs_f64());
        let start = Instant::now();
        merge_journals(kernel, Mode::Float, &campaign, &paths, false).expect("merge");
        merges.push(start.elapsed().as_secs_f64());
        for p in &paths {
            let _ = std::fs::remove_file(p);
        }
    }
    totals.sort_by(|a, b| a.total_cmp(b));
    merges.sort_by(|a, b| a.total_cmp(b));
    (totals[reps / 2], merges[reps / 2])
}

/// Median-of-N wall time of the same 200-injection campaign dispatched
/// over loopback TCP: an in-process coordinator, two connected workers,
/// and a framed submit/report round trip — the full price of remote
/// dispatch (framing, CRCs, digests, heartbeats) with zero real network
/// latency under it.
fn time_remote_once(
    kernel: &Kernel,
    journal: Option<&std::path::Path>,
    audit_rate: f64,
) -> (f64, f64) {
    let server = Server::bind(ServeConfig {
        listen: "127.0.0.1:0".to_string(),
        preset: WorkerPreset::Quick,
        campaigns: Some(if journal.is_some() { 2 } else { 1 }),
        peer_grace: std::time::Duration::from_secs(120),
        journal: journal.map(std::path::Path::to_path_buf),
        audit_rate,
        ..ServeConfig::default()
    })
    .expect("bind loopback coordinator");
    let addr = server.local_addr().expect("local addr").to_string();
    let server = std::thread::spawn(move || server.run().expect("server run"));
    let workers: Vec<_> = (0..2)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || run_worker_connect(&addr, 50))
        })
        .collect();
    std::thread::sleep(std::time::Duration::from_millis(200));
    let req = CampaignRequest {
        client: "bench".to_string(),
        kernel: kernel.name.clone(),
        mode: Mode::Float,
        campaign: CampaignConfig {
            injections: 200,
            ..CampaignConfig::default()
        },
        shards: 4,
        allow_partial: false,
    };
    let start = Instant::now();
    submit_campaign(&addr, &req).expect("remote campaign");
    let first = start.elapsed().as_secs_f64();
    // On a journaled coordinator a second identical submit is answered
    // from the result cache — time the idempotency dividend too.
    let hit = if journal.is_some() {
        let start = Instant::now();
        submit_campaign(&addr, &req).expect("cached remote campaign");
        start.elapsed().as_secs_f64()
    } else {
        0.0
    };
    server.join().expect("server thread");
    for w in workers {
        assert_eq!(w.join().expect("worker thread"), 0);
    }
    (first, hit)
}

/// Median-of-N wall times of the 200-injection campaign run three ways
/// back-to-back inside each rep — a plain local supervised run, the
/// loopback-TCP remote dispatch, and the remote dispatch with the crash
/// safety layer on (service journal + per-campaign records file) plus a
/// second identical submit answered from the result cache. Interleaving
/// the variants per rep means machine drift over the bench's runtime
/// hits all three alike and cancels out of the overhead ratios, same as
/// the dispatch-mode measurement above. Returns `(local, remote,
/// journaled_remote, cache_hit, audited_remote)` seconds; the last is
/// the remote run with `--audit-rate 1` — every range re-executed by a
/// disjoint worker before it is trusted (DESIGN.md §16), the worst-case
/// price of the Byzantine audit tier.
fn time_remote_suite(kernel: &Kernel, reps: usize) -> (f64, f64, f64, f64, f64) {
    let journal_path = std::env::temp_dir().join("nfp_sim_speed_serve.journal");
    let mut locals = Vec::with_capacity(reps);
    let mut remotes = Vec::with_capacity(reps);
    let mut journaled = Vec::with_capacity(reps);
    let mut hits = Vec::with_capacity(reps);
    let mut audited = Vec::with_capacity(reps);
    for _ in 0..reps {
        let cfg = SupervisorConfig::new(CampaignConfig {
            injections: 200,
            ..CampaignConfig::default()
        });
        let start = Instant::now();
        run_supervised(kernel, Mode::Float, &cfg).expect("local baseline campaign");
        locals.push(start.elapsed().as_secs_f64());
        let (remote, _) = time_remote_once(kernel, None, 0.0);
        remotes.push(remote);
        let _ = std::fs::remove_file(&journal_path);
        let (first, hit) = time_remote_once(kernel, Some(&journal_path), 0.0);
        journaled.push(first);
        hits.push(hit);
        let (aud, _) = time_remote_once(kernel, None, 1.0);
        audited.push(aud);
    }
    let _ = std::fs::remove_file(&journal_path);
    let median = |mut t: Vec<f64>| {
        t.sort_by(|a, b| a.total_cmp(b));
        t[reps / 2]
    };
    (
        median(locals),
        median(remotes),
        median(journaled),
        median(hits),
        median(audited),
    )
}

/// Step-vs-block measurement plus supervisor journal overhead on the
/// FSE kernel; prints the rates and writes `BENCH_sim.json` for the CI
/// artifact.
fn bench_block_batching(_c: &mut Criterion) {
    let kernel = fse_kernels(&Preset::quick())
        .unwrap()
        .into_iter()
        .next()
        .unwrap();
    let reps = 5;
    let ([step_s, block_s, threaded_s, traced_s], instret) = time_modes(&kernel, reps);
    let step_mips = instret as f64 / step_s / 1e6;
    let block_mips = instret as f64 / block_s / 1e6;
    let threaded_mips = instret as f64 / threaded_s / 1e6;
    let traced_mips = instret as f64 / traced_s / 1e6;
    let speedup = step_s / block_s;
    let threaded_speedup = step_s / threaded_s;
    let traced_speedup = step_s / traced_s;
    for (label, secs, mips) in [
        ("dispatch/step", step_s, step_mips),
        ("dispatch/block", block_s, block_mips),
        ("dispatch/threaded", threaded_s, threaded_mips),
        ("dispatch/traced", traced_s, traced_mips),
    ] {
        println!(
            "{:<40} {:>12.3} ms/iter  {:>10.1} Melem/s",
            label,
            secs * 1e3,
            mips
        );
    }
    println!(
        "dispatch speedups over step on {}: block {speedup:.2}x, \
         threaded {threaded_speedup:.2}x, traced {traced_speedup:.2}x",
        kernel.name
    );

    // Supervisor overhead: the same campaign with the write-ahead
    // journal on and off, so the robustness layer's cost stays visible,
    // and with the process-isolated worker pool, so the price of
    // subprocess spawning plus the wire protocol stays visible too.
    let journal_path = std::env::temp_dir().join("nfp_sim_speed_journal.jsonl");
    let nojournal_s = time_supervised(&kernel, None, WorkerIsolation::Thread, 3);
    let journal_s = time_supervised(&kernel, Some(&journal_path), WorkerIsolation::Thread, 3);
    let _ = std::fs::remove_file(&journal_path);
    let process_s = time_supervised(&kernel, None, WorkerIsolation::Process, 3);
    let journal_overhead = journal_s / nojournal_s;
    let process_overhead = process_s / nojournal_s;
    println!(
        "{:<40} {:>12.3} ms/iter",
        "supervisor/no_journal",
        nojournal_s * 1e3
    );
    println!(
        "{:<40} {:>12.3} ms/iter",
        "supervisor/journal",
        journal_s * 1e3
    );
    println!(
        "{:<40} {:>12.3} ms/iter",
        "supervisor/process_pool",
        process_s * 1e3
    );
    println!(
        "supervisor journal overhead: {journal_overhead:.3}x on {}",
        kernel.name
    );
    println!(
        "supervisor process-pool overhead: {process_overhead:.3}x on {}",
        kernel.name
    );

    // Sharding overhead: the same campaign as four checksummed shard
    // journals merged back together, plus the merge integrity pass
    // alone — the price of distrust (CRCs, digests, coverage checks)
    // relative to one journaled sequential run.
    let shard_base = std::env::temp_dir().join("nfp_sim_speed_shards.jsonl");
    let (sharded_s, merge_s) = time_sharded(&kernel, &shard_base, 4, 3);
    let shard_merge_overhead = merge_s / journal_s;
    println!(
        "{:<40} {:>12.3} ms/iter",
        "supervisor/sharded_x4",
        sharded_s * 1e3
    );
    println!(
        "{:<40} {:>12.3} ms/iter",
        "supervisor/shard_merge",
        merge_s * 1e3
    );
    println!(
        "shard-merge overhead: {shard_merge_overhead:.3}x of a journaled run on {}",
        kernel.name
    );

    // Remote dispatch overhead: the same campaign over loopback TCP
    // with two connected workers — framing, CRC re-validation, digests,
    // and heartbeats, minus any real network latency — and with the
    // crash-safe coordinator on top (service journal + records files,
    // plus the cache-hit round trip a repeat submit costs). All three
    // variants are interleaved per rep against a fresh local baseline
    // so drift cancels out of the overhead ratios.
    let (remote_base_s, remote_s, serve_journal_s, cache_hit_s, audited_s) =
        time_remote_suite(&kernel, 3);
    let remote_overhead = remote_s / remote_base_s;
    let serve_resume_overhead = serve_journal_s / remote_base_s;
    let audit_overhead = audited_s / remote_s;
    println!(
        "{:<40} {:>12.3} ms/iter",
        "supervisor/remote_tcp_x2",
        remote_s * 1e3
    );
    println!(
        "remote dispatch overhead: {remote_overhead:.3}x of a local run on {}",
        kernel.name
    );
    println!(
        "{:<40} {:>12.3} ms/iter",
        "supervisor/remote_journaled",
        serve_journal_s * 1e3
    );
    println!(
        "{:<40} {:>12.3} ms/iter",
        "supervisor/remote_cache_hit",
        cache_hit_s * 1e3
    );
    println!(
        "journaled remote overhead: {serve_resume_overhead:.3}x of a local run on {} \
         (unjournaled remote: {remote_overhead:.3}x)",
        kernel.name
    );
    println!(
        "{:<40} {:>12.3} ms/iter",
        "supervisor/remote_audited",
        audited_s * 1e3
    );
    println!(
        "audit-everything overhead: {audit_overhead:.3}x of an unaudited remote run on {}",
        kernel.name
    );

    // Hand-rolled JSON: the workspace has no serde, and the schema is
    // a handful of scalars.
    let json = format!(
        "{{\n  \"kernel\": \"{}\",\n  \"instret\": {},\n  \
         \"step_seconds\": {:.6},\n  \"block_seconds\": {:.6},\n  \
         \"threaded_seconds\": {:.6},\n  \"traced_seconds\": {:.6},\n  \
         \"step_mips\": {:.1},\n  \"block_mips\": {:.1},\n  \
         \"threaded_mips\": {:.1},\n  \"traced_mips\": {:.1},\n  \
         \"speedup\": {:.3},\n  \
         \"threaded_speedup\": {:.3},\n  \
         \"traced_speedup\": {:.3},\n  \
         \"supervised_nojournal_seconds\": {:.6},\n  \
         \"supervised_journal_seconds\": {:.6},\n  \
         \"journal_overhead\": {:.3},\n  \
         \"supervised_process_seconds\": {:.6},\n  \
         \"process_overhead\": {:.3},\n  \
         \"sharded_4_seconds\": {:.6},\n  \
         \"shard_merge_seconds\": {:.6},\n  \
         \"shard_merge_overhead\": {:.3},\n  \
         \"remote_tcp_seconds\": {:.6},\n  \
         \"remote_dispatch_overhead\": {:.3},\n  \
         \"serve_journal_seconds\": {:.6},\n  \
         \"serve_resume_overhead\": {:.3},\n  \
         \"cache_hit_seconds\": {:.6},\n  \
         \"audited_remote_seconds\": {:.6},\n  \
         \"audit_overhead\": {:.3}\n}}\n",
        kernel.name,
        instret,
        step_s,
        block_s,
        threaded_s,
        traced_s,
        step_mips,
        block_mips,
        threaded_mips,
        traced_mips,
        speedup,
        threaded_speedup,
        traced_speedup,
        nojournal_s,
        journal_s,
        journal_overhead,
        process_s,
        process_overhead,
        sharded_s,
        merge_s,
        shard_merge_overhead,
        remote_s,
        remote_overhead,
        serve_journal_s,
        serve_resume_overhead,
        cache_hit_s,
        audited_s,
        audit_overhead
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");
    std::fs::write(path, json).expect("write BENCH_sim.json");
    println!("wrote {path}");
}

criterion_group!(benches, bench_sim_layers, bench_block_batching);
criterion_main!(benches);
