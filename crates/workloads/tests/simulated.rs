//! Differential validation of the simulated workloads: the mini-C
//! programs, compiled and executed on the SPARC V8 simulator, must
//! reproduce the native reference implementations bit-exactly —
//! decoded pixels, concealed pixels, and the double-precision activity
//! statistic — in both float modes (the paper relies on float and
//! fixed kernels producing identical outputs).

use nfp_cc::FloatMode;
use nfp_workloads::hevc::{self, Config};
use nfp_workloads::synth::{loss_mask, test_image, test_sequence, Scene};
use nfp_workloads::{fse, machine_for, Kernel, Workload, OUTPUT_BASE};

fn run_kernel(kernel: &Kernel, mode: FloatMode) -> (Vec<u32>, nfp_sim::Machine) {
    let mut machine = machine_for(kernel, mode).expect("machine");
    let result = machine
        .run(nfp_workloads::KERNEL_BUDGET)
        .unwrap_or_else(|e| panic!("{} [{mode:?}]: {e}", kernel.name));
    assert_eq!(result.exit_code, 0, "{} [{mode:?}]", kernel.name);
    (result.words, machine)
}

#[test]
fn hevc_simulated_decoder_matches_native_reference() {
    let frames = test_sequence(Scene::MovingObject, 32, 24, 3);
    for config in Config::ALL {
        for qp in [10u32, 45] {
            let encoded = hevc::encode(&frames, config, qp).expect("encode");
            let decoded = hevc::decode(&encoded.bytes).unwrap();
            let kernel = Kernel {
                name: format!("test_{}_{qp}", config.name()),
                workload: Workload::Hevc,
                input: hevc::minic::input_blob(&encoded.bytes),
                expected_words: vec![],
                seed: 0,
            };
            for mode in [FloatMode::Hard, FloatMode::Soft] {
                let (words, machine) = run_kernel(&kernel, mode);
                // Checksum + activity bits.
                let mut all = Vec::new();
                for f in &decoded.frames {
                    all.extend_from_slice(&f.data);
                }
                assert_eq!(
                    words[0],
                    nfp_workloads::fnv1a(&all),
                    "{} [{mode:?}]: pixel checksum",
                    kernel.name
                );
                let activity_bits = ((words[1] as u64) << 32) | words[2] as u64;
                assert_eq!(
                    activity_bits,
                    decoded.activity.to_bits(),
                    "{} [{mode:?}]: activity {:e} vs {:e}",
                    kernel.name,
                    f64::from_bits(activity_bits),
                    decoded.activity,
                );
                // Full per-pixel comparison of the output region.
                let frame_len = 32 * 24;
                for (i, frame) in decoded.frames.iter().enumerate() {
                    let out = machine
                        .bus
                        .read_bytes(OUTPUT_BASE + (i * frame_len) as u32, frame_len)
                        .expect("output region in RAM");
                    assert_eq!(out, &frame.data[..], "frame {i} pixels");
                }
            }
        }
    }
}

#[test]
fn fse_simulated_matches_native_reference() {
    let size = 32;
    let img = test_image(size, size, 7);
    let mask = loss_mask(size, size, 2, 7);
    let mut lost = img.clone();
    for (p, &m) in lost.data.iter_mut().zip(&mask) {
        if m {
            *p = 0;
        }
    }
    let mut concealed = lost.clone();
    fse::conceal(&mut concealed, &mask, 8);

    let kernel = Kernel {
        name: "test_fse".into(),
        workload: Workload::Fse,
        input: fse::minic::input_blob(&lost, &mask, 8),
        expected_words: vec![],
        seed: 0,
    };
    for mode in [FloatMode::Hard, FloatMode::Soft] {
        let (words, machine) = run_kernel(&kernel, mode);
        assert_eq!(
            words[0],
            nfp_workloads::fnv1a(&concealed.data),
            "[{mode:?}] checksum"
        );
        let out = machine
            .bus
            .read_bytes(OUTPUT_BASE, size * size)
            .expect("output region in RAM");
        assert_eq!(out, &concealed.data[..], "[{mode:?}] pixels");
    }
}

#[test]
fn registry_kernels_verify_on_the_simulator() {
    // One representative of each workload from the quick registry.
    let preset = nfp_workloads::Preset::quick();
    let kernels = nfp_workloads::all_kernels(&preset).expect("kernels");
    let hevc_k = kernels
        .iter()
        .find(|k| k.workload == Workload::Hevc)
        .unwrap();
    let fse_k = kernels
        .iter()
        .find(|k| k.workload == Workload::Fse)
        .unwrap();
    for kernel in [hevc_k, fse_k] {
        for mode in [FloatMode::Hard, FloatMode::Soft] {
            let (words, _) = run_kernel(kernel, mode);
            assert_eq!(words, kernel.expected_words, "{} [{mode:?}]", kernel.name);
        }
    }
}

#[test]
fn float_and_fixed_produce_identical_output() {
    // The paper's premise for Table IV: -msoft-float changes nothing
    // functionally.
    let preset = nfp_workloads::Preset::quick();
    let kernels = nfp_workloads::fse_kernels(&preset).expect("kernels");
    let kernel = &kernels[3];
    let (hard, _) = run_kernel(kernel, FloatMode::Hard);
    let (soft, _) = run_kernel(kernel, FloatMode::Soft);
    assert_eq!(hard, soft);
}

#[test]
fn soft_kernels_execute_many_more_instructions() {
    let preset = nfp_workloads::Preset::quick();
    let kernels = nfp_workloads::fse_kernels(&preset).expect("kernels");
    let kernel = &kernels[0];
    let count = |mode| {
        let mut machine = machine_for(kernel, mode).expect("machine");
        machine.run(nfp_workloads::KERNEL_BUDGET).unwrap().instret
    };
    let hard = count(FloatMode::Hard);
    let soft = count(FloatMode::Soft);
    assert!(
        soft as f64 > hard as f64 * 4.0,
        "FSE soft/hard instruction ratio too small: {soft} / {hard}"
    );
}
