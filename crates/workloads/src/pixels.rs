//! Grayscale image container and pixel-level utilities shared by the
//! workloads.

/// An 8-bit grayscale image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Row-major samples.
    pub data: Vec<u8>,
}

impl Image {
    /// A black image of the given size.
    pub fn new(width: usize, height: usize) -> Self {
        Image {
            width,
            height,
            data: vec![0; width * height],
        }
    }

    /// Sample at (x, y).
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> u8 {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.width + x]
    }

    /// Sets the sample at (x, y).
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: u8) {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.width + x] = v;
    }

    /// Clamped sample access (border extension), for filters and
    /// motion compensation at frame edges.
    #[inline]
    pub fn get_clamped(&self, x: isize, y: isize) -> u8 {
        let cx = x.clamp(0, self.width as isize - 1) as usize;
        let cy = y.clamp(0, self.height as isize - 1) as usize;
        self.get(cx, cy)
    }
}

/// Clips an i32 to the 8-bit sample range.
#[inline]
pub fn clip255(v: i32) -> u8 {
    v.clamp(0, 255) as u8
}

/// FNV-1a hash over bytes — the checksum the simulated workloads emit
/// and the harness verifies against native references.
pub fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Peak signal-to-noise ratio between two images, in dB.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn psnr(a: &Image, b: &Image) -> f64 {
    assert_eq!(a.width, b.width);
    assert_eq!(a.height, b.height);
    let sse: u64 = a
        .data
        .iter()
        .zip(&b.data)
        .map(|(&x, &y)| {
            let d = x as i64 - y as i64;
            (d * d) as u64
        })
        .sum();
    if sse == 0 {
        return f64::INFINITY;
    }
    let mse = sse as f64 / (a.width * a.height) as f64;
    10.0 * (255.0f64 * 255.0 / mse).log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_accessors() {
        let mut img = Image::new(4, 3);
        img.set(3, 2, 77);
        assert_eq!(img.get(3, 2), 77);
        assert_eq!(img.data.len(), 12);
    }

    #[test]
    fn clamped_access_extends_borders() {
        let mut img = Image::new(2, 2);
        img.set(0, 0, 10);
        img.set(1, 1, 20);
        assert_eq!(img.get_clamped(-5, -5), 10);
        assert_eq!(img.get_clamped(10, 10), 20);
    }

    #[test]
    fn clip_range() {
        assert_eq!(clip255(-1), 0);
        assert_eq!(clip255(0), 0);
        assert_eq!(clip255(128), 128);
        assert_eq!(clip255(300), 255);
    }

    #[test]
    fn fnv_known_values() {
        assert_eq!(fnv1a(b""), 0x811c_9dc5);
        assert_eq!(fnv1a(b"a"), 0xe40c_292c);
        assert_ne!(fnv1a(b"ab"), fnv1a(b"ba"));
    }

    #[test]
    fn psnr_identical_is_infinite() {
        let img = Image::new(8, 8);
        assert!(psnr(&img, &img).is_infinite());
        let mut other = img.clone();
        other.set(0, 0, 255);
        assert!(psnr(&img, &other) < 60.0);
    }
}
