//! The mini-HEVC decoder as a mini-C program — the workload binary
//! that runs on the simulated LEON3, standing in for the paper's
//! bare-metal HM decoder build.
//!
//! The source is generated (tables injected from [`super::tables`]) and
//! must reconstruct bit-exactly what [`super::native::decode`]
//! produces, including the double-precision activity statistic, whose
//! operation order is mirrored operation for operation.
//!
//! Memory protocol:
//! * input at `0x4100_0000`: `u32` bitstream length, then the bytes;
//! * output at `0x4200_0000`: decoded frames, row-major, in order;
//! * emitted words: FNV-1a of all output bytes, then the 64 raw bits
//!   of the accumulated activity (high word first).

use super::tables::{zigzag8, LEV_SCALE, T8};
use std::fmt::Write;

/// Maximum samples per frame the decoder's static buffers allow.
pub const MAX_FRAME_SAMPLES: usize = 4096;

/// Generates the decoder source.
pub fn decoder_source() -> String {
    let mut t8 = String::new();
    for row in T8 {
        for v in row {
            let _ = write!(t8, "{v}, ");
        }
    }
    let mut zz = String::new();
    for v in zigzag8() {
        let _ = write!(zz, "{v}, ");
    }
    let mut lev = String::new();
    for v in LEV_SCALE {
        let _ = write!(lev, "{v}, ");
    }

    format!(
        r#"// mini-HEVC decoder (generated; see nfp-workloads hevc::minic)
#define FBSTRIDE 4096

int T8[64] = {{ {t8} }};
int ZZ[64] = {{ {zz} }};
int LEVSCALE[6] = {{ {lev} }};

uchar fb[12288];
int W; int H; int BW; int BH; int QP; int QSTEP; int THR;
uchar* bs; int bitpos; int bslen;
uint fnv;

int get_bit() {{
    int byte = bitpos >> 3;
    int bit = 7 - (bitpos & 7);
    bitpos = bitpos + 1;
    if (byte >= bslen) return 0;
    return (bs[byte] >> bit) & 1;
}}

uint get_ue() {{
    int zeros = 0;
    while (get_bit() == 0) {{
        zeros = zeros + 1;
        if (zeros > 30) return 0u;
    }}
    uint rest = 0u;
    for (int i = 0; i < zeros; i = i + 1) {{
        rest = (rest << 1) | (uint)get_bit();
    }}
    return ((1u << zeros) + rest) - 1u;
}}

int get_se() {{
    uint v = get_ue();
    if ((v & 1u) != 0u) return (int)(v >> 1) + 1;
    return -((int)(v >> 1));
}}

int clip255(int v) {{
    if (v < 0) return 0;
    if (v > 255) return 255;
    return v;
}}

void inv_transform(int* c, int* out) {{
    int tmp[64];
    for (int y = 0; y < 8; y = y + 1) {{
        for (int v = 0; v < 8; v = v + 1) {{
            int acc = 0;
            for (int u = 0; u < 8; u = u + 1) {{
                acc = acc + T8[u * 8 + y] * c[u * 8 + v];
            }}
            tmp[y * 8 + v] = (acc + 64) >> 7;
        }}
    }}
    for (int y = 0; y < 8; y = y + 1) {{
        for (int x = 0; x < 8; x = x + 1) {{
            int acc = 0;
            for (int v = 0; v < 8; v = v + 1) {{
                acc = acc + T8[v * 8 + x] * tmp[y * 8 + v];
            }}
            out[y * 8 + x] = (acc + 2048) >> 12;
        }}
    }}
}}

// Reads cbf + run/level pairs, dequantises, inverse-transforms.
void decode_residual(int* out) {{
    int levels[64];
    for (int i = 0; i < 64; i = i + 1) levels[i] = 0;
    if (get_bit() == 0) {{
        for (int i = 0; i < 64; i = i + 1) out[i] = 0;
        return;
    }}
    int nnz = (int)get_ue();
    if (nnz > 64) nnz = 64;
    int scan = 0;
    for (int k = 0; k < nnz; k = k + 1) {{
        int run = (int)get_ue();
        scan = scan + run;
        if (scan >= 64) break;
        int mag = (int)get_ue() + 1;
        int neg = get_bit();
        if (neg != 0) levels[ZZ[scan]] = -mag;
        else levels[ZZ[scan]] = mag;
        scan = scan + 1;
    }}
    int coeffs[64];
    for (int i = 0; i < 64; i = i + 1) coeffs[i] = levels[i] * QSTEP;
    inv_transform(coeffs, out);
}}

void intra_pred(uchar* rec, int bx, int by, int mode, int* pred) {{
    int top[8];
    int left[8];
    int topa = 0;
    int lefta = 0;
    if (by > 0) topa = 1;
    if (bx > 0) lefta = 1;
    int x0 = bx * 8;
    int y0 = by * 8;
    for (int i = 0; i < 8; i = i + 1) {{
        if (topa != 0) top[i] = rec[(y0 - 1) * W + x0 + i];
        else top[i] = 128;
        if (lefta != 0) left[i] = rec[(y0 + i) * W + x0 - 1];
        else left[i] = 128;
    }}
    if (mode == 1) {{
        for (int y = 0; y < 8; y = y + 1)
            for (int x = 0; x < 8; x = x + 1)
                pred[y * 8 + x] = top[x];
        return;
    }}
    if (mode == 2) {{
        for (int y = 0; y < 8; y = y + 1)
            for (int x = 0; x < 8; x = x + 1)
                pred[y * 8 + x] = left[y];
        return;
    }}
    if (mode == 3) {{
        int tr = top[7];
        int bl = left[7];
        for (int y = 0; y < 8; y = y + 1) {{
            for (int x = 0; x < 8; x = x + 1) {{
                pred[y * 8 + x] = ((7 - x) * left[y] + (x + 1) * tr
                    + (7 - y) * top[x] + (y + 1) * bl + 8) >> 4;
            }}
        }}
        return;
    }}
    // DC (mode 0 and any out-of-range code)
    int dc = 128;
    if (topa != 0 && lefta != 0) {{
        int s = 0;
        for (int i = 0; i < 8; i = i + 1) s = s + top[i] + left[i];
        dc = (s + 8) >> 4;
    }} else if (topa != 0) {{
        int s = 0;
        for (int i = 0; i < 8; i = i + 1) s = s + top[i];
        dc = (s + 4) >> 3;
    }} else if (lefta != 0) {{
        int s = 0;
        for (int i = 0; i < 8; i = i + 1) s = s + left[i];
        dc = (s + 4) >> 3;
    }}
    for (int i = 0; i < 64; i = i + 1) pred[i] = dc;
}}

void mc(uchar* ref, int bx, int by, int mvx, int mvy, int* pred) {{
    int x0 = bx * 8 + mvx;
    int y0 = by * 8 + mvy;
    for (int y = 0; y < 8; y = y + 1) {{
        for (int x = 0; x < 8; x = x + 1) {{
            int sx = x0 + x;
            int sy = y0 + y;
            if (sx < 0) sx = 0;
            if (sx > W - 1) sx = W - 1;
            if (sy < 0) sy = 0;
            if (sy > H - 1) sy = H - 1;
            pred[y * 8 + x] = ref[sy * W + sx];
        }}
    }}
}}

void deblock(uchar* rec) {{
    for (int x = 8; x < W; x = x + 8) {{
        for (int y = 0; y < H; y = y + 1) {{
            int p0 = rec[y * W + x - 1];
            int q0 = rec[y * W + x];
            int delta = q0 - p0;
            int mag = delta;
            if (mag < 0) mag = -mag;
            if (delta != 0 && mag < THR) {{
                int adj = delta / 4;
                rec[y * W + x - 1] = (uchar)clip255(p0 + adj);
                rec[y * W + x] = (uchar)clip255(q0 - adj);
            }}
        }}
    }}
    for (int y = 8; y < H; y = y + 8) {{
        for (int x = 0; x < W; x = x + 1) {{
            int p0 = rec[(y - 1) * W + x];
            int q0 = rec[y * W + x];
            int delta = q0 - p0;
            int mag = delta;
            if (mag < 0) mag = -mag;
            if (delta != 0 && mag < THR) {{
                int adj = delta / 4;
                rec[(y - 1) * W + x] = (uchar)clip255(p0 + adj);
                rec[y * W + x] = (uchar)clip255(q0 - adj);
            }}
        }}
    }}
}}

double frame_activity(uchar* rec) {{
    double activity = 0.0;
    for (int by = 0; by < BH; by = by + 1) {{
        for (int bx = 0; bx < BW; bx = bx + 1) {{
            int sum = 0;
            int ssq = 0;
            for (int y = 0; y < 8; y = y + 1) {{
                for (int x = 0; x < 8; x = x + 1) {{
                    int s = rec[(by * 8 + y) * W + bx * 8 + x];
                    sum = sum + s;
                    ssq = ssq + s * s;
                }}
            }}
            double var = 64.0 * (double)ssq - (double)sum * (double)sum;
            activity = activity + sqrt(fabs(var)) / 64.0;
            for (int y = 0; y < 8; y = y + 1) {{
                int row = 0;
                for (int x = 0; x < 7; x = x + 1) {{
                    int a = rec[(by * 8 + y) * W + bx * 8 + x];
                    int b = rec[(by * 8 + y) * W + bx * 8 + x + 1];
                    int d = b - a;
                    if (d < 0) d = -d;
                    row = row + d;
                }}
                activity = activity + (double)row * 0.001953125;
            }}
            for (int x = 0; x < 8; x = x + 1) {{
                int col = 0;
                for (int y = 0; y < 7; y = y + 1) {{
                    int a = rec[(by * 8 + y) * W + bx * 8 + x];
                    int b = rec[(by * 8 + y + 1) * W + bx * 8 + x];
                    int d = b - a;
                    if (d < 0) d = -d;
                    col = col + d;
                }}
                activity = activity + (double)col * 0.001953125;
            }}
            for (int y = 0; y < 8; y = y + 2) {{
                for (int x = 0; x < 7; x = x + 1) {{
                    int a = rec[(by * 8 + y) * W + bx * 8 + x];
                    int b = rec[(by * 8 + y) * W + bx * 8 + x + 1];
                    int d = b - a;
                    if (d < 0) d = -d;
                    activity = activity + (double)d * 0.0009765625;
                }}
            }}
        }}
    }}
    return activity;
}}

int main() {{
    uint* in = (uint*)0x41000000;
    bslen = (int)in[0];
    bs = (uchar*)0x41000004;
    uchar* out = (uchar*)0x42000000;
    bitpos = 0;
    fnv = 0x811c9dc5u;

    BW = (int)get_ue();
    BH = (int)get_ue();
    int frames = (int)get_ue();
    QP = (int)get_ue();
    W = BW * 8;
    H = BH * 8;
    if (BW < 1 || BH < 1 || W * H > FBSTRIDE || frames < 1 || frames > 1024 || QP > 51) {{
        return 1;
    }}
    QSTEP = (LEVSCALE[QP % 6] << (QP / 6)) >> 4;
    if (QSTEP < 1) QSTEP = 1;
    THR = QSTEP / 2 + 2;

    double activity = 0.0;
    int pred[64];
    int resid[64];

    for (int t = 0; t < frames; t = t + 1) {{
        int ftype = (int)get_ue();
        uchar* rec = fb + (t % 3) * FBSTRIDE;
        uchar* ref1 = fb + ((t + 2) % 3) * FBSTRIDE;
        uchar* ref2 = fb + ((t + 1) % 3) * FBSTRIDE;
        if (t < 2) ref2 = ref1;
        for (int by = 0; by < BH; by = by + 1) {{
            for (int bx = 0; bx < BW; bx = bx + 1) {{
                if (ftype == 0) {{
                    int mode = (int)get_ue();
                    intra_pred(rec, bx, by, mode, pred);
                }} else if (ftype == 1) {{
                    int mvx = get_se();
                    int mvy = get_se();
                    mc(ref1, bx, by, mvx, mvy, pred);
                }} else {{
                    int mvx = get_se();
                    int mvy = get_se();
                    int pred2[64];
                    mc(ref1, bx, by, mvx, mvy, pred);
                    mc(ref2, bx, by, mvx, mvy, pred2);
                    for (int i = 0; i < 64; i = i + 1) {{
                        pred[i] = (pred[i] + pred2[i] + 1) >> 1;
                    }}
                }}
                decode_residual(resid);
                for (int y = 0; y < 8; y = y + 1) {{
                    for (int x = 0; x < 8; x = x + 1) {{
                        int v = pred[y * 8 + x] + resid[y * 8 + x];
                        rec[(by * 8 + y) * W + bx * 8 + x] = (uchar)clip255(v);
                    }}
                }}
            }}
        }}
        deblock(rec);
        activity = activity + frame_activity(rec);
        for (int i = 0; i < W * H; i = i + 1) {{
            uchar pix = rec[i];
            out[i] = pix;
            fnv = (fnv ^ (uint)pix) * 0x01000193u;
        }}
        out = out + W * H;
    }}

    emit(fnv);
    u64 bits = __dbits(activity);
    emit((uint)(bits >> 32));
    emit((uint)bits);
    return 0;
}}
"#
    )
}

/// Builds the input blob (length word + bitstream bytes).
pub fn input_blob(bitstream: &[u8]) -> Vec<u8> {
    let mut blob = Vec::with_capacity(4 + bitstream.len());
    blob.extend_from_slice(&(bitstream.len() as u32).to_be_bytes());
    blob.extend_from_slice(bitstream);
    blob
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_compiles_in_both_modes() {
        let src = decoder_source();
        for mode in [nfp_cc::FloatMode::Hard, nfp_cc::FloatMode::Soft] {
            nfp_cc::compile(&src, &nfp_cc::CompileOptions::new(mode))
                .unwrap_or_else(|e| panic!("{mode:?}: {e}"));
        }
    }

    #[test]
    fn input_blob_layout() {
        let blob = input_blob(&[1, 2, 3]);
        assert_eq!(blob, vec![0, 0, 0, 3, 1, 2, 3]);
    }
}
