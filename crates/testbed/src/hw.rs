//! Detailed hardware model of the cacheless LEON3-class core.
//!
//! Cycle and energy cost of each instruction depends on *context*, the
//! way it does on the real board:
//!
//! * loads/stores pay an extra SDRAM penalty when they leave the open
//!   row of the previous access;
//! * taken branches are costlier than untaken ones;
//! * integer multiply/divide take longer than simple ALU operations
//!   (the paper folds them all into "Integer Arithmetic");
//! * FPU divide/sqrt latency depends on the operand mantissa;
//! * every instruction's energy has a data-dependent toggling term and
//!   a static-leakage share proportional to its duration.
//!
//! All parameters are chosen so that differential calibration (paper
//! Table II) recovers per-category costs close to the paper's Table I
//! at the LEON3's 50 MHz clock.

use nfp_sim::{ExecInfo, Observer};
use nfp_sparc::{AluOp, Category, Instr};

/// Static configuration of the modelled hardware.
#[derive(Debug, Clone)]
pub struct HwModel {
    /// Core clock in Hz (LEON3 default on the DE2-115: 50 MHz).
    pub clock_hz: f64,
    /// Static (leakage + idle board) power in watts, charged per cycle.
    pub static_power_w: f64,
    /// Energy per toggled result bit in joules (datapath activity).
    pub toggle_j_per_bit: f64,
    /// Extra cycles when a memory access misses the open SDRAM row.
    pub row_miss_cycles: u64,
    /// SDRAM row size in bytes (address bits above this select a row).
    pub row_bytes: u32,
}

impl Default for HwModel {
    fn default() -> Self {
        HwModel {
            clock_hz: 50.0e6,
            static_power_w: 0.100,
            toggle_j_per_bit: 0.08e-9,
            row_miss_cycles: 3,
            row_bytes: 1024,
        }
    }
}

/// Per-instruction dynamic energies in joules, by cost class.
#[derive(Debug, Clone, Copy)]
struct Cost {
    cycles: u64,
    dynamic_j: f64,
}

impl HwModel {
    /// Base cost of an instruction before context effects.
    fn base_cost(&self, info: &ExecInfo) -> Cost {
        // Dynamic energies are tuned so that dynamic + static·time +
        // toggling averages near the paper's Table I specific
        // energies; cycle counts correspond to its specific times at
        // 50 MHz.
        match info.category {
            Category::IntArith => match info.instr {
                Instr::Alu { op, .. } => match op {
                    AluOp::UMul | AluOp::UMulCc | AluOp::SMul | AluOp::SMulCc => Cost {
                        cycles: 4,
                        dynamic_j: 17.0e-9,
                    },
                    AluOp::UDiv | AluOp::UDivCc | AluOp::SDiv | AluOp::SDivCc => Cost {
                        cycles: 20,
                        dynamic_j: 60.0e-9,
                    },
                    _ => Cost {
                        cycles: 2,
                        dynamic_j: 9.5e-9,
                    },
                },
                // sethi
                _ => Cost {
                    cycles: 2,
                    dynamic_j: 9.5e-9,
                },
            },
            Category::Jump => {
                let taken = info.branch_taken.unwrap_or(true);
                if taken {
                    Cost {
                        cycles: 12,
                        dynamic_j: 50.0e-9,
                    }
                } else {
                    Cost {
                        cycles: 10,
                        dynamic_j: 42.0e-9,
                    }
                }
            }
            Category::MemLoad => Cost {
                cycles: 34,
                dynamic_j: 156.0e-9,
            },
            Category::MemStore => Cost {
                cycles: 19,
                dynamic_j: 126.0e-9,
            },
            Category::Nop => Cost {
                cycles: 2,
                dynamic_j: 8.0e-9,
            },
            Category::Other => Cost {
                cycles: 2,
                dynamic_j: 8.5e-9,
            },
            Category::FpuArith => Cost {
                cycles: 2,
                dynamic_j: 9.0e-9,
            },
            Category::FpuDiv => {
                // SRT-style divider: latency depends on the divisor
                // mantissa (quotient digit selection retries).
                let extra = info
                    .fpu_rs2_bits
                    .map(|bits| ((bits & 0xf_ffff_ffff_ffff).count_ones() as u64) / 9)
                    .unwrap_or(2);
                Cost {
                    cycles: 18 + extra, // 18..=23
                    dynamic_j: 360.0e-9 + extra as f64 * 9.0e-9,
                }
            }
            Category::FpuSqrt => {
                let extra = info
                    .fpu_rs2_bits
                    .map(|bits| ((bits & 0xf_ffff_ffff_ffff).count_ones() as u64) / 13)
                    .unwrap_or(2);
                Cost {
                    cycles: 29 + extra, // 29..=33
                    dynamic_j: 20.0e-9 + extra as f64 * 2.0e-9,
                }
            }
        }
    }
}

/// Accumulated ground-truth totals for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HwTotals {
    /// Total clock cycles consumed.
    pub cycles: u64,
    /// True total energy in joules (dynamic + toggling + static).
    pub energy_j: f64,
    /// Instructions observed.
    pub instret: u64,
    /// Memory accesses that missed the open row (model introspection).
    pub row_misses: u64,
}

/// The per-instruction observer that drives the hardware model. This
/// plays the role of the cycle-level simulation the paper's Fig. 1
/// places at the slow/accurate end of the spectrum.
pub struct HwObserver {
    model: HwModel,
    totals: HwTotals,
    open_row: Option<u32>,
}

impl HwObserver {
    /// Creates an observer with all counters zeroed.
    pub fn new(model: HwModel) -> Self {
        HwObserver {
            model,
            totals: HwTotals::default(),
            open_row: None,
        }
    }

    /// The totals accumulated so far.
    pub fn totals(&self) -> &HwTotals {
        &self.totals
    }

    /// The model parameters in use.
    pub fn model(&self) -> &HwModel {
        &self.model
    }

    /// True elapsed time in seconds at the modelled clock.
    pub fn time_s(&self) -> f64 {
        self.totals.cycles as f64 / self.model.clock_hz
    }
}

impl Observer for HwObserver {
    #[inline]
    fn observe(&mut self, info: &ExecInfo) {
        let mut cost = self.model.base_cost(info);
        if let Some(addr) = info.mem_addr {
            let row = addr / self.model.row_bytes;
            if self.open_row != Some(row) {
                cost.cycles += self.model.row_miss_cycles;
                cost.dynamic_j += 9.0e-9; // row activate/precharge
                self.totals.row_misses += 1;
                self.open_row = Some(row);
            }
        }
        let time_s = cost.cycles as f64 / self.model.clock_hz;
        self.totals.cycles += cost.cycles;
        self.totals.energy_j += cost.dynamic_j
            + info.result_ones as f64 * self.model.toggle_j_per_bit
            + self.model.static_power_w * time_s;
        self.totals.instret += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfp_sparc::regs::G0;
    use nfp_sparc::{Operand, Reg};

    fn info(instr: Instr) -> ExecInfo {
        ExecInfo {
            pc: 0x4000_0000,
            instr,
            category: instr.category(),
            mem_addr: None,
            branch_taken: None,
            fpu_rs2_bits: None,
            result_ones: 0,
        }
    }

    fn add_instr() -> Instr {
        Instr::Alu {
            op: AluOp::Add,
            rd: Reg::o(0),
            rs1: Reg::o(1),
            op2: Operand::Imm(1),
        }
    }

    #[test]
    fn integer_add_is_two_cycles() {
        let mut obs = HwObserver::new(HwModel::default());
        obs.observe(&info(add_instr()));
        assert_eq!(obs.totals().cycles, 2);
        assert_eq!(obs.totals().instret, 1);
        // 2 cycles at 50 MHz = 40 ns
        assert!((obs.time_s() - 40e-9).abs() < 1e-15);
    }

    #[test]
    fn multiply_and_divide_cost_more_than_add() {
        let model = HwModel::default();
        let mul = model.base_cost(&info(Instr::Alu {
            op: AluOp::UMul,
            rd: Reg::o(0),
            rs1: Reg::o(1),
            op2: Operand::Imm(3),
        }));
        let div = model.base_cost(&info(Instr::Alu {
            op: AluOp::SDiv,
            rd: Reg::o(0),
            rs1: Reg::o(1),
            op2: Operand::Imm(3),
        }));
        let add = model.base_cost(&info(add_instr()));
        assert!(mul.cycles > add.cycles);
        assert!(div.cycles > mul.cycles);
    }

    #[test]
    fn row_locality_affects_load_cost() {
        let model = HwModel::default();
        let mut obs = HwObserver::new(model);
        let mut load = info(Instr::Load {
            size: nfp_sparc::MemSize::Word,
            signed: false,
            rd: Reg::o(0),
            rs1: Reg::o(1),
            op2: Operand::Imm(0),
        });
        // First access opens the row (counts as a miss).
        load.mem_addr = Some(0x4000_1000);
        obs.observe(&load);
        let first = obs.totals().cycles;
        // Same row: cheaper.
        load.mem_addr = Some(0x4000_1040);
        obs.observe(&load);
        let second = obs.totals().cycles - first;
        // Different row: miss penalty again.
        load.mem_addr = Some(0x4010_0000);
        obs.observe(&load);
        let third = obs.totals().cycles - first - second;
        assert!(first > second);
        assert_eq!(first, third);
        assert_eq!(obs.totals().row_misses, 2);
    }

    #[test]
    fn branch_taken_costs_more() {
        let model = HwModel::default();
        let mut taken = info(Instr::Branch {
            cond: nfp_sparc::ICond::A,
            annul: false,
            disp22: 4,
        });
        taken.branch_taken = Some(true);
        let mut untaken = taken;
        untaken.branch_taken = Some(false);
        assert!(model.base_cost(&taken).cycles > model.base_cost(&untaken).cycles);
    }

    #[test]
    fn fpu_divide_latency_depends_on_operand() {
        let model = HwModel::default();
        let fdiv = Instr::FpOp {
            op: nfp_sparc::FpOp::FDivD,
            rd: nfp_sparc::FReg::new(0),
            rs1: nfp_sparc::FReg::new(2),
            rs2: nfp_sparc::FReg::new(4),
        };
        let mut a = info(fdiv);
        a.fpu_rs2_bits = Some(2.0f64.to_bits()); // mantissa zero
        let mut b = a;
        b.fpu_rs2_bits = Some((1.0f64 / 3.0).to_bits()); // dense mantissa
        assert!(model.base_cost(&b).cycles > model.base_cost(&a).cycles);
        // Range check: 18..=23 cycles.
        for bits in [0u64, u64::MAX, 0x5555_5555_5555_5555] {
            let mut i = a;
            i.fpu_rs2_bits = Some(bits);
            let c = model.base_cost(&i).cycles;
            assert!((18..=23).contains(&c), "{c}");
        }
    }

    #[test]
    fn energy_includes_static_share_and_toggling() {
        let model = HwModel::default();
        let mut obs = HwObserver::new(model.clone());
        let mut i = info(add_instr());
        i.result_ones = 32;
        obs.observe(&i);
        let with_toggle = obs.totals().energy_j;
        let mut obs2 = HwObserver::new(model.clone());
        let mut i2 = info(add_instr());
        i2.result_ones = 0;
        obs2.observe(&i2);
        let without_toggle = obs2.totals().energy_j;
        let diff = with_toggle - without_toggle;
        assert!((diff - 32.0 * model.toggle_j_per_bit).abs() < 1e-18);
        // Static share: 2 cycles at 50 MHz * 0.1 W = 4 nJ.
        assert!(without_toggle > 4.0e-9);
    }

    #[test]
    fn average_costs_near_paper_table1() {
        // Sanity link to the paper: specific time of a load should be
        // near 700 ns and of an integer add near 40-45 ns.
        let model = HwModel::default();
        let add_t = model.base_cost(&info(add_instr())).cycles as f64 / model.clock_hz;
        assert!((38e-9..50e-9).contains(&add_t));
        let load = model.base_cost(&info(Instr::Load {
            size: nfp_sparc::MemSize::Word,
            signed: false,
            rd: Reg::o(0),
            rs1: G0,
            op2: Operand::Imm(0),
        }));
        let load_t = load.cycles as f64 / model.clock_hz;
        assert!((650e-9..750e-9).contains(&load_t));
    }
}
