//! Architectural CPU state: windowed integer register file, PSR flags,
//! Y register, FP register file, and the FSR condition code.

use nfp_sparc::cond::FccValue;
use nfp_sparc::{FReg, Reg};

/// Number of register windows (LEON3 default configuration).
pub const NWINDOWS: usize = 8;

/// Number of distinct fault-targetable integer registers: `%g1`–`%g7`
/// plus the `ins` and `locals` banks of every window (`%g0` is
/// hardwired to zero, so an upset there is always masked).
pub const INT_REG_SPACE: usize = 7 + NWINDOWS * 16;

/// Ceiling on frames the bare-metal overflow-handler model will spill
/// before declaring the trap unrecoverable. Corrupted control flow can
/// execute `save` in a loop; a real board would exhaust its stack long
/// before this.
pub const MAX_SPILL_FRAMES: usize = 1024;

/// One register window spilled to "memory" by the trap-handler model.
#[derive(Debug, Clone, Copy)]
struct SpilledWindow {
    locals: [u32; 8],
    ins: [u32; 8],
}

/// Integer condition codes (the `icc` field of the PSR).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Icc {
    /// Negative.
    pub n: bool,
    /// Zero.
    pub z: bool,
    /// Overflow.
    pub v: bool,
    /// Carry.
    pub c: bool,
}

/// Full architectural register state of the core.
///
/// The integer file is stored as a flat 32-word view of the *current*
/// window (`cur`, indexed directly by [`Reg::num`]) backed by per-window
/// banks. Register reads and writes — the hottest operations in every
/// dispatch mode — are then a single array access with no window
/// arithmetic; the banked copies are reconciled only on window
/// rotations (`save`/`restore`), which are orders of magnitude rarer.
#[derive(Debug, Clone)]
pub struct Cpu {
    /// Program counter of the instruction being executed.
    pub pc: u32,
    /// Next program counter (delay-slot architecture).
    pub npc: u32,
    /// Flat current-window view, indexed by [`Reg::num`]:
    /// `%g0-%g7`, `%o0-%o7`, `%l0-%l7`, `%i0-%i7`. Authoritative for
    /// the globals and for the three banks it mirrors (the previous
    /// window's `ins` = this window's outs, and the current window's
    /// `locals`/`ins`); `cur[0]` is pinned to zero.
    cur: [u32; 32],
    /// `ins` banks, one per window. The two banks mirrored by `cur`
    /// are stale between rotations; `cur` holds truth.
    ins: [[u32; 8]; NWINDOWS],
    /// `locals` banks, one per window. Same staleness rule as `ins`.
    locals: [[u32; 8]; NWINDOWS],
    /// Current window pointer.
    cwp: usize,
    /// Nesting depth of `save`s, for overflow/underflow detection.
    depth: usize,
    /// Integer condition codes.
    pub icc: Icc,
    /// The multiply/divide Y register.
    pub y: u32,
    /// FP registers as raw 32-bit words; doubles live in even/odd pairs
    /// with the even register holding the high word (big-endian).
    pub f: [u32; 32],
    /// FP condition code from the last `fcmp`.
    pub fcc: FccValue,
    /// Windows spilled by the bare-metal overflow-handler model, oldest
    /// first. Empty unless the machine runs with trap recovery enabled.
    spilled: Vec<SpilledWindow>,
}

impl Default for Cpu {
    fn default() -> Self {
        Self::new()
    }
}

impl Cpu {
    /// A reset CPU: all registers zero, `fcc` = equal, window 0.
    pub fn new() -> Self {
        Cpu {
            pc: 0,
            npc: 4,
            cur: [0; 32],
            ins: [[0; 8]; NWINDOWS],
            locals: [[0; 8]; NWINDOWS],
            cwp: 0,
            depth: 0,
            icc: Icc::default(),
            y: 0,
            f: [0; 32],
            fcc: FccValue::Equal,
            spilled: Vec::new(),
        }
    }

    /// Reads an integer register in the current window.
    #[inline(always)]
    pub fn get(&self, r: Reg) -> u32 {
        // `& 31` restates the `Reg` invariant so no bounds check
        // survives in the hot path.
        self.cur[(r.num() & 31) as usize]
    }

    /// Writes an integer register in the current window; writes to
    /// `%g0` are discarded.
    #[inline(always)]
    pub fn set(&mut self, r: Reg, value: u32) {
        // Branchless `%g0` discard: store, then re-pin slot 0 to zero.
        self.cur[(r.num() & 31) as usize] = value;
        self.cur[0] = 0;
    }

    /// Bank index whose `ins` array holds the current window's outs:
    /// outs of window w are the ins of window `(w - 1) mod N`.
    #[inline]
    fn outs_bank(&self) -> usize {
        (self.cwp + NWINDOWS - 1) % NWINDOWS
    }

    /// Writes the three banks mirrored by `cur` back to backing store.
    /// Must be called before any operation that reads or rebinds the
    /// banks (window rotation, flat fault-space access).
    fn writeback_cur(&mut self) {
        let outs = self.outs_bank();
        self.ins[outs].copy_from_slice(&self.cur[8..16]);
        self.locals[self.cwp].copy_from_slice(&self.cur[16..24]);
        self.ins[self.cwp].copy_from_slice(&self.cur[24..32]);
    }

    /// Reloads `cur` from the banks the current `cwp` selects. The
    /// globals (`cur[0..8]`) live only in `cur` and are untouched.
    fn reload_cur(&mut self) {
        let outs = self.outs_bank();
        self.cur[8..16].copy_from_slice(&self.ins[outs]);
        self.cur[16..24].copy_from_slice(&self.locals[self.cwp]);
        self.cur[24..32].copy_from_slice(&self.ins[self.cwp]);
    }

    /// Rotates to a new window (`save`). Returns `false` on window
    /// overflow (more than `NWINDOWS - 2` nested saves), in which case
    /// the state is unchanged.
    #[must_use]
    pub fn window_save(&mut self) -> bool {
        if self.depth >= NWINDOWS - 2 {
            return false;
        }
        self.writeback_cur();
        self.depth += 1;
        self.cwp = (self.cwp + NWINDOWS - 1) % NWINDOWS;
        self.reload_cur();
        true
    }

    /// Rotates back to the previous window (`restore`). Returns `false`
    /// on window underflow.
    #[must_use]
    pub fn window_restore(&mut self) -> bool {
        if self.depth == 0 {
            return false;
        }
        self.writeback_cur();
        self.depth -= 1;
        self.cwp = (self.cwp + 1) % NWINDOWS;
        self.reload_cur();
        true
    }

    /// Current window nesting depth (0 at reset).
    pub fn window_depth(&self) -> usize {
        self.depth
    }

    /// Models a window-overflow trap handler: saves the oldest active
    /// frame's `locals`/`ins` banks to a spill stack and lowers the
    /// nesting depth so the faulting `save` can be retried. Returns
    /// `false` (state unchanged) if there is nothing to spill or the
    /// spill stack has hit [`MAX_SPILL_FRAMES`].
    #[must_use]
    pub fn window_spill(&mut self) -> bool {
        if self.depth == 0 || self.spilled.len() >= MAX_SPILL_FRAMES {
            return false;
        }
        let oldest = (self.cwp + self.depth) % NWINDOWS;
        // `depth` is always in 1..=NWINDOWS-2 here, so the oldest
        // window's banks are never the ones mirrored by `cur` (those
        // are `cwp` and `cwp - 1`); direct bank access is exact.
        debug_assert!(oldest != self.cwp && oldest != self.outs_bank());
        self.spilled.push(SpilledWindow {
            locals: self.locals[oldest],
            ins: self.ins[oldest],
        });
        self.depth -= 1;
        true
    }

    /// Models a window-underflow trap handler: refills the window the
    /// faulting `restore` is returning to from the spill stack and
    /// raises the nesting depth so the `restore` can be retried.
    /// Returns `true` if a spilled frame was restored; with an empty
    /// spill stack (corrupted control flow ran `restore` without a
    /// matching `save`) the banks keep their stale contents, which is
    /// what a real fill from a garbage stack pointer would amount to.
    pub fn window_fill(&mut self) -> bool {
        let target = (self.cwp + 1) % NWINDOWS;
        // `target` is neither `cwp` nor `cwp - 1`, so the banks being
        // refilled are not mirrored by `cur`; the retried `restore`
        // rotates into them and reloads `cur` from the filled banks.
        debug_assert!(target != self.cwp && target != self.outs_bank());
        let from_spill = if let Some(frame) = self.spilled.pop() {
            self.locals[target] = frame.locals;
            self.ins[target] = frame.ins;
            true
        } else {
            false
        };
        self.depth += 1;
        from_spill
    }

    /// Number of frames currently on the trap-handler spill stack.
    pub fn spilled_frames(&self) -> usize {
        self.spilled.len()
    }

    /// Reads a register by flat fault-space index (see
    /// [`INT_REG_SPACE`]): `0..7` are `%g1`–`%g7`, then each window
    /// contributes its 8 `ins` followed by its 8 `locals`.
    pub fn flat_get(&self, index: usize) -> u32 {
        assert!(index < INT_REG_SPACE, "flat register index out of range");
        match index {
            0..=6 => self.cur[index + 1],
            _ => {
                let w = (index - 7) / 16;
                let r = (index - 7) % 16;
                if r < 8 {
                    // Mirrored banks read through `cur`, which holds
                    // truth between window rotations.
                    if w == self.cwp {
                        self.cur[24 + r]
                    } else if w == self.outs_bank() {
                        self.cur[8 + r]
                    } else {
                        self.ins[w][r]
                    }
                } else if w == self.cwp {
                    self.cur[16 + (r - 8)]
                } else {
                    self.locals[w][r - 8]
                }
            }
        }
    }

    /// Writes a register by flat fault-space index (see [`flat_get`]).
    ///
    /// [`flat_get`]: Cpu::flat_get
    pub fn flat_set(&mut self, index: usize, value: u32) {
        assert!(index < INT_REG_SPACE, "flat register index out of range");
        match index {
            0..=6 => self.cur[index + 1] = value,
            _ => {
                let w = (index - 7) / 16;
                let r = (index - 7) % 16;
                if r < 8 {
                    // Mirrored banks write through `cur`; a bank write
                    // there would be clobbered by the next writeback.
                    if w == self.cwp {
                        self.cur[24 + r] = value;
                    } else if w == self.outs_bank() {
                        self.cur[8 + r] = value;
                    } else {
                        self.ins[w][r] = value;
                    }
                } else if w == self.cwp {
                    self.cur[16 + (r - 8)] = value;
                } else {
                    self.locals[w][r - 8] = value;
                }
            }
        }
    }

    /// Reads an FP register as raw bits.
    #[inline]
    pub fn fget(&self, r: FReg) -> u32 {
        self.f[r.num() as usize]
    }

    /// Writes an FP register as raw bits.
    #[inline]
    pub fn fset(&mut self, r: FReg, bits: u32) {
        self.f[r.num() as usize] = bits;
    }

    /// Reads an even/odd FP register pair as a double. The caller must
    /// have validated that `r` is even.
    #[inline]
    pub fn fget_d(&self, r: FReg) -> f64 {
        let n = r.num() as usize;
        let bits = ((self.f[n] as u64) << 32) | self.f[n + 1] as u64;
        f64::from_bits(bits)
    }

    /// Writes a double into an even/odd FP register pair.
    #[inline]
    pub fn fset_d(&mut self, r: FReg, value: f64) {
        let bits = value.to_bits();
        let n = r.num() as usize;
        self.f[n] = (bits >> 32) as u32;
        self.f[n + 1] = bits as u32;
    }

    /// Reads an FP register as a single.
    #[inline]
    pub fn fget_s(&self, r: FReg) -> f32 {
        f32::from_bits(self.fget(r))
    }

    /// Writes an FP register as a single.
    #[inline]
    pub fn fset_s(&mut self, r: FReg, value: f32) {
        self.fset(r, value.to_bits());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn g0_reads_zero_and_ignores_writes() {
        let mut cpu = Cpu::new();
        cpu.set(Reg::g(0), 0xdead);
        assert_eq!(cpu.get(Reg::g(0)), 0);
    }

    #[test]
    fn globals_are_window_independent() {
        let mut cpu = Cpu::new();
        cpu.set(Reg::g(3), 7);
        assert!(cpu.window_save());
        assert_eq!(cpu.get(Reg::g(3)), 7);
    }

    #[test]
    fn outs_become_ins_across_save() {
        let mut cpu = Cpu::new();
        cpu.set(Reg::o(0), 11);
        cpu.set(Reg::o(7), 99);
        assert!(cpu.window_save());
        assert_eq!(cpu.get(Reg::i(0)), 11);
        assert_eq!(cpu.get(Reg::i(7)), 99);
        // Locals are private to the new window.
        cpu.set(Reg::l(0), 5);
        assert!(cpu.window_restore());
        assert_eq!(cpu.get(Reg::l(0)), 0);
        assert_eq!(cpu.get(Reg::o(0)), 11);
    }

    #[test]
    fn window_overflow_detected() {
        let mut cpu = Cpu::new();
        for _ in 0..NWINDOWS - 2 {
            assert!(cpu.window_save());
        }
        assert!(!cpu.window_save());
        assert_eq!(cpu.window_depth(), NWINDOWS - 2);
    }

    #[test]
    fn window_underflow_detected() {
        let mut cpu = Cpu::new();
        assert!(!cpu.window_restore());
    }

    #[test]
    fn spill_then_fill_roundtrips_oldest_frame() {
        let mut cpu = Cpu::new();
        cpu.set(Reg::l(3), 0x1111);
        cpu.set(Reg::i(2), 0x2222);
        // Exhaust the windows, then spill to make room for one more.
        for d in 0..NWINDOWS - 2 {
            cpu.set(Reg::o(5), o_marker(d));
            assert!(cpu.window_save());
        }
        assert!(!cpu.window_save());
        assert!(cpu.window_spill());
        assert_eq!(cpu.spilled_frames(), 1);
        assert!(cpu.window_save());

        // Unwind all the way; the final restore underflows and needs a
        // fill, which must bring back the original frame's registers.
        for _ in 0..NWINDOWS - 2 {
            assert!(cpu.window_restore());
        }
        assert!(!cpu.window_restore());
        assert!(cpu.window_fill());
        assert!(cpu.window_restore());
        assert_eq!(cpu.get(Reg::l(3)), 0x1111);
        assert_eq!(cpu.get(Reg::i(2)), 0x2222);
        assert_eq!(cpu.spilled_frames(), 0);
    }

    fn o_marker(d: usize) -> u32 {
        0xa000 + d as u32
    }

    #[test]
    fn fill_without_spill_reports_stale() {
        let mut cpu = Cpu::new();
        assert!(!cpu.window_fill());
        // The fill raised depth so a retried restore succeeds.
        assert!(cpu.window_restore());
        assert_eq!(cpu.window_depth(), 0);
    }

    #[test]
    fn flat_index_roundtrip_covers_whole_space() {
        let mut cpu = Cpu::new();
        for i in 0..INT_REG_SPACE {
            cpu.flat_set(i, i as u32 + 1);
        }
        for i in 0..INT_REG_SPACE {
            assert_eq!(cpu.flat_get(i), i as u32 + 1, "index {i}");
        }
        // Flat index 0 is %g1, never %g0.
        assert_eq!(cpu.get(Reg::g(1)), 1);
        assert_eq!(cpu.get(Reg::g(0)), 0);
    }

    #[test]
    fn flat_index_aliases_current_window() {
        let mut cpu = Cpu::new();
        cpu.set(Reg::l(4), 77);
        // Window 0's locals sit after its ins in the flat layout.
        assert_eq!(cpu.flat_get(7 + 8 + 4), 77);
    }

    #[test]
    fn double_registers_are_big_endian_pairs() {
        let mut cpu = Cpu::new();
        cpu.fset_d(FReg::new(2), 1.5);
        let bits = 1.5f64.to_bits();
        assert_eq!(cpu.fget(FReg::new(2)), (bits >> 32) as u32);
        assert_eq!(cpu.fget(FReg::new(3)), bits as u32);
        assert_eq!(cpu.fget_d(FReg::new(2)), 1.5);
    }

    #[test]
    fn single_roundtrip() {
        let mut cpu = Cpu::new();
        cpu.fset_s(FReg::new(1), -3.25);
        assert_eq!(cpu.fget_s(FReg::new(1)), -3.25);
    }
}
