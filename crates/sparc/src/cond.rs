//! Integer and floating-point branch condition codes.

use std::fmt;

/// Integer condition codes (`Bicc`/`Ticc` `cond` field, SPARC V8 §B.21).
///
/// Evaluated against the `icc` flags N, Z, V, C in the PSR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ICond {
    /// Never.
    N = 0,
    /// Equal (Z).
    E = 1,
    /// Less or equal, signed (Z or (N xor V)).
    Le = 2,
    /// Less, signed (N xor V).
    L = 3,
    /// Less or equal, unsigned (C or Z).
    Leu = 4,
    /// Carry set / less, unsigned (C).
    Cs = 5,
    /// Negative (N).
    Neg = 6,
    /// Overflow set (V).
    Vs = 7,
    /// Always.
    A = 8,
    /// Not equal (not Z).
    Ne = 9,
    /// Greater, signed.
    G = 10,
    /// Greater or equal, signed.
    Ge = 11,
    /// Greater, unsigned.
    Gu = 12,
    /// Carry clear / greater or equal, unsigned.
    Cc = 13,
    /// Positive (not N).
    Pos = 14,
    /// Overflow clear (not V).
    Vc = 15,
}

impl ICond {
    /// Decodes the 4-bit `cond` field.
    #[inline(always)]
    pub fn from_bits(bits: u8) -> Self {
        use ICond::*;
        match bits & 0xf {
            0 => N,
            1 => E,
            2 => Le,
            3 => L,
            4 => Leu,
            5 => Cs,
            6 => Neg,
            7 => Vs,
            8 => A,
            9 => Ne,
            10 => G,
            11 => Ge,
            12 => Gu,
            13 => Cc,
            14 => Pos,
            _ => Vc,
        }
    }

    /// The 4-bit encoding of this condition.
    #[inline(always)]
    pub fn bits(self) -> u8 {
        self as u8
    }

    /// Evaluates the condition against the integer condition-code flags.
    #[inline(always)]
    pub fn eval(self, n: bool, z: bool, v: bool, c: bool) -> bool {
        use ICond::*;
        match self {
            N => false,
            E => z,
            Le => z || (n != v),
            L => n != v,
            Leu => c || z,
            Cs => c,
            Neg => n,
            Vs => v,
            A => true,
            Ne => !z,
            G => !(z || (n != v)),
            Ge => n == v,
            Gu => !(c || z),
            Cc => !c,
            Pos => !n,
            Vc => !v,
        }
    }

    /// The logically inverted condition (`b<cond>` taken iff the inverse
    /// is not). Useful for branch synthesis in the compiler.
    pub fn invert(self) -> Self {
        ICond::from_bits(self.bits() ^ 8)
    }
}

impl fmt::Display for ICond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use ICond::*;
        let s = match self {
            N => "n",
            E => "e",
            Le => "le",
            L => "l",
            Leu => "leu",
            Cs => "cs",
            Neg => "neg",
            Vs => "vs",
            A => "a",
            Ne => "ne",
            G => "g",
            Ge => "ge",
            Gu => "gu",
            Cc => "cc",
            Pos => "pos",
            Vc => "vc",
        };
        f.write_str(s)
    }
}

/// The floating-point compare relation stored in the FSR `fcc` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FccValue {
    /// Operands compared equal.
    Equal,
    /// First operand smaller.
    Less,
    /// First operand greater.
    Greater,
    /// Unordered (at least one NaN).
    Unordered,
}

/// Floating-point branch conditions (`FBfcc` `cond` field, SPARC V8 §B.22).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FCond {
    /// Never.
    N = 0,
    /// Not equal (L, G, or U).
    Ne = 1,
    /// Less or greater.
    Lg = 2,
    /// Unordered or less.
    Ul = 3,
    /// Less.
    L = 4,
    /// Unordered or greater.
    Ug = 5,
    /// Greater.
    G = 6,
    /// Unordered.
    U = 7,
    /// Always.
    A = 8,
    /// Equal.
    E = 9,
    /// Unordered or equal.
    Ue = 10,
    /// Greater or equal.
    Ge = 11,
    /// Unordered, greater, or equal.
    Uge = 12,
    /// Less or equal.
    Le = 13,
    /// Unordered, less, or equal.
    Ule = 14,
    /// Ordered.
    O = 15,
}

impl FCond {
    /// Decodes the 4-bit `cond` field.
    #[inline(always)]
    pub fn from_bits(bits: u8) -> Self {
        use FCond::*;
        match bits & 0xf {
            0 => N,
            1 => Ne,
            2 => Lg,
            3 => Ul,
            4 => L,
            5 => Ug,
            6 => G,
            7 => U,
            8 => A,
            9 => E,
            10 => Ue,
            11 => Ge,
            12 => Uge,
            13 => Le,
            14 => Ule,
            _ => O,
        }
    }

    /// The 4-bit encoding of this condition.
    #[inline(always)]
    pub fn bits(self) -> u8 {
        self as u8
    }

    /// Evaluates the condition against an `fcc` relation.
    #[inline(always)]
    pub fn eval(self, fcc: FccValue) -> bool {
        use FccValue::*;
        let (e, l, g, u) = match fcc {
            Equal => (true, false, false, false),
            Less => (false, true, false, false),
            Greater => (false, false, true, false),
            Unordered => (false, false, false, true),
        };
        use FCond::*;
        match self {
            N => false,
            Ne => l || g || u,
            Lg => l || g,
            Ul => u || l,
            L => l,
            Ug => u || g,
            G => g,
            U => u,
            A => true,
            E => e,
            Ue => u || e,
            Ge => g || e,
            Uge => u || g || e,
            Le => l || e,
            Ule => u || l || e,
            O => e || l || g,
        }
    }
}

impl fmt::Display for FCond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use FCond::*;
        let s = match self {
            N => "n",
            Ne => "ne",
            Lg => "lg",
            Ul => "ul",
            L => "l",
            Ug => "ug",
            G => "g",
            U => "u",
            A => "a",
            E => "e",
            Ue => "ue",
            Ge => "ge",
            Uge => "uge",
            Le => "le",
            Ule => "ule",
            O => "o",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn icond_roundtrip_bits() {
        for b in 0..16u8 {
            assert_eq!(ICond::from_bits(b).bits(), b);
            assert_eq!(FCond::from_bits(b).bits(), b);
        }
    }

    #[test]
    fn icond_invert_is_logical_negation() {
        // For every flag combination, cond and cond.invert() disagree.
        for b in 0..16u8 {
            let c = ICond::from_bits(b);
            let ci = c.invert();
            for flags in 0..16u8 {
                let (n, z, v, cy) = (
                    flags & 8 != 0,
                    flags & 4 != 0,
                    flags & 2 != 0,
                    flags & 1 != 0,
                );
                assert_ne!(c.eval(n, z, v, cy), ci.eval(n, z, v, cy), "cond {c}");
            }
        }
    }

    #[test]
    fn signed_comparison_semantics() {
        // After `subcc 3, 5`: result -2 -> N=1, Z=0, V=0, C=1 (borrow).
        assert!(ICond::L.eval(true, false, false, true));
        assert!(!ICond::Ge.eval(true, false, false, true));
        assert!(ICond::Leu.eval(true, false, false, true));
        // After `subcc 5, 5`: Z=1.
        assert!(ICond::E.eval(false, true, false, false));
        assert!(ICond::Le.eval(false, true, false, false));
        assert!(!ICond::Gu.eval(false, true, false, false));
    }

    #[test]
    fn fcond_covers_partition() {
        // For each relation exactly one of {E,L,G,U} branches taken,
        // and A/N are constant.
        for fcc in [
            FccValue::Equal,
            FccValue::Less,
            FccValue::Greater,
            FccValue::Unordered,
        ] {
            assert!(FCond::A.eval(fcc));
            assert!(!FCond::N.eval(fcc));
            let hits = [FCond::E, FCond::L, FCond::G, FCond::U]
                .iter()
                .filter(|c| c.eval(fcc))
                .count();
            assert_eq!(hits, 1);
        }
        assert!(FCond::Ne.eval(FccValue::Unordered));
        assert!(!FCond::Lg.eval(FccValue::Unordered));
        assert!(FCond::O.eval(FccValue::Equal));
        assert!(!FCond::O.eval(FccValue::Unordered));
    }
}
