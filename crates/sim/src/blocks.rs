//! Basic-block segmentation of the predecoded instruction stream, and
//! the per-block category summaries behind block-batched NFP
//! accounting.
//!
//! The paper's counters are per-instruction, but their *values* only
//! depend on which instructions retired — so over a straight-line run
//! the simulator can add one precomputed vector instead of bumping a
//! counter per instruction (the same observation OVP's morpher and
//! EnergyAnalyzer's block-level accounting exploit). Segmentation
//! follows the classic leader rules adapted to SPARC: a block ends at
//! a control-transfer instruction (whose delay slot still belongs to
//! it) or at `t<cond>`, and a new block starts at every CTI target and
//! fall-through. Execution does not need the leader set explicitly:
//! the run loop enters a block at whatever index `pc` names and runs
//! to the next block-ending instruction, which this cache answers in
//! O(1) for *any* entry index via [`BlockCache::run_end`], with range
//! counter sums answered from a prefix-sum table.
//!
//! The cache is a pure function of the predecoded image, so
//! [`Machine::patch_code_word`](crate::Machine::patch_code_word) (and
//! with it every fault-injection code flip and undo) invalidates it;
//! the next batched run rebuilds it.

use nfp_sparc::{Category, CategoryCounts, Instr};

/// Per-image acceleration structure for block-batched execution.
#[derive(Debug, Clone)]
pub struct BlockCache {
    /// `ender[i]` = index of the first block-ending instruction at or
    /// after `i` (`code.len()` if none remains): the exclusive end of
    /// the straight-line run starting at `i`.
    ender: Vec<u32>,
    /// `prefix[i]` = category counts of `code[0..i]`, so the counts of
    /// a straight-line range `[i, j)` are `prefix[j] - prefix[i]`.
    prefix: Vec<CategoryCounts>,
}

impl BlockCache {
    /// Builds the cache for a predecoded image.
    pub fn build(code: &[(Instr, Category)]) -> Self {
        let n = code.len();
        let mut ender = vec![0u32; n];
        let mut next = n as u32;
        for i in (0..n).rev() {
            if code[i].0.ends_block() {
                next = i as u32;
            }
            ender[i] = next;
        }
        let mut prefix = Vec::with_capacity(n + 1);
        let mut acc = CategoryCounts::new();
        prefix.push(acc);
        for &(_, cat) in code {
            acc.bump(cat);
            prefix.push(acc);
        }
        BlockCache { ender, prefix }
    }

    /// Number of instructions the cache covers.
    pub fn len(&self) -> usize {
        self.ender.len()
    }

    /// True for an empty image.
    pub fn is_empty(&self) -> bool {
        self.ender.is_empty()
    }

    /// Exclusive end of the straight-line (linear-only) run starting at
    /// instruction index `i`: every instruction in `[i, run_end(i))` is
    /// executable by `exec_linear`, and `run_end(i)` itself is either a
    /// block-ending instruction or the end of the image.
    #[inline]
    pub fn run_end(&self, i: usize) -> usize {
        self.ender[i] as usize
    }

    /// Batched category counts of the straight-line range `[i, j)`
    /// (requires `i <= j <= len()`). Prefix sums are monotone, so the
    /// saturating `diff` is exact here.
    #[inline]
    pub fn range_counts(&self, i: usize, j: usize) -> CategoryCounts {
        self.prefix[j].diff(&self.prefix[i])
    }
}

/// Block-leader indices of a predecoded image at `base`, per the
/// classic rules adapted to SPARC delay slots: the entry point, every
/// statically known CTI target inside the image, and every block-ender
/// fall-through — two slots past a CTI (skipping its delay slot), but
/// only *one* past `t<cond>`, which has no delay slot (an untaken soft
/// trap continues at the very next word). The block-batched run loop
/// handles arbitrary entry points via [`BlockCache::run_end`], but
/// superblock trace formation seeds its trace heads from this set, so
/// a missed leader means a never-traced block.
pub fn leaders(code: &[(Instr, Category)], base: u32) -> Vec<usize> {
    let mut lead = vec![false; code.len()];
    if !code.is_empty() {
        lead[0] = true;
    }
    for (i, &(instr, _)) in code.iter().enumerate() {
        let Some(fall) = instr.fall_through_words() else {
            continue;
        };
        let pc = base.wrapping_add((i as u32) * 4);
        if let Some(target) = instr.static_target(pc) {
            let t = target.wrapping_sub(base) as usize / 4;
            if target.is_multiple_of(4) && target >= base && t < code.len() {
                lead[t] = true;
            }
        }
        if i + fall < code.len() {
            lead[i + fall] = true;
        }
    }
    lead.iter()
        .enumerate()
        .filter_map(|(i, &l)| l.then_some(i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfp_sparc::asm::Assembler;
    use nfp_sparc::cond::ICond;
    use nfp_sparc::{AluOp, Reg};

    fn predecode(words: &[u32]) -> Vec<(Instr, Category)> {
        words
            .iter()
            .map(|&w| {
                let i = nfp_sparc::decode(w);
                (i, i.category())
            })
            .collect()
    }

    fn loop_program() -> Vec<u32> {
        let mut a = Assembler::new(0x4000_0000);
        a.mov(10, Reg::l(0)); // 0
        a.label("loop");
        a.alu(AluOp::SubCc, Reg::l(0), 1, Reg::l(0)); // 1
        a.b(ICond::Ne, "loop"); // 2  (CTI)
        a.nop(); // 3  (delay slot)
        a.mov(0, Reg::o(0)); // 4
        a.ta(0); // 5  (soft trap)
        a.nop(); // 6
        a.finish().unwrap()
    }

    #[test]
    fn run_end_stops_at_ctis_and_soft_traps() {
        let code = predecode(&loop_program());
        let cache = BlockCache::build(&code);
        assert_eq!(cache.len(), 7);
        // Straight-line run from the top ends at the branch (index 2).
        assert_eq!(cache.run_end(0), 2);
        assert_eq!(cache.run_end(1), 2);
        // At the branch itself the run is empty.
        assert_eq!(cache.run_end(2), 2);
        // The delay slot starts a fresh run that ends at `ta`.
        assert_eq!(cache.run_end(3), 5);
        assert_eq!(cache.run_end(5), 5);
        // Trailing code runs to the end of the image.
        assert_eq!(cache.run_end(6), 7);
    }

    #[test]
    fn range_counts_match_per_instruction_bumps() {
        let code = predecode(&loop_program());
        let cache = BlockCache::build(&code);
        for i in 0..=code.len() {
            for j in i..=code.len() {
                let mut want = CategoryCounts::new();
                for &(_, cat) in &code[i..j] {
                    want.bump(cat);
                }
                assert_eq!(cache.range_counts(i, j), want, "range [{i}, {j})");
            }
        }
    }

    #[test]
    fn leaders_cover_targets_and_fall_throughs() {
        let code = predecode(&loop_program());
        let lead = leaders(&code, 0x4000_0000);
        // Entry, the backward-branch target (index 1), the branch
        // fall-through (index 4), and the soft-trap fall-through
        // (index 6): `ta` has no delay slot, so the instruction
        // immediately after it heads the next block.
        assert_eq!(lead, vec![0, 1, 4, 6]);
    }

    #[test]
    fn ticc_fall_through_is_next_word_not_a_delay_slot() {
        // Regression: `t<cond>` was treated like a delay-slot CTI, so
        // the word at i+1 was never a leader and i+2 wrongly was.
        let mut a = Assembler::new(0x4000_0000);
        a.mov(1, Reg::o(0)); // 0
        a.push(Instr::Ticc {
            cond: ICond::E,
            rs1: nfp_sparc::regs::G0,
            op2: nfp_sparc::Operand::Imm(5),
        }); // 1  (conditional soft trap, untaken falls to 2)
        a.mov(2, Reg::o(1)); // 2  <- true fall-through
        a.mov(3, Reg::o(2)); // 3  <- NOT a leader (mid-block)
        a.ta(0); // 4
        a.nop(); // 5  <- soft-trap fall-through
        let code = predecode(&a.finish().unwrap());
        let lead = leaders(&code, 0x4000_0000);
        assert!(lead.contains(&2), "word after t<cond> must lead a block");
        assert!(
            !lead.contains(&3),
            "t<cond> has no delay slot; i+2 is mid-block"
        );
        assert!(lead.contains(&5));
    }

    #[test]
    fn empty_image() {
        let cache = BlockCache::build(&[]);
        assert!(cache.is_empty());
        assert_eq!(cache.range_counts(0, 0), CategoryCounts::new());
        assert!(leaders(&[], 0).is_empty());
    }
}
