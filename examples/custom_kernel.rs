//! Bring your own kernel: compile a user-written mini-C program, look
//! at its instruction-category profile, and get NFP estimates for both
//! hardware configurations — all before any "hardware" runs.
//!
//! Run with: `cargo run --release --example custom_kernel`

use nfp_repro::cc::{compile, CompileOptions, FloatMode};
use nfp_repro::core::{calibrate, ClassCounter, Paper};
use nfp_repro::sim::{Machine, MachineConfig};
use nfp_repro::sparc::Category;
use nfp_repro::testbed::Testbed;

/// An 8x8 matrix multiply in fixed point and a dot product in double —
/// a kernel with a tunable integer/float mix.
const KERNEL: &str = r#"
int a[64];
int b[64];
int c[64];

int main() {
    for (int i = 0; i < 64; i = i + 1) {
        a[i] = (i * 7 + 3) % 31;
        b[i] = (i * 13 + 1) % 29;
    }
    for (int rep = 0; rep < 40; rep = rep + 1) {
        for (int i = 0; i < 8; i = i + 1) {
            for (int j = 0; j < 8; j = j + 1) {
                int acc = 0;
                for (int k = 0; k < 8; k = k + 1) {
                    acc = acc + a[i * 8 + k] * b[k * 8 + j];
                }
                c[i * 8 + j] = acc;
            }
        }
    }
    double dot = 0.0;
    for (int i = 0; i < 64; i = i + 1) {
        dot = dot + (double)c[i] * (double)a[i];
    }
    emit((uint)(int)(dot / 1000.0));
    return 0;
}
"#;

fn main() {
    let testbed = Testbed::new();
    let calibration = calibrate(&testbed, &Paper, 11).expect("calibration");

    println!("per-configuration NFP estimates for the custom kernel:\n");
    for (label, mode) in [
        ("with FPU (float)", FloatMode::Hard),
        ("no FPU (fixed)", FloatMode::Soft),
    ] {
        let program = compile(KERNEL, &CompileOptions::new(mode)).expect("compile");
        let mut machine = Machine::new(MachineConfig {
            fpu_enabled: mode == FloatMode::Hard,
            ..MachineConfig::default()
        });
        machine
            .load_image(program.base, &program.words)
            .expect("image fits in RAM");
        let mut counter = ClassCounter::new(Paper);
        let run = machine
            .run_observed(10_000_000_000, &mut counter)
            .expect("simulate");
        let est = calibration.model.estimate(counter.counts());

        println!("== {label} ==");
        println!("  functional result: {}", run.words[0]);
        println!("  instruction profile ({} total):", run.instret);
        for (cat, &n) in Category::ALL.iter().zip(counter.counts()) {
            if n > 0 {
                println!(
                    "    {:<20} {:>9}  ({:5.1}%)",
                    cat.name(),
                    n,
                    n as f64 / run.instret as f64 * 100.0
                );
            }
        }
        println!(
            "  estimated: {:.3} ms, {:.3} mJ",
            est.time_s * 1e3,
            est.energy_j * 1e3
        );
        // Cross-check against a virtual measurement.
        let mut machine = Machine::new(MachineConfig {
            fpu_enabled: mode == FloatMode::Hard,
            ..MachineConfig::default()
        });
        machine
            .load_image(program.base, &program.words)
            .expect("image fits in RAM");
        let measured = testbed
            .run(&mut machine, 3, 10_000_000_000)
            .expect("measure");
        println!(
            "  measured:  {:.3} ms, {:.3} mJ  (time error {:+.2}%)\n",
            measured.measurement.time_s * 1e3,
            measured.measurement.energy_j * 1e3,
            (est.time_s - measured.measurement.time_s) / measured.measurement.time_s * 100.0
        );
    }
}
