//! `repro`: regenerates every table and figure of the paper.
//!
//! ```text
//! repro table1                 # Table I  — calibrated specific costs
//! repro fig4                   # Fig. 4   — measured vs estimated, showcase kernels
//! repro table3                 # Table III — estimation-error summary (M = 120)
//! repro table4                 # Table IV — the FPU trade-off
//! repro fig1                   # Fig. 1   — simulation speed vs accuracy
//! repro ablation-categories    # E6 — model granularity
//! repro ablation-calibration   # E7 — calibration sensitivity
//! repro campaign               # SEU fault-injection vulnerability report
//! repro all                    # everything above (campaign excluded: opt-in)
//! repro all --quick            # reduced workload sizes (fast smoke run)
//! ```
//!
//! Campaign flags (crash safety and isolation — see DESIGN.md §10–§11):
//!
//! ```text
//! repro campaign --journal j.jsonl     # write-ahead journal every injection
//! repro campaign --resume j.jsonl      # skip completed injections, continue
//! repro campaign --injections 400      # override the plan size
//! repro campaign --kernel fse          # only showcase kernels matching 'fse'
//! repro campaign --dispatch step       # step|block|threaded|traced execution
//! repro campaign --isolation process   # worker subprocesses (SIGKILL watchdogs)
//! repro campaign --heartbeat-ms 200    # worker idle-heartbeat interval
//! repro campaign --deadline-ms 60000   # per-injection wall deadline (process mode)
//! repro campaign --max-respawns 3      # crash-loop budget per worker slot
//! ```
//!
//! Sharding flags (fault-tolerant split campaigns — DESIGN.md §12):
//!
//! ```text
//! repro campaign --journal c.jsonl --shards 4       # orchestrate 4 shard sub-campaigns, merge
//! repro campaign --journal c.jsonl --shards 4 \
//!                --shard-index 2                    # run ONLY shard 2 (for external schedulers)
//! repro campaign ... --shard-retries 3              # re-dispatch budget per lost/corrupt shard
//! repro campaign ... --straggler-ms 5000            # speculatively duplicate slow shards
//! repro campaign ... --allow-partial                # degrade to a partial report on shard loss
//! repro merge-journals [--allow-partial] <j...>     # merge shard journals into one report
//! ```
//!
//! Remote dispatch (networked shard campaigns — DESIGN.md §14):
//!
//! ```text
//! repro serve --listen 127.0.0.1:7447 --quick      # coordinator: accept workers + submissions
//! repro serve ... --campaigns 1                    # shut down after N campaigns (CI)
//! repro serve ... --max-inflight 2 --max-queue 2   # admission control limits
//! repro serve ... --peer-grace-ms 2000             # local-pool fallback deadline
//! repro serve ... --lease-ms 120000                # hard per-lease deadline
//! repro serve ... --straggler-ms 5000              # speculative duplicate leases
//! repro worker --connect 127.0.0.1:7447            # remote worker (reconnects with backoff)
//! repro worker --connect ... --max-retries 8       # consecutive-failure budget
//! repro submit --connect 127.0.0.1:7447 \
//!              --kernel fse --injections 400       # submit a campaign, print the report
//! repro submit ... --shards 0                      # 0 = one shard per live worker
//! repro submit ... --allow-partial                 # partial report instead of shard-loss error
//! ```
//!
//! Crash-safe coordinator (service journal + idempotent submits — DESIGN.md §15):
//!
//! ```text
//! repro serve ... --journal s.jsonl                # write-ahead service journal
//! repro serve ... --journal s.jsonl --resume       # rebuild hub state after a crash
//! repro serve ... --drain /tmp/drain.flag          # graceful shutdown sentinel
//! repro serve ... --cache-cap-bytes 67108864       # LRU result-cache byte budget
//! repro submit ... --retry 100                     # reconnect through coordinator restarts
//! ```
//!
//! Byzantine worker auditing (quorum re-execution — DESIGN.md §16):
//!
//! ```text
//! repro serve ... --audit-rate 0.05                # fraction of ranges re-run on a disjoint
//!                                                  # worker and compared (default 0.05; 0 off)
//! repro worker --connect ... --lie-rate 1.0 \
//!              --lie-seed 9                        # test-only saboteur: falsify outcomes
//! ```
//!
//! There is also a hidden `repro worker` subcommand: the supervisor
//! spawns it for `--isolation process` and drives it over stdin/stdout.
//! With `--connect` it instead dials a `repro serve` coordinator over
//! TCP. It is not for interactive use.
//!
//! Every failure exits nonzero with a message naming the stage that
//! failed; a panic in this binary is a bug.

use nfp_bench::{
    merge_journals, peek_campaign, report_ablation_calibration, report_ablation_categories,
    report_campaign, report_campaign_footer, report_fig1, report_fig4, report_table1,
    report_table3, report_table4, run_sharded, run_supervised, shard_journal_path,
    submit_campaign_retry, CampaignConfig, CampaignFooter, CampaignRequest, Evaluation,
    KernelResult, Mode, ServeConfig, Server, ShardConfig, ShardSpec, SupervisorConfig,
    WorkerIsolation, WorkerPreset,
};
use nfp_sim::Dispatch;
use nfp_workloads::{all_kernels, fse_kernels, hevc_kernels, Kernel, Preset};
use std::path::PathBuf;
use std::time::Duration;

/// Reports a failed stage and exits nonzero. The stage name is the
/// user's breadcrumb: it says *which* part of the reproduction died
/// without needing a backtrace.
fn fail(stage: &str, detail: impl std::fmt::Display) -> ! {
    eprintln!("repro: {stage} failed: {detail}");
    std::process::exit(1);
}

/// The value following a `--flag`, if present.
fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn preset_from_args(args: &[String]) -> Preset {
    if args.iter().any(|a| a == "--quick") {
        Preset::quick()
    } else {
        Preset::paper()
    }
}

fn showcase_kernels(preset: &Preset) -> Vec<Kernel> {
    // Fig. 4's four representative cases: one FSE kernel and one HEVC
    // kernel, each in float and fixed variants.
    let fse = fse_kernels(preset)
        .unwrap_or_else(|e| fail("kernel registry", e))
        .into_iter()
        .next()
        .unwrap_or_else(|| fail("kernel selection", "preset contains no FSE kernels"));
    let hevc = hevc_kernels(preset)
        .unwrap_or_else(|e| fail("kernel registry", e))
        .into_iter()
        .find(|k| k.name.contains("movobj_lowdelay_qp32"))
        .unwrap_or_else(|| {
            fail(
                "kernel selection",
                "preset lacks the representative hevc kernel movobj_lowdelay_qp32",
            )
        });
    vec![fse, hevc]
}

fn run_results(eval: &Evaluation, kernels: &[Kernel]) -> Vec<KernelResult> {
    eprintln!(
        "  running {} kernels x 2 variants across {} threads...",
        kernels.len(),
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    eval.run_all_parallel(kernels)
        .unwrap_or_else(|e| fail("kernel sweep", e))
}

/// The `campaign` subcommand: a supervised (journaled, panic-isolated)
/// SEU campaign over the showcase kernels. Opt-in only — it replays
/// millions of instructions per injection.
fn run_campaign_command(args: &[String], preset: &Preset) {
    let mut campaign = CampaignConfig::default();
    if let Some(n) = flag_value(args, "--injections") {
        campaign.injections = n.parse().unwrap_or_else(|_| {
            fail(
                "argument parsing",
                format!("--injections wants a count, got '{n}'"),
            )
        });
    }
    if let Some(d) = flag_value(args, "--dispatch") {
        campaign.dispatch = Dispatch::parse(d).unwrap_or_else(|| {
            fail(
                "argument parsing",
                format!("--dispatch wants step|block|threaded|traced, got '{d}'"),
            )
        });
    }
    let mut sup = SupervisorConfig::new(campaign);
    sup.preset = if args.iter().any(|a| a == "--quick") {
        WorkerPreset::Quick
    } else {
        WorkerPreset::Paper
    };
    if let Some(mode) = flag_value(args, "--isolation") {
        sup.isolation = match mode {
            "thread" => WorkerIsolation::Thread,
            "process" => WorkerIsolation::Process,
            other => fail(
                "argument parsing",
                format!("--isolation wants 'thread' or 'process', got '{other}'"),
            ),
        };
    }
    let ms_flag = |name: &str| {
        flag_value(args, name).map(|v| {
            v.parse::<u64>().unwrap_or_else(|_| {
                fail(
                    "argument parsing",
                    format!("{name} wants milliseconds, got '{v}'"),
                )
            })
        })
    };
    if let Some(ms) = ms_flag("--heartbeat-ms") {
        sup.heartbeat = Duration::from_millis(ms.max(1));
    }
    sup.deadline = ms_flag("--deadline-ms").map(Duration::from_millis);
    if sup.deadline.is_none() && sup.isolation == WorkerIsolation::Process {
        // Process isolation without any deadline cannot put down a
        // worker wedged mid-replay; default to a generous bound.
        sup.deadline = Some(Duration::from_secs(300));
    }
    if let Some(n) = flag_value(args, "--max-respawns") {
        sup.max_respawns = n.parse().unwrap_or_else(|_| {
            fail(
                "argument parsing",
                format!("--max-respawns wants a count, got '{n}'"),
            )
        });
    }
    sup.journal = flag_value(args, "--journal").map(PathBuf::from);
    if let Some(path) = flag_value(args, "--resume") {
        if sup.journal.is_some() {
            fail(
                "argument parsing",
                "--journal and --resume are mutually exclusive \
                 (--resume appends to the journal it resumes from)",
            );
        }
        sup.journal = Some(PathBuf::from(path));
        sup.resume = true;
    }

    let count_flag = |name: &str| {
        flag_value(args, name).map(|v| {
            v.parse::<u32>().unwrap_or_else(|_| {
                fail(
                    "argument parsing",
                    format!("{name} wants a count, got '{v}'"),
                )
            })
        })
    };
    let shards = count_flag("--shards");
    let shard_index = count_flag("--shard-index");
    let allow_partial = args.iter().any(|a| a == "--allow-partial");
    match (shards, shard_index) {
        (Some(0), _) => fail("argument parsing", "--shards wants a nonzero count"),
        (None, Some(_)) => fail("argument parsing", "--shard-index requires --shards"),
        (Some(count), Some(index)) if index >= count => fail(
            "argument parsing",
            format!("--shard-index {index} is out of range for --shards {count}"),
        ),
        _ => {}
    }
    if shards.is_some() && sup.journal.is_none() {
        fail(
            "argument parsing",
            "--shards requires --journal (every shard journal derives from it)",
        );
    }

    let mut kernels = showcase_kernels(preset);
    if let Some(filter) = flag_value(args, "--kernel") {
        kernels.retain(|k| k.name.contains(filter));
        if kernels.is_empty() {
            fail(
                "kernel selection",
                format!("no showcase kernel matches '{filter}'"),
            );
        }
    }

    // A journal binds to exactly one kernel+mode, so a multi-kernel
    // sweep derives one journal per kernel from the given path.
    let base_journal = sup.journal.clone();
    for kernel in &kernels {
        // A journal binds to exactly one kernel+mode, so a multi-kernel
        // sweep derives one journal per kernel from the given path.
        let journal = base_journal.as_ref().map(|p| {
            if kernels.len() == 1 {
                p.clone()
            } else {
                p.with_extension(format!("{}.jsonl", kernel.name))
            }
        });
        eprintln!(
            "  injecting {} faults into {}...",
            sup.campaign.injections, kernel.name
        );

        // `--shards N` without `--shard-index`: the in-process
        // orchestrator runs every shard and merges the journals.
        if let (Some(count), None) = (shards, shard_index) {
            let mut cfg = ShardConfig::new(sup.clone(), count);
            cfg.supervisor.journal = journal;
            if let Some(k) = count_flag("--shard-retries") {
                cfg.shard_retries = k;
            }
            if let Some(ms) = ms_flag("--straggler-ms") {
                cfg.straggler = Some(Duration::from_millis(ms.max(1)));
            }
            cfg.allow_partial = allow_partial;
            let outcome = run_sharded(kernel, Mode::Float, &cfg)
                .unwrap_or_else(|e| fail(&format!("sharded campaign ({})", kernel.name), e));
            eprint!(
                "{}",
                report_campaign_footer(&CampaignFooter::from_sharded(&outcome))
            );
            println!("{}", report_campaign(&outcome.result));
            continue;
        }

        sup.journal = journal;
        if let (Some(count), Some(index)) = (shards, shard_index) {
            // `--shard-index I`: run exactly one shard — the mode an
            // external scheduler (or the CI chaos job) uses to place
            // shards in separate processes. Re-running the same index
            // resumes its journal automatically.
            sup.shard = Some(ShardSpec { index, count });
            sup.journal = sup
                .journal
                .as_deref()
                .map(|p| shard_journal_path(p, index, count));
            sup.resume = sup.journal.as_ref().is_some_and(|p| p.exists());
        }
        let outcome = run_supervised(kernel, Mode::Float, &sup)
            .unwrap_or_else(|e| fail(&format!("campaign ({})", kernel.name), e));
        if outcome.resumed > 0 {
            eprintln!(
                "  resumed {} completed injections from the journal, replayed {}",
                outcome.resumed,
                outcome.completed - outcome.resumed
            );
        }
        eprint!(
            "{}",
            report_campaign_footer(&CampaignFooter::from_supervisor(&outcome))
        );
        for q in &outcome.quarantined {
            eprintln!(
                "  quarantined injection {} ({}) — {}: {}",
                q.index, q.fault, q.cause, q.detail
            );
        }
        println!("{}", report_campaign(&outcome.result));
    }
}

/// The `merge-journals` subcommand: fold a set of shard journals
/// (written by `--shard-index` runs or left behind by an interrupted
/// `--shards` orchestration) into the single report a sequential run
/// would have produced. The campaign configuration is recovered from
/// the first journal's header; the preset (`--quick` or not) must
/// match the one the shards ran with, or the golden-run binding check
/// rejects the merge.
fn run_merge_command(args: &[String], preset: &Preset) {
    let allow_partial = args.iter().any(|a| a == "--allow-partial");
    let paths: Vec<PathBuf> = args[1..]
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(PathBuf::from)
        .collect();
    if paths.is_empty() {
        fail(
            "argument parsing",
            "merge-journals wants at least one shard journal path",
        );
    }
    let (name, mode, campaign) =
        peek_campaign(&paths[0]).unwrap_or_else(|e| fail("journal inspection", e));
    let kernels = all_kernels(preset).unwrap_or_else(|e| fail("kernel registry", e));
    let kernel = kernels.iter().find(|k| k.name == name).unwrap_or_else(|| {
        fail(
            "kernel selection",
            format!("the journal names kernel '{name}', which this preset does not provide"),
        )
    });
    let outcome = merge_journals(kernel, mode, &campaign, &paths, allow_partial)
        .unwrap_or_else(|e| fail("journal merge", e));
    eprint!(
        "{}",
        report_campaign_footer(&CampaignFooter::from_merge(&outcome))
    );
    println!("{}", report_campaign(&outcome.result));
}

/// The `serve` subcommand: a remote dispatch coordinator. Workers dial
/// in with `repro worker --connect`, clients with `repro submit`.
fn run_serve_command(args: &[String]) {
    let ms_flag = |name: &str| {
        flag_value(args, name).map(|v| {
            v.parse::<u64>().unwrap_or_else(|_| {
                fail(
                    "argument parsing",
                    format!("{name} wants milliseconds, got '{v}'"),
                )
            })
        })
    };
    let count_flag = |name: &str| {
        flag_value(args, name).map(|v| {
            v.parse::<usize>().unwrap_or_else(|_| {
                fail(
                    "argument parsing",
                    format!("{name} wants a count, got '{v}'"),
                )
            })
        })
    };
    let mut cfg = ServeConfig::default();
    if let Some(addr) = flag_value(args, "--listen") {
        cfg.listen = addr.to_string();
    }
    cfg.preset = if args.iter().any(|a| a == "--quick") {
        WorkerPreset::Quick
    } else {
        WorkerPreset::Paper
    };
    if let Some(n) = count_flag("--max-inflight") {
        cfg.max_inflight = n;
    }
    if let Some(n) = count_flag("--max-queue") {
        cfg.max_queued_per_client = n;
    }
    if let Some(ms) = ms_flag("--peer-grace-ms") {
        cfg.peer_grace = Duration::from_millis(ms);
    }
    if let Some(ms) = ms_flag("--lease-ms") {
        cfg.lease_timeout = Duration::from_millis(ms.max(1));
    }
    if let Some(ms) = ms_flag("--heartbeat-ms") {
        cfg.heartbeat = Duration::from_millis(ms.max(1));
    }
    cfg.straggler = ms_flag("--straggler-ms").map(|ms| Duration::from_millis(ms.max(1)));
    if let Some(n) = flag_value(args, "--shard-retries") {
        cfg.shard_retries = n.parse().unwrap_or_else(|_| {
            fail(
                "argument parsing",
                format!("--shard-retries wants a count, got '{n}'"),
            )
        });
    }
    cfg.campaigns = count_flag("--campaigns");
    cfg.journal = flag_value(args, "--journal").map(PathBuf::from);
    cfg.resume = args.iter().any(|a| a == "--resume");
    if cfg.resume && cfg.journal.is_none() {
        fail(
            "argument parsing",
            "--resume wants --journal PATH (the service journal to resume from)",
        );
    }
    cfg.drain = flag_value(args, "--drain").map(PathBuf::from);
    if let Some(n) = count_flag("--cache-cap-bytes") {
        cfg.cache_cap_bytes = n;
    }
    if let Some(mode) = flag_value(args, "--isolation") {
        cfg.isolation = match mode {
            "thread" => WorkerIsolation::Thread,
            "process" => WorkerIsolation::Process,
            other => fail(
                "argument parsing",
                format!("--isolation wants 'thread' or 'process', got '{other}'"),
            ),
        };
    }
    if let Some(v) = flag_value(args, "--audit-rate") {
        let rate = v.parse::<f64>().unwrap_or(-1.0);
        if !(0.0..=1.0).contains(&rate) {
            fail(
                "argument parsing",
                format!("--audit-rate wants a fraction in 0..=1, got '{v}'"),
            );
        }
        cfg.audit_rate = rate;
    }
    let server = Server::bind(cfg).unwrap_or_else(|e| fail("serve bind", e));
    let addr = server
        .local_addr()
        .unwrap_or_else(|e| fail("serve bind", e));
    eprintln!("serve: listening on {addr}");
    let summary = server.run().unwrap_or_else(|e| fail("serve", e));
    eprintln!(
        "serve: done — {} campaigns, {} peers seen, {} reconnects, {} frames rejected, \
         {} peers retired, {} workers convicted",
        summary.campaigns,
        summary.peers_seen,
        summary.reconnects,
        summary.frames_rejected,
        summary.peers_retired,
        summary.workers_convicted
    );
    eprintln!(
        "serve: cache — {} hits, {} misses, {} evictions; {} submits deduplicated, \
         {} sessions resumed, {} coordinator restarts",
        summary.cache_hits,
        summary.cache_misses,
        summary.cache_evictions,
        summary.submits_deduped,
        summary.sessions_resumed,
        summary.restarts
    );
}

/// The `submit` subcommand: sends a campaign to a coordinator and
/// prints the returned report on stdout (notes go to stderr), so
/// `repro submit ... > report.txt` is byte-comparable with a local
/// `repro campaign` run.
fn run_submit_command(args: &[String]) {
    let Some(addr) = flag_value(args, "--connect") else {
        fail("argument parsing", "submit wants --connect HOST:PORT");
    };
    let mut campaign = CampaignConfig::default();
    if let Some(n) = flag_value(args, "--injections") {
        campaign.injections = n.parse().unwrap_or_else(|_| {
            fail(
                "argument parsing",
                format!("--injections wants a count, got '{n}'"),
            )
        });
    }
    if let Some(n) = flag_value(args, "--seed") {
        campaign.seed = n
            .parse()
            .unwrap_or_else(|_| fail("argument parsing", format!("--seed wants a u64, got '{n}'")));
    }
    if let Some(d) = flag_value(args, "--dispatch") {
        campaign.dispatch = Dispatch::parse(d).unwrap_or_else(|| {
            fail(
                "argument parsing",
                format!("--dispatch wants step|block|threaded|traced, got '{d}'"),
            )
        });
    }
    // The submitted kernel must resolve inside the *coordinator's*
    // preset; `--quick` here only picks which showcase registry the
    // name is resolved against for the error message locality.
    let preset = preset_from_args(args);
    let kernels = showcase_kernels(&preset);
    let filter = flag_value(args, "--kernel").unwrap_or("");
    let Some(kernel) = kernels.iter().find(|k| k.name.contains(filter)) else {
        fail(
            "kernel selection",
            format!("no showcase kernel matches '{filter}'"),
        );
    };
    let req = CampaignRequest {
        client: flag_value(args, "--client").unwrap_or("cli").to_string(),
        kernel: kernel.name.clone(),
        mode: Mode::Float,
        campaign,
        shards: flag_value(args, "--shards")
            .map(|v| {
                v.parse().unwrap_or_else(|_| {
                    fail(
                        "argument parsing",
                        format!("--shards wants a count (0 = auto), got '{v}'"),
                    )
                })
            })
            .unwrap_or(0),
        allow_partial: args.iter().any(|a| a == "--allow-partial"),
    };
    let retries: u32 = flag_value(args, "--retry")
        .map(|v| {
            v.parse().unwrap_or_else(|_| {
                fail(
                    "argument parsing",
                    format!("--retry wants a reconnect count, got '{v}'"),
                )
            })
        })
        .unwrap_or(0);
    eprintln!(
        "  submitting {} ({} injections) to {addr}...",
        req.kernel, req.campaign.injections
    );
    let outcome = submit_campaign_retry(addr, &req, retries, |note| eprintln!("{note}"))
        .unwrap_or_else(|e| fail("remote campaign", e));
    // `println!`, exactly like the local campaign path: the report is
    // byte-comparable with `repro campaign` output, trailing newline
    // included.
    println!("{}", outcome.report);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str).unwrap_or("all");

    // The hidden worker subcommand speaks the supervisor protocol on
    // stdin/stdout (or, with --connect, the TCP lease protocol) and
    // must never run any of the reporting machinery.
    if command == "worker" {
        if let Some(addr) = flag_value(&args, "--connect") {
            let max_retries = flag_value(&args, "--max-retries")
                .map(|v| {
                    v.parse::<u32>().unwrap_or_else(|_| {
                        fail(
                            "argument parsing",
                            format!("--max-retries wants a count, got '{v}'"),
                        )
                    })
                })
                .unwrap_or(8);
            // Test-only saboteur: with --lie-rate the worker returns
            // plausible, CRC-valid but falsified outcomes for a seeded
            // fraction of its injections — the adversary the audit
            // tier exists to convict. Never set this outside chaos
            // testing.
            let lies = flag_value(&args, "--lie-rate").map(|v| {
                let rate = v.parse::<f64>().unwrap_or(-1.0);
                if !(0.0..=1.0).contains(&rate) {
                    fail(
                        "argument parsing",
                        format!("--lie-rate wants a fraction in 0..=1, got '{v}'"),
                    );
                }
                let seed = flag_value(&args, "--lie-seed")
                    .map(|s| {
                        s.parse::<u64>().unwrap_or_else(|_| {
                            fail(
                                "argument parsing",
                                format!("--lie-seed wants an integer, got '{s}'"),
                            )
                        })
                    })
                    .unwrap_or(0);
                nfp_bench::LiePlan { rate, seed }
            });
            std::process::exit(nfp_bench::run_worker_connect_with(addr, max_retries, lies));
        }
        std::process::exit(nfp_bench::run_worker());
    }

    if command == "serve" {
        run_serve_command(&args);
        return;
    }

    if command == "submit" {
        run_submit_command(&args);
        return;
    }

    let preset = preset_from_args(&args);

    // The campaign needs no calibration; it is also the long-running
    // mode where crash-safety flags apply, so it gets its own path.
    if command == "campaign" {
        run_campaign_command(&args, &preset);
        return;
    }

    // Merging shard journals likewise needs no calibration — only the
    // golden replay of the one kernel the journals bind to.
    if command == "merge-journals" {
        run_merge_command(&args, &preset);
        return;
    }

    eprintln!("calibrating the cost model (Table II differential kernels)...");
    let eval = Evaluation::new().unwrap_or_else(|e| fail("calibration", e));

    let mut ran_any = false;
    let want = |name: &str| command == name || command == "all";

    if want("table1") {
        ran_any = true;
        println!("{}", report_table1(&eval));
    }
    if want("fig4") {
        ran_any = true;
        let kernels = showcase_kernels(&preset);
        let results = run_results(&eval, &kernels);
        println!("{}", report_fig4(&results));
    }
    if want("table3") {
        ran_any = true;
        let kernels = all_kernels(&preset).unwrap_or_else(|e| fail("kernel registry", e));
        eprintln!(
            "running {} kernels x 2 variants (this is the paper's full M = {} set)...",
            kernels.len(),
            kernels.len() * 2
        );
        let results = run_results(&eval, &kernels);
        println!("{}", report_table3(&results));
        println!("{}", report_table4(&results));
    }
    if want("table4") && command != "all" {
        ran_any = true;
        let kernels = all_kernels(&preset).unwrap_or_else(|e| fail("kernel registry", e));
        let results = run_results(&eval, &kernels);
        println!("{}", report_table4(&results));
    }
    if want("fig1") {
        ran_any = true;
        let kernels = hevc_kernels(&preset).unwrap_or_else(|e| fail("kernel registry", e));
        let kernel = kernels
            .first()
            .unwrap_or_else(|| fail("kernel selection", "preset contains no HEVC kernels"));
        let (text, _) = report_fig1(&eval, kernel).unwrap_or_else(|e| fail("fig1", e));
        println!("{text}");
    }
    if want("ablation-categories") {
        ran_any = true;
        // A representative subset keeps the three-fold calibration and
        // six-fold kernel sweep affordable.
        let mut subset = Vec::new();
        subset.extend(
            hevc_kernels(&preset)
                .unwrap_or_else(|e| fail("kernel registry", e))
                .into_iter()
                .take(3),
        );
        subset.extend(
            fse_kernels(&preset)
                .unwrap_or_else(|e| fail("kernel registry", e))
                .into_iter()
                .take(2),
        );
        let text = report_ablation_categories(&eval, &subset)
            .unwrap_or_else(|e| fail("ablation-categories", e));
        println!("{text}");
    }
    if want("ablation-calibration") {
        ran_any = true;
        let text = report_ablation_calibration(&eval.testbed)
            .unwrap_or_else(|e| fail("ablation-calibration", e));
        println!("{text}");
    }
    if want("cache") {
        ran_any = true;
        let mut subset = Vec::new();
        subset.extend(
            hevc_kernels(&preset)
                .unwrap_or_else(|e| fail("kernel registry", e))
                .into_iter()
                .take(3),
        );
        subset.extend(
            fse_kernels(&preset)
                .unwrap_or_else(|e| fail("kernel registry", e))
                .into_iter()
                .take(1),
        );
        let text = nfp_bench::report_cache_extension(&subset)
            .unwrap_or_else(|e| fail("cache extension", e));
        println!("{text}");
    }
    if !ran_any {
        eprintln!(
            "unknown command `{command}`; expected table1|fig4|table3|table4|fig1|ablation-categories|ablation-calibration|cache|campaign|merge-journals|serve|submit|all"
        );
        std::process::exit(2);
    }
}
