//! Hand-written assembly runtime (the libgcc analogue): 64-bit shift,
//! multiply, and divide helpers the code generator calls for `u64`
//! operations that have no short inline expansion.
//!
//! ABI: `u64` arguments arrive as (hi, lo) register pairs starting at
//! `%o0`; results return in `%o0:%o1`. All helpers are leaf functions
//! touching only `%o` and `%g1-%g4`, so they need no stack frame.

use crate::emit::{Emitter, FuncCode};
use nfp_sparc::cond::ICond;
use nfp_sparc::regs::G0;
use nfp_sparc::{AluOp, Instr, Operand, Reg};

fn retl(e: &mut Emitter) {
    e.push(Instr::Jmpl {
        rd: G0,
        rs1: nfp_sparc::regs::O7,
        op2: Operand::Imm(8),
    });
    e.nop();
}

/// `__muldi3(a, b) -> a * b (mod 2^64)`.
///
/// `lo = low32(a_lo * b_lo)`,
/// `hi = high32(a_lo * b_lo) + a_hi * b_lo + a_lo * b_hi`.
fn muldi3() -> FuncCode {
    let mut e = Emitter::new();
    let (ah, al, bh, bl) = (Reg::o(0), Reg::o(1), Reg::o(2), Reg::o(3));
    let (g1, g2, g3) = (Reg::g(1), Reg::g(2), Reg::g(3));
    e.alu(AluOp::UMul, al, bl, g1); // g1 = low(al*bl), %y = high
    e.push(Instr::RdY { rd: g2 }); // g2 = high(al*bl)
    e.alu(AluOp::UMul, ah, bl, g3); // cross product 1 (low 32 bits)
    e.alu(AluOp::Add, g2, g3, g2);
    e.alu(AluOp::UMul, al, bh, g3); // cross product 2
    e.alu(AluOp::Add, g2, g3, ah); // hi result
    e.mov(g1, al); // lo result
    retl(&mut e);
    e.finish("__muldi3")
}

/// `__ashldi3(a, n) -> a << (n & 63)`.
fn ashldi3() -> FuncCode {
    let mut e = Emitter::new();
    let (hi, lo, n) = (Reg::o(0), Reg::o(1), Reg::o(2));
    let g1 = Reg::g(1);
    let g2 = Reg::g(2);
    let done = e.new_label();
    let big = e.new_label();
    e.alu(AluOp::And, n, 63, n);
    e.cmp(n, 0);
    e.branch(ICond::E, done);
    e.cmp(n, 32);
    e.branch(ICond::Cc, big); // unsigned >= 32
                              // 1..31: hi = (hi << n) | (lo >> (32 - n)); lo <<= n
    e.mov(32, g1);
    e.alu(AluOp::Sub, g1, n, g1);
    e.alu(AluOp::Srl, lo, g1, g2);
    e.alu(AluOp::Sll, hi, n, hi);
    e.alu(AluOp::Or, hi, g2, hi);
    e.alu(AluOp::Sll, lo, n, lo);
    e.ba(done);
    e.bind(big); // 32..63: hi = lo << (n - 32); lo = 0
    e.alu(AluOp::Sub, n, 32, n);
    e.alu(AluOp::Sll, lo, n, hi);
    e.mov(0, lo);
    e.bind(done);
    retl(&mut e);
    e.finish("__ashldi3")
}

/// `__lshrdi3(a, n) -> a >> (n & 63)` (logical).
fn lshrdi3() -> FuncCode {
    let mut e = Emitter::new();
    let (hi, lo, n) = (Reg::o(0), Reg::o(1), Reg::o(2));
    let g1 = Reg::g(1);
    let g2 = Reg::g(2);
    let done = e.new_label();
    let big = e.new_label();
    e.alu(AluOp::And, n, 63, n);
    e.cmp(n, 0);
    e.branch(ICond::E, done);
    e.cmp(n, 32);
    e.branch(ICond::Cc, big);
    // 1..31: lo = (lo >> n) | (hi << (32 - n)); hi >>= n
    e.mov(32, g1);
    e.alu(AluOp::Sub, g1, n, g1);
    e.alu(AluOp::Sll, hi, g1, g2);
    e.alu(AluOp::Srl, lo, n, lo);
    e.alu(AluOp::Or, lo, g2, lo);
    e.alu(AluOp::Srl, hi, n, hi);
    e.ba(done);
    e.bind(big); // 32..63: lo = hi >> (n - 32); hi = 0
    e.alu(AluOp::Sub, n, 32, n);
    e.alu(AluOp::Srl, hi, n, lo);
    e.mov(0, hi);
    e.bind(done);
    retl(&mut e);
    e.finish("__lshrdi3")
}

/// Shared 64/64 restoring division. Quotient ends in `%o0:%o1`,
/// remainder in `%g1:%g2`. With `want_rem` the remainder is moved to
/// the result registers.
fn udivmod(name: &str, want_rem: bool) -> FuncCode {
    let mut e = Emitter::new();
    // quotient accumulates in (o0, o1) over the dividend, divisor in
    // (o2, o3), remainder in (g1, g2), counter g3, scratch g4.
    let (qh, ql, dh, dl) = (Reg::o(0), Reg::o(1), Reg::o(2), Reg::o(3));
    let (rh, rl, cnt, t) = (Reg::g(1), Reg::g(2), Reg::g(3), Reg::g(4));
    let looptop = e.new_label();
    let skip = e.new_label();
    let take = e.new_label();
    e.mov(0, rh);
    e.mov(0, rl);
    e.mov(64, cnt);
    e.bind(looptop);
    // rem = (rem << 1) | msb(quot); quot <<= 1
    e.alu(AluOp::Srl, qh, 31, t);
    e.alu(AluOp::AddCc, rl, rl, rl);
    e.alu(AluOp::AddX, rh, rh, rh);
    e.alu(AluOp::Or, rl, t, rl);
    e.alu(AluOp::AddCc, ql, ql, ql);
    e.alu(AluOp::AddX, qh, qh, qh);
    // if rem >= divisor { rem -= divisor; quot |= 1 }
    e.cmp(rh, dh);
    e.branch(ICond::Cs, skip); // rem_hi < div_hi
    e.branch(ICond::Gu, take); // rem_hi > div_hi
    e.cmp(rl, dl);
    e.branch(ICond::Cs, skip);
    e.bind(take);
    e.alu(AluOp::SubCc, rl, dl, rl);
    e.alu(AluOp::SubX, rh, dh, rh);
    e.alu(AluOp::Or, ql, 1, ql);
    e.bind(skip);
    e.alu(AluOp::SubCc, cnt, 1, cnt);
    e.branch(ICond::Ne, looptop);
    if want_rem {
        e.mov(rh, qh);
        e.mov(rl, ql);
    }
    retl(&mut e);
    e.finish(name)
}

/// All assembly runtime functions.
pub fn runtime_functions() -> Vec<FuncCode> {
    vec![
        muldi3(),
        ashldi3(),
        lshrdi3(),
        udivmod("__udivdi3", false),
        udivmod("__umoddi3", true),
    ]
}

/// Names of the assembly runtime entry points (used by tests).
pub fn runtime_names() -> Vec<&'static str> {
    vec![
        "__muldi3",
        "__ashldi3",
        "__lshrdi3",
        "__udivdi3",
        "__umoddi3",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_helpers_are_leaf_functions() {
        for f in runtime_functions() {
            assert_eq!(
                f.referenced_symbols().count(),
                0,
                "{} should not reference other symbols",
                f.name
            );
            // no save/restore, no stack traffic
            for item in &f.items {
                if let crate::emit::Item::I(i) = item {
                    assert!(
                        !matches!(i, Instr::Save { .. } | Instr::Restore { .. }),
                        "{}: unexpected window op",
                        f.name
                    );
                }
            }
        }
    }

    #[test]
    fn names_match() {
        let fns = runtime_functions();
        let names = runtime_names();
        assert_eq!(fns.len(), names.len());
        for (f, n) in fns.iter().zip(names) {
            assert_eq!(f.name, n);
        }
    }
}
