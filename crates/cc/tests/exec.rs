//! End-to-end execution tests: compile mini-C, boot the image on the
//! instruction-set simulator, and check observable behaviour (exit
//! codes and emitted words).

use nfp_cc::{compile, CompileOptions, FloatMode};
use nfp_sim::{Machine, MachineConfig};

/// Compiles and runs `src`, returning the exit code.
fn run(src: &str, mode: FloatMode) -> u32 {
    run_full(src, mode).0
}

/// Compiles and runs `src`, returning (exit code, emitted words, text).
fn run_full(src: &str, mode: FloatMode) -> (u32, Vec<u32>, String) {
    let program = compile(src, &CompileOptions::new(mode)).expect("compile failed");
    let mut machine = Machine::new(MachineConfig {
        fpu_enabled: mode == FloatMode::Hard,
        ..MachineConfig::default()
    });
    machine
        .load_image(program.base, &program.words)
        .expect("image fits in RAM");
    let result = machine.run(2_000_000_000).expect("run failed");
    (result.exit_code, result.words, result.text)
}

fn run_both(src: &str) -> u32 {
    let hard = run(src, FloatMode::Hard);
    let soft = run(src, FloatMode::Soft);
    assert_eq!(hard, soft, "hard/soft divergence for:\n{src}");
    hard
}

/// Runs a program and interprets the two emitted words as an f64.
fn run_double(src: &str, mode: FloatMode) -> f64 {
    let (_, words, _) = run_full(src, mode);
    assert_eq!(words.len(), 2, "expected exactly one emitted double");
    f64::from_bits(((words[0] as u64) << 32) | words[1] as u64)
}

/// Emits the bits of a double expression from inside the program.
fn double_expr(body: &str) -> String {
    format!(
        "void emit64(u64 v) {{ emit((uint)(v >> 32)); emit((uint)v); }}\n\
         int main() {{ double r = {body}; emit64(__dbits(r)); return 0; }}"
    )
}

#[test]
fn return_constant() {
    assert_eq!(run_both("int main() { return 42; }"), 42);
}

#[test]
fn arithmetic_and_precedence() {
    assert_eq!(run_both("int main() { return 2 + 3 * 4 - 6 / 2; }"), 11);
    assert_eq!(
        run_both("int main() { int a = 7; int b = 3; return a % b; }"),
        1
    );
    assert_eq!(
        run_both("int main() { int a = -17; int b = 5; return a / b + 10; }"),
        7 // -3 + 10
    );
}

#[test]
fn unsigned_arithmetic() {
    assert_eq!(
        run_both("int main() { uint a = 0xffffffffu; uint b = 2u; return (int)(a / b); }"),
        0x7fff_ffff
    );
    assert_eq!(
        run_both("int main() { uint a = 7u; return (int)(a % 4u); }"),
        3
    );
}

#[test]
fn shifts_match_c_semantics() {
    assert_eq!(
        run_both("int main() { int a = -8; return (a >> 2) + 10; }"),
        8
    );
    assert_eq!(
        run_both("int main() { uint a = 0x80000000u; return (int)(a >> 28); }"),
        8
    );
    assert_eq!(run_both("int main() { return 1 << 20 >> 18; }"), 4);
}

#[test]
fn comparisons_and_logic() {
    assert_eq!(
        run_both(
            "int main() { int a = 3; int b = 5; return (a < b) + (a > b) * 10 + (a == 3) * 100; }"
        ),
        101
    );
    assert_eq!(
        run_both("int main() { int a = 0; int b = 7; return (a && b) + 2 * (a || b) + 4 * !a; }"),
        6
    );
    // signed vs unsigned comparison
    assert_eq!(
        run_both("int main() { int a = -1; uint b = 1u; return (a < 1) + 2 * ((uint)a < b); }"),
        1
    );
}

#[test]
fn short_circuit_side_effects() {
    let src = "int g = 0;\nint bump() { g = g + 1; return 1; }\nint main() { int x = 0 && bump(); int y = 1 || bump(); return g * 10 + x + y; }";
    assert_eq!(run_both(src), 1);
}

#[test]
fn while_and_for_loops() {
    assert_eq!(
        run_both(
            "int main() { int s = 0; for (int i = 1; i <= 10; i = i + 1) s = s + i; return s; }"
        ),
        55
    );
    assert_eq!(
        run_both("int main() { int n = 100; int c = 0; while (n > 1) { if (n % 2 == 0) n = n / 2; else n = 3 * n + 1; c = c + 1; } return c; }"),
        25 // Collatz steps for 100
    );
}

#[test]
fn break_and_continue() {
    assert_eq!(
        run_both("int main() { int s = 0; for (int i = 0; i < 20; i = i + 1) { if (i % 2 == 1) continue; if (i == 10) break; s = s + i; } return s; }"),
        20 // 0+2+4+6+8
    );
}

#[test]
fn recursion_fibonacci() {
    assert_eq!(
        run_both("int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }\nint main() { return fib(12); }"),
        144
    );
}

#[test]
fn local_arrays_and_pointers() {
    let src = "int main() { int a[8]; for (int i = 0; i < 8; i = i + 1) a[i] = i * i; int* p = a; int s = 0; for (int i = 0; i < 8; i = i + 1) s = s + p[i]; return s; }";
    assert_eq!(run_both(src), 140);
}

#[test]
fn global_arrays_with_initialisers() {
    let src = "int tbl[5] = {10, 20, 30, 40, 50};\nint main() { int s = 0; for (int i = 0; i < 5; i = i + 1) s = s + tbl[i]; return s; }";
    assert_eq!(run_both(src), 150);
}

#[test]
fn uchar_semantics() {
    assert_eq!(
        run_both("int main() { uchar c = 200; c = c + 100; return c; }"),
        44 // (200 + 100) & 0xff
    );
    let src = "uchar buf[4];\nint main() { buf[0] = 0xff; buf[1] = 1; return buf[0] + buf[1]; }";
    assert_eq!(run_both(src), 256);
}

#[test]
fn pointer_writes_through_functions() {
    let src =
        "void put(int* p, int v) { *p = v; }\nint main() { int x = 0; put(&x, 99); return x; }";
    assert_eq!(run_both(src), 99);
}

#[test]
fn uchar_pointer_byte_access() {
    let src = "int main() { uint w = 0u; uchar* p = (uchar*)&w; p[0] = 0x12; p[3] = 0x34; return (int)(w >> 24) + (int)(w & 0xffu); }";
    // big-endian: byte 0 is the MSB
    assert_eq!(run_both(src), 0x12 + 0x34);
}

#[test]
fn ternary_expressions() {
    assert_eq!(
        run_both("int main() { int a = 5; return a > 3 ? a * 2 : a - 1; }"),
        10
    );
    assert_eq!(
        run_both("int main() { int a = 2; return a > 3 ? a * 2 : a - 1; }"),
        1
    );
}

#[test]
fn u64_arithmetic() {
    assert_eq!(
        run_both("int main() { u64 a = 0xffffffffu; a = a + 1u; return (int)(a >> 32); }"),
        1
    );
    assert_eq!(
        run_both(
            "int main() { u64 a = 1u; a = a << 40; a = a - 1u; return (int)(a >> 36) & 0xf; }"
        ),
        0xf
    );
    // 64-bit multiply through __muldi3
    assert_eq!(
        run_both("int main() { u64 a = 0x100000001u; u64 b = 0x100000001u; u64 c = a * b; return (int)(c >> 32); }"),
        2 // (2^32+1)^2 = 2^64 + 2^33 + 1 -> high word 2
    );
    // 64-bit divide / modulo
    assert_eq!(
        run_both("int main() { u64 a = 0xde0b6b3a7640000u; u64 b = 1000000u; return (int)(a / b / 1000000u); }"),
        1_000_000 // 10^18 / 10^6 / 10^6
    );
    assert_eq!(
        run_both("int main() { u64 a = 1000003u; u64 b = 1000u; return (int)(a % b); }"),
        3
    );
}

#[test]
fn u64_variable_shifts() {
    let src = "int main() { u64 a = 0x8000000000000000u; int total = 0; for (int i = 0; i < 64; i = i + 8) { u64 s = a >> i; total = total + (int)(s >> 32 != 0u); } return total; }";
    assert_eq!(run_both(src), 4); // shifts 0,8,16,24 keep a bit in the high word
}

#[test]
fn u64_comparisons() {
    let src = "int main() {
        u64 a = 0x100000000u; u64 b = 0xffffffffu;
        int r = 0;
        if (a > b) r = r + 1;
        if (b < a) r = r + 2;
        if (a >= a) r = r + 4;
        if (a <= b) r = r + 8;
        if (a == a) r = r + 16;
        if (a != b) r = r + 32;
        return r;
    }";
    assert_eq!(run_both(src), 1 + 2 + 4 + 16 + 32);
}

#[test]
fn widening_multiply_intrinsic() {
    assert_eq!(
        run_both("int main() { u64 p = __umulw(0x10000u, 0x10000u); return (int)(p >> 32); }"),
        1
    );
}

#[test]
fn emitted_words_and_text() {
    let (code, words, text) = run_full(
        "int main() { putchar('h'); putchar('i'); emit(123u); emit(456u); return 7; }",
        FloatMode::Hard,
    );
    assert_eq!(code, 7);
    assert_eq!(text, "hi");
    assert_eq!(words, vec![123, 456]);
}

#[test]
fn double_arithmetic_matches_native_hard_and_soft() {
    let cases = [
        ("1.5 + 2.25", 1.5f64 + 2.25),
        ("1.0 / 3.0", 1.0f64 / 3.0),
        ("2.5 * -0.125", 2.5f64 * -0.125),
        ("1.0e300 * 1.0e300", f64::INFINITY),
        ("1.0e-300 * 1.0e-300", 1.0e-300f64 * 1.0e-300),
        ("sqrt(2.0)", 2.0f64.sqrt()),
        ("fabs(-3.5)", 3.5),
        ("1.0 - 1.0", 0.0),
    ];
    for (expr, want) in cases {
        for mode in [FloatMode::Hard, FloatMode::Soft] {
            let got = run_double(&double_expr(expr), mode);
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "{expr} in {mode:?}: got {got:e}, want {want:e}"
            );
        }
    }
}

#[test]
fn double_comparisons() {
    let src = "int main() {
        double a = 1.5; double b = 2.5;
        int r = 0;
        if (a < b) r = r + 1;
        if (b > a) r = r + 2;
        if (a <= 1.5) r = r + 4;
        if (a >= 1.5) r = r + 8;
        if (a == 1.5) r = r + 16;
        if (a != b) r = r + 32;
        return r;
    }";
    assert_eq!(run_both(src), 63);
}

#[test]
fn double_conversions() {
    assert_eq!(
        run_both("int main() { double d = -7.9; return (int)d + 100; }"),
        93
    );
    assert_eq!(
        run_both("int main() { int i = -3; double d = (double)i; return (int)(d * -2.0); }"),
        6
    );
    assert_eq!(
        run_both("int main() { uint u = 0xc0000000u; double d = (double)u; return (int)(d / 65536.0 / 65536.0 * 4.0); }"),
        3
    );
    assert_eq!(
        run_both(
            "int main() { double d = 3000000000.5; uint u = (uint)d; return (int)(u >> 24); }"
        ),
        0xb2 // 3000000000 = 0xB2D05E00
    );
    assert_eq!(
        run_both("int main() { u64 x = 0x123456789abcdefu; double d = (double)x; u64 y = (u64)d; return (int)(y >> 48); }"),
        0x123 // round-trips the top bits
    );
}

#[test]
fn double_in_loops_accumulates_identically() {
    // A numerically non-trivial loop: harmonic sum.
    let body = "0.0;\n    for (int k = 1; k <= 50; k = k + 1) r = r + 1.0 / (double)k";
    let src = format!(
        "void emit64(u64 v) {{ emit((uint)(v >> 32)); emit((uint)v); }}\n\
         int main() {{ double r = {body}; emit64(__dbits(r)); return 0; }}"
    );
    let mut want = 0.0f64;
    for k in 1..=50 {
        want += 1.0 / k as f64;
    }
    for mode in [FloatMode::Hard, FloatMode::Soft] {
        let (_, words, _) = run_full(&src, mode);
        let got = f64::from_bits(((words[0] as u64) << 32) | words[1] as u64);
        assert_eq!(got.to_bits(), want.to_bits(), "mode {mode:?}");
    }
}

#[test]
fn many_arguments_spill_to_stack() {
    let src = "int sum8(int a, int b, int c, int d, int e, int f, int g, int h) { return a + b + c + d + e + f + g + h; }\nint main() { return sum8(1, 2, 3, 4, 5, 6, 7, 8); }";
    assert_eq!(run_both(src), 36);
}

#[test]
fn mixed_width_arguments() {
    let src = "int f(double a, int b, u64 c, int d) { return (int)a + b + (int)(c >> 32) + d; }\nint main() { u64 big = 5u; big = big << 32; return f(2.5, 10, big, 4); }";
    assert_eq!(run_both(src), 2 + 10 + 5 + 4);
}

#[test]
fn global_scalars_persist_across_calls() {
    let src = "uint state = 1u;\nuint next() { state = state * 1103515245u + 12345u; return state; }\nint main() { int n = 0; for (int i = 0; i < 10; i = i + 1) { uint v = next(); n = n + (int)(v >> 31); } return n; }";
    // Reference LCG in Rust.
    let mut state = 1u32;
    let mut want = 0;
    for _ in 0..10 {
        state = state.wrapping_mul(1103515245).wrapping_add(12345);
        want += (state >> 31) as i32;
    }
    assert_eq!(run_both(src) as i32, want);
}

#[test]
fn soft_binary_runs_without_fpu() {
    // The whole point of -msoft-float: the binary must execute on a
    // machine with the FPU disabled.
    let program = compile(
        &double_expr("sqrt(3.0) * 2.0 - 1.0e-3"),
        &CompileOptions::new(FloatMode::Soft),
    )
    .unwrap();
    let mut machine = Machine::new(MachineConfig {
        fpu_enabled: false,
        ..MachineConfig::default()
    });
    machine
        .load_image(program.base, &program.words)
        .expect("image fits in RAM");
    let result = machine
        .run(100_000_000)
        .expect("soft binary trapped on FPU-less core");
    let got = f64::from_bits(((result.words[0] as u64) << 32) | result.words[1] as u64);
    let want = 3.0f64.sqrt() * 2.0 - 1.0e-3;
    assert_eq!(got.to_bits(), want.to_bits());
}

#[test]
fn hard_binary_requires_fpu() {
    let program = compile(
        &double_expr("sqrt(3.0)"),
        &CompileOptions::new(FloatMode::Hard),
    )
    .unwrap();
    let mut machine = Machine::new(MachineConfig {
        fpu_enabled: false,
        ..MachineConfig::default()
    });
    machine
        .load_image(program.base, &program.words)
        .expect("image fits in RAM");
    assert!(machine.run(100_000_000).is_err());
}

#[test]
fn deep_expression_spills() {
    // Expression deep enough to exhaust the 12 temp registers.
    let src = "int main() { int a = 1;
        return ((a+1)*2+((a+2)*3+((a+3)*4+((a+4)*5+((a+5)*6+((a+6)*7
          +((a+7)*8+((a+8)*9+((a+9)*10+(a+10)*11))))))))) % 251; }";
    let native = {
        let a: i64 = 1;
        let v = (a + 1) * 2
            + ((a + 2) * 3
                + ((a + 3) * 4
                    + ((a + 4) * 5
                        + ((a + 5) * 6
                            + ((a + 6) * 7
                                + ((a + 7) * 8
                                    + ((a + 8) * 9 + ((a + 9) * 10 + (a + 10) * 11))))))));
        (v % 251) as u32
    };
    assert_eq!(run_both(src), native);
}

#[test]
fn comment_define_and_char_literals() {
    let src =
        "#define BASE 40\n// line comment\n/* block */\nint main() { return BASE + 'A' - '?'; }";
    assert_eq!(run_both(src), 42);
}

#[test]
fn instruction_counts_differ_between_modes() {
    // Soft-float executes far more instructions for the same result.
    let src = double_expr("(1.25 * 3.5 + 0.125) / 0.75");
    let count = |mode| {
        let program = compile(&src, &CompileOptions::new(mode)).unwrap();
        let mut machine = Machine::new(MachineConfig {
            fpu_enabled: true,
            ..MachineConfig::default()
        });
        machine
            .load_image(program.base, &program.words)
            .expect("image fits in RAM");
        machine.run(100_000_000).unwrap().instret
    };
    let hard = count(FloatMode::Hard);
    let soft = count(FloatMode::Soft);
    assert!(
        soft > hard * 3,
        "soft ({soft}) should be much slower than hard ({hard})"
    );
}
