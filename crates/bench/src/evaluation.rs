//! The evaluation pipeline: calibration, per-kernel counting,
//! estimation, and ground-truth measurement.

use nfp_cc::FloatMode;
use nfp_core::{calibrate, Calibration, ClassCounter, Classifier, Estimate, NfpError, Paper};
use nfp_testbed::{HwTotals, Measurement, Testbed};
use nfp_workloads::{machine_for, Kernel, KERNEL_BUDGET};

/// Float ("with FPU") or fixed ("-msoft-float") kernel variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    Float,
    Fixed,
}

impl Mode {
    /// Both variants, paper order.
    pub const BOTH: [Mode; 2] = [Mode::Float, Mode::Fixed];

    /// The compiler mode of this variant.
    pub fn float_mode(self) -> FloatMode {
        match self {
            Mode::Float => FloatMode::Hard,
            Mode::Fixed => FloatMode::Soft,
        }
    }

    /// Suffix used in kernel result names.
    pub fn suffix(self) -> &'static str {
        match self {
            Mode::Float => "float",
            Mode::Fixed => "fixed",
        }
    }

    /// Inverse of [`Mode::suffix`], for parsing journal headers and
    /// worker handshakes.
    pub fn from_suffix(s: &str) -> Option<Mode> {
        match s {
            "float" => Some(Mode::Float),
            "fixed" => Some(Mode::Fixed),
            _ => None,
        }
    }
}

/// Everything the pipeline learns about one kernel variant.
#[derive(Debug, Clone)]
pub struct KernelResult {
    /// `<kernel>_<float|fixed>`.
    pub name: String,
    /// The kernel's registry name (without variant suffix).
    pub base_name: String,
    /// Variant.
    pub mode: Mode,
    /// Per-class instruction counts from the ISS.
    pub counts: Vec<u64>,
    /// Model estimate (Eq. 1).
    pub estimate: Estimate,
    /// Instrument-reported ground truth.
    pub measured: Measurement,
    /// True (noise-free) hardware totals, for introspection.
    pub totals: HwTotals,
    /// Dynamic instruction count.
    pub instret: u64,
}

impl KernelResult {
    /// Signed relative time error (Eq. 3).
    pub fn time_error(&self) -> f64 {
        nfp_core::relative_error(self.estimate.time_s, self.measured.time_s)
    }

    /// Signed relative energy error (Eq. 3).
    pub fn energy_error(&self) -> f64 {
        nfp_core::relative_error(self.estimate.energy_j, self.measured.energy_j)
    }
}

/// A calibrated evaluation context.
pub struct Evaluation {
    /// The virtual board.
    pub testbed: Testbed,
    /// Calibration output (Table I).
    pub calibration: Calibration,
}

impl Evaluation {
    /// Calibrates the paper's nine-class model on a fresh testbed.
    pub fn new() -> Result<Self, NfpError> {
        let testbed = Testbed::new();
        let calibration = calibrate(&testbed, &Paper, 0xcafe)?;
        Ok(Evaluation {
            testbed,
            calibration,
        })
    }

    /// Runs one kernel variant through the full pipeline: ISS counting
    /// pass (verifying functional output), estimation, and measured
    /// testbed pass.
    pub fn run_kernel(&self, kernel: &Kernel, mode: Mode) -> Result<KernelResult, NfpError> {
        self.run_kernel_with(kernel, mode, &Paper, &self.calibration.model)
    }

    /// Like [`Evaluation::run_kernel`] with an explicit classifier and
    /// model (for the granularity ablation).
    pub fn run_kernel_with<C: Classifier + Clone>(
        &self,
        kernel: &Kernel,
        mode: Mode,
        classifier: &C,
        model: &nfp_core::CostModel,
    ) -> Result<KernelResult, NfpError> {
        // Pass 1: fast ISS with per-class counters.
        let mut counter = ClassCounter::new(classifier.clone());
        let mut machine = machine_for(kernel, mode.float_mode())?;
        let run = machine.run_observed(KERNEL_BUDGET, &mut counter)?;
        if run.exit_code != 0 {
            return Err(NfpError::KernelFailed {
                kernel: format!("{}_{}", kernel.name, mode.suffix()),
                exit_code: run.exit_code,
            });
        }
        if run.words != kernel.expected_words {
            return Err(NfpError::OutputMismatch {
                kernel: format!("{}_{}", kernel.name, mode.suffix()),
            });
        }
        let counts = counter.counts().to_vec();
        let estimate = model.estimate(&counts);

        // Pass 2: ground-truth measurement on the virtual board.
        let mut machine = machine_for(kernel, mode.float_mode())?;
        let measured = self.testbed.run(&mut machine, kernel.seed, KERNEL_BUDGET)?;

        Ok(KernelResult {
            name: format!("{}_{}", kernel.name, mode.suffix()),
            base_name: kernel.name.clone(),
            mode,
            counts,
            estimate,
            measured: measured.measurement,
            totals: measured.totals,
            instret: run.instret,
        })
    }

    /// Runs every kernel in both variants (the paper's M = 2×|kernels|
    /// evaluation set).
    pub fn run_all(&self, kernels: &[Kernel]) -> Result<Vec<KernelResult>, NfpError> {
        let mut results = Vec::with_capacity(kernels.len() * 2);
        for kernel in kernels {
            for mode in Mode::BOTH {
                results.push(self.run_kernel(kernel, mode)?);
            }
        }
        Ok(results)
    }

    /// Like [`Evaluation::run_all`] but sweeping kernels across worker
    /// threads (each kernel variant runs on its own independent
    /// simulator instance; results keep deterministic order).
    pub fn run_all_parallel(&self, kernels: &[Kernel]) -> Result<Vec<KernelResult>, NfpError> {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Mutex;

        let jobs: Vec<(usize, &Kernel, Mode)> = kernels
            .iter()
            .flat_map(|k| Mode::BOTH.map(|m| (k, m)))
            .enumerate()
            .map(|(i, (k, m))| (i, k, m))
            .collect();
        let names: Vec<String> = jobs
            .iter()
            .map(|&(_, k, m)| format!("{}_{}", k.name, m.suffix()))
            .collect();
        let slots: Vec<Mutex<Option<Result<KernelResult, NfpError>>>> =
            jobs.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(jobs.len().max(1));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&(slot, kernel, mode)) = jobs.get(i) else {
                        break;
                    };
                    let result = self.run_kernel(kernel, mode);
                    *slots[slot]
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(result);
                });
            }
        });
        collect_parallel_slots(slots, &names)
    }
}

/// Drains the per-job result slots of [`Evaluation::run_all_parallel`].
/// A slot its worker never filled (the worker died or exited early)
/// reports [`NfpError::WorkerLost`] naming the kernel variant, so an
/// operator knows exactly which job to rerun.
fn collect_parallel_slots(
    slots: Vec<std::sync::Mutex<Option<Result<KernelResult, NfpError>>>>,
    names: &[String],
) -> Result<Vec<KernelResult>, NfpError> {
    slots
        .into_iter()
        .zip(names)
        .map(|(slot, name)| {
            slot.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .ok_or_else(|| NfpError::WorkerLost { job: name.clone() })?
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfp_workloads::Preset;

    #[test]
    fn pipeline_produces_consistent_results_for_one_kernel() {
        let eval = Evaluation::new().unwrap();
        let kernels = nfp_workloads::hevc_kernels(&Preset::quick()).expect("kernels");
        let r = eval.run_kernel(&kernels[0], Mode::Float).unwrap();
        assert!(r.estimate.time_s > 0.0);
        assert!(r.estimate.energy_j > 0.0);
        assert!(r.measured.time_s > 0.0);
        assert!(r.measured.energy_j > 0.0);
        assert_eq!(r.counts.iter().sum::<u64>(), r.instret);
        // The estimate should already be in the right ballpark.
        assert!(
            r.time_error().abs() < 0.25,
            "time error {:.1}%",
            r.time_error() * 100.0
        );
        assert!(
            r.energy_error().abs() < 0.25,
            "energy error {:.1}%",
            r.energy_error() * 100.0
        );
    }

    #[test]
    fn lost_parallel_slot_names_the_kernel_variant() {
        use std::sync::Mutex;
        let slots = vec![Mutex::new(None)];
        let names = vec!["fse_img00_float".to_string()];
        match collect_parallel_slots(slots, &names) {
            Err(NfpError::WorkerLost { job }) => {
                assert_eq!(job, "fse_img00_float");
                let shown = NfpError::WorkerLost { job }.to_string();
                assert!(shown.contains("fse_img00_float"), "message: {shown}");
            }
            other => panic!("expected WorkerLost, got {:?}", other.map(|v| v.len())),
        }
    }

    #[test]
    fn fixed_variant_runs_longer_on_fse() {
        let eval = Evaluation::new().unwrap();
        let kernels = nfp_workloads::fse_kernels(&Preset::quick()).expect("kernels");
        let float = eval.run_kernel(&kernels[0], Mode::Float).unwrap();
        let fixed = eval.run_kernel(&kernels[0], Mode::Fixed).unwrap();
        assert!(fixed.measured.time_s > 3.0 * float.measured.time_s);
    }
}
