#![warn(missing_docs)]
//! `nfp-cc`: a mini-C compiler targeting the SPARC V8 simulator.
//!
//! This crate is the reproduction's substitute for the paper's
//! cross-compilation toolchain (`sparc-elf-gcc`, optionally with
//! `-msoft-float`). It compiles a small C dialect — enough to express
//! the HEVC-like decoder, the FSE extrapolator, and an IEEE-754
//! soft-float library — to flat SPARC V8 machine code that boots
//! directly on `nfp_sim::Machine`.
//!
//! Pipeline: [`lexer`] → [`parser`] → [`sema`] → [`codegen`] →
//! [`link()`], with two float-lowering modes ([`FloatMode::Hard`] /
//! [`FloatMode::Soft`]) reproducing the paper's float/fixed kernel
//! pairs (Section VI-C).
//!
//! ```
//! use nfp_cc::{compile, CompileOptions, FloatMode};
//!
//! let program = compile(
//!     "int main() { return 6 * 7; }",
//!     &CompileOptions::new(FloatMode::Hard),
//! )
//! .unwrap();
//! assert!(program.words.len() > 4);
//! ```

pub mod ast;
pub mod codegen;
pub mod emit;
pub mod lexer;
pub mod link;
pub mod parser;
pub mod runtime_asm;
pub mod sema;

pub use ast::Type;
pub use codegen::{gen_function, CodegenError, DoublePool, FloatMode};
pub use link::{link, start_stub, LinkError, Program};
pub use parser::{parse, ParseError};
pub use sema::{check, CheckedUnit, SemaError};

use std::sync::OnceLock;

/// The soft-float runtime source (mini-C), compiled into every program
/// that references it.
pub const SOFTFLOAT_SOURCE: &str = include_str!("../runtime/softfloat.mc");

/// Compilation options.
#[derive(Debug, Clone, Copy)]
pub struct CompileOptions {
    /// Float lowering mode.
    pub float_mode: FloatMode,
    /// Image load address (defaults to the simulator's RAM base).
    pub base: u32,
}

impl CompileOptions {
    /// Options with the default load address.
    pub fn new(float_mode: FloatMode) -> Self {
        CompileOptions {
            float_mode,
            base: 0x4000_0000,
        }
    }
}

/// Any error the pipeline can produce.
#[derive(Debug, Clone, PartialEq)]
pub enum CcError {
    /// Lexing or parsing failed.
    Parse(ParseError),
    /// Type checking failed.
    Sema(SemaError),
    /// Code generation failed.
    Codegen(CodegenError),
    /// Linking failed.
    Link(LinkError),
}

impl std::fmt::Display for CcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CcError::Parse(e) => write!(f, "parse error: {e}"),
            CcError::Sema(e) => write!(f, "type error: {e}"),
            CcError::Codegen(e) => write!(f, "codegen error: {e}"),
            CcError::Link(e) => write!(f, "link error: {e}"),
        }
    }
}

impl std::error::Error for CcError {}

impl From<ParseError> for CcError {
    fn from(e: ParseError) -> Self {
        CcError::Parse(e)
    }
}
impl From<SemaError> for CcError {
    fn from(e: SemaError) -> Self {
        CcError::Sema(e)
    }
}
impl From<CodegenError> for CcError {
    fn from(e: CodegenError) -> Self {
        CcError::Codegen(e)
    }
}
impl From<LinkError> for CcError {
    fn from(e: LinkError) -> Self {
        CcError::Link(e)
    }
}

fn softfloat_unit() -> &'static CheckedUnit {
    static UNIT: OnceLock<CheckedUnit> = OnceLock::new();
    UNIT.get_or_init(|| {
        let parsed = parse(SOFTFLOAT_SOURCE).expect("soft-float runtime must parse");
        check(&parsed).expect("soft-float runtime must type-check")
    })
}

/// Compiles a mini-C translation unit into a bootable program image.
///
/// The image contains a `_start` stub that calls `main` and halts with
/// its return value as the exit code, the user's functions, the
/// assembly runtime, and the soft-float library (unreferenced runtime
/// functions are dropped by the linker's reachability pass).
pub fn compile(source: &str, opts: &CompileOptions) -> Result<Program, CcError> {
    let unit = parse(source)?;
    let checked = check(&unit)?;
    let mut pool = DoublePool::default();
    let mut funcs = vec![start_stub()];
    for f in &checked.functions {
        funcs.push(gen_function(f, opts.float_mode, &mut pool)?);
    }
    // The runtime library: integer-only code, identical under either
    // float mode; compiled soft to guarantee no FPU instructions.
    let rt = softfloat_unit();
    for f in &rt.functions {
        funcs.push(gen_function(f, FloatMode::Soft, &mut pool)?);
    }
    funcs.extend(runtime_asm::runtime_functions());
    let mut globals = checked.globals.clone();
    globals.extend(rt.globals.iter().cloned());
    Ok(link(funcs, &globals, &pool, opts.base)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_world_compiles_both_modes() {
        for mode in [FloatMode::Hard, FloatMode::Soft] {
            let p = compile("int main() { return 0; }", &CompileOptions::new(mode)).unwrap();
            assert_eq!(p.base, 0x4000_0000);
            assert_eq!(p.symbol("_start"), Some(p.base));
            assert!(p.symbol("main").is_some());
        }
    }

    #[test]
    fn soft_float_program_links_runtime() {
        let p = compile(
            "double g = 1.5;\nint main() { g = g * 2.0; return 0; }",
            &CompileOptions::new(FloatMode::Soft),
        )
        .unwrap();
        assert!(p.symbol("__muldf3").is_some());
        assert!(p.symbol("__df_round").is_some());
    }

    #[test]
    fn hard_float_program_drops_soft_runtime() {
        let p = compile(
            "double g = 1.5;\nint main() { g = g * 2.0; return 0; }",
            &CompileOptions::new(FloatMode::Hard),
        )
        .unwrap();
        assert!(p.symbol("__muldf3").is_none());
    }

    #[test]
    fn missing_main_is_a_link_error() {
        let err = compile(
            "int f() { return 1; }",
            &CompileOptions::new(FloatMode::Hard),
        )
        .unwrap_err();
        assert!(matches!(err, CcError::Link(LinkError::Undefined { .. })));
    }

    #[test]
    fn error_types_render() {
        let err = compile(
            "int main() { return x; }",
            &CompileOptions::new(FloatMode::Hard),
        )
        .unwrap_err();
        assert!(err.to_string().contains("unknown variable"));
    }
}
