//! Native workload benchmarks: encoder, reference decoder, and FSE on
//! the host (useful to separate simulator cost from algorithm cost).

use criterion::{criterion_group, criterion_main, Criterion};
use nfp_workloads::fse;
use nfp_workloads::hevc::{decode, encode, Config};
use nfp_workloads::synth::{loss_mask, test_image, test_sequence, Scene};

fn bench_hevc(c: &mut Criterion) {
    let frames = test_sequence(Scene::MovingObject, 64, 48, 6);
    let encoded = encode(&frames, Config::Lowdelay, 32).expect("encode");
    let mut group = c.benchmark_group("hevc_native");
    group.sample_size(10);
    group.bench_function("encode_lowdelay_qp32", |b| {
        b.iter(|| encode(&frames, Config::Lowdelay, 32).expect("encode"))
    });
    group.bench_function("decode_lowdelay_qp32", |b| {
        b.iter(|| decode(&encoded.bytes).unwrap())
    });
    group.finish();
}

fn bench_fse(c: &mut Criterion) {
    let img = test_image(48, 48, 3);
    let mask = loss_mask(48, 48, 4, 3);
    let mut group = c.benchmark_group("fse_native");
    group.sample_size(10);
    group.bench_function("conceal_48x48_4blocks", |b| {
        b.iter(|| {
            let mut work = img.clone();
            fse::conceal(&mut work, &mask, fse::ITERATIONS);
            work
        })
    });
    group.finish();
}

criterion_group!(benches, bench_hevc, bench_fse);
criterion_main!(benches);
