//! The simulated machine: image loading, predecode, and the run loop.
//!
//! Loading an image predecodes every word once (the analogue of OVP's
//! morphing: the expensive decode happens once and execution dispatches
//! on the predecoded form). Per-category counters are incremented
//! inline in the run loop, not through callbacks, mirroring the
//! implementation note in Section III of the paper.

use crate::blocks::BlockCache;
use crate::bus::{Bus, BusFault, RamSnapshot, RAM_BASE};
use crate::cpu::Cpu;
use crate::exec::{exec_linear, step, ExecError, ExecInfo, NullObserver, Observer, StepOut, Trap};
use crate::threaded::{build_trace, run_tops, ThreadedCache, TraceCache, TraceHalt, TraceSlot};
use nfp_sparc::{decode, Category, CategoryCounts, Instr};
use std::time::{Duration, Instant};

/// Software trap number used by programs to halt (`ta 0`); the exit
/// code is read from `%o0`.
pub const TRAP_EXIT: u32 = 0;

/// How often (in instructions) the run loop consults the wall clock
/// when a watchdog deadline is armed.
const WALL_CHECK_INTERVAL: u64 = 1 << 16;

/// What the machine does when an architectural trap fires.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum TrapPolicy {
    /// Any trap aborts the run with [`SimError::Trap`]. This is the
    /// right model for verified, fault-free workloads.
    #[default]
    Abort,
    /// Recoverable traps vector through a minimal bare-metal handler
    /// model and execution resumes: window overflow spills the oldest
    /// frame, window underflow refills it, and misaligned data accesses
    /// are skipped. Fault-injection campaigns run under this policy so
    /// that an upset perturbs the program instead of killing the
    /// simulation. Unrecoverable traps still abort.
    Recover,
}

/// How the run loop executes instructions. Every mode is bit-identical
/// to [`Dispatch::Step`] (the architectural reference, enforced by the
/// differential suites); they differ only in speed. Observed runs
/// ([`Machine::run_observed`]) always step regardless of this setting,
/// because an [`Observer`] needs every [`ExecInfo`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Dispatch {
    /// Architectural reference: fetch, match, and account one
    /// instruction at a time.
    Step,
    /// Block-batched accounting (DESIGN.md §8): straight-line runs
    /// execute through `exec_linear` with one counter/pc commit per
    /// block.
    Block,
    /// Threaded-code dispatch: straight-line runs execute through the
    /// predecoded function-pointer table — one indirect call per
    /// instruction, zero decode or match (DESIGN.md §13).
    Threaded,
    /// Threaded dispatch plus superblock traces: basic blocks chained
    /// across statically-predicted branches and delay slots, so hot
    /// loop iterations retire without returning to the dispatcher;
    /// side-exit guards fall back to the step path (DESIGN.md §13).
    #[default]
    Traced,
}

impl Dispatch {
    /// All modes, in reference-first order (differential suites sweep
    /// this).
    pub const ALL: [Dispatch; 4] = [
        Dispatch::Step,
        Dispatch::Block,
        Dispatch::Threaded,
        Dispatch::Traced,
    ];

    /// Stable lowercase name (CLI flags, journal headers).
    pub fn as_str(self) -> &'static str {
        match self {
            Dispatch::Step => "step",
            Dispatch::Block => "block",
            Dispatch::Threaded => "threaded",
            Dispatch::Traced => "traced",
        }
    }

    /// Parses [`Dispatch::as_str`] output.
    pub fn parse(s: &str) -> Option<Dispatch> {
        Dispatch::ALL.into_iter().find(|d| d.as_str() == s)
    }
}

impl std::fmt::Display for Dispatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Machine configuration.
#[derive(Debug, Clone, Copy)]
pub struct MachineConfig {
    /// RAM size in bytes.
    pub ram_size: u32,
    /// Whether the FPU is present (Table IV's design choice).
    pub fpu_enabled: bool,
    /// Whether per-category counters are maintained. Disabling them
    /// gives the "plain ISS" point of the paper's Fig. 1.
    pub count_categories: bool,
    /// Trap handling policy (see [`TrapPolicy`]).
    pub trap_policy: TrapPolicy,
    /// Execution strategy for unobserved runs (see [`Dispatch`]). All
    /// modes are bit-identical; the step path remains the reference
    /// and is used automatically whenever an [`Observer`] is attached,
    /// at block-ending instructions, in delay slots, outside the
    /// loaded image, and to re-present instructions after a mid-block
    /// trap.
    pub dispatch: Dispatch,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            ram_size: crate::bus::DEFAULT_RAM_SIZE,
            fpu_enabled: true,
            count_categories: true,
            trap_policy: TrapPolicy::Abort,
            dispatch: Dispatch::Traced,
        }
    }
}

/// Counts of traps absorbed by the bare-metal handler model under
/// [`TrapPolicy::Recover`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrapStats {
    /// Window-overflow traps resolved by spilling the oldest frame.
    pub overflow_spills: u64,
    /// Window-underflow traps refilled from the spill stack.
    pub underflow_fills: u64,
    /// Window-underflow traps with an empty spill stack (corrupted
    /// control flow); the window keeps stale contents.
    pub underflow_stale: u64,
    /// Misaligned data accesses skipped by the handler model.
    pub misaligned_skips: u64,
}

impl TrapStats {
    /// Total traps absorbed.
    pub fn total(&self) -> u64 {
        self.overflow_spills + self.underflow_fills + self.underflow_stale + self.misaligned_skips
    }
}

/// Run-length limits enforced by [`Machine::run_watchdog`]: a hard
/// instruction budget (deterministic) plus an optional wall-clock
/// deadline as a safety net against simulator-level slowdowns. Either
/// expiring yields [`SimError::WatchdogExpired`].
#[derive(Debug, Clone, Copy)]
pub struct Watchdog {
    /// Maximum further instructions to execute.
    pub max_instrs: u64,
    /// Optional wall-clock deadline, checked every
    /// [`WALL_CHECK_INTERVAL`] instructions.
    pub wall: Option<Duration>,
}

/// Why a run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitReason {
    /// The program executed `ta 0`; carries `%o0` as exit code.
    Halted(u32),
}

/// Simulation-level errors.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum SimError {
    /// An architectural trap with no bare-metal handler.
    Trap(Trap),
    /// A software trap number the host does not implement.
    UnknownSoftTrap { pc: u32, trap: u32 },
    /// The instruction budget ran out before the program halted.
    BudgetExhausted { limit: u64 },
    /// A watchdog (instruction budget or wall-clock deadline) cut the
    /// run short; the program is considered hung.
    WatchdogExpired { instret: u64 },
    /// [`Machine::run_until`] halted before reaching its target
    /// instruction count.
    HaltedEarly { instret: u64 },
    /// An image load or patch touched memory outside RAM.
    BadAddress(BusFault),
    /// A code patch referenced an instruction index outside the image.
    BadCodeIndex { index: usize, len: usize },
    /// A block-ending instruction was dispatched through a linear
    /// execution path: the dispatch table (or block cache) disagrees
    /// with the instruction stream. This is a simulator-integrity
    /// violation, reported as a typed error instead of a panic.
    DispatchViolation { pc: u32 },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Trap(t) => write!(f, "unhandled trap: {t}"),
            SimError::UnknownSoftTrap { pc, trap } => {
                write!(f, "unknown software trap {trap} at 0x{pc:08x}")
            }
            SimError::BudgetExhausted { limit } => {
                write!(f, "instruction budget of {limit} exhausted")
            }
            SimError::WatchdogExpired { instret } => {
                write!(f, "watchdog expired after {instret} instructions")
            }
            SimError::HaltedEarly { instret } => {
                write!(
                    f,
                    "program halted after {instret} instructions, before the replay target"
                )
            }
            SimError::BadAddress(fault) => write!(f, "bad address: {fault}"),
            SimError::BadCodeIndex { index, len } => {
                write!(
                    f,
                    "code index {index} out of range for image of {len} instructions"
                )
            }
            SimError::DispatchViolation { pc } => {
                write!(
                    f,
                    "block-ending instruction dispatched as linear at 0x{pc:08x}: \
                     corrupted dispatch table"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<Trap> for SimError {
    fn from(t: Trap) -> Self {
        SimError::Trap(t)
    }
}

impl From<BusFault> for SimError {
    fn from(f: BusFault) -> Self {
        SimError::BadAddress(f)
    }
}

/// Result of a completed run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Exit code passed to `ta 0` in `%o0`.
    pub exit_code: u32,
    /// Dynamic instruction count.
    pub instret: u64,
    /// Per-category counts (all zero if counting was disabled).
    pub counts: CategoryCounts,
    /// Console text output.
    pub text: String,
    /// Structured result words emitted by the program.
    pub words: Vec<u32>,
    /// Traps absorbed by the recovery model during this machine's
    /// lifetime (zero under [`TrapPolicy::Abort`]).
    pub recovered_traps: u64,
}

/// A point-in-time capture of the full machine state, sufficient to
/// rewind with [`Machine::restore`]. Only valid on the machine that
/// created it (the RAM snapshot is relative to this machine's boot
/// images, and console restoration relies on the console streams being
/// append-only).
#[derive(Debug, Clone)]
pub struct Checkpoint {
    cpu: Cpu,
    instret: u64,
    counts: CategoryCounts,
    trap_stats: TrapStats,
    ram: RamSnapshot,
    console_text_len: usize,
    console_words_len: usize,
}

impl Checkpoint {
    /// Instruction count at capture time.
    pub fn instret(&self) -> u64 {
        self.instret
    }

    /// Approximate heap footprint of the RAM portion in bytes.
    pub fn ram_bytes(&self) -> usize {
        self.ram.byte_size()
    }
}

/// A loaded machine ready to run.
pub struct Machine {
    /// Architectural CPU state.
    pub cpu: Cpu,
    /// Memory and devices.
    pub bus: Bus,
    config: MachineConfig,
    code_base: u32,
    code: Vec<(Instr, Category)>,
    /// Block summaries over `code`; `None` when stale (image loaded or
    /// patched since the last build) — rebuilt lazily by the next
    /// batched run.
    blocks: Option<BlockCache>,
    /// Threaded dispatch table over `code`; invalidated exactly like
    /// `blocks` (pure function of the predecoded image), rebuilt
    /// lazily by the next threaded/traced run.
    threaded: Option<ThreadedCache>,
    /// Superblock traces keyed by block-leader index; invalidated
    /// exactly like `blocks`, rebuilt lazily per trace head.
    traces: Option<TraceCache>,
    counts: CategoryCounts,
    instret: u64,
    trap_stats: TrapStats,
    dispatch_stats: DispatchStats,
}

/// How many instructions each dispatch path retired (diagnostics for
/// the speed work: a traced run whose `traced` share is low says the
/// trace builder is bailing, not that traces are slow).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DispatchStats {
    /// Retired inside superblock traces.
    pub traced: u64,
    /// Retired in straight-line batches (threaded or linear).
    pub batched: u64,
    /// Retired on the per-instruction step path.
    pub stepped: u64,
}

impl Machine {
    /// Creates a machine with the given configuration.
    pub fn new(config: MachineConfig) -> Self {
        Machine {
            cpu: Cpu::new(),
            bus: Bus::with_ram(RAM_BASE, config.ram_size),
            config,
            code_base: RAM_BASE,
            code: Vec::new(),
            blocks: None,
            threaded: None,
            traces: None,
            counts: CategoryCounts::new(),
            instret: 0,
            trap_stats: TrapStats::default(),
            dispatch_stats: DispatchStats::default(),
        }
    }

    /// Per-dispatch-path retirement counters accumulated across runs.
    pub fn dispatch_stats(&self) -> DispatchStats {
        self.dispatch_stats
    }

    /// The active configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Switches the trap handling policy; takes effect from the next
    /// trap.
    pub fn set_trap_policy(&mut self, policy: TrapPolicy) {
        self.config.trap_policy = policy;
    }

    /// Switches the execution strategy (see [`Dispatch`]); takes
    /// effect from the next run.
    pub fn set_dispatch(&mut self, dispatch: Dispatch) {
        self.config.dispatch = dispatch;
    }

    /// Traps absorbed by the recovery model so far.
    pub fn trap_stats(&self) -> &TrapStats {
        &self.trap_stats
    }

    /// Loads `words` at `base`, predecodes them, sets the entry point
    /// to `base`, and initialises the stack pointer below the top of
    /// RAM. Fails with [`SimError::BadAddress`] if the image does not
    /// fit in RAM, is not word-aligned, or overlaps a segment loaded
    /// earlier (all reported as typed errors — a malformed image must
    /// never panic the simulator).
    pub fn load_image(&mut self, base: u32, words: &[u32]) -> Result<(), SimError> {
        // The fast fetch path and the block cache both derive the
        // predecode index as (pc - base) / 4; an unaligned base would
        // silently alias indices, so reject it up front.
        if !base.is_multiple_of(4) {
            return Err(SimError::BadAddress(BusFault::Misaligned {
                addr: base,
                size: 4,
            }));
        }
        let mut bytes = Vec::with_capacity(words.len() * 4);
        for w in words {
            bytes.extend_from_slice(&w.to_be_bytes());
        }
        self.bus.write_bytes(base, &bytes)?;
        self.code_base = base;
        self.code = words
            .iter()
            .map(|&w| {
                let i = decode(w);
                let c = i.category();
                (i, c)
            })
            .collect();
        self.blocks = None;
        self.threaded = None;
        self.traces = None;
        self.cpu.pc = base;
        self.cpu.npc = base.wrapping_add(4);
        // Stack: top of RAM minus a red zone, 8-byte aligned.
        let sp = (RAM_BASE + self.config.ram_size - 4096) & !7;
        self.cpu.set(nfp_sparc::regs::SP, sp);
        Ok(())
    }

    /// Convenience constructor: default config, image at the RAM base.
    /// Panics if the image does not fit in the default 64 MiB RAM (test
    /// and example use; production callers go through [`Machine::new`]
    /// + [`Machine::load_image`]).
    pub fn boot(words: &[u32]) -> Self {
        let mut m = Machine::new(MachineConfig::default());
        m.load_image(RAM_BASE, words)
            .expect("boot image exceeds default RAM");
        m
    }

    /// Base address of the predecoded image.
    pub fn code_base(&self) -> u32 {
        self.code_base
    }

    /// Length of the predecoded image in instructions.
    pub fn code_len(&self) -> usize {
        self.code.len()
    }

    /// Category of the predecoded instruction at `index`, if in range.
    pub fn code_category(&self, index: usize) -> Option<Category> {
        self.code.get(index).map(|&(_, c)| c)
    }

    /// Category of the instruction the machine would execute next, or
    /// `None` if fetching it would trap.
    pub fn next_category(&mut self) -> Option<Category> {
        self.fetch(self.cpu.pc).ok().map(|(_, c)| c)
    }

    /// Replaces the instruction word at `index` in the loaded image:
    /// both the RAM copy and the predecoded form. Returns the previous
    /// word. This is the hook fault injection uses to corrupt the
    /// instruction stream; the RAM write is dirty-tracked, so a later
    /// [`Machine::restore`] rewinds it, but the predecode must be
    /// undone explicitly by patching the old word back.
    pub fn patch_code_word(&mut self, index: usize, word: u32) -> Result<u32, SimError> {
        if index >= self.code.len() {
            return Err(SimError::BadCodeIndex {
                index,
                len: self.code.len(),
            });
        }
        let addr = self.code_base + (index as u32) * 4;
        let old = self.bus.load32(addr)?;
        self.bus.store32(addr, word)?;
        let i = decode(word);
        self.code[index] = (i, i.category());
        // The patched word may create or remove a block boundary, so
        // every cached block summary, dispatch-table entry, and trace
        // crossing it is stale; drop all three derived caches and let
        // the next batched run rebuild them. This is the invalidation
        // that keeps fault-injection code flips bit-identical across
        // dispatch modes.
        self.blocks = None;
        self.threaded = None;
        self.traces = None;
        Ok(old)
    }

    /// The predecoded `(instruction, category)` entry at `index` — the
    /// exact pair [`Machine::fetch`] would serve — or `None` out of
    /// range. Fault injection captures this before a code patch so the
    /// undo can restore it verbatim via [`Machine::set_code_entry`].
    pub fn code_entry(&self, index: usize) -> Option<(Instr, Category)> {
        self.code.get(index).copied()
    }

    /// Restores a predecoded entry captured by [`Machine::code_entry`],
    /// without re-decoding the RAM word. [`Machine::patch_code_word`]
    /// derives the entry from the word it writes, which is right for a
    /// fresh patch but wrong for an *undo*: when the patched address
    /// holds a data word inside the image that the kernel has since
    /// overwritten, decode(runtime word) need not equal the boot-image
    /// entry that was there before the patch, and re-deriving it would
    /// drift the predecode — a rig replaying the same code fault twice
    /// would then attribute two different categories. Drops the same
    /// derived caches as a patch.
    pub fn set_code_entry(
        &mut self,
        index: usize,
        entry: (Instr, Category),
    ) -> Result<(), SimError> {
        if index >= self.code.len() {
            return Err(SimError::BadCodeIndex {
                index,
                len: self.code.len(),
            });
        }
        self.code[index] = entry;
        self.blocks = None;
        self.threaded = None;
        self.traces = None;
        Ok(())
    }

    /// Captures the full machine state for a later [`Machine::restore`].
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            cpu: self.cpu.clone(),
            instret: self.instret,
            counts: self.counts,
            trap_stats: self.trap_stats,
            ram: self.bus.snapshot_ram(),
            console_text_len: self.bus.console.text.len(),
            console_words_len: self.bus.console.words.len(),
        }
    }

    /// Rewinds the machine to `cp`, which must have been captured from
    /// this machine. Note this does not undo [`Machine::patch_code_word`]
    /// effects on the *predecoded* image — callers that patch code must
    /// patch the original word back themselves (the RAM copy is
    /// rewound).
    pub fn restore(&mut self, cp: &Checkpoint) {
        self.cpu = cp.cpu.clone();
        self.instret = cp.instret;
        self.counts = cp.counts;
        self.trap_stats = cp.trap_stats;
        self.bus.restore_ram(&cp.ram);
        self.bus.console.text.truncate(cp.console_text_len);
        self.bus.console.words.truncate(cp.console_words_len);
    }

    /// Dynamic instruction count so far.
    pub fn instret(&self) -> u64 {
        self.instret
    }

    /// Per-category counters ("the simulator reads out these registers
    /// and presents the results", paper §III).
    pub fn counts(&self) -> &CategoryCounts {
        &self.counts
    }

    /// Fetches the predecoded instruction at `pc`, falling back to
    /// decoding from memory for execution outside the loaded image.
    #[inline]
    fn fetch(&mut self, pc: u32) -> Result<(Instr, Category), Trap> {
        let idx = pc.wrapping_sub(self.code_base) as usize / 4;
        if pc.is_multiple_of(4) && pc >= self.code_base && idx < self.code.len() {
            Ok(self.code[idx])
        } else {
            self.fetch_slow(pc)
        }
    }

    #[cold]
    fn fetch_slow(&mut self, pc: u32) -> Result<(Instr, Category), Trap> {
        if !pc.is_multiple_of(4) {
            return Err(Trap::Misaligned {
                pc,
                addr: pc,
                size: 4,
            });
        }
        let word = self
            .bus
            .load32(pc)
            .map_err(|_| Trap::Unmapped { pc, addr: pc })?;
        let i = decode(word);
        Ok((i, i.category()))
    }

    /// Runs until the program halts, an error occurs, or `max_instrs`
    /// instructions have executed, without an observer (fast path,
    /// dispatched per [`MachineConfig::dispatch`]).
    pub fn run(&mut self, max_instrs: u64) -> Result<RunResult, SimError> {
        self.run_inner(
            max_instrs,
            None,
            false,
            self.config.dispatch,
            &mut NullObserver,
        )
    }

    /// Runs with a per-instruction [`Observer`] (the detailed hardware
    /// model attaches here). An observer needs every [`ExecInfo`], so
    /// this path always steps instruction by instruction, regardless of
    /// [`MachineConfig::dispatch`].
    pub fn run_observed<O: Observer>(
        &mut self,
        max_instrs: u64,
        obs: &mut O,
    ) -> Result<RunResult, SimError> {
        self.run_inner(max_instrs, None, false, Dispatch::Step, obs)
    }

    /// Runs under a [`Watchdog`]: budget or deadline expiry yields
    /// [`SimError::WatchdogExpired`] instead of `BudgetExhausted`, so a
    /// fault-injected run that never halts is reported as a hang rather
    /// than a harness misconfiguration.
    pub fn run_watchdog(&mut self, wd: &Watchdog) -> Result<RunResult, SimError> {
        let deadline = wd.wall.map(|d| Instant::now() + d);
        self.run_inner(
            wd.max_instrs,
            deadline,
            true,
            self.config.dispatch,
            &mut NullObserver,
        )
    }

    /// Replays execution until the dynamic instruction count reaches
    /// `target`. Used by fault campaigns to position the machine at an
    /// injection point; the program halting first is an error
    /// ([`SimError::HaltedEarly`]). Block batching clamps its batches
    /// to the remaining budget, so the machine stops at *exactly*
    /// `target` retired instructions — a fault plan aimed at an
    /// instant inside a block still injects at the precise instruction.
    pub fn run_until(&mut self, target: u64) -> Result<(), SimError> {
        if target <= self.instret {
            return Ok(());
        }
        match self.run_inner(
            target - self.instret,
            None,
            false,
            self.config.dispatch,
            &mut NullObserver,
        ) {
            Err(SimError::BudgetExhausted { .. }) => Ok(()),
            Ok(_) => Err(SimError::HaltedEarly {
                instret: self.instret,
            }),
            Err(e) => Err(e),
        }
    }

    fn run_inner<O: Observer>(
        &mut self,
        max_instrs: u64,
        deadline: Option<Instant>,
        watchdog: bool,
        dispatch: Dispatch,
        obs: &mut O,
    ) -> Result<RunResult, SimError> {
        let counting = self.config.count_categories;
        let fpu = self.config.fpu_enabled;
        let recover = self.config.trap_policy == TrapPolicy::Recover;
        let limit = self.instret.saturating_add(max_instrs);
        let batched = dispatch != Dispatch::Step;
        let threaded = matches!(dispatch, Dispatch::Threaded | Dispatch::Traced);
        if batched && self.blocks.is_none() && !self.code.is_empty() {
            self.blocks = Some(BlockCache::build(&self.code));
        }
        if threaded && self.threaded.is_none() && !self.code.is_empty() {
            self.threaded = Some(ThreadedCache::build(&self.code, self.code_base, fpu));
        }
        if dispatch == Dispatch::Traced && self.traces.is_none() && !self.code.is_empty() {
            self.traces = Some(TraceCache::new(&self.code, self.code_base));
        }
        // Next instret at which an armed wall-clock deadline is
        // consulted (batches can jump past exact interval multiples).
        let mut wall_check_at = self.instret;
        // Scratch record for the batched path; exec_linear fills it and
        // nobody reads it (no observer is attached when batching).
        let mut scratch = ExecInfo::new(0, Instr::NOP, Category::Nop);
        loop {
            if self.instret >= limit {
                return Err(if watchdog {
                    SimError::WatchdogExpired {
                        instret: self.instret,
                    }
                } else {
                    SimError::BudgetExhausted { limit: max_instrs }
                });
            }
            if let Some(dl) = deadline {
                if self.instret >= wall_check_at {
                    if Instant::now() >= dl {
                        return Err(SimError::WatchdogExpired {
                            instret: self.instret,
                        });
                    }
                    wall_check_at = self.instret + WALL_CHECK_INTERVAL;
                }
            }
            if batched {
                let pc = self.cpu.pc;
                let idx = pc.wrapping_sub(self.code_base) as usize / 4;
                // Batch only from a sequential state (npc = pc + 4)
                // inside the image; a pending delay-slot target or
                // out-of-image execution falls back to stepping.
                if pc.is_multiple_of(4)
                    && pc >= self.code_base
                    && idx < self.code.len()
                    && self.cpu.npc == pc.wrapping_add(4)
                {
                    // Traced mode: try a superblock first. Traces are
                    // built lazily at block-leader indices; a trace is
                    // only entered when it fits whole in the remaining
                    // budget, so run_until() exactness is unaffected.
                    if dispatch == Dispatch::Traced {
                        let traces = self.traces.as_mut().expect("built above");
                        if traces.is_head(idx) {
                            if traces.is_untried(idx) {
                                let slot = build_trace(
                                    &self.code,
                                    self.code_base,
                                    self.blocks.as_ref().expect("built above"),
                                    self.threaded.as_ref().expect("built above").ops(),
                                    fpu,
                                    idx,
                                );
                                traces.set(idx, slot);
                            }
                            if let TraceSlot::Present(trace) = traces.slot(idx) {
                                if (trace.len() as u64) <= limit - self.instret {
                                    let halt = trace.run(&mut self.cpu, &mut self.bus);
                                    // (retired ops, pc/npc to set, error)
                                    let (retired, state, err) = match halt {
                                        TraceHalt::Completed => {
                                            let e = trace.end_pc();
                                            (trace.len(), Some((e, e.wrapping_add(4))), None)
                                        }
                                        // The guard wrote the side-exit
                                        // pc/npc itself.
                                        TraceHalt::Exited { retired } => (retired, None, None),
                                        TraceHalt::Trapped { at, err } => {
                                            (at, Some(trace.meta(at)), Some(err))
                                        }
                                    };
                                    let delta = trace.counts_upto(retired);
                                    self.instret += retired as u64;
                                    self.dispatch_stats.traced += retired as u64;
                                    if counting {
                                        self.counts = self.counts.merged(&delta);
                                    }
                                    if let Some((p, n)) = state {
                                        self.cpu.pc = p;
                                        self.cpu.npc = n;
                                    }
                                    if let Some(e) = err {
                                        self.settle(e, recover)?;
                                    }
                                    continue;
                                }
                            }
                        }
                    }
                    let run_end = self.blocks.as_ref().expect("built above").run_end(idx);
                    // Clamp to the budget so run_until() still stops at
                    // an exact instruction count mid-block.
                    let take = ((run_end - idx) as u64).min(limit - self.instret) as usize;
                    let end = idx + take;
                    if end > idx {
                        let mut j = idx;
                        let mut pending: Option<ExecError> = None;
                        if threaded {
                            // Threaded dispatch: one predecoded op per
                            // instruction, zero decode or re-match —
                            // hot kinds inlined at the dispatch site,
                            // the tail through the table's fn pointer.
                            let tops = self.threaded.as_ref().expect("built above").ops();
                            let (done, err) =
                                run_tops(&tops[idx..end], &mut self.cpu, &mut self.bus);
                            j += done;
                            pending = err;
                        } else {
                            let mut ipc = pc;
                            for (instr, _) in &self.code[idx..end] {
                                if let Err(e) = exec_linear::<false>(
                                    &mut self.cpu,
                                    &mut self.bus,
                                    instr,
                                    fpu,
                                    ipc,
                                    &mut scratch,
                                ) {
                                    pending = Some(e);
                                    break;
                                }
                                j += 1;
                                ipc = ipc.wrapping_add(4);
                            }
                        }
                        // Commit the completed prefix [idx, j) in one
                        // batch: linear execution leaves pc/npc
                        // untouched, so on a trap the machine state is
                        // exactly what stepping would have left — pc
                        // at the faulting instruction, nothing of it
                        // counted.
                        if j > idx {
                            self.instret += (j - idx) as u64;
                            self.dispatch_stats.batched += (j - idx) as u64;
                            if counting {
                                let delta = self
                                    .blocks
                                    .as_ref()
                                    .expect("built above")
                                    .range_counts(idx, j);
                                self.counts = self.counts.merged(&delta);
                            }
                            self.cpu.pc = self.code_base.wrapping_add((j as u32) * 4);
                            self.cpu.npc = self.cpu.pc.wrapping_add(4);
                        }
                        if let Some(e) = pending {
                            self.settle(e, recover)?;
                        }
                        continue;
                    }
                    // take == 0: the next instruction ends a block
                    // (CTI or t<cond>) — step it below with full
                    // per-instruction accounting.
                }
            }
            // Fetch traps (misaligned or unmapped pc) are always fatal:
            // there is no sensible instruction to resume past.
            let (instr, cat) = self.fetch(self.cpu.pc)?;
            let outcome = match step(&mut self.cpu, &mut self.bus, &instr, fpu, obs) {
                Ok(o) => o,
                Err(trap) => {
                    if recover && self.try_recover(&trap) {
                        continue;
                    }
                    return Err(trap.into());
                }
            };
            self.instret += 1;
            self.dispatch_stats.stepped += 1;
            if counting {
                self.counts.bump(cat);
            }
            match outcome {
                StepOut::Normal => {}
                StepOut::SoftTrap(TRAP_EXIT) => {
                    let exit_code = self.cpu.get(nfp_sparc::Reg::o(0));
                    return Ok(RunResult {
                        exit_code,
                        instret: self.instret,
                        counts: self.counts,
                        text: self.bus.console.text.clone(),
                        words: self.bus.console.words.clone(),
                        recovered_traps: self.trap_stats.total(),
                    });
                }
                StepOut::SoftTrap(trap) => {
                    return Err(SimError::UnknownSoftTrap {
                        pc: self.cpu.pc,
                        trap,
                    });
                }
            }
        }
    }

    /// Settles a linear-dispatch execution error: architectural traps
    /// go through the recovery model (exactly like the step path),
    /// while routing violations — a block-ending instruction executed
    /// through a linear path, i.e. a corrupted dispatch table — are
    /// surfaced as [`SimError::DispatchViolation`]. `Ok(())` means the
    /// trap was absorbed and the run loop should continue.
    fn settle(&mut self, e: ExecError, recover: bool) -> Result<(), SimError> {
        match e {
            ExecError::Trap(t) => {
                if recover && self.try_recover(&t) {
                    Ok(())
                } else {
                    Err(t.into())
                }
            }
            ExecError::NotLinear { pc } => Err(SimError::DispatchViolation { pc }),
        }
    }

    /// Test hook: corrupts the threaded dispatch-table entry at code
    /// index `index` so it reports a routing violation when executed,
    /// simulating a fault-flipped or inconsistent dispatch table.
    /// Returns `false` (and does nothing) if the index is out of range
    /// or names a block-ending instruction (whose entry is *expected*
    /// to be non-linear). The trace cache is dropped so traces rebuild
    /// from the corrupted table — a corrupted entry mid-superblock
    /// must surface identically. The corruption lasts until the next
    /// image load or code patch rebuilds the caches.
    #[doc(hidden)]
    pub fn test_corrupt_dispatch(&mut self, index: usize) -> bool {
        if index >= self.code.len() || self.code[index].0.ends_block() {
            return false;
        }
        if self.threaded.is_none() {
            self.threaded = Some(ThreadedCache::build(
                &self.code,
                self.code_base,
                self.config.fpu_enabled,
            ));
        }
        self.threaded.as_mut().expect("built above").corrupt(index);
        self.traces = None;
        true
    }

    /// The bare-metal trap handler model: absorbs recoverable traps,
    /// charging one instruction each so the watchdog still makes
    /// progress through trap storms. Returns `false` for traps the
    /// model cannot handle; `step` leaves `pc`/`npc` untouched on a
    /// trap, so on `true` the loop either retries the faulting
    /// instruction (window traps, now resolvable) or resumes past it
    /// (misaligned access).
    fn try_recover(&mut self, trap: &Trap) -> bool {
        let handled = match trap {
            Trap::WindowOverflow { .. } => {
                if !self.cpu.window_spill() {
                    return false; // spill stack exhausted
                }
                self.trap_stats.overflow_spills += 1;
                true
            }
            Trap::WindowUnderflow { .. } => {
                if self.cpu.window_fill() {
                    self.trap_stats.underflow_fills += 1;
                } else {
                    self.trap_stats.underflow_stale += 1;
                }
                true
            }
            Trap::Misaligned { .. } => {
                // Skip the faulting instruction, as a handler that
                // emulates-and-returns would.
                self.cpu.pc = self.cpu.npc;
                self.cpu.npc = self.cpu.npc.wrapping_add(4);
                self.trap_stats.misaligned_skips += 1;
                true
            }
            _ => false,
        };
        if handled {
            self.instret += 1;
        }
        handled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfp_sparc::asm::Assembler;
    use nfp_sparc::cond::ICond;
    use nfp_sparc::regs::G0;
    use nfp_sparc::{AluOp, Reg};

    fn run_asm(build: impl FnOnce(&mut Assembler)) -> RunResult {
        let mut a = Assembler::new(RAM_BASE);
        build(&mut a);
        let words = a.finish().expect("assembly failed");
        let mut m = Machine::boot(&words);
        m.run(1_000_000).expect("run failed")
    }

    #[test]
    fn exit_code_comes_from_o0() {
        let r = run_asm(|a| {
            a.mov(42, Reg::o(0));
            a.ta(0);
            a.nop();
        });
        assert_eq!(r.exit_code, 42);
        assert_eq!(r.instret, 2);
    }

    #[test]
    fn counted_loop_has_expected_category_counts() {
        // for (i = 10; i != 0; i--) {}  -- 10 iterations
        let r = run_asm(|a| {
            a.mov(10, Reg::l(0));
            a.label("loop");
            a.alu(AluOp::SubCc, Reg::l(0), 1, Reg::l(0));
            a.b(ICond::Ne, "loop");
            a.nop();
            a.mov(0, Reg::o(0));
            a.ta(0);
            a.nop();
        });
        // 1 mov + 10 subcc + 10 branches + 10 delay nops + 1 mov + 1 ta
        assert_eq!(r.counts[Category::IntArith], 12);
        assert_eq!(r.counts[Category::Jump], 10);
        assert_eq!(r.counts[Category::Nop], 10);
        assert_eq!(r.counts[Category::Other], 1);
        assert_eq!(r.instret, 33);
    }

    #[test]
    fn console_output() {
        let r = run_asm(|a| {
            a.set32(crate::bus::CONSOLE_TX, Reg::l(0));
            a.mov(b'O' as i32, Reg::l(1));
            a.st(nfp_sparc::MemSize::Word, Reg::l(1), Reg::l(0), 0);
            a.mov(b'K' as i32, Reg::l(1));
            a.st(nfp_sparc::MemSize::Word, Reg::l(1), Reg::l(0), 0);
            a.mov(7, Reg::l(1));
            a.st(nfp_sparc::MemSize::Word, Reg::l(1), Reg::l(0), 4);
            a.mov(0, Reg::o(0));
            a.ta(0);
            a.nop();
        });
        assert_eq!(r.text, "OK");
        assert_eq!(r.words, vec![7]);
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let mut a = Assembler::new(RAM_BASE);
        a.label("spin").ba("spin").nop();
        let words = a.finish().unwrap();
        let mut m = Machine::boot(&words);
        assert!(matches!(
            m.run(100),
            Err(SimError::BudgetExhausted { limit: 100 })
        ));
    }

    #[test]
    fn unhandled_trap_is_an_error() {
        let mut m = Machine::boot(&[0]); // unimp 0
        assert!(matches!(
            m.run(10),
            Err(SimError::Trap(Trap::Illegal { .. }))
        ));
    }

    #[test]
    fn unknown_soft_trap_is_an_error() {
        let mut a = Assembler::new(RAM_BASE);
        a.ta(99).nop();
        let words = a.finish().unwrap();
        let mut m = Machine::boot(&words);
        assert!(matches!(
            m.run(10),
            Err(SimError::UnknownSoftTrap { trap: 99, .. })
        ));
    }

    #[test]
    fn call_and_retl() {
        let r = run_asm(|a| {
            a.mov(5, Reg::o(0));
            a.call("double_it");
            a.nop();
            a.ta(0);
            a.nop();
            a.label("double_it");
            a.alu(AluOp::Add, Reg::o(0), Operand::Reg(Reg::o(0)), Reg::o(0));
            a.retl();
            a.nop();
        });
        assert_eq!(r.exit_code, 10);
    }

    use nfp_sparc::Operand;

    #[test]
    fn counting_can_be_disabled() {
        let mut a = Assembler::new(RAM_BASE);
        a.mov(0, Reg::o(0)).ta(0).nop();
        let words = a.finish().unwrap();
        let mut m = Machine::new(MachineConfig {
            count_categories: false,
            ..MachineConfig::default()
        });
        m.load_image(RAM_BASE, &words).unwrap();
        let r = m.run(100).unwrap();
        assert_eq!(r.counts.total(), 0);
        assert_eq!(r.instret, 2);
    }

    #[test]
    fn stack_pointer_is_initialised() {
        let mut m = Machine::new(MachineConfig {
            ram_size: 1 << 20,
            ..MachineConfig::default()
        });
        m.load_image(RAM_BASE, &[0x0100_0000]).unwrap();
        let sp = m.cpu.get(nfp_sparc::regs::SP);
        assert_eq!(sp % 8, 0);
        assert!(sp > RAM_BASE && sp < RAM_BASE + (1 << 20));
    }

    fn deep_window_program() -> Vec<u32> {
        // 7 in %l0 of window 0; NWINDOWS saves (two past the overflow
        // point), clobber the deep window's %l0, unwind, and return
        // window 0's %l0 — which survives only if the handler model
        // spills and refills it correctly.
        let mut a = Assembler::new(RAM_BASE);
        a.mov(7, Reg::l(0));
        for _ in 0..crate::cpu::NWINDOWS {
            a.push(Instr::Save {
                rd: G0,
                rs1: G0,
                op2: Operand::Imm(0),
            });
        }
        a.mov(99, Reg::l(0));
        for _ in 0..crate::cpu::NWINDOWS {
            a.push(Instr::Restore {
                rd: G0,
                rs1: G0,
                op2: Operand::Imm(0),
            });
        }
        a.alu(AluOp::Or, Reg::l(0), Operand::Imm(0), Reg::o(0));
        a.ta(0);
        a.nop();
        a.finish().unwrap()
    }

    #[test]
    fn recover_policy_spills_and_fills_windows() {
        let mut m = Machine::boot(&deep_window_program());
        assert!(matches!(
            m.run(1000),
            Err(SimError::Trap(Trap::WindowOverflow { .. }))
        ));

        let mut m = Machine::boot(&deep_window_program());
        m.set_trap_policy(TrapPolicy::Recover);
        let r = m.run(1000).expect("recovers across window traps");
        assert_eq!(r.exit_code, 7, "window 0 locals survive spill/fill");
        assert_eq!(m.trap_stats().overflow_spills, 2);
        assert_eq!(m.trap_stats().underflow_fills, 2);
        assert_eq!(r.recovered_traps, 4);
    }

    #[test]
    fn recover_policy_skips_misaligned_accesses() {
        let build = || {
            let mut a = Assembler::new(RAM_BASE);
            a.set32(RAM_BASE + 0x101, Reg::l(0));
            a.ld(nfp_sparc::MemSize::Word, false, Reg::l(0), 0, Reg::l(1));
            a.mov(4, Reg::o(0));
            a.ta(0);
            a.nop();
            a.finish().unwrap()
        };
        let mut m = Machine::boot(&build());
        assert!(matches!(
            m.run(100),
            Err(SimError::Trap(Trap::Misaligned { .. }))
        ));

        let mut m = Machine::boot(&build());
        m.set_trap_policy(TrapPolicy::Recover);
        let r = m.run(100).unwrap();
        assert_eq!(r.exit_code, 4);
        assert_eq!(m.trap_stats().misaligned_skips, 1);
    }

    #[test]
    fn unrecoverable_traps_still_abort_under_recover() {
        let mut m = Machine::boot(&[0]); // unimp 0
        m.set_trap_policy(TrapPolicy::Recover);
        assert!(matches!(
            m.run(10),
            Err(SimError::Trap(Trap::Illegal { .. }))
        ));
    }

    #[test]
    fn watchdog_terminates_branch_to_self() {
        // The canonical hang corruption: an SEU turns an instruction
        // into a branch-to-self. The watchdog must end the run with a
        // clean WatchdogExpired, not BudgetExhausted or a panic.
        let mut a = Assembler::new(RAM_BASE);
        a.label("spin").ba("spin").nop();
        let mut m = Machine::boot(&a.finish().unwrap());
        m.set_trap_policy(TrapPolicy::Recover);
        let wd = Watchdog {
            max_instrs: 10_000,
            wall: None,
        };
        assert!(matches!(
            m.run_watchdog(&wd),
            Err(SimError::WatchdogExpired { instret: 10_000 })
        ));
    }

    #[test]
    fn watchdog_wall_clock_deadline_fires() {
        let mut a = Assembler::new(RAM_BASE);
        a.label("spin").ba("spin").nop();
        let mut m = Machine::boot(&a.finish().unwrap());
        let wd = Watchdog {
            max_instrs: u64::MAX,
            wall: Some(Duration::ZERO),
        };
        assert!(matches!(
            m.run_watchdog(&wd),
            Err(SimError::WatchdogExpired { .. })
        ));
    }

    #[test]
    fn checkpoint_restore_replays_identically() {
        // A program with memory traffic and console output on both
        // sides of the checkpoint.
        let mut a = Assembler::new(RAM_BASE);
        a.set32(crate::bus::CONSOLE_EMIT, Reg::l(0));
        a.set32(RAM_BASE + 0x2000, Reg::l(1));
        a.mov(5, Reg::l(2));
        a.label("loop");
        a.st(nfp_sparc::MemSize::Word, Reg::l(2), Reg::l(1), 0);
        a.st(nfp_sparc::MemSize::Word, Reg::l(2), Reg::l(0), 0);
        a.alu(AluOp::SubCc, Reg::l(2), 1, Reg::l(2));
        a.b(ICond::Ne, "loop");
        a.alu(AluOp::Add, Reg::l(1), 4, Reg::l(1));
        a.mov(0, Reg::o(0));
        a.ta(0);
        a.nop();
        let words = a.finish().unwrap();

        let mut m = Machine::boot(&words);
        m.run_until(12).unwrap();
        assert_eq!(m.instret(), 12);
        let cp = m.checkpoint();
        let first = m.run(10_000).unwrap();

        m.restore(&cp);
        assert_eq!(m.instret(), 12);
        let second = m.run(10_000).unwrap();
        assert_eq!(first.words, second.words);
        assert_eq!(first.text, second.text);
        assert_eq!(first.instret, second.instret);
        assert_eq!(first.counts, second.counts);
        // Memory side effects replay too.
        assert_eq!(m.bus.load32(RAM_BASE + 0x2000).unwrap(), 5);
    }

    #[test]
    fn run_until_past_halt_is_an_error() {
        let mut a = Assembler::new(RAM_BASE);
        a.mov(0, Reg::o(0)).ta(0).nop();
        let mut m = Machine::boot(&a.finish().unwrap());
        assert!(matches!(
            m.run_until(1_000),
            Err(SimError::HaltedEarly { instret: 2 })
        ));
    }

    #[test]
    fn misaligned_image_base_is_rejected() {
        let mut m = Machine::new(MachineConfig::default());
        assert!(matches!(
            m.load_image(RAM_BASE + 2, &[nfp_sparc::encode(Instr::NOP)]),
            Err(SimError::BadAddress(crate::bus::BusFault::Misaligned {
                size: 4,
                ..
            }))
        ));
    }

    #[test]
    fn image_overlapping_earlier_segment_is_rejected() {
        let mut m = Machine::new(MachineConfig::default());
        m.bus.write_bytes(RAM_BASE + 4, &[0xff; 8]).unwrap();
        assert!(matches!(
            m.load_image(RAM_BASE, &[0, 0, 0, 0]),
            Err(SimError::BadAddress(
                crate::bus::BusFault::ImageOverlap { .. }
            ))
        ));
    }

    #[test]
    fn patch_code_word_out_of_range_is_an_error() {
        let mut m = Machine::boot(&[nfp_sparc::encode(Instr::NOP)]);
        assert!(matches!(
            m.patch_code_word(5, 0),
            Err(SimError::BadCodeIndex { index: 5, len: 1 })
        ));
    }

    #[test]
    fn execution_outside_image_decodes_from_memory() {
        // Write a tiny program into RAM *by hand* beyond the image and
        // jump to it.
        let mut a = Assembler::new(RAM_BASE);
        a.set32(RAM_BASE + 0x1000, Reg::l(0));
        // store `mov 9, %o0` and `ta 0; nop` at 0x1000
        let prog = [
            nfp_sparc::encode(Instr::Alu {
                op: AluOp::Or,
                rd: Reg::o(0),
                rs1: G0,
                op2: Operand::Imm(9),
            }),
            nfp_sparc::encode(Instr::Ticc {
                cond: ICond::A,
                rs1: G0,
                op2: Operand::Imm(0),
            }),
            nfp_sparc::encode(Instr::NOP),
        ];
        for (k, w) in prog.iter().enumerate() {
            a.set32(*w, Reg::l(1));
            a.st(
                nfp_sparc::MemSize::Word,
                Reg::l(1),
                Reg::l(0),
                (k * 4) as i32,
            );
        }
        a.push(Instr::Jmpl {
            rd: G0,
            rs1: Reg::l(0),
            op2: Operand::Imm(0),
        });
        a.nop();
        let words = a.finish().unwrap();
        let mut m = Machine::boot(&words);
        let r = m.run(1000).unwrap();
        assert_eq!(r.exit_code, 9);
    }

    /// Runs `words` once per dispatch mode — step, block, threaded,
    /// traced — under the same policy and budget, and asserts every
    /// observable agrees with the stepping reference: the run/error
    /// result, retired-instruction count, category counters, full CPU
    /// state, and RAM contents.
    fn assert_modes_agree(words: &[u32], policy: TrapPolicy, budget: u64) {
        let observe = |dispatch: Dispatch| {
            let mut m = Machine::boot(words);
            m.set_trap_policy(policy);
            m.set_dispatch(dispatch);
            let res = m.run(budget);
            (
                format!("{res:?}"),
                m.instret(),
                *m.counts(),
                format!("{:?}", m.cpu),
                format!("{:?}", m.bus.snapshot_ram()),
            )
        };
        let stepped = observe(Dispatch::Step);
        for d in [Dispatch::Block, Dispatch::Threaded, Dispatch::Traced] {
            let fast = observe(d);
            assert_eq!(stepped.0, fast.0, "{d}: run result diverged");
            assert_eq!(stepped.1, fast.1, "{d}: instret diverged");
            assert_eq!(stepped.2, fast.2, "{d}: category counts diverged");
            assert_eq!(stepped.3, fast.3, "{d}: CPU state diverged");
            assert_eq!(stepped.4, fast.4, "{d}: RAM contents diverged");
        }
    }

    fn memory_loop_program() -> Vec<u32> {
        let mut a = Assembler::new(RAM_BASE);
        a.set32(crate::bus::CONSOLE_EMIT, Reg::l(0));
        a.set32(RAM_BASE + 0x2000, Reg::l(1));
        a.mov(9, Reg::l(2));
        a.label("loop");
        a.st(nfp_sparc::MemSize::Word, Reg::l(2), Reg::l(1), 0);
        a.st(nfp_sparc::MemSize::Word, Reg::l(2), Reg::l(0), 0);
        a.alu(AluOp::SubCc, Reg::l(2), 1, Reg::l(2));
        a.b(ICond::Ne, "loop");
        a.alu(AluOp::Add, Reg::l(1), 4, Reg::l(1));
        a.mov(0, Reg::o(0));
        a.ta(0);
        a.nop();
        a.finish().unwrap()
    }

    #[test]
    fn batched_dispatch_matches_step_on_branchy_code() {
        assert_modes_agree(&memory_loop_program(), TrapPolicy::Abort, 1_000_000);
    }

    #[test]
    fn batched_dispatch_matches_step_across_budget_stops() {
        // Stop the run at every possible instruction count, including
        // points that land mid-block: batching must clamp to the
        // budget, not overshoot to the block boundary.
        let words = memory_loop_program();
        for budget in 0..60 {
            assert_modes_agree(&words, TrapPolicy::Abort, budget);
        }
    }

    #[test]
    fn batched_dispatch_matches_step_under_recover_traps() {
        // Window overflow/underflow recovery resumes mid-program; the
        // batched path must re-present the trapping instruction and
        // leave the partial block's counts exactly as stepping would.
        assert_modes_agree(&deep_window_program(), TrapPolicy::Recover, 1_000);
        assert_modes_agree(&deep_window_program(), TrapPolicy::Abort, 1_000);

        // Misaligned-skip recovery: the faulting load sits mid-block
        // and is skipped, so the commit/trap split inside a batch is
        // exercised directly.
        let mut a = Assembler::new(RAM_BASE);
        a.set32(RAM_BASE + 0x101, Reg::l(0));
        a.mov(3, Reg::l(2));
        a.ld(nfp_sparc::MemSize::Word, false, Reg::l(0), 0, Reg::l(1));
        a.alu(AluOp::Add, Reg::l(2), 1, Reg::l(2));
        a.mov(4, Reg::o(0));
        a.ta(0);
        a.nop();
        let words = a.finish().unwrap();
        assert_modes_agree(&words, TrapPolicy::Recover, 1_000);
        assert_modes_agree(&words, TrapPolicy::Abort, 1_000);
    }

    #[test]
    fn batched_checkpoint_restore_replays_identically() {
        let words = memory_loop_program();
        let mut m = Machine::boot(&words);
        m.run_until(17).unwrap(); // mid-block under batching
        assert_eq!(m.instret(), 17);
        let cp = m.checkpoint();
        let first = m.run(10_000).unwrap();
        m.restore(&cp);
        let second = m.run(10_000).unwrap();
        assert_eq!(first.counts, second.counts);
        assert_eq!(first.instret, second.instret);
        assert_eq!(first.words, second.words);
    }

    #[test]
    fn patched_code_is_seen_after_batched_run() {
        // Patch an instruction to a different category after a run has
        // built the block cache: the next run must account the patched
        // instruction, not a stale block summary.
        let words = memory_loop_program();
        let mut m = Machine::boot(&words);
        let baseline = m.run(10_000).unwrap();

        let mut m = Machine::boot(&words);
        m.run_until(3).unwrap(); // cache is built and warm
        let nop = nfp_sparc::encode(Instr::NOP);
        // Word 5 is the first `st` in the loop body.
        let old = m.patch_code_word(5, nop).unwrap();
        let patched = m.run(10_000).unwrap();
        assert_eq!(
            patched.counts[Category::Nop],
            baseline.counts[Category::Nop] + 9,
            "patched NOP must be counted as NOP on every iteration"
        );
        assert_eq!(
            patched.counts[Category::MemStore],
            baseline.counts[Category::MemStore] - 9
        );

        // And the patch must match step mode exactly.
        let mut s = Machine::boot(&words);
        s.set_dispatch(Dispatch::Step);
        s.run_until(3).unwrap();
        s.patch_code_word(5, nop).unwrap();
        let stepped = s.run(10_000).unwrap();
        assert_eq!(patched.counts, stepped.counts);
        assert_eq!(patched.instret, stepped.instret);
        let _ = old;
    }

    #[test]
    fn patched_code_is_seen_by_every_dispatch_mode() {
        // Same invalidation property as above, but exercising the
        // threaded dispatch table and the superblock trace cache: the
        // patch lands mid-loop-body, i.e. mid-superblock once the
        // traced run has chained the loop into one trace.
        let words = memory_loop_program();
        let nop = nfp_sparc::encode(Instr::NOP);
        let observe = |dispatch: Dispatch| {
            let mut m = Machine::boot(&words);
            m.set_dispatch(dispatch);
            m.run_until(25).unwrap(); // caches warm, mid-iteration
            m.patch_code_word(5, nop).unwrap();
            let res = m.run(10_000).unwrap();
            (res.instret, res.counts, res.words)
        };
        let stepped = observe(Dispatch::Step);
        for d in [Dispatch::Block, Dispatch::Threaded, Dispatch::Traced] {
            assert_eq!(observe(d), stepped, "{d}: patched run diverged");
        }
    }

    #[test]
    fn dispatch_round_trips_and_defaults_to_traced() {
        assert_eq!(MachineConfig::default().dispatch, Dispatch::Traced);
        for d in Dispatch::ALL {
            assert_eq!(Dispatch::parse(d.as_str()), Some(d));
        }
        assert_eq!(Dispatch::parse("warp"), None);
    }

    #[test]
    fn corrupted_dispatch_entry_is_a_typed_error() {
        let words = memory_loop_program();
        for d in [Dispatch::Threaded, Dispatch::Traced] {
            let mut m = Machine::boot(&words);
            m.set_dispatch(d);
            // Word 5 is the console `st` in the loop body — a linear
            // instruction whose corrupted entry claims otherwise.
            assert!(m.test_corrupt_dispatch(5));
            match m.run(10_000) {
                Err(SimError::DispatchViolation { pc }) => {
                    assert_eq!(pc, RAM_BASE + 5 * 4, "{d}");
                }
                other => panic!("{d}: expected DispatchViolation, got {other:?}"),
            }
        }
    }

    #[test]
    fn corrupt_dispatch_hook_rejects_enders_and_oob() {
        let words = memory_loop_program();
        let mut m = Machine::boot(&words);
        assert!(!m.test_corrupt_dispatch(words.len()), "out of range");
        // Word 7 is the `bne` loop branch: already non-linear.
        assert!(!m.test_corrupt_dispatch(7), "block ender");
    }
}
