//! End-to-end chaos suite for the remote dispatch layer (DESIGN.md §14).
//!
//! Every test drives a real [`Server`] over real TCP sockets and holds
//! it to the same bar as the local machinery: the merged remote report
//! must be **byte-identical** to a sequential same-seed run, no matter
//! what the network or the workers do — SIGKILLed peers, SIGSTOPped
//! peers, garbage first frames, torn frames, or no peers at all.

use nfp_bench::{
    report_campaign, run_supervised, run_worker_connect, run_worker_connect_with, submit_campaign,
    submit_campaign_with, CampaignConfig, CampaignRequest, LiePlan, Mode, ServeConfig,
    ServeSummary, Server, SupervisorConfig, WorkerPreset,
};
use nfp_core::NfpError;
use nfp_workloads::{all_kernels, Kernel, Preset};
use std::io::Write;
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::thread::JoinHandle;
use std::time::Duration;

fn quick_kernel() -> Kernel {
    all_kernels(&Preset::quick())
        .expect("quick kernel registry")
        .into_iter()
        .find(|k| k.name.contains("fse"))
        .expect("quick preset has an FSE kernel")
}

fn campaign(injections: usize) -> CampaignConfig {
    CampaignConfig {
        injections,
        ..CampaignConfig::default()
    }
}

/// The sequential same-seed report every remote run must reproduce.
fn reference_report(injections: usize) -> String {
    reference_report_for(campaign(injections))
}

fn reference_report_for(cfg: CampaignConfig) -> String {
    let kernel = quick_kernel();
    let outcome = run_supervised(&kernel, Mode::Float, &SupervisorConfig::new(cfg))
        .expect("sequential reference campaign");
    report_campaign(&outcome.result)
}

fn request(injections: usize, shards: u32) -> CampaignRequest {
    CampaignRequest {
        client: "chaos-test".to_string(),
        kernel: quick_kernel().name,
        mode: Mode::Float,
        campaign: campaign(injections),
        shards,
        allow_partial: false,
    }
}

fn serve_config(heartbeat_ms: u64) -> ServeConfig {
    ServeConfig {
        listen: "127.0.0.1:0".to_string(),
        preset: WorkerPreset::Quick,
        heartbeat: Duration::from_millis(heartbeat_ms),
        // Worker tests must exercise reassignment, not the local
        // fallback: keep the grace period out of the picture.
        peer_grace: Duration::from_secs(120),
        lease_timeout: Duration::from_secs(60),
        campaigns: Some(1),
        ..ServeConfig::default()
    }
}

/// Binds a one-campaign server and returns its address plus the
/// summary-producing join handle.
fn spawn_server(cfg: ServeConfig) -> (String, JoinHandle<ServeSummary>) {
    let server = Server::bind(cfg).expect("bind 127.0.0.1:0");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle)
}

/// An in-process worker riding the public reconnect loop.
fn spawn_worker_thread(addr: &str) -> JoinHandle<i32> {
    let addr = addr.to_string();
    std::thread::spawn(move || run_worker_connect(&addr, 50))
}

/// A real `repro worker --connect` subprocess, for signal chaos.
fn spawn_worker_process(addr: &str) -> Child {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["worker", "--connect", addr, "--max-retries", "50"])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn repro worker --connect")
}

fn signal(child: &Child, sig: &str) {
    let ok = Command::new("kill")
        .args([sig, &child.id().to_string()])
        .status()
        .expect("run kill")
        .success();
    assert!(ok, "kill {sig} {} failed", child.id());
}

#[test]
fn remote_report_is_byte_identical_to_local() {
    let reference = reference_report(120);
    let (addr, server) = spawn_server(serve_config(200));
    let w1 = spawn_worker_thread(&addr);
    let w2 = spawn_worker_thread(&addr);
    std::thread::sleep(Duration::from_millis(300));
    let outcome = submit_campaign(&addr, &request(120, 4)).expect("remote campaign");
    assert_eq!(outcome.report, reference, "remote report diverged");
    let summary = server.join().expect("server thread");
    assert_eq!(summary.campaigns, 1);
    assert!(summary.peers_seen >= 2, "{summary:?}");
    // Both workers got a goodbye and exited cleanly.
    assert_eq!(w1.join().expect("worker 1"), 0);
    assert_eq!(w2.join().expect("worker 2"), 0);
}

#[test]
#[cfg(unix)]
fn sigkilled_worker_loses_its_lease_and_the_report_survives() {
    let reference = reference_report(400);
    let (addr, server) = spawn_server(serve_config(100));
    let victim = spawn_worker_process(&addr);
    let survivor = spawn_worker_thread(&addr);
    std::thread::sleep(Duration::from_millis(500));
    let submit = {
        let addr = addr.clone();
        std::thread::spawn(move || submit_campaign(&addr, &request(400, 4)))
    };
    // Let the victim pick up work, then kill it the hard way.
    std::thread::sleep(Duration::from_millis(1500));
    let mut victim = victim;
    signal(&victim, "-KILL");
    let _ = victim.wait();
    let outcome = submit
        .join()
        .expect("submit thread")
        .expect("remote campaign under SIGKILL");
    assert_eq!(outcome.report, reference, "report diverged after SIGKILL");
    let summary = server.join().expect("server thread");
    assert_eq!(summary.campaigns, 1);
    assert_eq!(survivor.join().expect("survivor"), 0);
}

#[test]
#[cfg(unix)]
fn sigstopped_worker_is_revoked_and_the_report_survives() {
    let reference = reference_report(400);
    // 100 ms heartbeats put the idle revocation deadline at its 2 s
    // floor, so the wedged peer loses its lease quickly.
    let (addr, server) = spawn_server(serve_config(100));
    let wedged = spawn_worker_process(&addr);
    let survivor = spawn_worker_thread(&addr);
    std::thread::sleep(Duration::from_millis(500));
    let submit = {
        let addr = addr.clone();
        std::thread::spawn(move || submit_campaign(&addr, &request(400, 4)))
    };
    std::thread::sleep(Duration::from_millis(1500));
    signal(&wedged, "-STOP");
    let outcome = submit
        .join()
        .expect("submit thread")
        .expect("remote campaign under SIGSTOP");
    assert_eq!(outcome.report, reference, "report diverged after SIGSTOP");
    let summary = server.join().expect("server thread");
    assert_eq!(summary.campaigns, 1);
    assert_eq!(survivor.join().expect("survivor"), 0);
    let mut wedged = wedged;
    signal(&wedged, "-CONT");
    signal(&wedged, "-KILL");
    let _ = wedged.wait();
}

#[test]
fn garbage_peers_are_rejected_while_honest_workers_complete() {
    let reference = reference_report(120);
    let (addr, server) = spawn_server(serve_config(200));
    let honest = spawn_worker_thread(&addr);
    // A peer whose first frame is valid framing around nonsense.
    let mut babbler = TcpStream::connect(&addr).expect("connect babbler");
    let payload = b"{\"kind\":\"gossip\"}";
    babbler
        .write_all(&(payload.len() as u32).to_be_bytes())
        .and_then(|()| babbler.write_all(payload))
        .expect("send garbage frame");
    // And a peer that tears its frame mid-payload: it declares 64
    // bytes, delivers 7, and hangs up.
    let mut torn = TcpStream::connect(&addr).expect("connect torn peer");
    torn.write_all(&64u32.to_be_bytes())
        .and_then(|()| torn.write_all(b"{\"kind\""))
        .expect("send torn frame");
    drop(torn);
    std::thread::sleep(Duration::from_millis(300));
    let outcome = submit_campaign(&addr, &request(120, 2)).expect("remote campaign");
    assert_eq!(outcome.report, reference, "report diverged amid garbage");
    drop(babbler);
    let summary = server.join().expect("server thread");
    assert!(summary.frames_rejected >= 2, "{summary:?}");
    assert_eq!(honest.join().expect("honest worker"), 0);
}

#[test]
fn fake_worker_that_tears_its_lease_costs_nothing_but_a_retry() {
    let reference = reference_report(120);
    let (addr, server) = spawn_server(serve_config(200));
    // The saboteur joins correctly, waits for a lease hello, then
    // sends a torn frame and dies — after the lease was assigned.
    let saboteur = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut s = TcpStream::connect(&addr).expect("connect saboteur");
            s.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
            let join = b"{\"v\":1,\"kind\":\"join\",\"preset\":\"quick\",\"reconnects\":0}";
            s.write_all(&(join.len() as u32).to_be_bytes())
                .and_then(|()| s.write_all(join))
                .expect("send join");
            // Heartbeat dutifully while scanning the raw byte stream
            // for a lease hello (heartbeat frames alone would also
            // accumulate bytes, so match on content).
            let hb = b"{\"kind\":\"hb\"}";
            let mut seen = Vec::new();
            let deadline = std::time::Instant::now() + Duration::from_secs(30);
            let mut buf = [0u8; 4096];
            let mut leased = false;
            while std::time::Instant::now() < deadline && !leased {
                let _ = s
                    .write_all(&(hb.len() as u32).to_be_bytes())
                    .and_then(|()| s.write_all(hb));
                match std::io::Read::read(&mut s, &mut buf) {
                    Ok(0) => break,
                    Ok(n) => {
                        seen.extend_from_slice(&buf[..n]);
                        leased = seen
                            .windows(b"\"kind\":\"hello\"".len())
                            .any(|w| w == b"\"kind\":\"hello\"");
                    }
                    Err(_) => {}
                }
            }
            assert!(leased, "saboteur never received a lease hello");
            // Declare a big frame, deliver a sliver, vanish.
            let _ = s.write_all(&1024u32.to_be_bytes());
            let _ = s.write_all(b"{\"i\":0");
        })
    };
    std::thread::sleep(Duration::from_millis(300));
    let submit = {
        let addr = addr.clone();
        std::thread::spawn(move || submit_campaign(&addr, &request(120, 2)))
    };
    // The saboteur holds its lease until it tears; the honest worker
    // arrives afterwards and sweeps up everything, retries included.
    saboteur.join().expect("saboteur thread");
    let honest = spawn_worker_thread(&addr);
    let outcome = submit
        .join()
        .expect("submit thread")
        .expect("remote campaign despite sabotage");
    assert_eq!(outcome.report, reference, "report diverged after sabotage");
    let summary = server.join().expect("server thread");
    assert!(summary.peers_retired >= 1, "{summary:?}");
    assert_eq!(honest.join().expect("honest worker"), 0);
}

/// A worker that falsifies every outcome it returns.
fn spawn_liar_thread(addr: &str, seed: u64) -> JoinHandle<i32> {
    let addr = addr.to_string();
    std::thread::spawn(move || run_worker_connect_with(&addr, 5, Some(LiePlan { rate: 1.0, seed })))
}

#[test]
fn lying_worker_is_convicted_and_the_report_stays_byte_identical() {
    let reference = reference_report(120);
    let cfg = ServeConfig {
        // Audit every range: the liar cannot dodge the sampler, and a
        // second opinion that cannot come (every disjoint peer banned)
        // falls to the local tie-breaker after ~2 s of patience.
        audit_rate: 1.0,
        peer_grace: Duration::from_secs(1),
        ..serve_config(200)
    };
    let (addr, server) = spawn_server(cfg);
    // The saboteur returns plausible, CRC-valid, digest-consistent but
    // falsified outcomes for every injection it touches. Three honest
    // peers carry the campaign once it is convicted.
    let liar = spawn_liar_thread(&addr, 9);
    let honest: Vec<JoinHandle<i32>> = (0..3).map(|_| spawn_worker_thread(&addr)).collect();
    std::thread::sleep(Duration::from_millis(400));
    let outcome = submit_campaign(&addr, &request(120, 4)).expect("audited campaign");
    assert_eq!(outcome.report, reference, "a lie reached the report");
    let summary = server.join().expect("server thread");
    assert!(
        summary.workers_convicted >= 1,
        "the liar was never convicted: {summary:?}"
    );
    for w in honest {
        assert_eq!(w.join().expect("honest worker"), 0);
    }
    // The liar was blacklisted: refusals burn its retry budget, so its
    // exit code is its own business — it just must terminate.
    let _ = liar.join().expect("liar thread");
}

#[test]
fn conviction_invalidates_the_liars_unaudited_ranges() {
    // Seed 17 samples shards {0, 2} of 4 at rate 0.5 (a pure function
    // of the seed, so this test is deterministic): the liar can land
    // unaudited ranges — whatever it produced for shards 1 and 3 is
    // accepted at first, then invalidated and re-dispatched the moment
    // a sampled shard convicts it. The report must still come out
    // byte-identical to the sequential run.
    let cfg_campaign = CampaignConfig {
        injections: 120,
        seed: 17,
        ..CampaignConfig::default()
    };
    let reference = reference_report_for(cfg_campaign.clone());
    let cfg = ServeConfig {
        audit_rate: 0.5,
        peer_grace: Duration::from_secs(1),
        ..serve_config(200)
    };
    let (addr, server) = spawn_server(cfg);
    let liar = spawn_liar_thread(&addr, 11);
    let honest = spawn_worker_thread(&addr);
    std::thread::sleep(Duration::from_millis(400));
    let req = CampaignRequest {
        campaign: cfg_campaign,
        ..request(120, 4)
    };
    let outcome = submit_campaign(&addr, &req).expect("audited campaign");
    assert_eq!(outcome.report, reference, "an invalidated lie survived");
    let summary = server.join().expect("server thread");
    assert!(
        summary.workers_convicted >= 1,
        "the liar was never convicted: {summary:?}"
    );
    assert_eq!(honest.join().expect("honest worker"), 0);
    let _ = liar.join().expect("liar thread");
}

#[test]
fn no_peers_degrades_to_the_local_pool_byte_identically() {
    let reference = reference_report(60);
    let cfg = ServeConfig {
        peer_grace: Duration::from_millis(200),
        ..serve_config(200)
    };
    let (addr, server) = spawn_server(cfg);
    let mut notes = Vec::new();
    let outcome = submit_campaign_with(&addr, &request(60, 2), |note| {
        notes.push(note.to_string());
    })
    .expect("degraded campaign");
    assert_eq!(outcome.report, reference, "local fallback diverged");
    assert!(
        notes.iter().any(|n| n.contains("falling back")),
        "no fallback note in {notes:?}"
    );
    let summary = server.join().expect("server thread");
    assert_eq!(summary.campaigns, 1);
}

#[test]
fn admission_refusal_is_typed_not_a_hang() {
    let cfg = ServeConfig {
        max_inflight: 0,
        ..serve_config(200)
    };
    let server = Server::bind(cfg).expect("bind");
    let addr = server.local_addr().expect("local addr").to_string();
    // This server never completes a campaign, so run() never returns;
    // the thread leaks and dies with the test process.
    std::thread::spawn(move || server.run());
    match submit_campaign(&addr, &request(10, 1)) {
        Err(NfpError::Admission { client, reason }) => {
            assert_eq!(client, "chaos-test");
            assert!(reason.contains("admits no campaigns"), "{reason}");
        }
        other => panic!("expected a typed admission refusal, got {other:?}"),
    }
}
