//! Campaign acceptance test: a 1000-injection SEU campaign over an FSE
//! kernel is fully deterministic — the same seed yields identical
//! masked/SDC/trap/hang counts across independent runs — and never
//! panics or wedges (the watchdog bounds every replay).

use nfp_bench::{run_campaign_parallel, CampaignConfig, Mode};
use nfp_core::Outcome;
use nfp_workloads::Preset;

#[test]
fn thousand_injection_fse_campaign_is_deterministic() {
    let kernels = nfp_workloads::fse_kernels(&Preset::quick()).expect("kernels");
    let cfg = CampaignConfig {
        injections: 1000,
        seed: 0xdead_beef,
        ..CampaignConfig::default()
    };

    let first = run_campaign_parallel(&kernels[0], Mode::Float, &cfg).expect("campaign runs");
    let second = run_campaign_parallel(&kernels[0], Mode::Float, &cfg).expect("campaign runs");

    let totals = first.outcome_totals();
    assert_eq!(totals.total(), 1000);
    assert_eq!(first.golden_instret, second.golden_instret);
    for outcome in Outcome::ALL {
        assert_eq!(
            totals.get(outcome),
            second.outcome_totals().get(outcome),
            "{outcome} count differs between identically-seeded campaigns"
        );
    }
    // The full per-category report must agree too, not just totals.
    assert_eq!(first.report, second.report);

    // A campaign of this size must exercise the taxonomy: faults in
    // live registers/code cannot all be masked, and some injections
    // must survive (dead state exists in any real kernel).
    assert!(totals.get(Outcome::Masked) > 0, "no injection was masked");
    assert!(
        totals.vulnerability() > 0.0,
        "no injection perturbed the kernel"
    );
}
