//! Calibration consistency checks.
//!
//! The paper notes that because the reference/test kernels have an
//! "unrealistic programming flow", the derived specific values "are
//! checked for consistency and manually adapted, if necessary"
//! (Section V). This module automates that manual inspection:
//! structural sanity checks on the calibrated table, plus a
//! cross-validation against a *mixed* kernel whose instruction blend
//! resembles real code rather than a homogeneous loop.

use crate::calibration::Calibration;
use crate::model::{ClassCounter, Paper};
use nfp_sim::{Machine, MachineConfig, SimError};
use nfp_sparc::asm::Assembler;
use nfp_sparc::cond::ICond;
use nfp_sparc::{AluOp, FReg, FpOp, MemSize, Operand, Reg};
use nfp_testbed::Testbed;
use std::fmt;

/// Severity of a consistency finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// The table is unusable (negative cost, NaN).
    Error,
    /// Suspicious but possibly legitimate (ordering violations,
    /// implausible power, large validation residual).
    Warning,
}

/// One finding from the consistency check.
#[derive(Debug, Clone)]
pub struct Finding {
    /// How bad it is.
    pub severity: Severity,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = match self.severity {
            Severity::Error => "ERROR",
            Severity::Warning => "warning",
        };
        write!(f, "[{tag}] {}", self.message)
    }
}

/// Structural checks on a calibrated nine-class table: positivity,
/// expected cost ordering, and implied-power plausibility.
pub fn check_structure(cal: &Calibration) -> Vec<Finding> {
    let mut findings = Vec::new();
    let t = &cal.model.time_s;
    let e = &cal.model.energy_j;
    for (i, d) in cal.details.iter().enumerate() {
        if !t[i].is_finite() || t[i] <= 0.0 {
            findings.push(Finding {
                severity: Severity::Error,
                message: format!("{}: non-positive specific time {:.3e} s", d.class, t[i]),
            });
        }
        if !e[i].is_finite() || e[i] <= 0.0 {
            findings.push(Finding {
                severity: Severity::Error,
                message: format!("{}: non-positive specific energy {:.3e} J", d.class, e[i]),
            });
        }
        if t[i] > 0.0 && e[i] > 0.0 {
            // Implied average power must be physically plausible for a
            // small FPGA board (tens of mW to a few W).
            let power = e[i] / t[i];
            if !(0.01..=10.0).contains(&power) {
                findings.push(Finding {
                    severity: Severity::Warning,
                    message: format!(
                        "{}: implied power {:.2} W outside the plausible 0.01-10 W band",
                        d.class, power
                    ),
                });
            }
        }
    }
    // Ordering expectations on a cacheless SDRAM system.
    let idx = |name: &str| cal.details.iter().position(|d| d.class == name);
    if let (Some(load), Some(store), Some(int)) = (
        idx("Memory Load"),
        idx("Memory Store"),
        idx("Integer Arithmetic"),
    ) {
        if !(t[load] > t[store] && t[store] > t[int]) {
            findings.push(Finding {
                severity: Severity::Warning,
                message: format!(
                    "expected t(load) > t(store) > t(int); got {:.0} / {:.0} / {:.0} ns",
                    t[load] * 1e9,
                    t[store] * 1e9,
                    t[int] * 1e9
                ),
            });
        }
    }
    findings
}

/// A mixed validation kernel: a loop blending arithmetic, memory,
/// control, and (optionally) FPU work the way real code does — the
/// opposite of the homogeneous calibration loops.
fn mixed_kernel(iters: u32, with_fpu: bool) -> Vec<u32> {
    let mut a = Assembler::new(nfp_sim::RAM_BASE);
    a.sethi_hi("buffer", Reg::l(1));
    a.or_lo("buffer", Reg::l(1));
    if with_fpu {
        a.lddf(Reg::l(1), 0, FReg::new(0));
        a.lddf(Reg::l(1), 8, FReg::new(2));
    }
    a.set32(iters, Reg::l(0));
    a.mov(0, Reg::l(2));
    a.label("loop");
    // A blend of work with data-dependent addressing.
    a.alu(AluOp::Add, Reg::l(2), 17, Reg::l(2));
    a.alu(AluOp::And, Reg::l(2), 0xfc, Reg::l(3)); // word-aligned offset
    a.ld(
        MemSize::Word,
        false,
        Reg::l(1),
        Operand::Reg(Reg::l(3)),
        Reg::l(4),
    );
    a.alu(AluOp::Xor, Reg::l(4), Operand::Reg(Reg::l(2)), Reg::l(4));
    a.st(MemSize::Word, Reg::l(4), Reg::l(1), Operand::Reg(Reg::l(3)));
    a.alu(AluOp::SMul, Reg::l(2), 3, Reg::l(5));
    if with_fpu {
        a.fpop(FpOp::FMulD, FReg::new(0), FReg::new(2), FReg::new(4));
        a.fpop(FpOp::FAddD, FReg::new(4), FReg::new(2), FReg::new(6));
    }
    a.alu(AluOp::SubCc, Reg::l(0), 1, Reg::l(0));
    a.b(ICond::Ne, "loop");
    a.nop();
    a.mov(0, Reg::o(0));
    a.ta(0);
    a.nop();
    if a.here() % 2 == 1 {
        a.word(0);
    }
    a.label("buffer");
    for k in 0..66u32 {
        a.word(k.wrapping_mul(0x9e37_79b9));
    }
    // Plant two sane doubles at the start of the buffer for the FPU mix.

    {
        let mut w = a.finish().expect("mixed kernel assembles");
        let b0 = 1.25f64.to_bits();
        let b1 = 0.75f64.to_bits();
        let base = w.len() - 66;
        w[base] = (b0 >> 32) as u32;
        w[base + 1] = b0 as u32;
        w[base + 2] = (b1 >> 32) as u32;
        w[base + 3] = b1 as u32;
        w
    }
}

/// Result of the cross-validation run.
#[derive(Debug, Clone, Copy)]
pub struct Validation {
    /// Signed relative time residual of the model on the mixed kernel.
    pub time_residual: f64,
    /// Signed relative energy residual.
    pub energy_residual: f64,
}

/// Cross-validates a calibration on the mixed kernel and reports the
/// residuals; residuals beyond `tolerance` become warnings.
pub fn validate(
    testbed: &Testbed,
    cal: &Calibration,
    tolerance: f64,
) -> Result<(Validation, Vec<Finding>), SimError> {
    let words = mixed_kernel(400_000, true);
    // Counting pass.
    let mut machine = Machine::new(MachineConfig {
        ram_size: 1 << 20,
        ..MachineConfig::default()
    });
    machine.load_image(nfp_sim::RAM_BASE, &words)?;
    let mut counter = ClassCounter::new(Paper);
    machine.run_observed(1_000_000_000, &mut counter)?;
    let estimate = cal.model.estimate(counter.counts());
    // Measured pass.
    let mut machine = Machine::new(MachineConfig {
        ram_size: 1 << 20,
        ..MachineConfig::default()
    });
    machine.load_image(nfp_sim::RAM_BASE, &words)?;
    let measured = testbed.run(&mut machine, 0xbeef, 1_000_000_000)?;
    let validation = Validation {
        time_residual: (estimate.time_s - measured.measurement.time_s)
            / measured.measurement.time_s,
        energy_residual: (estimate.energy_j - measured.measurement.energy_j)
            / measured.measurement.energy_j,
    };
    let mut findings = Vec::new();
    for (name, residual) in [
        ("time", validation.time_residual),
        ("energy", validation.energy_residual),
    ] {
        if residual.abs() > tolerance {
            findings.push(Finding {
                severity: Severity::Warning,
                message: format!(
                    "mixed-kernel {name} residual {:+.2}% exceeds {:.0}% tolerance — \
                     consider adapting the calibrated values (paper §V)",
                    residual * 100.0,
                    tolerance * 100.0
                ),
            });
        }
    }
    Ok((validation, findings))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::calibrate;
    use crate::model::CostModel;

    #[test]
    fn healthy_calibration_passes_all_checks() {
        let testbed = Testbed::new();
        let cal = calibrate(&testbed, &Paper, 7).unwrap();
        let findings = check_structure(&cal);
        assert!(
            findings.is_empty(),
            "unexpected findings: {:?}",
            findings.iter().map(ToString::to_string).collect::<Vec<_>>()
        );
        let (validation, warnings) = validate(&testbed, &cal, 0.10).unwrap();
        assert!(warnings.is_empty(), "{warnings:?}");
        assert!(validation.time_residual.abs() < 0.10);
        assert!(validation.energy_residual.abs() < 0.10);
    }

    #[test]
    fn corrupted_table_is_flagged() {
        let testbed = Testbed::new();
        let mut cal = calibrate(&testbed, &Paper, 8).unwrap();
        // Sabotage: negative time, implausible power, broken ordering.
        cal.model = CostModel {
            time_s: {
                let mut t = cal.model.time_s.clone();
                t[0] = -1.0e-9;
                t[2] = 1.0e-9; // load faster than int: ordering violated
                t
            },
            energy_j: {
                let mut e = cal.model.energy_j.clone();
                e[1] = 5.0e-3; // 5 mJ per jump: implied power way off
                e
            },
        };
        let findings = check_structure(&cal);
        assert!(findings.iter().any(|f| f.severity == Severity::Error));
        assert!(findings.iter().any(|f| f.severity == Severity::Warning));
        assert!(findings.len() >= 3, "{findings:?}");
    }

    #[test]
    fn validation_flags_a_wrong_model() {
        let testbed = Testbed::new();
        let mut cal = calibrate(&testbed, &Paper, 9).unwrap();
        for t in &mut cal.model.time_s {
            *t *= 2.0; // everything twice as slow as reality
        }
        let (validation, warnings) = validate(&testbed, &cal, 0.10).unwrap();
        assert!(validation.time_residual > 0.5);
        assert!(!warnings.is_empty());
    }

    #[test]
    fn findings_render_with_severity() {
        let f = Finding {
            severity: Severity::Error,
            message: "boom".into(),
        };
        assert_eq!(f.to_string(), "[ERROR] boom");
    }
}
