//! Bit-level I/O with unsigned/signed Exp-Golomb codes (the entropy
//! coding layer of the mini-HEVC codec, matching HEVC's `ue(v)` /
//! `se(v)` descriptors).

/// MSB-first bit writer.
#[derive(Debug, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits used in the current partial byte (0..8).
    fill: u32,
}

impl BitWriter {
    /// Empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one bit.
    pub fn put_bit(&mut self, bit: bool) {
        if self.fill == 0 {
            self.bytes.push(0);
        }
        // `fill == 0` pushed a byte just above; `fill > 0` implies a
        // partial byte already exists, so the `if let` always binds.
        if bit {
            if let Some(last) = self.bytes.last_mut() {
                *last |= 1 << (7 - self.fill);
            }
        }
        self.fill = (self.fill + 1) % 8;
    }

    /// Appends `count` bits of `value`, MSB first.
    pub fn put_bits(&mut self, value: u32, count: u32) {
        assert!(count <= 32);
        for i in (0..count).rev() {
            self.put_bit((value >> i) & 1 != 0);
        }
    }

    /// Unsigned Exp-Golomb.
    pub fn put_ue(&mut self, value: u32) {
        assert!(value < u32::MAX, "ue range");
        let v = value + 1;
        let bits = 32 - v.leading_zeros();
        for _ in 0..bits - 1 {
            self.put_bit(false);
        }
        self.put_bits(v, bits);
    }

    /// Signed Exp-Golomb (HEVC mapping: 1 -> 1, -1 -> 2, 2 -> 3, …).
    pub fn put_se(&mut self, value: i32) {
        let mapped = if value > 0 {
            (value as u32) * 2 - 1
        } else {
            (-(value as i64) as u32) * 2
        };
        self.put_ue(mapped);
    }

    /// Finishes the stream, byte-aligned with zero padding.
    pub fn finish(self) -> Vec<u8> {
        self.bytes
    }

    /// Bits written so far.
    pub fn bit_len(&self) -> usize {
        if self.fill == 0 {
            self.bytes.len() * 8
        } else {
            (self.bytes.len() - 1) * 8 + self.fill as usize
        }
    }
}

/// MSB-first bit reader. Reads past the end yield zero bits, mirroring
/// the zero padding `finish` applies (the mini-C decoder behaves the
/// same way).
#[derive(Debug)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Reader over a byte stream.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    /// Reads one bit.
    pub fn get_bit(&mut self) -> bool {
        let byte = self.pos / 8;
        let bit = 7 - (self.pos % 8);
        self.pos += 1;
        match self.bytes.get(byte) {
            Some(b) => (b >> bit) & 1 != 0,
            None => false,
        }
    }

    /// Reads `count` bits, MSB first.
    pub fn get_bits(&mut self, count: u32) -> u32 {
        let mut v = 0;
        for _ in 0..count {
            v = (v << 1) | self.get_bit() as u32;
        }
        v
    }

    /// Unsigned Exp-Golomb.
    pub fn get_ue(&mut self) -> u32 {
        let mut zeros = 0;
        while !self.get_bit() {
            zeros += 1;
            if zeros > 32 {
                return 0; // corrupt stream; degrade gracefully
            }
        }
        let rest = self.get_bits(zeros);
        ((1u64 << zeros) as u32).wrapping_add(rest).wrapping_sub(1)
    }

    /// Signed Exp-Golomb.
    pub fn get_se(&mut self) -> i32 {
        let v = self.get_ue();
        if v % 2 == 1 {
            ((v / 2) + 1) as i32
        } else {
            -((v / 2) as i32)
        }
    }

    /// Current bit position.
    pub fn bit_pos(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_roundtrip() {
        let mut w = BitWriter::new();
        w.put_bits(0b1011, 4);
        w.put_bits(0x1ff, 9);
        w.put_bit(true);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get_bits(4), 0b1011);
        assert_eq!(r.get_bits(9), 0x1ff);
        assert!(r.get_bit());
    }

    #[test]
    fn ue_roundtrip() {
        let values = [0u32, 1, 2, 3, 7, 8, 100, 255, 1000, 65535];
        let mut w = BitWriter::new();
        for &v in &values {
            w.put_ue(v);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            assert_eq!(r.get_ue(), v);
        }
    }

    #[test]
    fn se_roundtrip() {
        let values = [0i32, 1, -1, 2, -2, 17, -17, 500, -500];
        let mut w = BitWriter::new();
        for &v in &values {
            w.put_se(v);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            assert_eq!(r.get_se(), v);
        }
    }

    #[test]
    fn ue_known_codes() {
        // ue(0) = "1", ue(1) = "010", ue(2) = "011"
        let mut w = BitWriter::new();
        w.put_ue(0);
        w.put_ue(1);
        w.put_ue(2);
        let bytes = w.finish();
        assert_eq!(
            w_bits(&bytes, 7),
            vec![true, false, true, false, false, true, true]
        );
    }

    fn w_bits(bytes: &[u8], n: usize) -> Vec<bool> {
        let mut r = BitReader::new(bytes);
        (0..n).map(|_| r.get_bit()).collect()
    }

    #[test]
    fn reading_past_end_yields_zeros() {
        let mut r = BitReader::new(&[0x80]);
        assert!(r.get_bit());
        assert_eq!(r.get_bits(20), 0);
    }
}
