#![allow(clippy::needless_range_loop)] // loops mirror the mini-C decoder

//! Shared signal-processing primitives of the mini-HEVC codec:
//! forward/inverse 8×8 integer transform, quantisation, intra
//! prediction, motion compensation, and the in-loop deblocking filter.
//!
//! The *decoder-side* operations (inverse transform, dequantisation,
//! prediction, deblocking) are duplicated in the generated mini-C
//! decoder and must stay bit-identical to it; the round-trip tests
//! enforce this.

use super::tables::{deblock_threshold, qstep, T8};
use crate::pixels::{clip255, Image};

/// 8×8 residual/coefficient block.
pub type Block = [i32; 64];

/// Forward transform (HEVC-style shifts for 8-bit content):
/// stage 1 `>> 2`, stage 2 `>> 9`.
pub fn forward_transform(residual: &Block) -> Block {
    let mut tmp = [0i32; 64];
    for u in 0..8 {
        for x in 0..8 {
            let mut acc = 0i64;
            for k in 0..8 {
                acc += T8[u][k] as i64 * residual[k * 8 + x] as i64;
            }
            tmp[u * 8 + x] = ((acc + 2) >> 2) as i32;
        }
    }
    let mut out = [0i32; 64];
    for u in 0..8 {
        for v in 0..8 {
            let mut acc = 0i64;
            for k in 0..8 {
                acc += T8[v][k] as i64 * tmp[u * 8 + k] as i64;
            }
            out[u * 8 + v] = ((acc + 256) >> 9) as i32;
        }
    }
    out
}

/// Inverse transform: stage 1 `>> 7`, stage 2 `>> 12` (HEVC 8-bit).
pub fn inverse_transform(coeffs: &Block) -> Block {
    // columns first: tmp[y][v] = sum_u T8[u][y] * C[u][v]
    let mut tmp = [0i32; 64];
    for y in 0..8 {
        for v in 0..8 {
            let mut acc = 0i64;
            for u in 0..8 {
                acc += T8[u][y] as i64 * coeffs[u * 8 + v] as i64;
            }
            tmp[y * 8 + v] = ((acc + 64) >> 7) as i32;
        }
    }
    let mut out = [0i32; 64];
    for y in 0..8 {
        for x in 0..8 {
            let mut acc = 0i64;
            for v in 0..8 {
                acc += T8[v][x] as i64 * tmp[y * 8 + v] as i64;
            }
            out[y * 8 + x] = ((acc + 2048) >> 12) as i32;
        }
    }
    out
}

/// Encoder-side quantisation: round-to-nearest by the QP's step.
pub fn quantise(coeffs: &Block, qp: u32) -> Block {
    let q = qstep(qp);
    let mut out = [0i32; 64];
    for i in 0..64 {
        let c = coeffs[i];
        let mag = (c.abs() + q / 2) / q;
        out[i] = if c < 0 { -mag } else { mag };
    }
    out
}

/// Decoder-side dequantisation.
pub fn dequantise(levels: &Block, qp: u32) -> Block {
    let q = qstep(qp);
    let mut out = [0i32; 64];
    for i in 0..64 {
        out[i] = levels[i] * q;
    }
    out
}

/// Intra prediction modes of the codec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntraMode {
    /// Mean of the available neighbours.
    Dc,
    /// Copy the row above downwards.
    Vertical,
    /// Copy the left column across.
    Horizontal,
    /// Bilinear blend of the border samples.
    Planar,
}

impl IntraMode {
    /// All modes, indexed by their bitstream code.
    pub const ALL: [IntraMode; 4] = [
        IntraMode::Dc,
        IntraMode::Vertical,
        IntraMode::Horizontal,
        IntraMode::Planar,
    ];

    /// Bitstream code of the mode.
    pub fn code(self) -> u32 {
        match self {
            IntraMode::Dc => 0,
            IntraMode::Vertical => 1,
            IntraMode::Horizontal => 2,
            IntraMode::Planar => 3,
        }
    }

    /// Mode from its bitstream code (invalid codes fall back to DC,
    /// the same graceful degradation the mini-C decoder applies).
    pub fn from_code(code: u32) -> Self {
        Self::ALL
            .get(code as usize)
            .copied()
            .unwrap_or(IntraMode::Dc)
    }
}

/// Neighbour samples for intra prediction: `top[0..8]`, `left[0..8]`,
/// with availability flags. Unavailable neighbours predict 128.
pub struct IntraNeighbours {
    /// Row above the block (or 128s).
    pub top: [i32; 8],
    /// Column left of the block (or 128s).
    pub left: [i32; 8],
    /// True if the block has a row above.
    pub top_available: bool,
    /// True if the block has a column to its left.
    pub left_available: bool,
}

impl IntraNeighbours {
    /// Gathers neighbours of the block at (bx*8, by*8) from the
    /// reconstruction in progress.
    pub fn gather(rec: &Image, bx: usize, by: usize) -> Self {
        let x0 = bx * 8;
        let y0 = by * 8;
        let mut top = [128i32; 8];
        let mut left = [128i32; 8];
        let top_available = by > 0;
        let left_available = bx > 0;
        if top_available {
            for x in 0..8 {
                top[x] = rec.get(x0 + x, y0 - 1) as i32;
            }
        }
        if left_available {
            for y in 0..8 {
                left[y] = rec.get(x0 - 1, y0 + y) as i32;
            }
        }
        IntraNeighbours {
            top,
            left,
            top_available,
            left_available,
        }
    }
}

/// Produces the 8×8 intra prediction for a mode.
pub fn intra_predict(mode: IntraMode, n: &IntraNeighbours) -> Block {
    let mut pred = [0i32; 64];
    match mode {
        IntraMode::Dc => {
            let dc = match (n.top_available, n.left_available) {
                (true, true) => (n.top.iter().sum::<i32>() + n.left.iter().sum::<i32>() + 8) >> 4,
                (true, false) => (n.top.iter().sum::<i32>() + 4) >> 3,
                (false, true) => (n.left.iter().sum::<i32>() + 4) >> 3,
                (false, false) => 128,
            };
            pred = [dc; 64];
        }
        IntraMode::Vertical => {
            for y in 0..8 {
                for x in 0..8 {
                    pred[y * 8 + x] = n.top[x];
                }
            }
        }
        IntraMode::Horizontal => {
            for y in 0..8 {
                for x in 0..8 {
                    pred[y * 8 + x] = n.left[y];
                }
            }
        }
        IntraMode::Planar => {
            let top_right = n.top[7];
            let bottom_left = n.left[7];
            for y in 0..8 {
                for x in 0..8 {
                    let xi = x as i32;
                    let yi = y as i32;
                    pred[y * 8 + x] = ((7 - xi) * n.left[y]
                        + (xi + 1) * top_right
                        + (7 - yi) * n.top[x]
                        + (yi + 1) * bottom_left
                        + 8)
                        >> 4;
                }
            }
        }
    }
    pred
}

/// Full-pel motion compensation: 8×8 prediction from `reference` at
/// block (bx, by) displaced by (mvx, mvy), with border clamping.
pub fn motion_compensate(reference: &Image, bx: usize, by: usize, mvx: i32, mvy: i32) -> Block {
    let mut pred = [0i32; 64];
    let x0 = (bx * 8) as isize + mvx as isize;
    let y0 = (by * 8) as isize + mvy as isize;
    for y in 0..8 {
        for x in 0..8 {
            pred[y * 8 + x] = reference.get_clamped(x0 + x as isize, y0 + y as isize) as i32;
        }
    }
    pred
}

/// Averages two predictions (bi-prediction), rounding up like HEVC.
pub fn average_blocks(a: &Block, b: &Block) -> Block {
    let mut out = [0i32; 64];
    for i in 0..64 {
        out[i] = (a[i] + b[i] + 1) >> 1;
    }
    out
}

/// Reconstructs a block: prediction + residual, clipped, written into
/// the frame.
pub fn reconstruct(rec: &mut Image, bx: usize, by: usize, pred: &Block, residual: &Block) {
    for y in 0..8 {
        for x in 0..8 {
            let v = pred[y * 8 + x] + residual[y * 8 + x];
            rec.set(bx * 8 + x, by * 8 + y, clip255(v));
        }
    }
}

/// In-loop deblocking: smooths the two samples either side of every
/// internal 8×8 edge when the step is small (coding noise rather than
/// a real edge). Vertical edges first, then horizontal — the order
/// matters and the mini-C decoder replicates it.
pub fn deblock(rec: &mut Image, qp: u32) {
    let thr = deblock_threshold(qp);
    // vertical edges at x = 8, 16, ...
    for x in (8..rec.width).step_by(8) {
        for y in 0..rec.height {
            let p0 = rec.get(x - 1, y) as i32;
            let q0 = rec.get(x, y) as i32;
            let delta = q0 - p0;
            if delta != 0 && delta.abs() < thr {
                let adj = delta / 4;
                rec.set(x - 1, y, clip255(p0 + adj));
                rec.set(x, y, clip255(q0 - adj));
            }
        }
    }
    // horizontal edges at y = 8, 16, ...
    for y in (8..rec.height).step_by(8) {
        for x in 0..rec.width {
            let p0 = rec.get(x, y - 1) as i32;
            let q0 = rec.get(x, y) as i32;
            let delta = q0 - p0;
            if delta != 0 && delta.abs() < thr {
                let adj = delta / 4;
                rec.set(x, y - 1, clip255(p0 + adj));
                rec.set(x, y, clip255(q0 - adj));
            }
        }
    }
}

/// The decoder's per-frame double-precision statistics (mirroring the
/// reference software's floating-point distortion/PSNR accounting):
/// per block, a standard-deviation-like measure
/// `sqrt(|64·Σs² − (Σs)²|) / 64` plus double-accumulated horizontal
/// and vertical gradient energies.
pub fn frame_activity(rec: &Image) -> f64 {
    let mut activity = 0.0f64;
    for by in 0..rec.height / 8 {
        for bx in 0..rec.width / 8 {
            let mut sum = 0i64;
            let mut ssq = 0i64;
            for y in 0..8 {
                for x in 0..8 {
                    let s = rec.get(bx * 8 + x, by * 8 + y) as i64;
                    sum += s;
                    ssq += s * s;
                }
            }
            let var = 64.0 * ssq as f64 - (sum as f64) * (sum as f64);
            activity += (var.abs()).sqrt() / 64.0;
            // Gradient energies, accumulated in double per line (the
            // 1/512 factor is exact in binary).
            for y in 0..8 {
                let mut row = 0i32;
                for x in 0..7 {
                    let a = rec.get(bx * 8 + x, by * 8 + y) as i32;
                    let b = rec.get(bx * 8 + x + 1, by * 8 + y) as i32;
                    row += (b - a).abs();
                }
                activity += row as f64 * 0.001953125;
            }
            for x in 0..8 {
                let mut col = 0i32;
                for y in 0..7 {
                    let a = rec.get(bx * 8 + x, by * 8 + y) as i32;
                    let b = rec.get(bx * 8 + x, by * 8 + y + 1) as i32;
                    col += (b - a).abs();
                }
                activity += col as f64 * 0.001953125;
            }
            // Sub-sampled per-pixel distortion accumulation in double
            // (the dominant float cost, like HM's per-sample PSNR sums).
            let mut y = 0;
            while y < 8 {
                let mut x = 0;
                while x < 7 {
                    let a = rec.get(bx * 8 + x, by * 8 + y) as i32;
                    let b = rec.get(bx * 8 + x + 1, by * 8 + y) as i32;
                    let d = (b - a).abs();
                    activity += d as f64 * 0.0009765625;
                    x += 1;
                }
                y += 2;
            }
        }
    }
    activity
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transform_roundtrip_is_near_identity() {
        // Without quantisation, fwd+inv should reproduce the residual
        // to within a couple of LSBs (integer approximation).
        let mut residual = [0i32; 64];
        for (i, r) in residual.iter_mut().enumerate() {
            *r = ((i as i32 * 37) % 255) - 127;
        }
        let coeffs = forward_transform(&residual);
        let back = inverse_transform(&coeffs);
        for i in 0..64 {
            assert!(
                (back[i] - residual[i]).abs() <= 2,
                "i={} {} vs {}",
                i,
                back[i],
                residual[i]
            );
        }
    }

    #[test]
    fn flat_block_transforms_to_dc_only() {
        let residual = [100i32; 64];
        let coeffs = forward_transform(&residual);
        assert!(coeffs[0] != 0);
        for (i, &c) in coeffs.iter().enumerate().skip(1) {
            assert_eq!(c, 0, "AC coefficient {i} nonzero for flat block");
        }
    }

    #[test]
    fn quantisation_roundtrip_scales() {
        let mut coeffs = [0i32; 64];
        coeffs[0] = 1000;
        coeffs[5] = -333;
        let q = quantise(&coeffs, 32);
        let dq = dequantise(&q, 32);
        assert!((dq[0] - 1000).abs() <= qstep(32) / 2);
        assert!((dq[5] + 333).abs() <= qstep(32) / 2);
    }

    #[test]
    fn intra_dc_without_neighbours_is_128() {
        let rec = Image::new(16, 16);
        let n = IntraNeighbours::gather(&rec, 0, 0);
        assert!(!n.top_available && !n.left_available);
        let pred = intra_predict(IntraMode::Dc, &n);
        assert!(pred.iter().all(|&p| p == 128));
    }

    #[test]
    fn intra_vertical_copies_top() {
        let mut rec = Image::new(16, 16);
        for x in 0..8 {
            rec.set(8 + x, 7, (x * 10) as u8);
        }
        let n = IntraNeighbours::gather(&rec, 1, 1);
        let pred = intra_predict(IntraMode::Vertical, &n);
        for y in 0..8 {
            for x in 0..8 {
                assert_eq!(pred[y * 8 + x], (x * 10) as i32);
            }
        }
    }

    #[test]
    fn motion_compensation_clamps_at_borders() {
        let mut reference = Image::new(16, 16);
        reference.set(0, 0, 99);
        let pred = motion_compensate(&reference, 0, 0, -100, -100);
        assert!(pred.iter().all(|&p| p == 99));
    }

    #[test]
    fn mode_codes_roundtrip() {
        for m in IntraMode::ALL {
            assert_eq!(IntraMode::from_code(m.code()), m);
        }
        assert_eq!(IntraMode::from_code(99), IntraMode::Dc);
    }

    #[test]
    fn deblock_smooths_small_steps_only() {
        let mut rec = Image::new(16, 8);
        for y in 0..8 {
            for x in 0..8 {
                rec.set(x, y, 100);
                rec.set(8 + x, y, 104); // small step: filtered
            }
        }
        deblock(&mut rec, 32);
        assert!(rec.get(7, 0) > 100);
        assert!(rec.get(8, 0) < 104);

        let mut hard = Image::new(16, 8);
        for y in 0..8 {
            for x in 0..8 {
                hard.set(x, y, 50);
                hard.set(8 + x, y, 200); // real edge: untouched
            }
        }
        deblock(&mut hard, 32);
        assert_eq!(hard.get(7, 0), 50);
        assert_eq!(hard.get(8, 0), 200);
    }

    #[test]
    fn activity_zero_for_flat_frame() {
        let rec = Image::new(16, 16);
        assert_eq!(frame_activity(&rec), 0.0);
        let img = crate::synth::test_image(16, 16, 3);
        assert!(frame_activity(&img) > 0.0);
    }
}
