#![warn(missing_docs)]
//! `nfp-testbed`: the virtual measurement testbed.
//!
//! The paper measures ground truth on a Terasic DE2-115 board: a
//! cacheless LEON3 soft-core (with or without FPU) synthesised on a
//! Cyclone IV FPGA, a power meter for energy, and `clock()` for time
//! (Section V). This crate substitutes that hardware with
//!
//! * [`hw`] — a detailed per-instruction cycle and energy model with
//!   the *context effects* real hardware exhibits and the paper's
//!   mechanistic model deliberately ignores (SDRAM row locality,
//!   taken/untaken branch asymmetry, operand-dependent FPU divide and
//!   square-root latency, data-dependent datapath toggling, static
//!   leakage), attached to the functional simulator as an
//!   [`nfp_sim::Observer`];
//! * [`measure`] — the measurement chain: a power meter with finite
//!   sampling rate, gain error and noise, and a `clock()` with tick
//!   granularity;
//! * [`area`] — the FPGA resource model (logical elements per
//!   component) behind Table IV's area column.
//!
//! The estimator in `nfp-core` never sees any of this; it only
//! observes calibration measurements, exactly like the paper's
//! workflow. The gap between this model's behaviour and the
//! constant-cost assumption is what produces realistic estimation
//! errors (~3 % mean) rather than a trivially exact match.

pub mod area;
pub mod cache;
pub mod hw;
pub mod measure;

pub use area::{AreaModel, Component};
pub use cache::{Cache, CacheConfig, CachedHwObserver};
pub use hw::{HwModel, HwObserver, HwTotals};
pub use measure::{MeasuredRun, Measurement, MeterConfig, Testbed};
