//! Differential calibration of specific energies and times
//! (paper Section V, Table II).
//!
//! For every model class a *reference* kernel (an empty counted loop)
//! and a *test* kernel (the same loop stuffed with `UNROLL` copies of
//! one instruction of the class) are assembled, run on the virtual
//! testbed, and measured through the instrument models. Eq. 2 then
//! gives the class's specific cost:
//!
//! ```text
//! e_c = (E_test − E_ref) / n_test,   t_c = (T_test − T_ref) / n_test
//! ```
//!
//! with `n_test = iterations × UNROLL`. Like the paper's setup, the
//! measured values inherit instrument imperfections (clock ticks,
//! meter noise), so calibrated values differ slightly from the
//! hardware model's internal parameters.

use crate::model::{Classifier, CostModel};
use crate::NfpError;
use nfp_sim::{Machine, MachineConfig, SimError};
use nfp_sparc::asm::Assembler;
use nfp_sparc::cond::ICond;
use nfp_sparc::{AluOp, FReg, FpOp, Instr, MemSize, Operand, Reg};
use nfp_testbed::Testbed;

/// Copies of the class instruction per loop iteration (Table II's
/// "large amount of the instructions to be tested").
pub const UNROLL: u32 = 64;

/// Target duration of the test−reference difference, in seconds;
/// drives the per-class iteration count so that clock quantisation is
/// negligible even for two-cycle instructions.
const TARGET_DIFF_S: f64 = 0.6;

/// What one kernel pair measured.
#[derive(Debug, Clone)]
pub struct ClassCalibration {
    /// Class name (model row).
    pub class: &'static str,
    /// Derived specific time in seconds (Eq. 2).
    pub time_s: f64,
    /// Derived specific energy in joules (Eq. 2).
    pub energy_j: f64,
    /// Number of test-instruction executions.
    pub n_test: u64,
    /// Measured (reference, test) times.
    pub measured_time_s: (f64, f64),
    /// Measured (reference, test) energies.
    pub measured_energy_j: (f64, f64),
}

/// Full calibration output.
#[derive(Debug, Clone)]
pub struct Calibration {
    /// The calibrated cost model, rows in classifier order.
    pub model: CostModel,
    /// Per-class details (Table I with provenance).
    pub details: Vec<ClassCalibration>,
}

/// How a class's kernel is built.
struct KernelSpec {
    /// Rough per-instruction time, to size the loop count.
    t_hint_s: f64,
    /// Whether the kernel needs the FPU.
    uses_fpu: bool,
    /// Emits per-class setup code (before the loop).
    setup: fn(&mut Assembler),
    /// Emits one instance of the class instruction.
    emit: fn(&mut Assembler, u32),
}

fn no_setup(_a: &mut Assembler) {}

fn mem_setup(a: &mut Assembler) {
    // %l1 <- address of the scratch double word; %l2 <- a data value.
    a.sethi_hi("scratch", Reg::l(1));
    a.or_lo("scratch", Reg::l(1));
    a.set32(0xa5a5_1234, Reg::l(2));
}

fn fpu_setup(a: &mut Assembler) {
    a.sethi_hi("dbl_a", Reg::l(1));
    a.or_lo("dbl_a", Reg::l(1));
    a.lddf(Reg::l(1), 0, FReg::new(0));
    a.sethi_hi("dbl_b", Reg::l(1));
    a.or_lo("dbl_b", Reg::l(1));
    a.lddf(Reg::l(1), 0, FReg::new(2));
}

fn div_setup(a: &mut Assembler) {
    a.set32(1_000_000, Reg::l(2));
    a.mov(7, Reg::l(3));
    a.push(Instr::WrY {
        rs1: nfp_sparc::regs::G0,
        op2: Operand::Imm(0),
    });
    a.nop();
    a.nop();
    a.nop();
}

fn spec_for(class: &'static str) -> KernelSpec {
    match class {
        "Integer Arithmetic" => KernelSpec {
            t_hint_s: 40e-9,
            uses_fpu: false,
            setup: no_setup,
            emit: |a, _| {
                a.alu(AluOp::Add, Reg::l(2), 1, Reg::l(2));
            },
        },
        "Jump" => KernelSpec {
            t_hint_s: 240e-9,
            uses_fpu: false,
            setup: no_setup,
            // `ba,a .+4`: a taken one-instruction jump whose (annulled)
            // delay slot is the jump target itself, so ONLY the jump
            // executes — no NOP padding dilutes the measurement.
            emit: |a, _| {
                a.push(Instr::Branch {
                    cond: ICond::A,
                    annul: true,
                    disp22: 1,
                });
            },
        },
        "Memory Load" => KernelSpec {
            t_hint_s: 700e-9,
            uses_fpu: false,
            setup: mem_setup,
            emit: |a, _| {
                a.ld(MemSize::Word, false, Reg::l(1), 0, Reg::l(4));
            },
        },
        "Memory Store" => KernelSpec {
            t_hint_s: 380e-9,
            uses_fpu: false,
            setup: mem_setup,
            emit: |a, _| {
                a.st(MemSize::Word, Reg::l(2), Reg::l(1), 0);
            },
        },
        "NOP" => KernelSpec {
            t_hint_s: 40e-9,
            uses_fpu: false,
            setup: no_setup,
            emit: |a, _| {
                a.nop();
            },
        },
        "Other" => KernelSpec {
            t_hint_s: 40e-9,
            uses_fpu: false,
            setup: no_setup,
            emit: |a, _| {
                a.push(Instr::RdY { rd: Reg::l(4) });
            },
        },
        "FPU Arithmetic" => KernelSpec {
            t_hint_s: 40e-9,
            uses_fpu: true,
            setup: fpu_setup,
            emit: |a, _| {
                a.fpop(FpOp::FAddD, FReg::new(0), FReg::new(2), FReg::new(4));
            },
        },
        "FPU Divide" => KernelSpec {
            t_hint_s: 420e-9,
            uses_fpu: true,
            setup: fpu_setup,
            emit: |a, _| {
                a.fpop(FpOp::FDivD, FReg::new(0), FReg::new(2), FReg::new(4));
            },
        },
        "FPU Square root" => KernelSpec {
            t_hint_s: 620e-9,
            uses_fpu: true,
            setup: fpu_setup,
            emit: |a, _| {
                a.fpop(FpOp::FSqrtD, FReg::new(0), FReg::new(2), FReg::new(4));
            },
        },
        "Integer Multiply" => KernelSpec {
            t_hint_s: 100e-9,
            uses_fpu: false,
            setup: div_setup,
            emit: |a, _| {
                a.alu(AluOp::SMul, Reg::l(2), Operand::Reg(Reg::l(3)), Reg::l(4));
            },
        },
        "Integer Divide" => KernelSpec {
            t_hint_s: 700e-9,
            uses_fpu: false,
            setup: div_setup,
            emit: |a, _| {
                a.alu(AluOp::UDiv, Reg::l(2), Operand::Reg(Reg::l(3)), Reg::l(4));
            },
        },
        "Any instruction" => KernelSpec {
            // A representative integer blend for the single-class
            // ablation model.
            t_hint_s: 150e-9,
            uses_fpu: false,
            setup: mem_setup,
            emit: |a, k| match k % 8 {
                0 | 1 | 4 | 7 => {
                    a.alu(AluOp::Add, Reg::l(2), 1, Reg::l(2));
                }
                2 => {
                    a.ld(MemSize::Word, false, Reg::l(1), 0, Reg::l(4));
                }
                3 => {
                    a.st(MemSize::Word, Reg::l(2), Reg::l(1), 0);
                }
                5 => {
                    a.push(Instr::Branch {
                        cond: ICond::A,
                        annul: true,
                        disp22: 1,
                    });
                }
                _ => {
                    a.nop();
                }
            },
        },
        other => panic!("no calibration kernel for class `{other}`"),
    }
}

/// Assembles a Table II kernel: `with_body = false` gives the
/// reference kernel, `true` the test kernel.
fn build_kernel(spec: &KernelSpec, iters: u32, with_body: bool) -> Vec<u32> {
    let mut a = Assembler::new(nfp_sim::RAM_BASE);
    (spec.setup)(&mut a);
    a.set32(iters, Reg::l(0));
    a.label("loop");
    if with_body {
        for k in 0..UNROLL {
            (spec.emit)(&mut a, k);
        }
    }
    a.alu(AluOp::SubCc, Reg::l(0), 1, Reg::l(0));
    a.b(ICond::Ne, "loop");
    a.nop();
    a.mov(0, Reg::o(0));
    a.ta(0);
    a.nop();
    // 8-aligned data for the FPU operands and memory scratch.
    if a.here() % 2 == 1 {
        a.word(0);
    }
    a.label("dbl_a");
    let bits_a = 1.0f64.to_bits();
    a.word((bits_a >> 32) as u32).word(bits_a as u32);
    a.label("dbl_b");
    // 1/3: a dense mantissa, representative of real operands for the
    // operand-dependent FPU divide/sqrt latency.
    let bits_b = (1.0f64 / 3.0).to_bits();
    a.word((bits_b >> 32) as u32).word(bits_b as u32);
    a.label("scratch");
    a.word(0).word(0);
    a.finish().expect("calibration kernel assembles")
}

/// Runs one kernel on the testbed and returns its measurement.
fn measure_kernel(
    testbed: &Testbed,
    words: &[u32],
    fpu: bool,
    seed: u64,
) -> Result<nfp_testbed::Measurement, SimError> {
    let mut machine = Machine::new(MachineConfig {
        ram_size: 1 << 20,
        fpu_enabled: fpu,
        count_categories: false,
        ..MachineConfig::default()
    });
    machine.load_image(nfp_sim::RAM_BASE, words)?;
    let measured = testbed.run(&mut machine, seed, 10_000_000_000)?;
    Ok(measured.measurement)
}

/// Derives one class's specific costs (Eq. 2) from the reference/test
/// measurement pair, rejecting degenerate inputs instead of producing
/// NaN/∞ costs: a zero test-instruction count divides by zero, a
/// non-finite measurement poisons everything downstream, and an
/// identical reference/test pair is a rank-deficient system with no
/// differential signal to solve for.
fn derive(
    class: &'static str,
    n_test: u64,
    m_ref: &nfp_testbed::Measurement,
    m_test: &nfp_testbed::Measurement,
) -> Result<ClassCalibration, NfpError> {
    let degenerate = |reason: String| NfpError::Calibration {
        class: class.to_string(),
        reason,
    };
    if n_test == 0 {
        return Err(degenerate(
            "zero test-instruction count (zero-count category)".to_string(),
        ));
    }
    for (label, v) in [
        ("reference time", m_ref.time_s),
        ("reference energy", m_ref.energy_j),
        ("test time", m_test.time_s),
        ("test energy", m_test.energy_j),
    ] {
        if !v.is_finite() {
            return Err(degenerate(format!("non-finite {label} measurement ({v})")));
        }
    }
    if m_test.time_s == m_ref.time_s && m_test.energy_j == m_ref.energy_j {
        return Err(degenerate(
            "reference and test measurements are identical \
             (rank-deficient system, no differential signal)"
                .to_string(),
        ));
    }
    Ok(ClassCalibration {
        class,
        time_s: (m_test.time_s - m_ref.time_s) / n_test as f64,
        energy_j: (m_test.energy_j - m_ref.energy_j) / n_test as f64,
        n_test,
        measured_time_s: (m_ref.time_s, m_test.time_s),
        measured_energy_j: (m_ref.energy_j, m_test.energy_j),
    })
}

/// Calibrates one class; exposed for the sensitivity ablation (E7),
/// which varies the iteration count.
pub fn calibrate_class(
    testbed: &Testbed,
    class: &'static str,
    iters: u32,
    seed: u64,
) -> Result<ClassCalibration, NfpError> {
    let n_test = iters as u64 * UNROLL as u64;
    if n_test == 0 {
        // Catch the zero-count case before paying for two testbed runs
        // (and before `build_kernel` emits a loop that counts down from
        // zero).
        return derive(
            class,
            0,
            &nfp_testbed::Measurement {
                time_s: 0.0,
                energy_j: 0.0,
            },
            &nfp_testbed::Measurement {
                time_s: 0.0,
                energy_j: 0.0,
            },
        );
    }
    let spec = spec_for(class);
    let ref_words = build_kernel(&spec, iters, false);
    let test_words = build_kernel(&spec, iters, true);
    let m_ref = measure_kernel(testbed, &ref_words, spec.uses_fpu, seed)?;
    let m_test = measure_kernel(testbed, &test_words, spec.uses_fpu, seed.wrapping_add(1))?;
    derive(class, n_test, &m_ref, &m_test)
}

/// Default iteration count for a class (sized so the differential
/// signal dominates instrument quantisation).
pub fn default_iters(class: &'static str) -> u32 {
    let spec = spec_for(class);
    let per_iter = spec.t_hint_s * UNROLL as f64;
    ((TARGET_DIFF_S / per_iter).ceil() as u32).clamp(1_000, 1_000_000)
}

/// Calibrates every class of `classifier` on the testbed
/// (regenerates the paper's Table I when used with [`crate::Paper`]).
pub fn calibrate<C: Classifier>(
    testbed: &Testbed,
    classifier: &C,
    seed: u64,
) -> Result<Calibration, NfpError> {
    if classifier.class_count() == 0 {
        return Err(NfpError::Empty {
            what: "classifier class set",
        });
    }
    let mut details = Vec::with_capacity(classifier.class_count());
    let mut time_s = Vec::with_capacity(classifier.class_count());
    let mut energy_j = Vec::with_capacity(classifier.class_count());
    for class_idx in 0..classifier.class_count() {
        let class = classifier.class_name(class_idx);
        let iters = default_iters(class);
        let cal = calibrate_class(
            testbed,
            class,
            iters,
            seed.wrapping_add(class_idx as u64 * 97),
        )?;
        time_s.push(cal.time_s);
        energy_j.push(cal.energy_j);
        details.push(cal);
    }
    Ok(Calibration {
        model: CostModel { time_s, energy_j },
        details,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Paper;

    #[test]
    fn calibrated_values_land_near_paper_table1() {
        let testbed = Testbed::new();
        let cal = calibrate(&testbed, &Paper, 42).expect("calibration runs");
        let paper = crate::model::paper_table1();
        for (i, detail) in cal.details.iter().enumerate() {
            let t = cal.model.time_s[i];
            let e = cal.model.energy_j[i];
            assert!(t > 0.0 && e > 0.0, "{}: non-positive cost", detail.class);
            // Within 35 % of the paper's published Table I — same
            // hardware class, not the same board.
            let rel_t = (t - paper.time_s[i]).abs() / paper.time_s[i];
            let rel_e = (e - paper.energy_j[i]).abs() / paper.energy_j[i];
            assert!(
                rel_t < 0.35,
                "{}: specific time {:.1} ns vs paper {:.1} ns",
                detail.class,
                t * 1e9,
                paper.time_s[i] * 1e9
            );
            assert!(
                rel_e < 0.35,
                "{}: specific energy {:.1} nJ vs paper {:.1} nJ",
                detail.class,
                e * 1e9,
                paper.energy_j[i] * 1e9
            );
        }
    }

    #[test]
    fn calibration_is_reproducible() {
        let testbed = Testbed::new();
        let a = calibrate_class(&testbed, "Integer Arithmetic", 50_000, 7).unwrap();
        let b = calibrate_class(&testbed, "Integer Arithmetic", 50_000, 7).unwrap();
        assert_eq!(a.time_s, b.time_s);
        assert_eq!(a.energy_j, b.energy_j);
    }

    #[test]
    fn zero_iteration_calibration_is_a_typed_error_not_nan() {
        let testbed = Testbed::new();
        match calibrate_class(&testbed, "NOP", 0, 1) {
            Err(NfpError::Calibration { class, reason }) => {
                assert_eq!(class, "NOP");
                assert!(reason.contains("zero-count"), "{reason}");
            }
            other => panic!("expected Calibration error, got {other:?}"),
        }
    }

    #[test]
    fn rank_deficient_measurement_pair_is_rejected() {
        let same = nfp_testbed::Measurement {
            time_s: 1.25,
            energy_j: 0.5,
        };
        match derive("Jump", 1000, &same, &same) {
            Err(NfpError::Calibration { reason, .. }) => {
                assert!(reason.contains("rank-deficient"), "{reason}");
            }
            other => panic!("expected Calibration error, got {other:?}"),
        }
    }

    #[test]
    fn non_finite_measurements_are_rejected() {
        let r = nfp_testbed::Measurement {
            time_s: 1.0,
            energy_j: 0.5,
        };
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let t = nfp_testbed::Measurement {
                time_s: bad,
                energy_j: 0.7,
            };
            match derive("NOP", 64, &r, &t) {
                Err(NfpError::Calibration { reason, .. }) => {
                    assert!(reason.contains("non-finite"), "{reason}");
                }
                other => panic!("expected Calibration error, got {other:?}"),
            }
        }
    }

    #[test]
    fn well_formed_derivation_matches_eq2() {
        let m_ref = nfp_testbed::Measurement {
            time_s: 1.0,
            energy_j: 0.5,
        };
        let m_test = nfp_testbed::Measurement {
            time_s: 3.0,
            energy_j: 1.5,
        };
        let cal = derive("NOP", 1000, &m_ref, &m_test).unwrap();
        assert!((cal.time_s - 2.0e-3).abs() < 1e-15);
        assert!((cal.energy_j - 1.0e-3).abs() < 1e-15);
        assert!(cal.time_s.is_finite() && cal.energy_j.is_finite());
    }

    #[test]
    fn load_costs_more_than_add() {
        let testbed = Testbed::new();
        let add = calibrate_class(&testbed, "Integer Arithmetic", 100_000, 1).unwrap();
        let load = calibrate_class(&testbed, "Memory Load", 20_000, 2).unwrap();
        assert!(load.time_s > 10.0 * add.time_s);
        assert!(load.energy_j > 5.0 * add.energy_j);
    }
}
