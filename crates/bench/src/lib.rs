//! `nfp-bench`: the reproduction harness.
//!
//! [`Evaluation`] runs the paper's full workflow — calibrate the cost
//! model (Table I), count instructions per kernel on the ISS, estimate
//! with Eq. 1, measure ground truth on the virtual testbed — and the
//! report functions render every table and figure of the paper:
//!
//! * [`report_table1`] — specific times/energies vs the paper's values;
//! * [`report_fig4`]   — measured vs estimated for four showcase kernels;
//! * [`report_table3`] — mean/max absolute estimation error over all kernels;
//! * [`report_table4`] — the FPU design trade-off;
//! * [`report_fig1`]   — simulation-speed vs accuracy landscape;
//! * [`report_ablation_categories`] / [`report_ablation_calibration`] —
//!   additional ablations.
//!
//! Beyond the paper, [`campaign`] adds SEU fault-injection campaigns:
//! [`run_campaign`] replays a kernel under seeded single-bit flips and
//! classifies each replay as masked/SDC/trap/hang into a
//! per-instruction-category vulnerability report.

mod backoff;
mod cache;
pub mod campaign;
mod crc;
pub mod evaluation;
mod flatjson;
mod net;
pub mod reports;
pub mod serve;
mod servejournal;
pub mod shards;
pub mod supervisor;
pub mod worker;

pub use campaign::{
    report_campaign, run_campaign, run_campaign_parallel, CampaignConfig, CampaignResult,
    InjectionRecord,
};
pub use evaluation::{Evaluation, KernelResult, Mode};
pub use reports::*;
pub use serve::{
    submit_campaign, submit_campaign_retry, submit_campaign_with, CampaignRequest, RemoteOutcome,
    ServeConfig, ServeSummary, Server,
};
pub use shards::{
    merge_journals, peek_campaign, run_sharded, shard_journal_path, MergeOutcome, ShardConfig,
    ShardOutcome, ShardSpec,
};
pub use supervisor::{
    run_supervised, QuarantineEntry, SupervisorConfig, SupervisorOutcome, WorkerIsolation,
};
pub use worker::{run_worker, run_worker_connect, run_worker_connect_with, LiePlan, WorkerPreset};
