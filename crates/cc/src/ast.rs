//! Abstract syntax tree for the mini-C dialect.

use std::fmt;

/// Scalar and pointer types.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// No value (function returns only).
    Void,
    /// 8-bit unsigned (`uchar`), promoted to `int` in arithmetic.
    UChar,
    /// 32-bit signed.
    Int,
    /// 32-bit unsigned.
    UInt,
    /// 64-bit unsigned.
    U64,
    /// IEEE-754 binary64.
    Double,
    /// Pointer to `T`.
    Ptr(Box<Type>),
}

impl Type {
    /// Size of a value of this type in bytes.
    pub fn size(&self) -> u32 {
        match self {
            Type::Void => 0,
            Type::UChar => 1,
            Type::Int | Type::UInt | Type::Ptr(_) => 4,
            Type::U64 | Type::Double => 8,
        }
    }

    /// Required alignment in bytes.
    pub fn align(&self) -> u32 {
        self.size().max(1)
    }

    /// Number of 32-bit words a value occupies in registers / the
    /// argument list.
    pub fn words(&self) -> u32 {
        match self {
            Type::Void => 0,
            Type::U64 | Type::Double => 2,
            _ => 1,
        }
    }

    /// True for the integer-like single-word types (incl. pointers).
    pub fn is_word(&self) -> bool {
        matches!(self, Type::UChar | Type::Int | Type::UInt | Type::Ptr(_))
    }

    /// True for any integer type.
    pub fn is_integer(&self) -> bool {
        matches!(self, Type::UChar | Type::Int | Type::UInt | Type::U64)
    }

    /// True if comparisons on this type are unsigned.
    pub fn is_unsigned(&self) -> bool {
        matches!(self, Type::UChar | Type::UInt | Type::U64 | Type::Ptr(_))
    }

    /// Pointer to this type.
    pub fn ptr(self) -> Type {
        Type::Ptr(Box::new(self))
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => write!(f, "void"),
            Type::UChar => write!(f, "uchar"),
            Type::Int => write!(f, "int"),
            Type::UInt => write!(f, "uint"),
            Type::U64 => write!(f, "u64"),
            Type::Double => write!(f, "double"),
            Type::Ptr(inner) => write!(f, "{inner}*"),
        }
    }
}

/// Binary operators (compound assignments are desugared by the parser).
#[allow(missing_docs)] // variants mirror the C operators
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    And,
    Or,
    Xor,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    LogAnd,
    LogOr,
}

impl BinOp {
    /// True for the six comparison operators.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Bitwise not.
    Not,
    /// Logical not (yields `int` 0/1).
    LogNot,
}

/// Expressions. `line` fields are carried on statements only; expression
/// diagnostics reference the enclosing statement.
#[allow(missing_docs)] // literal/variable variants are self-describing
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    IntLit(i64),
    UIntLit(u64),
    FloatLit(f64),
    Var(String),
    Unary(UnOp, Box<Expr>),
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `cond ? a : b`
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `lhs = rhs` (an expression, value = rhs after conversion)
    Assign(Box<Expr>, Box<Expr>),
    /// `f(args…)`
    Call(String, Vec<Expr>),
    /// `base[index]`
    Index(Box<Expr>, Box<Expr>),
    /// `*ptr`
    Deref(Box<Expr>),
    /// `&lvalue`
    AddrOf(Box<Expr>),
    /// `(T) expr`
    Cast(Type, Box<Expr>),
}

/// Statements.
#[allow(missing_docs)] // fields mirror the surface syntax
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Scalar declaration with optional initialiser.
    Decl {
        ty: Type,
        name: String,
        init: Option<Expr>,
        line: u32,
    },
    /// Local array declaration (zero length is rejected by the parser).
    ArrayDecl {
        elem: Type,
        name: String,
        len: u32,
        line: u32,
    },
    Expr(Expr, u32),
    If {
        cond: Expr,
        then_branch: Vec<Stmt>,
        else_branch: Vec<Stmt>,
        line: u32,
    },
    While {
        cond: Expr,
        body: Vec<Stmt>,
        line: u32,
    },
    /// `for(init; cond; step) body` — init/step optional.
    For {
        init: Option<Box<Stmt>>,
        cond: Option<Expr>,
        step: Option<Expr>,
        body: Vec<Stmt>,
        line: u32,
    },
    Return(Option<Expr>, u32),
    Break(u32),
    Continue(u32),
    Block(Vec<Stmt>),
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Declared type.
    pub ty: Type,
    /// Parameter name.
    pub name: String,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Return type (`void` for procedures).
    pub ret: Type,
    /// Function name (also its link symbol).
    pub name: String,
    /// Parameters in declaration order.
    pub params: Vec<Param>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source line of the definition.
    pub line: u32,
}

/// Constant initialiser of a global.
#[derive(Debug, Clone, PartialEq)]
pub enum GlobalInit {
    /// Zero-initialised.
    Zero,
    /// Single scalar literal (possibly negated).
    Scalar(f64, i64, bool /* is_float */),
    /// Array of integer/float literals.
    List(Vec<(f64, i64, bool)>),
}

/// A global variable definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Global {
    /// Element type.
    pub ty: Type,
    /// Global name (also its link symbol).
    pub name: String,
    /// Number of elements; 1 for scalars.
    pub count: u32,
    /// True if declared with `[]` (array), affecting decay.
    pub is_array: bool,
    /// Constant initialiser.
    pub init: GlobalInit,
    /// Source line of the definition.
    pub line: u32,
}

/// A whole translation unit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Unit {
    /// Global variables in declaration order.
    pub globals: Vec<Global>,
    /// Function definitions in declaration order.
    pub functions: Vec<Function>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_sizes_and_words() {
        assert_eq!(Type::UChar.size(), 1);
        assert_eq!(Type::Int.size(), 4);
        assert_eq!(Type::Double.size(), 8);
        assert_eq!(Type::Int.ptr().size(), 4);
        assert_eq!(Type::Double.words(), 2);
        assert_eq!(Type::U64.words(), 2);
        assert_eq!(Type::Void.words(), 0);
    }

    #[test]
    fn signedness() {
        assert!(Type::UInt.is_unsigned());
        assert!(Type::U64.is_unsigned());
        assert!(!Type::Int.is_unsigned());
        assert!(Type::Int.ptr().is_unsigned());
    }

    #[test]
    fn display() {
        assert_eq!(Type::Double.ptr().to_string(), "double*");
        assert_eq!(Type::UChar.ptr().ptr().to_string(), "uchar**");
    }
}
