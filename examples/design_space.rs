//! Design-space exploration (the paper's Section VI-D application):
//! should the product's CPU spend chip area on an FPU?
//!
//! Simulates one FSE kernel and one HEVC kernel in both float
//! (FPU instructions) and fixed (`-msoft-float`) builds, measures them
//! on the virtual board, and prints a Table IV-style decision basis.
//!
//! Run with: `cargo run --release --example design_space`

use nfp_repro::cc::FloatMode;
use nfp_repro::testbed::{AreaModel, Testbed};
use nfp_repro::workloads::{fse_kernels, hevc_kernels, machine_for, Kernel, Preset};

fn measure(testbed: &Testbed, kernel: &Kernel, mode: FloatMode) -> (f64, f64) {
    let mut machine = machine_for(kernel, mode).expect("machine");
    let r = testbed
        .run(
            &mut machine,
            kernel.seed,
            nfp_repro::workloads::KERNEL_BUDGET,
        )
        .expect("run");
    assert_eq!(r.run.exit_code, 0);
    (r.measurement.time_s, r.measurement.energy_j)
}

fn main() {
    let preset = Preset::quick();
    let testbed = Testbed::new();
    let fse = &fse_kernels(&preset).expect("kernels")[0];
    let hevc = &hevc_kernels(&preset).expect("kernels")[4];

    println!("Should this product's CPU include an FPU?\n");
    println!(
        "{:<34} {:>11} {:>11} {:>9}",
        "Kernel", "no FPU", "with FPU", "change"
    );
    for (name, kernel) in [
        ("FSE (signal extrapolation)", fse),
        ("HEVC-like decoding", hevc),
    ] {
        let (t_soft, e_soft) = measure(&testbed, kernel, FloatMode::Soft);
        let (t_hard, e_hard) = measure(&testbed, kernel, FloatMode::Hard);
        println!(
            "{:<34} {:>9.3} s {:>9.3} s {:>8.1}%",
            format!("{name} — time"),
            t_soft,
            t_hard,
            (t_hard - t_soft) / t_soft * 100.0
        );
        println!(
            "{:<34} {:>9.3} J {:>9.3} J {:>8.1}%",
            format!("{name} — energy"),
            e_soft,
            e_hard,
            (e_hard - e_soft) / e_soft * 100.0
        );
    }

    let base = AreaModel::baseline();
    let with = AreaModel::with_fpu();
    println!(
        "\nchip area: {} -> {} logical elements ({:+.0}%)",
        base.logical_elements(),
        with.logical_elements(),
        base.relative_change_to(&with) * 100.0
    );
    println!("\ncomponents with FPU:");
    for c in with.components() {
        println!("  {:<20} {:>6} LEs", c.to_string(), c.logical_elements());
    }
    println!(
        "\nverdict: for FSE-class float workloads the FPU pays for its area\n\
         many times over; for integer-dominated decoding the win is modest\n\
         and a cheaper FPU-less part may be the better choice (paper, §VI-D)."
    );
}
