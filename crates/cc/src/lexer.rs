//! Lexer for the mini-C dialect, with object-like `#define` support.
//!
//! The dialect is the subset of C needed to write the paper's
//! workloads and the soft-float runtime: scalar types (`uchar`, `int`,
//! `uint`, `u64`, `double`), pointers, one-dimensional arrays, and the
//! usual expression and statement forms. `#define NAME tokens…` performs
//! simple token substitution (no function-like macros).

use std::collections::HashMap;
use std::fmt;

/// Token kinds.
#[allow(missing_docs)] // names mirror the lexemes
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    // literals
    Int(i64),
    UInt(u64),
    Float(f64),
    Ident(String),
    // keywords
    KwVoid,
    KwUChar,
    KwInt,
    KwUInt,
    KwU64,
    KwDouble,
    KwIf,
    KwElse,
    KwWhile,
    KwFor,
    KwReturn,
    KwBreak,
    KwContinue,
    // punctuation / operators
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Question,
    Colon,
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    NotEq,
    AndAnd,
    OrOr,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PercentAssign,
    AmpAssign,
    PipeAssign,
    CaretAssign,
    ShlAssign,
    ShrAssign,
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Int(v) => write!(f, "{v}"),
            Tok::UInt(v) => write!(f, "{v}u"),
            Tok::Float(v) => write!(f, "{v}"),
            Tok::Ident(s) => write!(f, "{s}"),
            other => write!(f, "{other:?}"),
        }
    }
}

/// A token with its source line (for diagnostics).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// Lexical error with source line.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// What went wrong.
    pub message: String,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

fn keyword(s: &str) -> Option<Tok> {
    Some(match s {
        "void" => Tok::KwVoid,
        "uchar" => Tok::KwUChar,
        "int" => Tok::KwInt,
        "uint" => Tok::KwUInt,
        "u64" => Tok::KwU64,
        "double" => Tok::KwDouble,
        "if" => Tok::KwIf,
        "else" => Tok::KwElse,
        "while" => Tok::KwWhile,
        "for" => Tok::KwFor,
        "return" => Tok::KwReturn,
        "break" => Tok::KwBreak,
        "continue" => Tok::KwContinue,
        _ => return None,
    })
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, LexError> {
        Err(LexError {
            message: message.into(),
            line: self.line,
        })
    }

    fn peek(&self) -> u8 {
        *self.src.get(self.pos).unwrap_or(&0)
    }

    fn peek2(&self) -> u8 {
        *self.src.get(self.pos + 1).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek();
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        c
    }

    /// Skips whitespace and comments; returns false at end of input.
    fn skip_trivia(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek2() == b'/' => {
                    while self.pos < self.src.len() && self.peek() != b'\n' {
                        self.bump();
                    }
                }
                b'/' if self.peek2() == b'*' => {
                    let start_line = self.line;
                    self.bump();
                    self.bump();
                    loop {
                        if self.pos >= self.src.len() {
                            return Err(LexError {
                                message: "unterminated block comment".into(),
                                line: start_line,
                            });
                        }
                        if self.peek() == b'*' && self.peek2() == b'/' {
                            self.bump();
                            self.bump();
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_number(&mut self) -> Result<Tok, LexError> {
        let start = self.pos;
        if self.peek() == b'0' && (self.peek2() == b'x' || self.peek2() == b'X') {
            self.bump();
            self.bump();
            let hstart = self.pos;
            while self.peek().is_ascii_hexdigit() {
                self.bump();
            }
            if self.pos == hstart {
                return self.err("hex literal needs digits");
            }
            let text = std::str::from_utf8(&self.src[hstart..self.pos]).unwrap();
            let v = u64::from_str_radix(text, 16).map_err(|_| LexError {
                message: "hex literal too large".into(),
                line: self.line,
            })?;
            if self.peek() == b'u' || self.peek() == b'U' {
                self.bump();
                return Ok(Tok::UInt(v));
            }
            return Ok(Tok::Int(v as i64));
        }
        while self.peek().is_ascii_digit() {
            self.bump();
        }
        let is_float = (self.peek() == b'.' && self.peek2().is_ascii_digit())
            || self.peek() == b'e'
            || self.peek() == b'E';
        if is_float {
            if self.peek() == b'.' {
                self.bump();
                while self.peek().is_ascii_digit() {
                    self.bump();
                }
            }
            if self.peek() == b'e' || self.peek() == b'E' {
                self.bump();
                if self.peek() == b'+' || self.peek() == b'-' {
                    self.bump();
                }
                while self.peek().is_ascii_digit() {
                    self.bump();
                }
            }
            let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
            let v: f64 = text.parse().map_err(|_| LexError {
                message: format!("bad float literal `{text}`"),
                line: self.line,
            })?;
            return Ok(Tok::Float(v));
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        let v: u64 = text.parse().map_err(|_| LexError {
            message: format!("integer literal `{text}` too large"),
            line: self.line,
        })?;
        if self.peek() == b'u' || self.peek() == b'U' {
            self.bump();
            return Ok(Tok::UInt(v));
        }
        Ok(Tok::Int(v as i64))
    }

    fn lex_char(&mut self) -> Result<Tok, LexError> {
        self.bump(); // opening quote
        let c = match self.bump() {
            b'\\' => match self.bump() {
                b'n' => b'\n',
                b't' => b'\t',
                b'0' => 0,
                b'\\' => b'\\',
                b'\'' => b'\'',
                other => return self.err(format!("unknown escape `\\{}`", other as char)),
            },
            0 => return self.err("unterminated character literal"),
            c => c,
        };
        if self.bump() != b'\'' {
            return self.err("unterminated character literal");
        }
        Ok(Tok::Int(c as i64))
    }

    fn next_token(&mut self) -> Result<Option<Token>, LexError> {
        self.skip_trivia()?;
        if self.pos >= self.src.len() {
            return Ok(None);
        }
        let line = self.line;
        let c = self.peek();
        let tok = match c {
            b'0'..=b'9' => self.lex_number()?,
            b'\'' => self.lex_char()?,
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = self.pos;
                while matches!(self.peek(), b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_') {
                    self.bump();
                }
                let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
                keyword(text).unwrap_or_else(|| Tok::Ident(text.to_string()))
            }
            _ => {
                self.bump();
                let two = |l: &mut Self, second: u8, yes: Tok, no: Tok| {
                    if l.peek() == second {
                        l.bump();
                        yes
                    } else {
                        no
                    }
                };
                match c {
                    b'(' => Tok::LParen,
                    b')' => Tok::RParen,
                    b'{' => Tok::LBrace,
                    b'}' => Tok::RBrace,
                    b'[' => Tok::LBracket,
                    b']' => Tok::RBracket,
                    b',' => Tok::Comma,
                    b';' => Tok::Semi,
                    b'?' => Tok::Question,
                    b':' => Tok::Colon,
                    b'~' => Tok::Tilde,
                    b'+' => two(self, b'=', Tok::PlusAssign, Tok::Plus),
                    b'-' => two(self, b'=', Tok::MinusAssign, Tok::Minus),
                    b'*' => two(self, b'=', Tok::StarAssign, Tok::Star),
                    b'/' => two(self, b'=', Tok::SlashAssign, Tok::Slash),
                    b'%' => two(self, b'=', Tok::PercentAssign, Tok::Percent),
                    b'^' => two(self, b'=', Tok::CaretAssign, Tok::Caret),
                    b'!' => two(self, b'=', Tok::NotEq, Tok::Bang),
                    b'=' => two(self, b'=', Tok::EqEq, Tok::Assign),
                    b'&' => {
                        if self.peek() == b'&' {
                            self.bump();
                            Tok::AndAnd
                        } else {
                            two(self, b'=', Tok::AmpAssign, Tok::Amp)
                        }
                    }
                    b'|' => {
                        if self.peek() == b'|' {
                            self.bump();
                            Tok::OrOr
                        } else {
                            two(self, b'=', Tok::PipeAssign, Tok::Pipe)
                        }
                    }
                    b'<' => {
                        if self.peek() == b'<' {
                            self.bump();
                            two(self, b'=', Tok::ShlAssign, Tok::Shl)
                        } else {
                            two(self, b'=', Tok::Le, Tok::Lt)
                        }
                    }
                    b'>' => {
                        if self.peek() == b'>' {
                            self.bump();
                            two(self, b'=', Tok::ShrAssign, Tok::Shr)
                        } else {
                            two(self, b'=', Tok::Ge, Tok::Gt)
                        }
                    }
                    other => return self.err(format!("unexpected character `{}`", other as char)),
                }
            }
        };
        Ok(Some(Token { tok, line }))
    }
}

/// Replaces block comments with spaces (preserving newlines) so the
/// subsequent line-oriented pass never sees one spanning lines.
fn strip_block_comments(source: &str) -> Result<String, LexError> {
    let bytes = source.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    let mut line = 1u32;
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            line += 1;
        }
        if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
            let start_line = line;
            i += 2;
            loop {
                if i >= bytes.len() {
                    return Err(LexError {
                        message: "unterminated block comment".into(),
                        line: start_line,
                    });
                }
                if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                    i += 2;
                    break;
                }
                if bytes[i] == b'\n' {
                    line += 1;
                    out.push(b'\n');
                } else {
                    out.push(b' ');
                }
                i += 1;
            }
            out.push(b' ');
            out.push(b' ');
            continue;
        }
        // Line comments may contain `/*`; pass them through untouched
        // so the per-line lexer skips them as a unit.
        if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            while i < bytes.len() && bytes[i] != b'\n' {
                out.push(bytes[i]);
                i += 1;
            }
            continue;
        }
        out.push(bytes[i]);
        i += 1;
    }
    Ok(String::from_utf8(out).expect("comment stripping preserves UTF-8"))
}

/// Tokenises `source`, expanding `#define` macros.
pub fn lex(source: &str) -> Result<Vec<Token>, LexError> {
    let source = &strip_block_comments(source)?;
    let mut defines: HashMap<String, Vec<Tok>> = HashMap::new();
    let mut out = Vec::new();
    for (lineno, raw_line) in source.lines().enumerate() {
        let line_num = lineno as u32 + 1;
        let trimmed = raw_line.trim_start();
        if let Some(rest) = trimmed.strip_prefix("#define") {
            let mut lx = Lexer {
                src: rest.as_bytes(),
                pos: 0,
                line: line_num,
            };
            let name = match lx.next_token()? {
                Some(Token {
                    tok: Tok::Ident(n), ..
                }) => n,
                _ => {
                    return Err(LexError {
                        message: "#define requires a name".into(),
                        line: line_num,
                    })
                }
            };
            let mut body = Vec::new();
            while let Some(t) = lx.next_token()? {
                body.push(t.tok);
            }
            // Expand defines inside the body so chained defines work.
            let body = body
                .into_iter()
                .flat_map(|t| match &t {
                    Tok::Ident(n) => defines.get(n).cloned().unwrap_or_else(|| vec![t]),
                    _ => vec![t],
                })
                .collect();
            defines.insert(name, body);
            continue;
        }
        if trimmed.starts_with('#') {
            return Err(LexError {
                message: format!("unsupported preprocessor directive: {trimmed}"),
                line: line_num,
            });
        }
        let mut lx = Lexer {
            src: raw_line.as_bytes(),
            pos: 0,
            line: line_num,
        };
        // Block comments spanning lines are handled by a pre-pass below;
        // here we only lex single lines, so reject unterminated ones.
        while let Some(t) = lx.next_token()? {
            match &t.tok {
                Tok::Ident(n) if defines.contains_key(n) => {
                    for dt in &defines[n] {
                        out.push(Token {
                            tok: dt.clone(),
                            line: t.line,
                        });
                    }
                }
                _ => out.push(t),
            }
        }
    }
    out.push(Token {
        tok: Tok::Eof,
        line: source.lines().count() as u32 + 1,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("42 0x2a 7u 0xffu 3.5 1e3 2.5e-2"),
            vec![
                Tok::Int(42),
                Tok::Int(42),
                Tok::UInt(7),
                Tok::UInt(255),
                Tok::Float(3.5),
                Tok::Float(1000.0),
                Tok::Float(0.025),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn char_literals() {
        assert_eq!(
            toks(r"'A' '\n' '\0'"),
            vec![Tok::Int(65), Tok::Int(10), Tok::Int(0), Tok::Eof]
        );
    }

    #[test]
    fn operators_longest_match() {
        assert_eq!(
            toks("a <<= b >> c <= d < e"),
            vec![
                Tok::Ident("a".into()),
                Tok::ShlAssign,
                Tok::Ident("b".into()),
                Tok::Shr,
                Tok::Ident("c".into()),
                Tok::Le,
                Tok::Ident("d".into()),
                Tok::Lt,
                Tok::Ident("e".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("1 // line\n2 /* inline */ 3"),
            vec![Tok::Int(1), Tok::Int(2), Tok::Int(3), Tok::Eof]
        );
    }

    #[test]
    fn keywords_vs_idents() {
        assert_eq!(
            toks("int intx"),
            vec![Tok::KwInt, Tok::Ident("intx".into()), Tok::Eof]
        );
    }

    #[test]
    fn defines_expand() {
        let src = "#define N 16\n#define M N\nint a[M];";
        assert_eq!(
            toks(src),
            vec![
                Tok::KwInt,
                Tok::Ident("a".into()),
                Tok::LBracket,
                Tok::Int(16),
                Tok::RBracket,
                Tok::Semi,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn errors_carry_lines() {
        let e = lex("int a;\n$").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn unknown_directive_rejected() {
        assert!(lex("#include <stdio.h>").is_err());
    }
}
