//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access and no crates.io mirror,
//! so the workspace vendors the small API subset it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`] over integer and float ranges. The generator is
//! SplitMix64 — statistically fine for synthetic workload generation
//! and instrument-noise modelling, and fully deterministic, which the
//! test suite and the fault-injection campaigns rely on.
//!
//! The stream differs from upstream `StdRng` (ChaCha12); everything in
//! this workspace derives both inputs and expectations from the same
//! stream, so no golden value depends on matching upstream.

use std::ops::Range;

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The user-facing generator interface.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a half-open range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

/// Types usable as a `gen_range` argument.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample.
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> Self::Output;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + (self.end - self.start) * unit
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        self.start + (self.end - self.start) * unit
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic SplitMix64 generator (API-compatible stand-in for
    /// `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds_and_vary() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut lo_half = 0;
        for _ in 0..1000 {
            let v = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&v));
            if v < 0.0 {
                lo_half += 1;
            }
        }
        assert!(lo_half > 300 && lo_half < 700, "badly skewed: {lo_half}");
    }
}
