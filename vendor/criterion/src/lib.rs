//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no network access and no crates.io mirror,
//! so the workspace vendors the API subset its benches use. Each
//! `bench_function` warms up once, then runs the closure for a short
//! fixed window and prints the mean iteration time (plus throughput if
//! configured). There is no statistical analysis, no HTML report, and
//! no CLI argument handling.

use std::time::{Duration, Instant};

/// Opaque-to-the-optimiser value barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for per-element / per-byte rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Drives one benchmark's iterations.
pub struct Bencher {
    throughput: Option<Throughput>,
    name: String,
}

impl Bencher {
    /// Times `f`, printing the mean over a short measurement window.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        let budget = Duration::from_millis(300);
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < budget && iters < 50 {
            black_box(f());
            iters += 1;
        }
        let mean = start.elapsed().as_secs_f64() / iters.max(1) as f64;
        let mut line = format!("{:<40} {:>12.3} ms/iter", self.name, mean * 1e3);
        match self.throughput {
            Some(Throughput::Elements(n)) => {
                line += &format!("  {:>10.1} Melem/s", n as f64 / mean / 1e6);
            }
            Some(Throughput::Bytes(n)) => {
                line += &format!("  {:>10.1} MiB/s", n as f64 / mean / (1 << 20) as f64);
            }
            None => {}
        }
        println!("{line}");
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets the sample count (accepted, unused by this stand-in).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time (accepted, unused by this stand-in).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotates benchmarks in this group with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            throughput: self.throughput,
            name: format!("{}/{}", self.name, id),
        };
        f(&mut b);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            throughput: None,
            name: id.to_string(),
        };
        f(&mut b);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// Bundles benchmark functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
