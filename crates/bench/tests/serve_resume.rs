//! Crash-safety suite for the coordinator (DESIGN.md §15).
//!
//! The bar is the same as every other layer: the report must be
//! **byte-identical** to a sequential same-seed run — now across
//! coordinator SIGKILLs and restarts. A killed coordinator resumes
//! from its service journal, re-dispatches only what its records files
//! do not already hold, and a re-presented submit either re-attaches
//! to the live campaign or comes back from the result cache without a
//! single re-simulated injection.

use nfp_bench::{
    report_campaign, run_supervised, run_worker_connect, submit_campaign_retry,
    submit_campaign_with, CampaignConfig, CampaignRequest, Mode, ServeConfig, ServeSummary, Server,
    SupervisorConfig, WorkerPreset,
};
use nfp_workloads::{all_kernels, Kernel, Preset};
use std::path::{Path, PathBuf};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

fn quick_kernel() -> Kernel {
    all_kernels(&Preset::quick())
        .expect("quick kernel registry")
        .into_iter()
        .find(|k| k.name.contains("fse"))
        .expect("quick preset has an FSE kernel")
}

fn campaign(injections: usize) -> CampaignConfig {
    CampaignConfig {
        injections,
        ..CampaignConfig::default()
    }
}

/// The sequential same-seed report every served run must reproduce.
fn reference_report(injections: usize) -> String {
    let kernel = quick_kernel();
    let outcome = run_supervised(
        &kernel,
        Mode::Float,
        &SupervisorConfig::new(campaign(injections)),
    )
    .expect("sequential reference campaign");
    report_campaign(&outcome.result)
}

fn request(injections: usize, shards: u32) -> CampaignRequest {
    CampaignRequest {
        client: "resume-test".to_string(),
        kernel: quick_kernel().name,
        mode: Mode::Float,
        campaign: campaign(injections),
        shards,
        allow_partial: false,
    }
}

fn serve_config(heartbeat_ms: u64) -> ServeConfig {
    ServeConfig {
        listen: "127.0.0.1:0".to_string(),
        preset: WorkerPreset::Quick,
        heartbeat: Duration::from_millis(heartbeat_ms),
        // These tests exercise journaling and caching, not the local
        // fallback: keep the grace period out of the picture unless a
        // test opts in.
        peer_grace: Duration::from_secs(120),
        lease_timeout: Duration::from_secs(60),
        ..ServeConfig::default()
    }
}

fn spawn_server(cfg: ServeConfig) -> (String, JoinHandle<ServeSummary>) {
    let server = Server::bind(cfg).expect("bind 127.0.0.1:0");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle)
}

fn spawn_worker_thread(addr: &str) -> JoinHandle<i32> {
    let addr = addr.to_string();
    std::thread::spawn(move || run_worker_connect(&addr, 200))
}

/// A scratch directory named after the test, wiped on entry so reruns
/// never resume from a previous invocation's journal.
fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nfp-serve-resume-{test}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Polls a log file until `needle` appears (or panics at the deadline).
fn wait_for_log(path: &Path, needle: &str, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if std::fs::read_to_string(path)
            .map(|s| s.contains(needle))
            .unwrap_or(false)
        {
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    let log = std::fs::read_to_string(path).unwrap_or_default();
    panic!("'{needle}' never appeared in {}:\n{log}", path.display());
}

#[test]
fn identical_submits_dedupe_then_hit_the_cache_and_drain_shuts_down() {
    let dir = scratch("dedupe");
    let reference = reference_report(200);
    let drain_flag = dir.join("drain.flag");
    let cfg = ServeConfig {
        drain: Some(drain_flag.clone()),
        ..serve_config(200)
    };
    let (addr, server) = spawn_server(cfg);
    let w1 = spawn_worker_thread(&addr);
    let w2 = spawn_worker_thread(&addr);
    std::thread::sleep(Duration::from_millis(300));
    // Two identical submissions, the second arriving while the first
    // is (almost surely) still running: at most one simulation runs.
    let first = {
        let addr = addr.clone();
        std::thread::spawn(move || submit_campaign_with(&addr, &request(200, 4), |_| {}))
    };
    std::thread::sleep(Duration::from_millis(300));
    let second = {
        let addr = addr.clone();
        std::thread::spawn(move || submit_campaign_with(&addr, &request(200, 4), |_| {}))
    };
    let a = first.join().expect("first submit").expect("first report");
    let b = second
        .join()
        .expect("second submit")
        .expect("second report");
    assert_eq!(a.report, reference, "leader report diverged");
    assert_eq!(b.report, reference, "deduplicated report diverged");
    // A third, after both finished, must be a pure cache hit.
    let mut notes = Vec::new();
    let c = submit_campaign_with(&addr, &request(200, 4), |n| notes.push(n.to_string()))
        .expect("cached submit");
    assert_eq!(c.report, reference, "cached report diverged");
    assert!(
        notes.iter().any(|n| n.contains("result cache hit")),
        "no cache-hit note in {notes:?}"
    );
    // Drain: the sentinel refuses new work, finishes what is in
    // flight (nothing), and shuts the coordinator down cleanly.
    std::fs::write(&drain_flag, b"").expect("touch drain flag");
    let summary = server.join().expect("server thread");
    assert!(summary.cache_hits >= 1, "{summary:?}");
    // Whether the second submit overlapped (deduplicated) or landed
    // late (cache hit), exactly one of the three simulated.
    assert!(
        summary.cache_hits + summary.submits_deduped >= 2,
        "{summary:?}"
    );
    assert_eq!(w1.join().expect("worker 1"), 0);
    assert_eq!(w2.join().expect("worker 2"), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
#[cfg(unix)]
fn sigkilled_coordinator_resumes_and_the_report_is_byte_identical() {
    use std::process::{Command, Stdio};

    let dir = scratch("sigkill");
    let reference = reference_report(400);
    let journal = dir.join("serve.journal");
    let drain_flag = dir.join("drain.flag");
    // A fixed port survives the coordinator restart (picked by the
    // kernel, then released for the serve child to claim).
    let port = {
        let probe = std::net::TcpListener::bind("127.0.0.1:0").expect("probe port");
        probe.local_addr().expect("probe addr").port()
    };
    let addr = format!("127.0.0.1:{port}");
    let serve_child = |resume: bool, log: &Path| {
        let mut args = vec![
            "serve".to_string(),
            "--listen".to_string(),
            addr.clone(),
            "--quick".to_string(),
            "--heartbeat-ms".to_string(),
            "100".to_string(),
            "--peer-grace-ms".to_string(),
            "120000".to_string(),
            "--journal".to_string(),
            journal.display().to_string(),
            "--drain".to_string(),
            drain_flag.display().to_string(),
        ];
        if resume {
            args.push("--resume".to_string());
        }
        Command::new(env!("CARGO_BIN_EXE_repro"))
            .args(&args)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(std::fs::File::create(log).expect("serve log"))
            .spawn()
            .expect("spawn repro serve")
    };

    let log1 = dir.join("serve1.log");
    let mut first = serve_child(false, &log1);
    let w1 = spawn_worker_thread(&addr);
    let w2 = spawn_worker_thread(&addr);
    // The client retries through the kill with capped jittered
    // backoff, re-presenting the same campaign key each attempt.
    let submit = {
        let addr = addr.clone();
        std::thread::spawn(move || submit_campaign_retry(&addr, &request(400, 4), 100, |_| {}))
    };
    // Kill the coordinator the hard way once work is actually leased.
    wait_for_log(&log1, "leased to", Duration::from_secs(60));
    Command::new("kill")
        .args(["-KILL", &first.id().to_string()])
        .status()
        .expect("kill -KILL serve");
    let _ = first.wait();

    // Restart over the journal: the interrupted campaign resumes
    // headless, the retrying client re-attaches, and the report must
    // not betray that any of this happened.
    let log2 = dir.join("serve2.log");
    let mut second = serve_child(true, &log2);
    let outcome = submit
        .join()
        .expect("submit thread")
        .expect("remote campaign across a coordinator SIGKILL");
    assert_eq!(
        outcome.report, reference,
        "report diverged across the coordinator restart"
    );
    let resumed_log = std::fs::read_to_string(&log2).unwrap_or_default();
    assert!(
        resumed_log.contains("resuming"),
        "restarted coordinator never resumed from the journal:\n{resumed_log}"
    );

    // Submitting the identical campaign again must be a cache hit —
    // byte-identical bytes straight from the restarted coordinator.
    let mut notes = Vec::new();
    let cached = submit_campaign_with(&addr, &request(400, 4), |n| notes.push(n.to_string()))
        .expect("cached submit after restart");
    assert_eq!(cached.report, reference, "cached report diverged");
    assert!(
        notes.iter().any(|n| n.contains("result cache hit")),
        "no cache-hit note in {notes:?}"
    );

    // Drain the restarted coordinator and check its counters: the hit
    // above must show up, and the journal must record the clean drain.
    std::fs::write(&drain_flag, b"").expect("touch drain flag");
    let status = second.wait().expect("wait for drained serve");
    assert!(status.success(), "drained serve exited {status:?}");
    let log = std::fs::read_to_string(&log2).expect("serve2 log");
    assert!(
        log.contains("served from the result cache"),
        "no cache-hit line in:\n{log}"
    );
    assert!(log.contains("drained cleanly"), "no drain line in:\n{log}");
    let journal_text = std::fs::read_to_string(&journal).expect("service journal");
    assert!(
        journal_text.contains("\"ev\":\"fin\"") && journal_text.contains("\"ev\":\"drain\""),
        "journal lacks fin/drain records:\n{journal_text}"
    );
    assert_eq!(w1.join().expect("worker 1"), 0);
    assert_eq!(w2.join().expect("worker 2"), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
#[cfg(unix)]
fn sigkilled_coordinator_preserves_the_blacklist_and_the_report() {
    use std::process::{Command, Stdio};

    let dir = scratch("audit-sigkill");
    let reference = reference_report(400);
    let journal = dir.join("serve.journal");
    let drain_flag = dir.join("drain.flag");
    let port = {
        let probe = std::net::TcpListener::bind("127.0.0.1:0").expect("probe port");
        probe.local_addr().expect("probe addr").port()
    };
    let addr = format!("127.0.0.1:{port}");
    let serve_child = |resume: bool, log: &Path| {
        let mut args = vec![
            "serve".to_string(),
            "--listen".to_string(),
            addr.clone(),
            "--quick".to_string(),
            "--heartbeat-ms".to_string(),
            "100".to_string(),
            // Audit everything, and let a second opinion that cannot
            // come (the only disjoint peer is the banned liar) fall to
            // the local tie-breaker quickly.
            "--audit-rate".to_string(),
            "1".to_string(),
            "--peer-grace-ms".to_string(),
            "1000".to_string(),
            "--journal".to_string(),
            journal.display().to_string(),
            "--drain".to_string(),
            drain_flag.display().to_string(),
        ];
        if resume {
            args.push("--resume".to_string());
        }
        Command::new(env!("CARGO_BIN_EXE_repro"))
            .args(&args)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(std::fs::File::create(log).expect("serve log"))
            .spawn()
            .expect("spawn repro serve")
    };

    let log1 = dir.join("serve1.log");
    let mut first = serve_child(false, &log1);
    let honest = spawn_worker_thread(&addr);
    let liar = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([
            "worker",
            "--connect",
            &addr,
            "--max-retries",
            "5",
            "--lie-rate",
            "1.0",
            "--lie-seed",
            "9",
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn lying worker");
    let submit = {
        let addr = addr.clone();
        std::thread::spawn(move || submit_campaign_retry(&addr, &request(400, 4), 100, |_| {}))
    };
    // SIGKILL the coordinator right after the audit tier convicts the
    // liar: the ban and any pending invalidations exist only in the
    // service journal at that instant.
    wait_for_log(&log1, "convicted", Duration::from_secs(120));
    Command::new("kill")
        .args(["-KILL", &first.id().to_string()])
        .status()
        .expect("kill -KILL serve");
    let _ = first.wait();

    let log2 = dir.join("serve2.log");
    let mut second = serve_child(true, &log2);
    let outcome = submit
        .join()
        .expect("submit thread")
        .expect("remote campaign across a mid-audit coordinator SIGKILL");
    assert_eq!(
        outcome.report, reference,
        "report diverged across the mid-audit restart"
    );
    // The restarted coordinator replayed the journaled conviction: the
    // blacklist exists before the liar can reconnect and lie again.
    wait_for_log(&log2, "resuming blacklist", Duration::from_secs(10));

    std::fs::write(&drain_flag, b"").expect("touch drain flag");
    let status = second.wait().expect("wait for drained serve");
    assert!(status.success(), "drained serve exited {status:?}");
    let journal_text = std::fs::read_to_string(&journal).expect("service journal");
    assert!(
        journal_text.contains("\"ev\":\"audit\"") && journal_text.contains("\"ev\":\"ban\""),
        "journal lacks audit/ban records:\n{journal_text}"
    );
    assert_eq!(honest.join().expect("honest worker"), 0);
    let mut liar = liar;
    let _ = liar.kill();
    let _ = liar.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_service_journal_is_quarantined_not_trusted() {
    let dir = scratch("quarantine");
    let journal = dir.join("serve.journal");
    std::fs::write(&journal, "this is not a service journal\n").expect("write garbage");
    let cfg = ServeConfig {
        journal: Some(journal.clone()),
        resume: true,
        // A zero-campaign budget makes run() return immediately: the
        // test only cares about the bind-time journal handling.
        campaigns: Some(0),
        ..serve_config(200)
    };
    let (_, server) = spawn_server(cfg);
    let summary = server.join().expect("server thread");
    assert_eq!(summary.campaigns, 0);
    // The garbage was set aside, not deleted, and a fresh journal took
    // its place — evidence is preserved, state is not trusted.
    let quarantined = dir.join("serve.journal.quarantined");
    assert!(quarantined.exists(), "no quarantine file");
    assert_eq!(
        std::fs::read_to_string(&quarantined).expect("quarantined bytes"),
        "this is not a service journal\n"
    );
    let fresh = std::fs::read_to_string(&journal).expect("fresh journal");
    assert!(
        fresh.contains("nfp-serve-journal"),
        "fresh journal lacks a header: {fresh:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn draining_coordinator_refuses_new_submissions_typed() {
    let dir = scratch("drain-refusal");
    let drain_flag = dir.join("drain.flag");
    std::fs::write(&drain_flag, b"").expect("touch drain flag");
    let cfg = ServeConfig {
        drain: Some(drain_flag),
        peer_grace: Duration::from_millis(200),
        ..serve_config(200)
    };
    let (addr, server) = spawn_server(cfg);
    // The sentinel pre-exists, so the very first poll flips the
    // coordinator into draining; with nothing in flight it exits —
    // but a submit racing the shutdown gets a typed refusal, not a
    // hang or a silent drop.
    match submit_campaign_with(&addr, &request(10, 1), |_| {}) {
        Ok(_) => panic!("a draining coordinator accepted new work"),
        Err(e) => {
            let text = e.to_string();
            assert!(
                text.contains("draining") || text.contains("connect") || text.contains("refused"),
                "unexpected refusal shape: {text}"
            );
        }
    }
    let summary = server.join().expect("server thread");
    assert_eq!(summary.campaigns, 0);
    let _ = std::fs::remove_dir_all(&dir);
}
