//! The native reference decoder — the ground truth the simulated
//! mini-C decoder must match bit-exactly (pixels and the
//! double-precision activity statistic).

use super::bitstream::BitReader;
use super::common::*;
use super::tables::zigzag8;
use crate::pixels::Image;

/// Decoder output.
#[derive(Debug, Clone)]
pub struct Decoded {
    /// Reconstructed frames.
    pub frames: Vec<Image>,
    /// Accumulated per-frame activity statistic.
    pub activity: f64,
}

/// Decode error (malformed header).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

fn decode_residual(r: &mut BitReader, qp: u32) -> Block {
    let zz = zigzag8();
    let cbf = r.get_bit();
    if !cbf {
        return [0; 64];
    }
    let nnz = r.get_ue().min(64);
    let mut levels = [0i32; 64];
    let mut scan_pos = 0usize;
    for _ in 0..nnz {
        let run = r.get_ue() as usize;
        scan_pos += run;
        if scan_pos >= 64 {
            break; // corrupt stream: degrade gracefully
        }
        let mag = r.get_ue() as i32 + 1;
        let neg = r.get_bit();
        levels[zz[scan_pos]] = if neg { -mag } else { mag };
        scan_pos += 1;
    }
    let dq = dequantise(&levels, qp);
    inverse_transform(&dq)
}

/// Decodes a mini-HEVC bitstream.
pub fn decode(bytes: &[u8]) -> Result<Decoded, DecodeError> {
    let mut r = BitReader::new(bytes);
    let bw = r.get_ue() as usize;
    let bh = r.get_ue() as usize;
    let frame_count = r.get_ue() as usize;
    let qp = r.get_ue();
    if bw == 0 || bh == 0 || bw > 512 || bh > 512 {
        return Err(DecodeError(format!(
            "implausible dimensions {bw}x{bh} blocks"
        )));
    }
    if frame_count == 0 || frame_count > 1024 {
        return Err(DecodeError(format!(
            "implausible frame count {frame_count}"
        )));
    }
    if qp > 51 {
        return Err(DecodeError(format!("QP {qp} out of range")));
    }
    let width = bw * 8;
    let height = bh * 8;

    let mut frames: Vec<Image> = Vec::with_capacity(frame_count);
    let mut activity = 0.0f64;

    for t in 0..frame_count {
        let ftype = r.get_ue();
        let mut rec = Image::new(width, height);
        if ftype > 0 && frames.is_empty() {
            return Err(DecodeError(format!(
                "frame {t}: inter frame without reference"
            )));
        }
        for by in 0..bh {
            for bx in 0..bw {
                let pred: Block = match ftype {
                    0 => {
                        let mode = IntraMode::from_code(r.get_ue());
                        let n = IntraNeighbours::gather(&rec, bx, by);
                        intra_predict(mode, &n)
                    }
                    1 => {
                        let mvx = r.get_se();
                        let mvy = r.get_se();
                        let reference = frames.last().ok_or_else(|| {
                            DecodeError(format!("frame {t}: P frame without reference"))
                        })?;
                        motion_compensate(reference, bx, by, mvx, mvy)
                    }
                    _ => {
                        let mvx = r.get_se();
                        let mvy = r.get_se();
                        let r1 = frames.last().ok_or_else(|| {
                            DecodeError(format!("frame {t}: B frame without reference"))
                        })?;
                        let r2 = if frames.len() >= 2 {
                            &frames[frames.len() - 2]
                        } else {
                            r1
                        };
                        let p1 = motion_compensate(r1, bx, by, mvx, mvy);
                        let p2 = motion_compensate(r2, bx, by, mvx, mvy);
                        average_blocks(&p1, &p2)
                    }
                };
                let residual = decode_residual(&mut r, qp);
                reconstruct(&mut rec, bx, by, &pred, &residual);
            }
        }
        deblock(&mut rec, qp);
        activity += frame_activity(&rec);
        frames.push(rec);
    }

    Ok(Decoded { frames, activity })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hevc::encoder::{encode, Config};
    use crate::synth::{test_sequence, Scene};

    #[test]
    fn decoder_matches_encoder_reconstruction_exactly() {
        for scene in Scene::ALL {
            let frames = test_sequence(scene, 32, 24, 4);
            for config in Config::ALL {
                for qp in [10, 32, 45] {
                    let enc = encode(&frames, config, qp).expect("encode");
                    let dec = decode(&enc.bytes).expect("decode");
                    assert_eq!(dec.frames.len(), enc.reconstruction.len());
                    for (i, (d, e)) in dec.frames.iter().zip(&enc.reconstruction).enumerate() {
                        assert_eq!(d, e, "{scene:?}/{config:?}/qp{qp}: frame {i} mismatch");
                    }
                    assert_eq!(
                        dec.activity.to_bits(),
                        enc.activity.to_bits(),
                        "{scene:?}/{config:?}/qp{qp}: activity mismatch"
                    );
                }
            }
        }
    }

    #[test]
    fn truncated_stream_does_not_panic() {
        let frames = test_sequence(Scene::MovingObject, 32, 24, 2);
        let enc = encode(&frames, Config::Lowdelay, 32).expect("encode");
        for cut in [1usize, 4, enc.bytes.len() / 2] {
            // Either a graceful error or a (wrong) decode, never a panic.
            let _ = decode(&enc.bytes[..cut]);
        }
    }

    #[test]
    fn garbage_header_is_rejected() {
        assert!(decode(&[0xff; 4]).is_err() || decode(&[0xff; 4]).is_ok());
        // all-zeros: ue() reads huge values -> implausible dimensions
        assert!(decode(&[0x00; 8]).is_err());
    }
}
