//! Execution profiling observers: a per-PC hotspot histogram that can
//! be folded over a symbol table into a per-function profile, and a
//! bounded execution tracer for debugging.
//!
//! Attaching any [`Observer`] (via
//! [`Machine::run_observed`](crate::Machine::run_observed)) forces the
//! run loop onto the per-instruction step path regardless of
//! [`MachineConfig::dispatch`](crate::MachineConfig::dispatch): the
//! batched dispatch modes skip the per-instruction [`ExecInfo`]
//! plumbing these observers depend on, so observed runs trade speed
//! for a complete event stream.

use crate::exec::{ExecInfo, Observer};
use nfp_sparc::disasm;
use std::collections::HashMap;

/// Per-PC execution counts (flat array over the text segment).
pub struct PcHistogram {
    base: u32,
    counts: Vec<u64>,
    /// Executions outside `[base, base + 4*counts.len())`.
    pub other: u64,
}

impl PcHistogram {
    /// Histogram covering `words` instruction slots starting at `base`.
    pub fn new(base: u32, words: usize) -> Self {
        PcHistogram {
            base,
            counts: vec![0; words],
            other: 0,
        }
    }

    /// Execution count of the instruction at `pc`.
    pub fn count_at(&self, pc: u32) -> u64 {
        let idx = pc.wrapping_sub(self.base) as usize / 4;
        self.counts.get(idx).copied().unwrap_or(0)
    }

    /// Total executions recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.other
    }

    /// Folds the histogram over a symbol table into per-function
    /// counts. `symbols` maps name → address; each PC is attributed to
    /// the nearest symbol at or below it.
    pub fn by_function(&self, symbols: &HashMap<String, u32>) -> Vec<(String, u64)> {
        let mut sorted: Vec<(&str, u32)> = symbols.iter().map(|(n, &a)| (n.as_str(), a)).collect();
        sorted.sort_by_key(|&(_, a)| a);
        let mut totals: HashMap<&str, u64> = HashMap::new();
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let pc = self.base + (i as u32) * 4;
            let owner = sorted
                .iter()
                .rev()
                .find(|&&(_, a)| a <= pc)
                .map(|&(n, _)| n)
                .unwrap_or("<unknown>");
            *totals.entry(owner).or_default() += c;
        }
        let mut out: Vec<(String, u64)> = totals
            .into_iter()
            .map(|(n, c)| (n.to_string(), c))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// The hottest `n` individual instructions as `(pc, count)`.
    pub fn hottest(&self, n: usize) -> Vec<(u32, u64)> {
        let mut pcs: Vec<(u32, u64)> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (self.base + (i as u32) * 4, c))
            .collect();
        pcs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        pcs.truncate(n);
        pcs
    }
}

impl Observer for PcHistogram {
    #[inline]
    fn observe(&mut self, info: &ExecInfo) {
        let idx = info.pc.wrapping_sub(self.base) as usize / 4;
        match self.counts.get_mut(idx) {
            Some(c) => *c += 1,
            None => self.other += 1,
        }
    }
}

/// Bounded execution tracer: records the first `limit` executed
/// instructions as disassembly lines (the simulator analogue of the
/// paper's debug output path through the disassembler, Fig. 2).
pub struct Tracer {
    /// Collected trace lines.
    pub lines: Vec<String>,
    limit: usize,
    /// Instructions seen (including those beyond the limit).
    pub seen: u64,
}

impl Tracer {
    /// Tracer keeping at most `limit` lines.
    pub fn new(limit: usize) -> Self {
        Tracer {
            lines: Vec::with_capacity(limit.min(4096)),
            limit,
            seen: 0,
        }
    }
}

impl Observer for Tracer {
    fn observe(&mut self, info: &ExecInfo) {
        self.seen += 1;
        if self.lines.len() < self.limit {
            self.lines.push(format!(
                "{:08x}  {}",
                info.pc,
                disasm::disassemble(&info.instr, info.pc)
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::RAM_BASE;
    use crate::machine::Machine;
    use nfp_sparc::asm::Assembler;
    use nfp_sparc::cond::ICond;
    use nfp_sparc::{AluOp, Reg};

    fn loop_program(iters: u32) -> Vec<u32> {
        let mut a = Assembler::new(RAM_BASE);
        a.set32(iters, Reg::l(0));
        a.label("loop");
        a.alu(AluOp::SubCc, Reg::l(0), 1, Reg::l(0));
        a.b(ICond::Ne, "loop");
        a.nop();
        a.mov(0, Reg::o(0));
        a.ta(0);
        a.nop();
        a.finish().unwrap()
    }

    #[test]
    fn histogram_counts_loop_body() {
        let words = loop_program(100);
        let mut m = Machine::boot(&words);
        let mut hist = PcHistogram::new(RAM_BASE, words.len());
        m.run_observed(100_000, &mut hist).unwrap();
        // set32 emits sethi+or (2 words); the subcc at word offset 2
        // executes 100 times.
        assert_eq!(hist.count_at(RAM_BASE + 8), 100);
        assert_eq!(hist.other, 0);
        let hottest = hist.hottest(3);
        assert_eq!(hottest[0].1, 100);
    }

    #[test]
    fn observers_see_every_instruction_despite_batched_dispatch() {
        // Dispatch defaults to traced, but observed runs must still
        // step: a histogram that missed batched instructions would
        // undercount silently.
        let words = loop_program(25);
        let mut m = Machine::boot(&words);
        assert_eq!(
            m.config().dispatch,
            crate::Dispatch::Traced,
            "default config batches"
        );
        let mut hist = PcHistogram::new(RAM_BASE, words.len());
        let r = m.run_observed(100_000, &mut hist).unwrap();
        assert_eq!(hist.total(), r.instret, "one observation per retirement");
        assert_eq!(hist.count_at(RAM_BASE + 8), 25);
    }

    #[test]
    fn by_function_attributes_to_nearest_symbol() {
        let words = loop_program(10);
        let mut m = Machine::boot(&words);
        let mut hist = PcHistogram::new(RAM_BASE, words.len());
        m.run_observed(100_000, &mut hist).unwrap();
        let mut symbols = HashMap::new();
        symbols.insert("entry".to_string(), RAM_BASE);
        symbols.insert("epilogue".to_string(), RAM_BASE + 16);
        let prof = hist.by_function(&symbols);
        let total: u64 = prof.iter().map(|p| p.1).sum();
        assert_eq!(total, hist.total());
        assert_eq!(prof[0].0, "entry"); // the loop dominates
    }

    #[test]
    fn tracer_is_bounded_but_counts_everything() {
        let words = loop_program(50);
        let mut m = Machine::boot(&words);
        let mut tracer = Tracer::new(5);
        m.run_observed(100_000, &mut tracer).unwrap();
        assert_eq!(tracer.lines.len(), 5);
        assert!(tracer.seen > 100);
        assert!(tracer.lines[0].starts_with("40000000"));
        assert!(tracer.lines[2].contains("subcc"));
    }
}
