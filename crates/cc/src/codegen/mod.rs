//! SPARC V8 code generation from the checked AST.
//!
//! The strategy is a classic unoptimising tree-walk, mirroring the
//! `-O0` output profile of the cross-compilers the paper's workflow
//! relies on:
//!
//! * named locals and parameters live in the stack frame;
//! * expression temporaries occupy a register stack (`%g1-%g4`,
//!   `%l0-%l7`), spilling to a fixed frame area when exhausted;
//! * the ABI is "flat" (GCC's historical `-mflat`): no register
//!   windows, arguments in `%o0-%o5` plus stack words, results in
//!   `%o0` (`%o0:%o1` for 8-byte values — doubles included, matching
//!   the SPARC convention of passing FP values through integer
//!   registers), all registers caller-save;
//! * `FloatMode::Soft` is the `-msoft-float` analogue: every `double`
//!   operation lowers to a call into the integer-only soft-float
//!   runtime, and `double` values are `u64` bit patterns in register
//!   pairs.
//!
//! Delay slots are always filled with `nop` (the NOP instruction
//! category of the paper's Table I exists precisely because unoptimised
//! embedded code is full of them).

use crate::ast::{BinOp, Type, UnOp};
use crate::emit::{Emitter, FuncCode, Label};
use crate::sema::{CFunc, CStmt, LValue, TKind, Typed};
use nfp_sparc::cond::{FCond, ICond};
use nfp_sparc::regs::{G0, SP};
use nfp_sparc::{AluOp, FReg, FpOp, Instr, MemSize, Operand, Reg};
use std::collections::HashMap;
use std::fmt;

/// Hard (FPU instructions) or soft (`-msoft-float`) float lowering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FloatMode {
    /// Use the hardware FPU.
    Hard,
    /// Emulate doubles with integer code (runtime calls).
    Soft,
}

/// Code generation error.
#[derive(Debug, Clone, PartialEq)]
pub struct CodegenError {
    /// What went wrong.
    pub message: String,
    /// The function being compiled.
    pub function: String,
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "in `{}`: {}", self.function, self.message)
    }
}

impl std::error::Error for CodegenError {}

// Frame layout (sp-relative byte offsets).
/// Outgoing stack argument area (argument words 6..16).
const OUT_ARGS_OFF: u32 = 0;
/// Spill area: 32 slots of 8 bytes.
const SPILL_OFF: u32 = 64;
const SPILL_SLOTS: u32 = 32;
/// 8-byte scratch used for int<->FP register moves.
const SCRATCH_OFF: u32 = SPILL_OFF + SPILL_SLOTS * 8;
/// Return-address save slot.
const O7_OFF: u32 = SCRATCH_OFF + 8;
/// Start of named locals.
const LOCALS_OFF: u32 = O7_OFF + 8;

/// Console text-output register (mirrors `nfp_sim::bus`).
pub const CONSOLE_TX: u32 = 0x8000_0000;
/// Console word-emit register.
pub const CONSOLE_EMIT: u32 = 0x8000_0004;

/// Value width classes the generator manipulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Width {
    /// One 32-bit word.
    W,
    /// Two words (u64, or double in soft mode): (hi, lo).
    Pair,
    /// Double in an FPU register pair (hard mode only).
    F,
}

/// Location of an evaluated value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    /// Constant word, not yet materialised.
    ImmW(u32),
    /// Constant 64-bit value, not yet materialised.
    ImmPair(u64),
    /// Word in an integer register.
    W(Reg),
    /// (hi, lo) in integer registers.
    Pair(Reg, Reg),
    /// Double in an even FPU register pair.
    F(FReg),
    /// Word spilled to slot `n`.
    SpillW(u32),
    /// Pair spilled to slot `n` (hi at +0, lo at +4).
    SpillPair(u32),
    /// FPU double spilled to slot `n`.
    SpillF(u32),
}

/// Pool of per-unit double constants, emitted into the data section.
#[derive(Debug, Default)]
pub struct DoublePool {
    by_bits: HashMap<u64, String>,
    /// (symbol, bits) in emission order.
    pub entries: Vec<(String, u64)>,
}

impl DoublePool {
    /// Returns the symbol for `bits`, interning it on first use.
    fn intern(&mut self, bits: u64) -> String {
        if let Some(s) = self.by_bits.get(&bits) {
            return s.clone();
        }
        let name = format!("__dconst{}", self.entries.len());
        self.by_bits.insert(bits, name.clone());
        self.entries.push((name.clone(), bits));
        name
    }
}

type GResult<T> = Result<T, CodegenError>;

struct FnGen<'a> {
    e: Emitter,
    mode: FloatMode,
    func: &'a CFunc,
    pool: &'a mut DoublePool,
    /// Expression value stack.
    stack: Vec<Loc>,
    free_words: Vec<Reg>,
    free_fpairs: Vec<FReg>,
    free_spills: Vec<u32>,
    /// sp-relative offsets of named locals (indexed by LocalId).
    local_off: Vec<u32>,
    epilogue: Label,
    /// (continue target, break target) per enclosing loop.
    loops: Vec<(Label, Label)>,
}

impl<'a> FnGen<'a> {
    fn err<T>(&self, message: impl Into<String>) -> GResult<T> {
        Err(CodegenError {
            message: message.into(),
            function: self.func.name.clone(),
        })
    }

    fn width_of(&self, ty: &Type) -> Width {
        match ty {
            Type::U64 => Width::Pair,
            Type::Double => match self.mode {
                FloatMode::Hard => Width::F,
                FloatMode::Soft => Width::Pair,
            },
            _ => Width::W,
        }
    }

    // ---- register and spill management ----

    fn alloc_word(&mut self) -> GResult<Reg> {
        if let Some(r) = self.free_words.pop() {
            return Ok(r);
        }
        self.spill_one()?;
        self.free_words
            .pop()
            .map(Ok)
            .unwrap_or_else(|| self.err("out of integer temporaries"))
    }

    fn alloc_fpair(&mut self) -> GResult<FReg> {
        if let Some(f) = self.free_fpairs.pop() {
            return Ok(f);
        }
        self.spill_one()?;
        self.free_fpairs
            .pop()
            .map(Ok)
            .unwrap_or_else(|| self.err("out of FPU temporaries"))
    }

    fn alloc_spill(&mut self) -> GResult<u32> {
        self.free_spills
            .pop()
            .map(Ok)
            .unwrap_or_else(|| self.err("expression too complex: spill area exhausted"))
    }

    fn spill_addr(slot: u32) -> i32 {
        (SPILL_OFF + slot * 8) as i32
    }

    /// Spills the deepest register-backed stack entry.
    fn spill_one(&mut self) -> GResult<()> {
        for i in 0..self.stack.len() {
            match self.stack[i] {
                Loc::W(_) | Loc::Pair(..) | Loc::F(_) => {
                    let spilled = self.spill_loc(self.stack[i])?;
                    self.stack[i] = spilled;
                    return Ok(());
                }
                _ => {}
            }
        }
        self.err("no spillable temporaries")
    }

    /// Moves a register-backed loc to a spill slot, freeing its regs.
    fn spill_loc(&mut self, loc: Loc) -> GResult<Loc> {
        match loc {
            Loc::W(r) => {
                let slot = self.alloc_spill()?;
                self.e.push(Instr::Store {
                    size: MemSize::Word,
                    rd: r,
                    rs1: SP,
                    op2: Operand::Imm(Self::spill_addr(slot)),
                });
                self.free_words.push(r);
                Ok(Loc::SpillW(slot))
            }
            Loc::Pair(hi, lo) => {
                let slot = self.alloc_spill()?;
                self.e.push(Instr::Store {
                    size: MemSize::Word,
                    rd: hi,
                    rs1: SP,
                    op2: Operand::Imm(Self::spill_addr(slot)),
                });
                self.e.push(Instr::Store {
                    size: MemSize::Word,
                    rd: lo,
                    rs1: SP,
                    op2: Operand::Imm(Self::spill_addr(slot) + 4),
                });
                self.free_words.push(hi);
                self.free_words.push(lo);
                Ok(Loc::SpillPair(slot))
            }
            Loc::F(f) => {
                let slot = self.alloc_spill()?;
                self.e.push(Instr::StoreF {
                    double: true,
                    rd: f,
                    rs1: SP,
                    op2: Operand::Imm(Self::spill_addr(slot)),
                });
                self.free_fpairs.push(f);
                Ok(Loc::SpillF(slot))
            }
            other => Ok(other),
        }
    }

    /// Spills every register-backed value on the stack (used around
    /// calls; all registers are caller-save in the flat ABI).
    fn spill_all(&mut self) -> GResult<()> {
        for i in 0..self.stack.len() {
            let loc = self.stack[i];
            if matches!(loc, Loc::W(_) | Loc::Pair(..) | Loc::F(_)) {
                self.stack[i] = self.spill_loc(loc)?;
            }
        }
        Ok(())
    }

    /// Releases a value's resources.
    fn free_loc(&mut self, loc: Loc) {
        match loc {
            Loc::W(r) => self.free_words.push(r),
            Loc::Pair(hi, lo) => {
                self.free_words.push(hi);
                self.free_words.push(lo);
            }
            Loc::F(f) => self.free_fpairs.push(f),
            Loc::SpillW(s) | Loc::SpillPair(s) | Loc::SpillF(s) => self.free_spills.push(s),
            Loc::ImmW(_) | Loc::ImmPair(_) => {}
        }
    }

    /// Brings a word value into a register.
    fn ensure_w(&mut self, loc: Loc) -> GResult<Reg> {
        match loc {
            Loc::W(r) => Ok(r),
            Loc::ImmW(v) => {
                let r = self.alloc_word()?;
                self.e.set32(v, r);
                Ok(r)
            }
            Loc::SpillW(slot) => {
                let r = self.alloc_word()?;
                self.e.push(Instr::Load {
                    size: MemSize::Word,
                    signed: false,
                    rd: r,
                    rs1: SP,
                    op2: Operand::Imm(Self::spill_addr(slot)),
                });
                self.free_spills.push(slot);
                Ok(r)
            }
            other => self.err(format!("expected word value, found {other:?}")),
        }
    }

    /// A word value as an instruction operand, preferring `simm13`.
    fn operand_w(&mut self, loc: Loc) -> GResult<(Operand, Option<Reg>)> {
        match loc {
            Loc::ImmW(v) if Operand::fits_simm13(v as i32) => Ok((Operand::Imm(v as i32), None)),
            other => {
                let r = self.ensure_w(other)?;
                Ok((Operand::Reg(r), Some(r)))
            }
        }
    }

    /// Brings a pair value into two registers (hi, lo).
    fn ensure_pair(&mut self, loc: Loc) -> GResult<(Reg, Reg)> {
        match loc {
            Loc::Pair(hi, lo) => Ok((hi, lo)),
            Loc::ImmPair(v) => {
                let hi = self.alloc_word()?;
                let lo = self.alloc_word()?;
                self.e.set32((v >> 32) as u32, hi);
                self.e.set32(v as u32, lo);
                Ok((hi, lo))
            }
            Loc::SpillPair(slot) => {
                let hi = self.alloc_word()?;
                let lo = self.alloc_word()?;
                self.e.push(Instr::Load {
                    size: MemSize::Word,
                    signed: false,
                    rd: hi,
                    rs1: SP,
                    op2: Operand::Imm(Self::spill_addr(slot)),
                });
                self.e.push(Instr::Load {
                    size: MemSize::Word,
                    signed: false,
                    rd: lo,
                    rs1: SP,
                    op2: Operand::Imm(Self::spill_addr(slot) + 4),
                });
                self.free_spills.push(slot);
                Ok((hi, lo))
            }
            other => self.err(format!("expected pair value, found {other:?}")),
        }
    }

    /// Brings a hard-mode double into an FPU pair.
    fn ensure_f(&mut self, loc: Loc) -> GResult<FReg> {
        match loc {
            Loc::F(f) => Ok(f),
            Loc::SpillF(slot) => {
                let f = self.alloc_fpair()?;
                self.e.push(Instr::LoadF {
                    double: true,
                    rd: f,
                    rs1: SP,
                    op2: Operand::Imm(Self::spill_addr(slot)),
                });
                self.free_spills.push(slot);
                Ok(f)
            }
            Loc::ImmPair(bits) => {
                // Double constant: load from the per-unit pool.
                let sym = self.pool.intern(bits);
                let addr = self.alloc_word()?;
                self.e.load_sym(&sym, addr);
                let f = self.alloc_fpair()?;
                self.e.push(Instr::LoadF {
                    double: true,
                    rd: f,
                    rs1: addr,
                    op2: Operand::Imm(0),
                });
                self.free_words.push(addr);
                Ok(f)
            }
            other => self.err(format!("expected double value, found {other:?}")),
        }
    }

    fn push_loc(&mut self, loc: Loc) {
        self.stack.push(loc);
    }

    fn pop_loc(&mut self) -> Loc {
        self.stack.pop().expect("value stack underflow")
    }

    // ---- memory helpers ----

    /// Returns a `(base, offset)` addressing a frame byte offset,
    /// using `%g5` as address scratch for offsets beyond `simm13`.
    fn frame_addr(&mut self, off: u32) -> (Reg, i32) {
        if off <= 4095 {
            (SP, off as i32)
        } else {
            let g5 = Reg::g(5);
            self.e.set32(off, g5);
            self.e.alu(AluOp::Add, SP, g5, g5);
            (g5, 0)
        }
    }

    /// Store a word register to a frame offset.
    fn st_frame(&mut self, r: Reg, off: u32, size: MemSize) {
        let (base, imm) = self.frame_addr(off);
        self.e.push(Instr::Store {
            size,
            rd: r,
            rs1: base,
            op2: Operand::Imm(imm),
        });
    }

    /// Load a word register from a frame offset.
    fn ld_frame(&mut self, rd: Reg, off: u32, size: MemSize, signed: bool) {
        let (base, imm) = self.frame_addr(off);
        self.e.push(Instr::Load {
            size,
            signed,
            rd,
            rs1: base,
            op2: Operand::Imm(imm),
        });
    }

    // ---- calls ----

    /// Emits a call with already-evaluated arguments (popped from the
    /// stack by the caller of this helper). Returns the result loc.
    fn emit_call(
        &mut self,
        name: &str,
        args: Vec<(Loc, Width)>,
        ret: Option<Width>,
    ) -> GResult<Option<Loc>> {
        self.spill_all()?;
        // Lay out argument words.
        let mut word = 0u32;
        for (loc, w) in args {
            match w {
                Width::W => {
                    self.place_arg_word(loc, word, None)?;
                    word += 1;
                }
                Width::Pair | Width::F => {
                    let (hi, lo) = match (w, loc) {
                        // Double constants go straight to integer
                        // registers as raw bits; no pool load needed.
                        (Width::F, Loc::ImmPair(_)) => self.ensure_pair(loc)?,
                        (Width::F, _) => {
                            // Move the double through the scratch slot.
                            let f = self.ensure_f(loc)?;
                            self.e.push(Instr::StoreF {
                                double: true,
                                rd: f,
                                rs1: SP,
                                op2: Operand::Imm(SCRATCH_OFF as i32),
                            });
                            self.free_fpairs.push(f);
                            let hi = self.alloc_word()?;
                            let lo = self.alloc_word()?;
                            self.ld_frame(hi, SCRATCH_OFF, MemSize::Word, false);
                            self.ld_frame(lo, SCRATCH_OFF + 4, MemSize::Word, false);
                            (hi, lo)
                        }
                        (_, loc) => self.ensure_pair(loc)?,
                    };
                    self.place_arg_word(Loc::W(hi), word, Some(hi))?;
                    self.place_arg_word(Loc::W(lo), word + 1, Some(lo))?;
                    word += 2;
                }
            }
        }
        self.e.call(name);
        // Result.
        let result = match ret {
            None => None,
            Some(Width::W) => {
                let r = self.alloc_word()?;
                self.e.mov(Reg::o(0), r);
                Some(Loc::W(r))
            }
            Some(Width::Pair) => {
                let hi = self.alloc_word()?;
                let lo = self.alloc_word()?;
                self.e.mov(Reg::o(0), hi);
                self.e.mov(Reg::o(1), lo);
                Some(Loc::Pair(hi, lo))
            }
            Some(Width::F) => {
                self.st_frame(Reg::o(0), SCRATCH_OFF, MemSize::Word);
                self.st_frame(Reg::o(1), SCRATCH_OFF + 4, MemSize::Word);
                let f = self.alloc_fpair()?;
                self.e.push(Instr::LoadF {
                    double: true,
                    rd: f,
                    rs1: SP,
                    op2: Operand::Imm(SCRATCH_OFF as i32),
                });
                Some(Loc::F(f))
            }
        };
        Ok(result)
    }

    /// Places one argument word into `%o<word>` or the outgoing stack
    /// area, freeing `free_after` once placed.
    fn place_arg_word(&mut self, loc: Loc, word: u32, free_after: Option<Reg>) -> GResult<()> {
        if word >= 16 {
            return self.err("too many argument words");
        }
        if word < 6 {
            let dst = Reg::o(word as u8);
            match loc {
                Loc::ImmW(v) => self.e.set32(v, dst),
                other => {
                    let r = self.ensure_w(other)?;
                    self.e.mov(r, dst);
                    if free_after.is_none() {
                        self.free_words.push(r);
                    }
                }
            }
        } else {
            let off = OUT_ARGS_OFF + (word - 6) * 4;
            let r = self.ensure_w(loc)?;
            self.st_frame(r, off, MemSize::Word);
            if free_after.is_none() {
                self.free_words.push(r);
            }
        }
        if let Some(r) = free_after {
            self.free_words.push(r);
        }
        Ok(())
    }
}

// The remaining impl blocks (expressions, conditions, statements,
// function assembly) live in `body.rs` to keep file sizes reviewable.
mod body;
pub use body::gen_function;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::sema::check;

    fn gen(src: &str, mode: FloatMode) -> (Vec<FuncCode>, DoublePool) {
        let unit = check(&parse(src).unwrap()).unwrap();
        let mut pool = DoublePool::default();
        let funcs = unit
            .functions
            .iter()
            .map(|f| gen_function(f, mode, &mut pool).unwrap())
            .collect();
        (funcs, pool)
    }

    #[test]
    fn simple_function_compiles() {
        let (funcs, _) = gen("int add(int a, int b) { return a + b; }", FloatMode::Hard);
        assert_eq!(funcs[0].name, "add");
        assert!(funcs[0].len_words() > 5);
    }

    #[test]
    fn soft_mode_emits_no_fpu_instructions() {
        let (funcs, _) = gen(
            "double f(double a, double b) { return a * b + sqrt(a); }",
            FloatMode::Soft,
        );
        for item in &funcs[0].items {
            if let crate::emit::Item::I(i) = item {
                assert!(
                    !matches!(
                        i,
                        Instr::FpOp { .. }
                            | Instr::FCmp { .. }
                            | Instr::LoadF { .. }
                            | Instr::StoreF { .. }
                            | Instr::FBranch { .. }
                    ),
                    "FPU instruction {i:?} in soft-float code"
                );
            }
        }
        // ... and references the soft-float runtime instead.
        let syms: Vec<_> = funcs[0].referenced_symbols().collect();
        assert!(syms.contains(&"__muldf3"));
        assert!(syms.contains(&"__adddf3"));
        assert!(syms.contains(&"__sqrtdf2"));
    }

    #[test]
    fn hard_mode_uses_fpu() {
        let (funcs, pool) = gen("double f(double a) { return a * 2.5; }", FloatMode::Hard);
        let has_fmuld = funcs[0].items.iter().any(|i| {
            matches!(
                i,
                crate::emit::Item::I(Instr::FpOp {
                    op: FpOp::FMulD,
                    ..
                })
            )
        });
        assert!(has_fmuld);
        assert_eq!(pool.entries.len(), 1);
        assert_eq!(pool.entries[0].1, 2.5f64.to_bits());
    }

    #[test]
    fn division_emits_y_register_setup() {
        let (funcs, _) = gen("int f(int a, int b) { return a / b; }", FloatMode::Hard);
        let has_wry = funcs[0]
            .items
            .iter()
            .any(|i| matches!(i, crate::emit::Item::I(Instr::WrY { .. })));
        assert!(has_wry);
    }

    #[test]
    fn u64_mul_calls_runtime() {
        let (funcs, _) = gen("u64 f(u64 a, u64 b) { return a * b; }", FloatMode::Hard);
        let syms: Vec<_> = funcs[0].referenced_symbols().collect();
        assert!(syms.contains(&"__muldi3"));
    }

    #[test]
    fn u64_constant_shift_is_inline() {
        let (funcs, _) = gen("u64 f(u64 a) { return a << 5; }", FloatMode::Hard);
        let syms: Vec<_> = funcs[0].referenced_symbols().collect();
        assert!(!syms.contains(&"__ashldi3"), "constant shift should inline");
        let (funcs, _) = gen("u64 f(u64 a, int n) { return a << n; }", FloatMode::Hard);
        let syms: Vec<_> = funcs[0].referenced_symbols().collect();
        assert!(syms.contains(&"__ashldi3"));
    }
}
