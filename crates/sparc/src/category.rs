//! The paper's nine instruction categories (Table I) and the counter
//! block the simulator maintains for them.
//!
//! The mapping follows Section III of the paper: instruction groups are
//! "further divided into categories like integer, floating point, jumps,
//! etc.", with one internal counter register per category. The category
//! of an instruction is a static property of the decoded form, so the
//! simulator can bake the counter index into its predecoded stream.

use crate::insn::{AluOp, FpOp, Instr};
use std::fmt;
use std::ops::{Index, IndexMut};

/// Number of instruction categories (rows of the paper's Table I).
pub const CATEGORY_COUNT: usize = 9;

/// Instruction category, exactly the nine rows of the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Category {
    /// Integer-unit arithmetic, logic, shifts, multiplies, divides,
    /// and `sethi`.
    IntArith = 0,
    /// Control transfers: branches, calls, indirect jumps.
    Jump = 1,
    /// Memory loads, integer and FP.
    MemLoad = 2,
    /// Memory stores, integer and FP.
    MemStore = 3,
    /// The canonical `nop` (`sethi 0, %g0`); the paper measures it
    /// separately because delay-slot fillers are frequent.
    Nop = 4,
    /// Everything else in the integer unit: `rd`/`wr`, window ops,
    /// traps, flushes.
    Other = 5,
    /// FPU add/subtract/multiply plus moves, compares and conversions.
    FpuArith = 6,
    /// FPU divide.
    FpuDiv = 7,
    /// FPU square root.
    FpuSqrt = 8,
}

impl Category {
    /// All categories in Table I order.
    pub const ALL: [Category; CATEGORY_COUNT] = [
        Category::IntArith,
        Category::Jump,
        Category::MemLoad,
        Category::MemStore,
        Category::Nop,
        Category::Other,
        Category::FpuArith,
        Category::FpuDiv,
        Category::FpuSqrt,
    ];

    /// Counter index of this category.
    #[inline(always)]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Human-readable name, matching the paper's Table I wording.
    pub fn name(self) -> &'static str {
        match self {
            Category::IntArith => "Integer Arithmetic",
            Category::Jump => "Jump",
            Category::MemLoad => "Memory Load",
            Category::MemStore => "Memory Store",
            Category::Nop => "NOP",
            Category::Other => "Other",
            Category::FpuArith => "FPU Arithmetic",
            Category::FpuDiv => "FPU Divide",
            Category::FpuSqrt => "FPU Square root",
        }
    }

    /// True for the three FPU categories.
    pub fn is_fpu(self) -> bool {
        matches!(
            self,
            Category::FpuArith | Category::FpuDiv | Category::FpuSqrt
        )
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl Instr {
    /// The Table I category of this instruction.
    pub fn category(&self) -> Category {
        match self {
            i if i.is_nop() => Category::Nop,
            Instr::Sethi { .. } => Category::IntArith,
            Instr::Alu { op, .. } => {
                // Integer divide shares the IU datapath; Table I folds it
                // into Integer Arithmetic.
                let _: &AluOp = op;
                Category::IntArith
            }
            Instr::Branch { .. }
            | Instr::FBranch { .. }
            | Instr::Call { .. }
            | Instr::Jmpl { .. } => Category::Jump,
            Instr::Load { .. } | Instr::LoadF { .. } => Category::MemLoad,
            Instr::Store { .. } | Instr::StoreF { .. } => Category::MemStore,
            Instr::FpOp { op, .. } => match op {
                FpOp::FDivS | FpOp::FDivD => Category::FpuDiv,
                FpOp::FSqrtS | FpOp::FSqrtD => Category::FpuSqrt,
                _ => Category::FpuArith,
            },
            Instr::FCmp { .. } => Category::FpuArith,
            Instr::RdY { .. }
            | Instr::WrY { .. }
            | Instr::Save { .. }
            | Instr::Restore { .. }
            | Instr::Ticc { .. }
            | Instr::Flush { .. }
            | Instr::Unimp { .. }
            | Instr::Illegal { .. } => Category::Other,
        }
    }
}

/// Per-category instruction counts — the simulator's "internal counter
/// registers" read out after a run (paper §III).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CategoryCounts {
    counts: [u64; CATEGORY_COUNT],
}

impl CategoryCounts {
    /// All-zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments the counter of `cat` by one.
    #[inline(always)]
    pub fn bump(&mut self, cat: Category) {
        self.counts[cat.index()] += 1;
    }

    /// Total dynamic instruction count across all categories.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Iterates `(category, count)` pairs in Table I order.
    pub fn iter(&self) -> impl Iterator<Item = (Category, u64)> + '_ {
        Category::ALL
            .iter()
            .map(move |&c| (c, self.counts[c.index()]))
    }

    /// Element-wise sum, useful when aggregating per-thread runs.
    pub fn merged(&self, other: &CategoryCounts) -> CategoryCounts {
        let mut out = *self;
        for i in 0..CATEGORY_COUNT {
            out.counts[i] += other.counts[i];
        }
        out
    }

    /// Element-wise difference (saturating), useful for differential
    /// kernel measurements.
    pub fn diff(&self, baseline: &CategoryCounts) -> CategoryCounts {
        let mut out = CategoryCounts::new();
        for i in 0..CATEGORY_COUNT {
            out.counts[i] = self.counts[i].saturating_sub(baseline.counts[i]);
        }
        out
    }

    /// Raw access to the counter array in Table I order.
    pub fn as_array(&self) -> &[u64; CATEGORY_COUNT] {
        &self.counts
    }
}

impl Index<Category> for CategoryCounts {
    type Output = u64;
    fn index(&self, cat: Category) -> &u64 {
        &self.counts[cat.index()]
    }
}

impl IndexMut<Category> for CategoryCounts {
    fn index_mut(&mut self, cat: Category) -> &mut u64 {
        &mut self.counts[cat.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cond::ICond;
    use crate::insn::{MemSize, Operand};
    use crate::regs::{FReg, Reg, G0};

    #[test]
    fn category_of_representatives() {
        use Category::*;
        let cases: Vec<(Instr, Category)> = vec![
            (Instr::NOP, Nop),
            (
                Instr::Sethi {
                    rd: Reg::o(0),
                    imm22: 1,
                },
                IntArith,
            ),
            (
                Instr::Alu {
                    op: AluOp::UDiv,
                    rd: Reg::o(0),
                    rs1: Reg::o(1),
                    op2: Operand::Imm(3),
                },
                IntArith,
            ),
            (
                Instr::Branch {
                    cond: ICond::A,
                    annul: false,
                    disp22: 2,
                },
                Jump,
            ),
            (Instr::Call { disp30: 4 }, Jump),
            (
                Instr::Load {
                    size: MemSize::Word,
                    signed: false,
                    rd: Reg::o(0),
                    rs1: Reg::o(1),
                    op2: Operand::Imm(0),
                },
                MemLoad,
            ),
            (
                Instr::StoreF {
                    double: true,
                    rd: FReg::new(0),
                    rs1: Reg::o(1),
                    op2: Operand::Imm(0),
                },
                MemStore,
            ),
            (
                Instr::FpOp {
                    op: FpOp::FAddD,
                    rd: FReg::new(0),
                    rs1: FReg::new(2),
                    rs2: FReg::new(4),
                },
                FpuArith,
            ),
            (
                Instr::FpOp {
                    op: FpOp::FDivD,
                    rd: FReg::new(0),
                    rs1: FReg::new(2),
                    rs2: FReg::new(4),
                },
                FpuDiv,
            ),
            (
                Instr::FpOp {
                    op: FpOp::FSqrtD,
                    rd: FReg::new(0),
                    rs1: FReg::new(0),
                    rs2: FReg::new(4),
                },
                FpuSqrt,
            ),
            (
                Instr::Save {
                    rd: G0,
                    rs1: G0,
                    op2: Operand::Imm(0),
                },
                Other,
            ),
        ];
        for (i, want) in cases {
            assert_eq!(i.category(), want, "{i:?}");
        }
    }

    #[test]
    fn counts_bump_total_and_diff() {
        let mut a = CategoryCounts::new();
        a.bump(Category::IntArith);
        a.bump(Category::IntArith);
        a.bump(Category::Jump);
        assert_eq!(a.total(), 3);
        assert_eq!(a[Category::IntArith], 2);

        let mut b = CategoryCounts::new();
        b.bump(Category::IntArith);
        let d = a.diff(&b);
        assert_eq!(d[Category::IntArith], 1);
        assert_eq!(d[Category::Jump], 1);
        // diff saturates instead of underflowing
        let d2 = b.diff(&a);
        assert_eq!(d2[Category::IntArith], 0);

        let m = a.merged(&b);
        assert_eq!(m.total(), 4);
    }

    #[test]
    fn all_categories_distinct_indices() {
        let mut seen = [false; CATEGORY_COUNT];
        for c in Category::ALL {
            assert!(!seen[c.index()]);
            seen[c.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
