//! Architectural execution semantics — the "morph functions" of the
//! paper's Fig. 2/3, grouped exactly as the instruction enum groups
//! them (one match arm per instruction group).
//!
//! [`step`] executes one predecoded instruction, updating CPU and bus
//! state and advancing the `pc`/`npc` pair (SPARC's delay-slot
//! architecture). An [`Observer`] receives an [`ExecInfo`] record per
//! instruction; the detailed hardware model in `nfp-testbed` uses it to
//! charge context-dependent cycle and energy costs, while the plain ISS
//! runs with the zero-cost [`NullObserver`].

use crate::bus::{Bus, BusFault};
use crate::cpu::Cpu;
use nfp_sparc::cond::{FccValue, ICond};
use nfp_sparc::{AluOp, Category, FpOp, Instr, MemSize, Operand};

/// Execution-time fault. On real hardware these vector into trap
/// handlers; the bare-metal simulator surfaces them as errors, except
/// for software traps (`ta`) which the machine layer interprets.
#[allow(missing_docs)] // fields: faulting pc plus fault specifics
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trap {
    /// Illegal or unimplemented instruction word.
    Illegal { pc: u32, word: u32 },
    /// Misaligned memory access.
    Misaligned { pc: u32, addr: u32, size: u32 },
    /// Access to an unmapped address.
    Unmapped { pc: u32, addr: u32 },
    /// Integer division by zero.
    DivZero { pc: u32 },
    /// More nested `save`s than register windows.
    WindowOverflow { pc: u32 },
    /// `restore` without a matching `save`.
    WindowUnderflow { pc: u32 },
    /// FPU instruction executed while the FPU is disabled (the
    /// "processor without FPU" configuration of Table IV).
    FpDisabled { pc: u32 },
    /// Double-precision operand names an odd FP register.
    OddFpPair { pc: u32 },
    /// Integer doubleword load/store (`ldd`/`std`) names an odd `rd`;
    /// the register pair must start on an even register (SPARC V8
    /// §B.11). Mirrors [`Trap::OddFpPair`] for the integer file.
    OddIntPair { pc: u32 },
}

impl Trap {
    /// The pc of the faulting instruction.
    pub fn pc(&self) -> u32 {
        match *self {
            Trap::Illegal { pc, .. }
            | Trap::Misaligned { pc, .. }
            | Trap::Unmapped { pc, .. }
            | Trap::DivZero { pc }
            | Trap::WindowOverflow { pc }
            | Trap::WindowUnderflow { pc }
            | Trap::FpDisabled { pc }
            | Trap::OddFpPair { pc }
            | Trap::OddIntPair { pc } => pc,
        }
    }

    /// Whether the bare-metal handler model can absorb this trap when
    /// the machine runs under
    /// [`TrapPolicy::Recover`](crate::machine::TrapPolicy::Recover):
    /// window overflow/underflow (spill/fill) and misaligned data
    /// accesses (skipped). Everything else aborts the run.
    pub fn is_recoverable(&self) -> bool {
        matches!(
            self,
            Trap::WindowOverflow { .. } | Trap::WindowUnderflow { .. } | Trap::Misaligned { .. }
        )
    }
}

impl std::fmt::Display for Trap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Trap::Illegal { pc, word } => {
                write!(f, "illegal instruction 0x{word:08x} at 0x{pc:08x}")
            }
            Trap::Misaligned { pc, addr, size } => {
                write!(
                    f,
                    "misaligned {size}-byte access to 0x{addr:08x} at 0x{pc:08x}"
                )
            }
            Trap::Unmapped { pc, addr } => {
                write!(f, "unmapped access to 0x{addr:08x} at 0x{pc:08x}")
            }
            Trap::DivZero { pc } => write!(f, "division by zero at 0x{pc:08x}"),
            Trap::WindowOverflow { pc } => write!(f, "register window overflow at 0x{pc:08x}"),
            Trap::WindowUnderflow { pc } => write!(f, "register window underflow at 0x{pc:08x}"),
            Trap::FpDisabled { pc } => write!(f, "FPU instruction with FPU disabled at 0x{pc:08x}"),
            Trap::OddFpPair { pc } => write!(f, "odd FP register pair at 0x{pc:08x}"),
            Trap::OddIntPair { pc } => write!(f, "odd integer register pair at 0x{pc:08x}"),
        }
    }
}

impl std::error::Error for Trap {}

/// Per-instruction execution record handed to an [`Observer`].
#[derive(Debug, Clone, Copy)]
pub struct ExecInfo {
    /// Address of the executed instruction.
    pub pc: u32,
    /// The executed instruction (for models needing sub-category
    /// detail, e.g. multiply vs add latency).
    pub instr: Instr,
    /// Table I category.
    pub category: Category,
    /// Effective address of a memory access, if any.
    pub mem_addr: Option<u32>,
    /// Whether a control transfer was taken (branches only).
    pub branch_taken: Option<bool>,
    /// Raw bits of the second source operand of an FPU divide or
    /// square root (its magnitude drives iteration count on real FPUs).
    pub fpu_rs2_bits: Option<u64>,
    /// Population count of the primary result value — a proxy for
    /// datapath toggling, used by the energy model.
    pub result_ones: u32,
}

impl ExecInfo {
    pub(crate) fn new(pc: u32, instr: Instr, category: Category) -> Self {
        ExecInfo {
            pc,
            instr,
            category,
            mem_addr: None,
            branch_taken: None,
            fpu_rs2_bits: None,
            result_ones: 0,
        }
    }
}

/// Receives one [`ExecInfo`] per executed instruction.
pub trait Observer {
    /// Called after each instruction's architectural effects complete.
    fn observe(&mut self, info: &ExecInfo);
}

/// Observer that does nothing; the compiler removes all record
/// bookkeeping after inlining, giving the plain-ISS fast path.
pub struct NullObserver;

impl Observer for NullObserver {
    #[inline(always)]
    fn observe(&mut self, _info: &ExecInfo) {}
}

/// Non-trap outcome of a step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOut {
    /// Normal completion.
    Normal,
    /// A software trap (`t<cond>` taken) with the given trap number.
    SoftTrap(u32),
}

/// Failure of a linear-dispatch execution path ([`exec_linear`] or a
/// predecoded threaded-dispatch entry): either a genuine architectural
/// [`Trap`], or a routing violation — a block-ending instruction
/// reached a path that only handles straight-line instructions, which
/// means the block-structure tables (block cache or dispatch table)
/// are inconsistent with the instruction stream. The machine layer
/// surfaces the latter as a typed `SimError` instead of panicking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ExecError {
    /// An architectural trap raised by the instruction.
    Trap(Trap),
    /// A block-ending instruction (CTI or `t<cond>`) was routed to a
    /// linear execution path; `pc` is the offending instruction's
    /// address.
    NotLinear { pc: u32 },
}

impl From<Trap> for ExecError {
    fn from(t: Trap) -> Self {
        ExecError::Trap(t)
    }
}

#[inline]
pub(crate) fn fault_to_trap(pc: u32, fault: BusFault) -> Trap {
    match fault {
        BusFault::Unmapped { addr } => Trap::Unmapped { pc, addr },
        BusFault::Misaligned { addr, size } => Trap::Misaligned { pc, addr, size },
        // CPU-initiated accesses never raise it (it is an image-load
        // fault), but map it defensively rather than panicking.
        BusFault::ImageOverlap { addr, .. } => Trap::Unmapped { pc, addr },
    }
}

#[inline]
pub(crate) fn operand_value(cpu: &Cpu, op2: Operand) -> u32 {
    match op2 {
        Operand::Reg(r) => cpu.get(r),
        Operand::Imm(v) => v as u32,
    }
}

/// Executes one instruction, advancing `pc`/`npc`.
///
/// `fpu_enabled` models the presence of the hardware FPU: when false,
/// every FPU instruction raises [`Trap::FpDisabled`] (software-float
/// binaries never contain them).
#[inline]
pub fn step<O: Observer>(
    cpu: &mut Cpu,
    bus: &mut Bus,
    instr: &Instr,
    fpu_enabled: bool,
    obs: &mut O,
) -> Result<StepOut, Trap> {
    let pc = cpu.pc;
    let npc = cpu.npc;
    // Default sequential flow; control transfers override next_npc
    // (executing the delay slot at npc first) or both on annulment.
    let mut next_pc = npc;
    let mut next_npc = npc.wrapping_add(4);
    let mut info = ExecInfo::new(pc, *instr, instr.category());
    let mut out = StepOut::Normal;

    match *instr {
        Instr::Branch {
            cond,
            annul,
            disp22,
        } => {
            let taken = cond.eval(cpu.icc.n, cpu.icc.z, cpu.icc.v, cpu.icc.c);
            let target = pc.wrapping_add((disp22 as u32).wrapping_mul(4));
            apply_branch(
                taken,
                annul,
                cond == ICond::A,
                target,
                npc,
                &mut next_pc,
                &mut next_npc,
            );
            info.branch_taken = Some(taken);
        }
        Instr::FBranch {
            cond,
            annul,
            disp22,
        } => {
            if !fpu_enabled {
                return Err(Trap::FpDisabled { pc });
            }
            let taken = cond.eval(cpu.fcc);
            let target = pc.wrapping_add((disp22 as u32).wrapping_mul(4));
            apply_branch(
                taken,
                annul,
                cond == nfp_sparc::FCond::A,
                target,
                npc,
                &mut next_pc,
                &mut next_npc,
            );
            info.branch_taken = Some(taken);
        }
        Instr::Call { disp30 } => {
            cpu.set(nfp_sparc::regs::O7, pc);
            next_npc = pc.wrapping_add((disp30 as u32).wrapping_mul(4));
            info.branch_taken = Some(true);
        }
        Instr::Jmpl { rd, rs1, op2 } => {
            let target = cpu.get(rs1).wrapping_add(operand_value(cpu, op2));
            if !target.is_multiple_of(4) {
                return Err(Trap::Misaligned {
                    pc,
                    addr: target,
                    size: 4,
                });
            }
            cpu.set(rd, pc);
            next_npc = target;
            info.branch_taken = Some(true);
        }
        Instr::Ticc { cond, rs1, op2 } => {
            if cond.eval(cpu.icc.n, cpu.icc.z, cpu.icc.v, cpu.icc.c) {
                let n = cpu.get(rs1).wrapping_add(operand_value(cpu, op2)) & 0x7f;
                out = StepOut::SoftTrap(n);
            }
        }
        // The arms above cover every block-ending instruction, so the
        // linear path cannot report `NotLinear` here; map it to an
        // illegal-instruction trap defensively rather than panicking
        // (mirrors the `BusFault::ImageOverlap` mapping above).
        _ => exec_linear::<true>(cpu, bus, instr, fpu_enabled, pc, &mut info).map_err(
            |e| match e {
                ExecError::Trap(t) => t,
                ExecError::NotLinear { pc } => Trap::Illegal {
                    pc,
                    word: nfp_sparc::encode(*instr),
                },
            },
        )?,
    }

    cpu.pc = next_pc;
    cpu.npc = next_npc;
    obs.observe(&info);
    Ok(out)
}

/// Executes one *linear* instruction — anything that is neither a CTI
/// nor `t<cond>` (see [`Instr::ends_block`]), so control flow past it
/// is always sequential. `pc` is the instruction's own address, used
/// only for trap payloads; `cpu.pc`/`cpu.npc` are neither read nor
/// written here. [`step`] commits them for the stepping path, and the
/// machine's block-batched run loop calls this directly, committing
/// `pc`/`npc` once per block.
///
/// On a trap, no architectural state has been committed beyond what the
/// faulting instruction legitimately wrote before faulting (nothing:
/// every arm validates before writing), so the caller can re-present
/// the same instruction after recovery.
#[inline]
pub(crate) fn exec_linear<const OBSERVE: bool>(
    cpu: &mut Cpu,
    bus: &mut Bus,
    instr: &Instr,
    fpu_enabled: bool,
    pc: u32,
    info: &mut ExecInfo,
) -> Result<(), ExecError> {
    match *instr {
        Instr::Sethi { rd, imm22 } => {
            let v = imm22 << 10;
            cpu.set(rd, v);
            if OBSERVE {
                info.result_ones = v.count_ones();
            }
        }
        Instr::Alu { op, rd, rs1, op2 } => {
            let a = cpu.get(rs1);
            let b = operand_value(cpu, op2);
            let r = exec_alu(cpu, op, a, b, pc)?;
            cpu.set(rd, r);
            if OBSERVE {
                info.result_ones = r.count_ones();
            }
        }
        Instr::RdY { rd } => {
            let y = cpu.y;
            cpu.set(rd, y);
            if OBSERVE {
                info.result_ones = y.count_ones();
            }
        }
        Instr::WrY { rs1, op2 } => {
            cpu.y = cpu.get(rs1) ^ operand_value(cpu, op2);
        }
        Instr::Save { rd, rs1, op2 } => {
            // Source operands are read in the OLD window, the result is
            // written in the NEW window.
            let a = cpu.get(rs1);
            let b = operand_value(cpu, op2);
            if !cpu.window_save() {
                return Err(Trap::WindowOverflow { pc }.into());
            }
            cpu.set(rd, a.wrapping_add(b));
        }
        Instr::Restore { rd, rs1, op2 } => {
            let a = cpu.get(rs1);
            let b = operand_value(cpu, op2);
            if !cpu.window_restore() {
                return Err(Trap::WindowUnderflow { pc }.into());
            }
            cpu.set(rd, a.wrapping_add(b));
        }
        Instr::Flush { .. } => {
            // No instruction cache on this core; architectural no-op.
        }
        Instr::Load {
            size,
            signed,
            rd,
            rs1,
            op2,
        } => {
            let addr = cpu.get(rs1).wrapping_add(operand_value(cpu, op2));
            if OBSERVE {
                info.mem_addr = Some(addr);
            }
            let map = |e| fault_to_trap(pc, e);
            // Every arm writes its own destination so the doubleword
            // pair needs no early exit past the shared commit.
            match size {
                MemSize::Byte => {
                    let v = bus.load8(addr).map_err(map)? as u32;
                    let v = if signed {
                        v as u8 as i8 as i32 as u32
                    } else {
                        v
                    };
                    cpu.set(rd, v);
                    if OBSERVE {
                        info.result_ones = v.count_ones();
                    }
                }
                MemSize::Half => {
                    let v = bus.load16(addr).map_err(map)? as u32;
                    let v = if signed {
                        v as u16 as i16 as i32 as u32
                    } else {
                        v
                    };
                    cpu.set(rd, v);
                    if OBSERVE {
                        info.result_ones = v.count_ones();
                    }
                }
                MemSize::Word => {
                    let v = bus.load32(addr).map_err(map)?;
                    cpu.set(rd, v);
                    if OBSERVE {
                        info.result_ones = v.count_ones();
                    }
                }
                MemSize::Double => {
                    if rd.num() % 2 != 0 {
                        return Err(Trap::OddIntPair { pc }.into());
                    }
                    let v = bus.load64(addr).map_err(map)?;
                    cpu.set(rd, (v >> 32) as u32);
                    cpu.set(nfp_sparc::Reg::new(rd.num() + 1), v as u32);
                    if OBSERVE {
                        info.result_ones = v.count_ones();
                    }
                }
            }
        }
        Instr::Store { size, rd, rs1, op2 } => {
            let addr = cpu.get(rs1).wrapping_add(operand_value(cpu, op2));
            if OBSERVE {
                info.mem_addr = Some(addr);
            }
            let map = |e| fault_to_trap(pc, e);
            let v = cpu.get(rd);
            match size {
                MemSize::Byte => {
                    bus.store8(addr, v as u8).map_err(map)?;
                    if OBSERVE {
                        info.result_ones = v.count_ones();
                    }
                }
                MemSize::Half => {
                    bus.store16(addr, v as u16).map_err(map)?;
                    if OBSERVE {
                        info.result_ones = v.count_ones();
                    }
                }
                MemSize::Word => {
                    bus.store32(addr, v).map_err(map)?;
                    if OBSERVE {
                        info.result_ones = v.count_ones();
                    }
                }
                MemSize::Double => {
                    if rd.num() % 2 != 0 {
                        return Err(Trap::OddIntPair { pc }.into());
                    }
                    let lo = cpu.get(nfp_sparc::Reg::new(rd.num() + 1));
                    let dv = ((v as u64) << 32) | lo as u64;
                    bus.store64(addr, dv).map_err(map)?;
                    if OBSERVE {
                        info.result_ones = dv.count_ones();
                    }
                }
            }
        }
        Instr::LoadF {
            double,
            rd,
            rs1,
            op2,
        } => {
            if !fpu_enabled {
                return Err(Trap::FpDisabled { pc }.into());
            }
            let addr = cpu.get(rs1).wrapping_add(operand_value(cpu, op2));
            if OBSERVE {
                info.mem_addr = Some(addr);
            }
            let map = |e| fault_to_trap(pc, e);
            if double {
                if !rd.is_even() {
                    return Err(Trap::OddFpPair { pc }.into());
                }
                let v = bus.load64(addr).map_err(map)?;
                cpu.fset(rd, (v >> 32) as u32);
                cpu.fset(nfp_sparc::FReg::new(rd.num() + 1), v as u32);
                if OBSERVE {
                    info.result_ones = v.count_ones();
                }
            } else {
                let v = bus.load32(addr).map_err(map)?;
                cpu.fset(rd, v);
                if OBSERVE {
                    info.result_ones = v.count_ones();
                }
            }
        }
        Instr::StoreF {
            double,
            rd,
            rs1,
            op2,
        } => {
            if !fpu_enabled {
                return Err(Trap::FpDisabled { pc }.into());
            }
            let addr = cpu.get(rs1).wrapping_add(operand_value(cpu, op2));
            if OBSERVE {
                info.mem_addr = Some(addr);
            }
            let map = |e| fault_to_trap(pc, e);
            if double {
                if !rd.is_even() {
                    return Err(Trap::OddFpPair { pc }.into());
                }
                let hi = cpu.fget(rd) as u64;
                let lo = cpu.fget(nfp_sparc::FReg::new(rd.num() + 1)) as u64;
                let v = (hi << 32) | lo;
                bus.store64(addr, v).map_err(map)?;
                if OBSERVE {
                    info.result_ones = v.count_ones();
                }
            } else {
                let v = cpu.fget(rd);
                bus.store32(addr, v).map_err(map)?;
                if OBSERVE {
                    info.result_ones = v.count_ones();
                }
            }
        }
        Instr::FpOp { op, rd, rs1, rs2 } => {
            if !fpu_enabled {
                return Err(Trap::FpDisabled { pc }.into());
            }
            exec_fpop::<OBSERVE>(cpu, op, rd, rs1, rs2, pc, info)?;
        }
        Instr::FCmp {
            double, rs1, rs2, ..
        } => {
            if !fpu_enabled {
                return Err(Trap::FpDisabled { pc }.into());
            }
            let rel = if double {
                if !rs1.is_even() || !rs2.is_even() {
                    return Err(Trap::OddFpPair { pc }.into());
                }
                compare(cpu.fget_d(rs1), cpu.fget_d(rs2))
            } else {
                compare(cpu.fget_s(rs1) as f64, cpu.fget_s(rs2) as f64)
            };
            cpu.fcc = rel;
        }
        Instr::Unimp { const22 } => {
            return Err(Trap::Illegal { pc, word: const22 }.into());
        }
        Instr::Illegal { word } => {
            return Err(Trap::Illegal { pc, word }.into());
        }
        // CTIs and `t<cond>` belong to `step`; reaching here with one
        // means the block-structure tables disagree with the
        // instruction stream. Surface it as a typed error — the
        // machine layer reports it as `SimError::DispatchViolation`.
        Instr::Branch { .. }
        | Instr::FBranch { .. }
        | Instr::Call { .. }
        | Instr::Jmpl { .. }
        | Instr::Ticc { .. } => {
            return Err(ExecError::NotLinear { pc });
        }
    }
    Ok(())
}

/// Branch/annul resolution per SPARC V8 §B.21: a taken conditional
/// branch executes its delay slot; an untaken branch with `a = 1`
/// annuls it; `ba,a` annuls it even though taken.
#[inline]
fn apply_branch(
    taken: bool,
    annul: bool,
    always: bool,
    target: u32,
    npc: u32,
    next_pc: &mut u32,
    next_npc: &mut u32,
) {
    if taken {
        if annul && always {
            *next_pc = target;
            *next_npc = target.wrapping_add(4);
        } else {
            *next_npc = target;
        }
    } else if annul {
        *next_pc = npc.wrapping_add(4);
        *next_npc = npc.wrapping_add(8);
    }
}

#[inline]
pub(crate) fn exec_alu(cpu: &mut Cpu, op: AluOp, a: u32, b: u32, pc: u32) -> Result<u32, Trap> {
    use AluOp::*;
    let carry_in = cpu.icc.c as u32;
    let (result, set_cc, v, c) = match op {
        Add | AddCc => {
            let (r, c1) = a.overflowing_add(b);
            let v = ((a ^ r) & (b ^ r)) >> 31 != 0;
            (r, op == AddCc, v, c1)
        }
        AddX | AddXCc => {
            let r64 = a as u64 + b as u64 + carry_in as u64;
            let r = r64 as u32;
            let v = ((a ^ r) & (b ^ r)) >> 31 != 0;
            (r, op == AddXCc, v, r64 >> 32 != 0)
        }
        Sub | SubCc => {
            let r = a.wrapping_sub(b);
            let v = ((a ^ b) & (a ^ r)) >> 31 != 0;
            (r, op == SubCc, v, (a as u64) < (b as u64))
        }
        SubX | SubXCc => {
            let r = a.wrapping_sub(b).wrapping_sub(carry_in);
            let v = ((a ^ b) & (a ^ r)) >> 31 != 0;
            (r, op == SubXCc, v, (a as u64) < b as u64 + carry_in as u64)
        }
        And | AndCc => (a & b, op == AndCc, false, false),
        AndN | AndNCc => (a & !b, op == AndNCc, false, false),
        Or | OrCc => (a | b, op == OrCc, false, false),
        OrN | OrNCc => (a | !b, op == OrNCc, false, false),
        Xor | XorCc => (a ^ b, op == XorCc, false, false),
        XNor | XNorCc => (a ^ !b, op == XNorCc, false, false),
        Sll => (a.wrapping_shl(b & 31), false, false, false),
        Srl => (a.wrapping_shr(b & 31), false, false, false),
        Sra => (
            ((a as i32).wrapping_shr(b & 31)) as u32,
            false,
            false,
            false,
        ),
        UMul | UMulCc => {
            let r64 = a as u64 * b as u64;
            cpu.y = (r64 >> 32) as u32;
            (r64 as u32, op == UMulCc, false, false)
        }
        SMul | SMulCc => {
            let r64 = (a as i32 as i64) * (b as i32 as i64);
            cpu.y = ((r64 as u64) >> 32) as u32;
            (r64 as u32, op == SMulCc, false, false)
        }
        UDiv | UDivCc => {
            if b == 0 {
                return Err(Trap::DivZero { pc });
            }
            let dividend = ((cpu.y as u64) << 32) | a as u64;
            let q = dividend / b as u64;
            let (r, v) = if q > u32::MAX as u64 {
                (u32::MAX, true)
            } else {
                (q as u32, false)
            };
            (r, op == UDivCc, v, false)
        }
        SDiv | SDivCc => {
            if b == 0 {
                return Err(Trap::DivZero { pc });
            }
            let dividend = (((cpu.y as u64) << 32) | a as u64) as i64;
            let divisor = b as i32 as i64;
            // i64::MIN / -1 cannot occur: |dividend| <= 2^63 - 1 only
            // fails for exactly i64::MIN, which still traps on real
            // hardware as overflow; clamp like the hardware does.
            let q = dividend.wrapping_div(divisor);
            let (r, v) = if q > i32::MAX as i64 {
                (i32::MAX as u32, true)
            } else if q < i32::MIN as i64 {
                (i32::MIN as u32, true)
            } else {
                (q as u32, false)
            };
            (r, op == SDivCc, v, false)
        }
    };
    if set_cc {
        cpu.icc.n = result >> 31 != 0;
        cpu.icc.z = result == 0;
        cpu.icc.v = v;
        cpu.icc.c = c;
    }
    Ok(result)
}

#[inline]
pub(crate) fn compare(a: f64, b: f64) -> FccValue {
    if a.is_nan() || b.is_nan() {
        FccValue::Unordered
    } else if a == b {
        FccValue::Equal
    } else if a < b {
        FccValue::Less
    } else {
        FccValue::Greater
    }
}

/// Converts a double to i32 with round-toward-zero and saturation
/// (Rust `as` semantics, which match what the differential tests and
/// the soft-float library implement).
#[inline]
fn f64_to_i32(v: f64) -> i32 {
    v as i32
}

#[inline]
pub(crate) fn exec_fpop<const OBSERVE: bool>(
    cpu: &mut Cpu,
    op: FpOp,
    rd: nfp_sparc::FReg,
    rs1: nfp_sparc::FReg,
    rs2: nfp_sparc::FReg,
    pc: u32,
    info: &mut ExecInfo,
) -> Result<(), Trap> {
    use FpOp::*;
    let need_even = |r: nfp_sparc::FReg| -> Result<(), Trap> {
        if r.is_even() {
            Ok(())
        } else {
            Err(Trap::OddFpPair { pc })
        }
    };
    match op {
        FMovS => cpu.fset(rd, cpu.fget(rs2)),
        FNegS => cpu.fset(rd, cpu.fget(rs2) ^ 0x8000_0000),
        FAbsS => cpu.fset(rd, cpu.fget(rs2) & 0x7fff_ffff),
        FSqrtS => {
            let v = cpu.fget_s(rs2);
            if OBSERVE {
                info.fpu_rs2_bits = Some(v.to_bits() as u64);
            }
            cpu.fset_s(rd, v.sqrt());
        }
        FSqrtD => {
            need_even(rs2)?;
            need_even(rd)?;
            let v = cpu.fget_d(rs2);
            if OBSERVE {
                info.fpu_rs2_bits = Some(v.to_bits());
            }
            cpu.fset_d(rd, v.sqrt());
        }
        FAddS => cpu.fset_s(rd, cpu.fget_s(rs1) + cpu.fget_s(rs2)),
        FSubS => cpu.fset_s(rd, cpu.fget_s(rs1) - cpu.fget_s(rs2)),
        FMulS => cpu.fset_s(rd, cpu.fget_s(rs1) * cpu.fget_s(rs2)),
        FDivS => {
            let b = cpu.fget_s(rs2);
            if OBSERVE {
                info.fpu_rs2_bits = Some(b.to_bits() as u64);
            }
            cpu.fset_s(rd, cpu.fget_s(rs1) / b);
        }
        FAddD => {
            need_even(rs1)?;
            need_even(rs2)?;
            need_even(rd)?;
            cpu.fset_d(rd, cpu.fget_d(rs1) + cpu.fget_d(rs2));
        }
        FSubD => {
            need_even(rs1)?;
            need_even(rs2)?;
            need_even(rd)?;
            cpu.fset_d(rd, cpu.fget_d(rs1) - cpu.fget_d(rs2));
        }
        FMulD => {
            need_even(rs1)?;
            need_even(rs2)?;
            need_even(rd)?;
            cpu.fset_d(rd, cpu.fget_d(rs1) * cpu.fget_d(rs2));
        }
        FDivD => {
            need_even(rs1)?;
            need_even(rs2)?;
            need_even(rd)?;
            let b = cpu.fget_d(rs2);
            if OBSERVE {
                info.fpu_rs2_bits = Some(b.to_bits());
            }
            cpu.fset_d(rd, cpu.fget_d(rs1) / b);
        }
        FsMulD => {
            need_even(rd)?;
            cpu.fset_d(rd, cpu.fget_s(rs1) as f64 * cpu.fget_s(rs2) as f64);
        }
        FiToS => cpu.fset_s(rd, cpu.fget(rs2) as i32 as f32),
        FiToD => {
            need_even(rd)?;
            cpu.fset_d(rd, cpu.fget(rs2) as i32 as f64);
        }
        FsToI => {
            let v = cpu.fget_s(rs2);
            cpu.fset(rd, (v as i32) as u32);
        }
        FdToI => {
            need_even(rs2)?;
            cpu.fset(rd, f64_to_i32(cpu.fget_d(rs2)) as u32);
        }
        FsToD => {
            need_even(rd)?;
            cpu.fset_d(rd, cpu.fget_s(rs2) as f64);
        }
        FdToS => {
            need_even(rs2)?;
            cpu.fset_s(rd, cpu.fget_d(rs2) as f32);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::RAM_BASE;
    use nfp_sparc::Reg;

    fn setup() -> (Cpu, Bus) {
        let mut cpu = Cpu::new();
        cpu.pc = RAM_BASE;
        cpu.npc = RAM_BASE + 4;
        (cpu, Bus::with_ram(RAM_BASE, 1 << 16))
    }

    fn run1(cpu: &mut Cpu, bus: &mut Bus, i: Instr) -> Result<StepOut, Trap> {
        step(cpu, bus, &i, true, &mut NullObserver)
    }

    #[test]
    fn addcc_flags() {
        let (mut cpu, mut bus) = setup();
        cpu.set(Reg::o(0), 0x7fff_ffff);
        cpu.set(Reg::o(1), 1);
        run1(
            &mut cpu,
            &mut bus,
            Instr::Alu {
                op: AluOp::AddCc,
                rd: Reg::o(2),
                rs1: Reg::o(0),
                op2: Operand::Reg(Reg::o(1)),
            },
        )
        .unwrap();
        assert_eq!(cpu.get(Reg::o(2)), 0x8000_0000);
        assert!(cpu.icc.n && cpu.icc.v && !cpu.icc.z && !cpu.icc.c);
    }

    #[test]
    fn subcc_borrow() {
        let (mut cpu, mut bus) = setup();
        cpu.set(Reg::o(0), 3);
        run1(
            &mut cpu,
            &mut bus,
            Instr::Alu {
                op: AluOp::SubCc,
                rd: Reg::o(2),
                rs1: Reg::o(0),
                op2: Operand::Imm(5),
            },
        )
        .unwrap();
        assert_eq!(cpu.get(Reg::o(2)) as i32, -2);
        assert!(cpu.icc.c, "borrow sets C");
        assert!(cpu.icc.n && !cpu.icc.v);
    }

    #[test]
    fn addx_chain_models_64bit_add() {
        // 0xFFFFFFFF + 1 with carry into the high word.
        let (mut cpu, mut bus) = setup();
        cpu.set(Reg::o(0), 0xffff_ffff);
        run1(
            &mut cpu,
            &mut bus,
            Instr::Alu {
                op: AluOp::AddCc,
                rd: Reg::o(2),
                rs1: Reg::o(0),
                op2: Operand::Imm(1),
            },
        )
        .unwrap();
        assert!(cpu.icc.c);
        run1(
            &mut cpu,
            &mut bus,
            Instr::Alu {
                op: AluOp::AddX,
                rd: Reg::o(3),
                rs1: Reg::g(0),
                op2: Operand::Imm(0),
            },
        )
        .unwrap();
        assert_eq!(cpu.get(Reg::o(3)), 1);
    }

    #[test]
    fn umul_writes_y() {
        let (mut cpu, mut bus) = setup();
        cpu.set(Reg::o(0), 0x8000_0000);
        run1(
            &mut cpu,
            &mut bus,
            Instr::Alu {
                op: AluOp::UMul,
                rd: Reg::o(2),
                rs1: Reg::o(0),
                op2: Operand::Imm(4),
            },
        )
        .unwrap();
        assert_eq!(cpu.get(Reg::o(2)), 0);
        assert_eq!(cpu.y, 2);
    }

    #[test]
    fn smul_sign() {
        let (mut cpu, mut bus) = setup();
        cpu.set(Reg::o(0), (-3i32) as u32);
        run1(
            &mut cpu,
            &mut bus,
            Instr::Alu {
                op: AluOp::SMul,
                rd: Reg::o(2),
                rs1: Reg::o(0),
                op2: Operand::Imm(7),
            },
        )
        .unwrap();
        assert_eq!(cpu.get(Reg::o(2)) as i32, -21);
        assert_eq!(cpu.y, 0xffff_ffff);
    }

    #[test]
    fn udiv_uses_y_and_traps_on_zero() {
        let (mut cpu, mut bus) = setup();
        cpu.y = 1; // dividend = 2^32 + 6
        cpu.set(Reg::o(0), 6);
        run1(
            &mut cpu,
            &mut bus,
            Instr::Alu {
                op: AluOp::UDiv,
                rd: Reg::o(2),
                rs1: Reg::o(0),
                op2: Operand::Imm(2),
            },
        )
        .unwrap();
        assert_eq!(cpu.get(Reg::o(2)), 0x8000_0003);
        let r = run1(
            &mut cpu,
            &mut bus,
            Instr::Alu {
                op: AluOp::UDiv,
                rd: Reg::o(2),
                rs1: Reg::o(0),
                op2: Operand::Imm(0),
            },
        );
        assert!(matches!(r, Err(Trap::DivZero { .. })));
    }

    #[test]
    fn sdiv_negative() {
        let (mut cpu, mut bus) = setup();
        cpu.y = 0xffff_ffff; // sign extension of negative dividend
        cpu.set(Reg::o(0), (-20i32) as u32);
        run1(
            &mut cpu,
            &mut bus,
            Instr::Alu {
                op: AluOp::SDiv,
                rd: Reg::o(2),
                rs1: Reg::o(0),
                op2: Operand::Imm(3),
            },
        )
        .unwrap();
        assert_eq!(cpu.get(Reg::o(2)) as i32, -6);
    }

    #[test]
    fn shifts_mask_count() {
        let (mut cpu, mut bus) = setup();
        cpu.set(Reg::o(0), 0x8000_0000);
        run1(
            &mut cpu,
            &mut bus,
            Instr::Alu {
                op: AluOp::Sra,
                rd: Reg::o(1),
                rs1: Reg::o(0),
                op2: Operand::Imm(31),
            },
        )
        .unwrap();
        assert_eq!(cpu.get(Reg::o(1)), 0xffff_ffff);
        run1(
            &mut cpu,
            &mut bus,
            Instr::Alu {
                op: AluOp::Srl,
                rd: Reg::o(1),
                rs1: Reg::o(0),
                op2: Operand::Imm(31),
            },
        )
        .unwrap();
        assert_eq!(cpu.get(Reg::o(1)), 1);
    }

    #[test]
    fn taken_branch_keeps_delay_slot() {
        let (mut cpu, mut bus) = setup();
        cpu.icc.z = true;
        run1(
            &mut cpu,
            &mut bus,
            Instr::Branch {
                cond: ICond::E,
                annul: false,
                disp22: 10,
            },
        )
        .unwrap();
        // Delay slot at old npc executes next; then the target.
        assert_eq!(cpu.pc, RAM_BASE + 4);
        assert_eq!(cpu.npc, RAM_BASE + 40);
    }

    #[test]
    fn untaken_annulled_branch_skips_delay_slot() {
        let (mut cpu, mut bus) = setup();
        cpu.icc.z = false;
        run1(
            &mut cpu,
            &mut bus,
            Instr::Branch {
                cond: ICond::E,
                annul: true,
                disp22: 10,
            },
        )
        .unwrap();
        assert_eq!(cpu.pc, RAM_BASE + 8);
        assert_eq!(cpu.npc, RAM_BASE + 12);
    }

    #[test]
    fn ba_annulled_jumps_immediately() {
        let (mut cpu, mut bus) = setup();
        run1(
            &mut cpu,
            &mut bus,
            Instr::Branch {
                cond: ICond::A,
                annul: true,
                disp22: 4,
            },
        )
        .unwrap();
        assert_eq!(cpu.pc, RAM_BASE + 16);
        assert_eq!(cpu.npc, RAM_BASE + 20);
    }

    #[test]
    fn call_links_o7() {
        let (mut cpu, mut bus) = setup();
        run1(&mut cpu, &mut bus, Instr::Call { disp30: 100 }).unwrap();
        assert_eq!(cpu.get(nfp_sparc::regs::O7), RAM_BASE);
        assert_eq!(cpu.pc, RAM_BASE + 4);
        assert_eq!(cpu.npc, RAM_BASE + 400);
    }

    #[test]
    fn load_store_roundtrip_with_sign_extension() {
        let (mut cpu, mut bus) = setup();
        cpu.set(Reg::o(0), RAM_BASE + 0x100);
        cpu.set(Reg::o(1), 0xffff_ff80);
        run1(
            &mut cpu,
            &mut bus,
            Instr::Store {
                size: MemSize::Byte,
                rd: Reg::o(1),
                rs1: Reg::o(0),
                op2: Operand::Imm(0),
            },
        )
        .unwrap();
        run1(
            &mut cpu,
            &mut bus,
            Instr::Load {
                size: MemSize::Byte,
                signed: true,
                rd: Reg::o(2),
                rs1: Reg::o(0),
                op2: Operand::Imm(0),
            },
        )
        .unwrap();
        assert_eq!(cpu.get(Reg::o(2)) as i32, -128);
        run1(
            &mut cpu,
            &mut bus,
            Instr::Load {
                size: MemSize::Byte,
                signed: false,
                rd: Reg::o(2),
                rs1: Reg::o(0),
                op2: Operand::Imm(0),
            },
        )
        .unwrap();
        assert_eq!(cpu.get(Reg::o(2)), 0x80);
    }

    #[test]
    fn ldd_std_pair() {
        let (mut cpu, mut bus) = setup();
        cpu.set(Reg::o(0), RAM_BASE + 0x200);
        cpu.set(Reg::o(2), 0xdead_beef);
        cpu.set(Reg::o(3), 0x0123_4567);
        run1(
            &mut cpu,
            &mut bus,
            Instr::Store {
                size: MemSize::Double,
                rd: Reg::o(2),
                rs1: Reg::o(0),
                op2: Operand::Imm(0),
            },
        )
        .unwrap();
        run1(
            &mut cpu,
            &mut bus,
            Instr::Load {
                size: MemSize::Double,
                signed: false,
                rd: Reg::l(0),
                rs1: Reg::o(0),
                op2: Operand::Imm(0),
            },
        )
        .unwrap();
        assert_eq!(cpu.get(Reg::l(0)), 0xdead_beef);
        assert_eq!(cpu.get(Reg::l(1)), 0x0123_4567);
    }

    #[test]
    fn fpu_double_arithmetic() {
        let (mut cpu, mut bus) = setup();
        cpu.fset_d(nfp_sparc::FReg::new(0), 2.5);
        cpu.fset_d(nfp_sparc::FReg::new(2), 4.0);
        run1(
            &mut cpu,
            &mut bus,
            Instr::FpOp {
                op: FpOp::FMulD,
                rd: nfp_sparc::FReg::new(4),
                rs1: nfp_sparc::FReg::new(0),
                rs2: nfp_sparc::FReg::new(2),
            },
        )
        .unwrap();
        assert_eq!(cpu.fget_d(nfp_sparc::FReg::new(4)), 10.0);
    }

    #[test]
    fn fpu_disabled_traps() {
        let (mut cpu, mut bus) = setup();
        let r = step(
            &mut cpu,
            &mut bus,
            &Instr::FpOp {
                op: FpOp::FAddD,
                rd: nfp_sparc::FReg::new(0),
                rs1: nfp_sparc::FReg::new(0),
                rs2: nfp_sparc::FReg::new(2),
            },
            false,
            &mut NullObserver,
        );
        assert!(matches!(r, Err(Trap::FpDisabled { .. })));
    }

    #[test]
    fn fcmp_sets_fcc_and_fbranch_uses_it() {
        let (mut cpu, mut bus) = setup();
        cpu.fset_d(nfp_sparc::FReg::new(0), 1.0);
        cpu.fset_d(nfp_sparc::FReg::new(2), 2.0);
        run1(
            &mut cpu,
            &mut bus,
            Instr::FCmp {
                double: true,
                exception: false,
                rs1: nfp_sparc::FReg::new(0),
                rs2: nfp_sparc::FReg::new(2),
            },
        )
        .unwrap();
        assert_eq!(cpu.fcc, FccValue::Less);
        run1(
            &mut cpu,
            &mut bus,
            Instr::FBranch {
                cond: nfp_sparc::FCond::L,
                annul: false,
                disp22: 8,
            },
        )
        .unwrap();
        // FBranch executed at pc = RAM_BASE+4; target = pc + 8 words.
        assert_eq!(cpu.npc, RAM_BASE + 4 + 32);
    }

    #[test]
    fn fcmp_nan_is_unordered() {
        let (mut cpu, mut bus) = setup();
        cpu.fset_d(nfp_sparc::FReg::new(0), f64::NAN);
        cpu.fset_d(nfp_sparc::FReg::new(2), 2.0);
        run1(
            &mut cpu,
            &mut bus,
            Instr::FCmp {
                double: true,
                exception: false,
                rs1: nfp_sparc::FReg::new(0),
                rs2: nfp_sparc::FReg::new(2),
            },
        )
        .unwrap();
        assert_eq!(cpu.fcc, FccValue::Unordered);
    }

    #[test]
    fn odd_double_register_traps() {
        let (mut cpu, mut bus) = setup();
        let r = run1(
            &mut cpu,
            &mut bus,
            Instr::FpOp {
                op: FpOp::FAddD,
                rd: nfp_sparc::FReg::new(1),
                rs1: nfp_sparc::FReg::new(0),
                rs2: nfp_sparc::FReg::new(2),
            },
        );
        assert!(matches!(r, Err(Trap::OddFpPair { .. })));
    }

    #[test]
    fn conversions() {
        let (mut cpu, mut bus) = setup();
        cpu.fset(nfp_sparc::FReg::new(1), (-7i32) as u32);
        run1(
            &mut cpu,
            &mut bus,
            Instr::FpOp {
                op: FpOp::FiToD,
                rd: nfp_sparc::FReg::new(2),
                rs1: nfp_sparc::FReg::new(0),
                rs2: nfp_sparc::FReg::new(1),
            },
        )
        .unwrap();
        assert_eq!(cpu.fget_d(nfp_sparc::FReg::new(2)), -7.0);
        cpu.fset_d(nfp_sparc::FReg::new(4), -2.9);
        run1(
            &mut cpu,
            &mut bus,
            Instr::FpOp {
                op: FpOp::FdToI,
                rd: nfp_sparc::FReg::new(1),
                rs1: nfp_sparc::FReg::new(0),
                rs2: nfp_sparc::FReg::new(4),
            },
        )
        .unwrap();
        assert_eq!(cpu.fget(nfp_sparc::FReg::new(1)) as i32, -2);
    }

    #[test]
    fn software_trap_surfaces() {
        let (mut cpu, mut bus) = setup();
        let out = run1(
            &mut cpu,
            &mut bus,
            Instr::Ticc {
                cond: ICond::A,
                rs1: Reg::g(0),
                op2: Operand::Imm(5),
            },
        )
        .unwrap();
        assert_eq!(out, StepOut::SoftTrap(5));
        // Untaken trap is a no-op.
        cpu.icc.z = false;
        let out = run1(
            &mut cpu,
            &mut bus,
            Instr::Ticc {
                cond: ICond::E,
                rs1: Reg::g(0),
                op2: Operand::Imm(5),
            },
        )
        .unwrap();
        assert_eq!(out, StepOut::Normal);
    }

    #[test]
    fn save_restore_move_operands_across_windows() {
        let (mut cpu, mut bus) = setup();
        cpu.set(Reg::o(0), 1000);
        run1(
            &mut cpu,
            &mut bus,
            Instr::Save {
                rd: Reg::o(1),
                rs1: Reg::o(0),
                op2: Operand::Imm(-96),
            },
        )
        .unwrap();
        // Source read in old window (o0 = 1000), result written in new
        // window's o1.
        assert_eq!(cpu.get(Reg::o(1)), 904);
        assert_eq!(cpu.get(Reg::i(0)), 1000);
        run1(
            &mut cpu,
            &mut bus,
            Instr::Restore {
                rd: Reg::o(2),
                rs1: Reg::i(0),
                op2: Operand::Imm(1),
            },
        )
        .unwrap();
        assert_eq!(cpu.get(Reg::o(2)), 1001);
        assert_eq!(cpu.get(Reg::o(0)), 1000);
    }

    #[test]
    fn misaligned_jmpl_traps() {
        let (mut cpu, mut bus) = setup();
        cpu.set(Reg::o(0), RAM_BASE + 2);
        let r = run1(
            &mut cpu,
            &mut bus,
            Instr::Jmpl {
                rd: Reg::g(0),
                rs1: Reg::o(0),
                op2: Operand::Imm(0),
            },
        );
        assert!(matches!(r, Err(Trap::Misaligned { .. })));
    }
}
