//! Design-space exploration: the paper's Table IV use case.
//!
//! Given per-kernel (time, energy) results for two hardware
//! configurations — here: without and with an FPU — compute the mean
//! relative change of each non-functional property plus the area
//! change, so a developer can decide whether the FPU is worth its
//! logical elements (Section VI-D).

use nfp_testbed::AreaModel;

/// One kernel's non-functional properties under one configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelNfp {
    /// Processing time in seconds.
    pub time_s: f64,
    /// Energy in joules.
    pub energy_j: f64,
}

/// Table IV row set for one algorithm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpuTradeoff {
    /// Mean relative change of energy when introducing the FPU
    /// (negative = saving; paper: −92.6 % for FSE).
    pub energy_change: f64,
    /// Mean relative change of processing time.
    pub time_change: f64,
    /// Relative change in logical elements (paper: +109 %).
    pub area_change: f64,
}

/// Computes the FPU trade-off over paired kernel results:
/// `without[i]` and `with[i]` must describe the same kernel compiled
/// for the FPU-less (soft-float) and FPU (hard-float) configurations.
///
/// # Panics
/// Panics if the slices are empty or of different lengths.
pub fn fpu_tradeoff(without: &[KernelNfp], with: &[KernelNfp]) -> FpuTradeoff {
    assert_eq!(without.len(), with.len(), "kernel sets must pair up");
    assert!(!without.is_empty(), "no kernels");
    let mut e_sum = 0.0;
    let mut t_sum = 0.0;
    for (a, b) in without.iter().zip(with) {
        e_sum += (b.energy_j - a.energy_j) / a.energy_j;
        t_sum += (b.time_s - a.time_s) / a.time_s;
    }
    let n = without.len() as f64;
    FpuTradeoff {
        energy_change: e_sum / n,
        time_change: t_sum / n,
        area_change: AreaModel::baseline().relative_change_to(&AreaModel::with_fpu()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tradeoff_averages_relative_changes() {
        let without = [
            KernelNfp {
                time_s: 10.0,
                energy_j: 10.0,
            },
            KernelNfp {
                time_s: 20.0,
                energy_j: 20.0,
            },
        ];
        let with = [
            KernelNfp {
                time_s: 1.0,
                energy_j: 2.0,
            },
            KernelNfp {
                time_s: 2.0,
                energy_j: 4.0,
            },
        ];
        let t = fpu_tradeoff(&without, &with);
        assert!((t.time_change + 0.9).abs() < 1e-12);
        assert!((t.energy_change + 0.8).abs() < 1e-12);
        assert!(t.area_change > 1.0); // FPU roughly doubles the area
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        fpu_tradeoff(
            &[KernelNfp {
                time_s: 1.0,
                energy_j: 1.0,
            }],
            &[],
        );
    }
}
