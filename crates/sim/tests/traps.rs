//! Every [`Trap`] variant, raised by a hand-assembled program and
//! checked for both payload and `Display` rendering. These pin down
//! the trap contract the fault-injection campaign's outcome
//! classification builds on.

use nfp_sim::machine::TrapPolicy;
use nfp_sim::{Machine, MachineConfig, SimError, Trap, RAM_BASE};
use nfp_sparc::asm::Assembler;
use nfp_sparc::regs::G0;
use nfp_sparc::{AluOp, FReg, FpOp, Instr, MemSize, Operand, Reg};

/// Runs `words` and returns the trap it must die with.
fn trap_of(words: &[u32]) -> Trap {
    let mut m = Machine::boot(words);
    match m.run(10_000) {
        Err(SimError::Trap(t)) => t,
        other => panic!("expected a trap, got {other:?}"),
    }
}

fn asm(build: impl FnOnce(&mut Assembler)) -> Vec<u32> {
    let mut a = Assembler::new(RAM_BASE);
    build(&mut a);
    a.finish().expect("assembly failed")
}

#[test]
fn illegal_instruction() {
    // An unimp word at the entry point.
    let t = trap_of(&[0]);
    assert_eq!(
        t,
        Trap::Illegal {
            pc: RAM_BASE,
            word: 0
        }
    );
    assert_eq!(
        t.to_string(),
        format!("illegal instruction 0x00000000 at 0x{RAM_BASE:08x}")
    );
    assert!(!t.is_recoverable());
}

#[test]
fn misaligned_access() {
    let words = asm(|a| {
        a.set32(RAM_BASE + 0x103, Reg::l(0));
        a.ld(MemSize::Word, false, Reg::l(0), 0, Reg::l(1));
        a.ta(0);
        a.nop();
    });
    let t = trap_of(&words);
    // set32 is two instructions, so the load sits at +8.
    let pc = RAM_BASE + 8;
    let addr = RAM_BASE + 0x103;
    assert_eq!(t, Trap::Misaligned { pc, addr, size: 4 });
    assert_eq!(
        t.to_string(),
        format!("misaligned 4-byte access to 0x{addr:08x} at 0x{pc:08x}")
    );
    assert!(t.is_recoverable());
}

#[test]
fn misaligned_double_reports_size_8() {
    // Doubleword accesses require 8-byte alignment on SPARC V8 —
    // word-aligned is not enough, and the trap payload must carry the
    // doubleword size, not the size of a constituent word.
    let addr = RAM_BASE + 0x104; // 4-aligned, not 8-aligned
    let cases: [Vec<u32>; 3] = [
        asm(|a| {
            a.set32(addr, Reg::l(0));
            a.ld(MemSize::Double, false, Reg::l(0), 0, Reg::l(2));
            a.ta(0);
            a.nop();
        }),
        asm(|a| {
            a.set32(addr, Reg::l(0));
            a.st(MemSize::Double, Reg::o(2), Reg::l(0), 0);
            a.ta(0);
            a.nop();
        }),
        asm(|a| {
            a.set32(addr, Reg::l(0));
            a.lddf(Reg::l(0), 0, FReg::new(0));
            a.ta(0);
            a.nop();
        }),
    ];
    for words in &cases {
        let t = trap_of(words);
        let pc = RAM_BASE + 8; // set32 is two instructions
        assert_eq!(t, Trap::Misaligned { pc, addr, size: 8 });
    }

    // stdf likewise, spot-checking the Display size.
    let stdf = asm(|a| {
        a.set32(addr, Reg::l(0));
        a.stdf(FReg::new(2), Reg::l(0), 0);
        a.ta(0);
        a.nop();
    });
    let t = trap_of(&stdf);
    assert_eq!(
        t.to_string(),
        format!(
            "misaligned 8-byte access to 0x{addr:08x} at 0x{:08x}",
            RAM_BASE + 8
        )
    );
}

#[test]
fn unmapped_access() {
    let words = asm(|a| {
        a.set32(0x1000_0000, Reg::l(0));
        a.ld(MemSize::Word, false, Reg::l(0), 0, Reg::l(1));
        a.ta(0);
        a.nop();
    });
    let t = trap_of(&words);
    // set32 of a value with zero low bits is a single sethi.
    let pc = RAM_BASE + 4;
    assert_eq!(
        t,
        Trap::Unmapped {
            pc,
            addr: 0x1000_0000
        }
    );
    assert_eq!(
        t.to_string(),
        format!("unmapped access to 0x10000000 at 0x{pc:08x}")
    );
    assert!(!t.is_recoverable());
}

#[test]
fn division_by_zero() {
    let words = asm(|a| {
        a.mov(1, Reg::l(0));
        a.alu(AluOp::UDiv, Reg::l(0), Operand::Reg(G0), Reg::l(1));
        a.ta(0);
        a.nop();
    });
    let t = trap_of(&words);
    let pc = RAM_BASE + 4;
    assert_eq!(t, Trap::DivZero { pc });
    assert_eq!(t.to_string(), format!("division by zero at 0x{pc:08x}"));
    assert!(!t.is_recoverable());
}

#[test]
fn window_overflow() {
    let words = asm(|a| {
        for _ in 0..nfp_sim::NWINDOWS - 1 {
            a.push(Instr::Save {
                rd: G0,
                rs1: G0,
                op2: Operand::Imm(0),
            });
        }
        a.ta(0);
        a.nop();
    });
    let t = trap_of(&words);
    // The (NWINDOWS - 2 + 1)-th save overflows.
    let pc = RAM_BASE + 4 * (nfp_sim::NWINDOWS as u32 - 2);
    assert_eq!(t, Trap::WindowOverflow { pc });
    assert_eq!(
        t.to_string(),
        format!("register window overflow at 0x{pc:08x}")
    );
    assert!(t.is_recoverable());
}

#[test]
fn window_underflow() {
    let words = asm(|a| {
        a.push(Instr::Restore {
            rd: G0,
            rs1: G0,
            op2: Operand::Imm(0),
        });
        a.ta(0);
        a.nop();
    });
    let t = trap_of(&words);
    assert_eq!(t, Trap::WindowUnderflow { pc: RAM_BASE });
    assert_eq!(
        t.to_string(),
        format!("register window underflow at 0x{RAM_BASE:08x}")
    );
    assert!(t.is_recoverable());
}

#[test]
fn fpu_disabled() {
    let words = asm(|a| {
        a.fpop(FpOp::FAddS, FReg::new(0), FReg::new(1), FReg::new(2));
        a.ta(0);
        a.nop();
    });
    let mut m = Machine::new(MachineConfig {
        fpu_enabled: false,
        ..MachineConfig::default()
    });
    m.load_image(RAM_BASE, &words).unwrap();
    let t = match m.run(100) {
        Err(SimError::Trap(t)) => t,
        other => panic!("expected a trap, got {other:?}"),
    };
    assert_eq!(t, Trap::FpDisabled { pc: RAM_BASE });
    assert_eq!(
        t.to_string(),
        format!("FPU instruction with FPU disabled at 0x{RAM_BASE:08x}")
    );
    assert!(!t.is_recoverable());
}

#[test]
fn odd_fp_pair() {
    let words = asm(|a| {
        // Double-precision add naming an odd destination register.
        a.fpop(FpOp::FAddD, FReg::new(0), FReg::new(2), FReg::new(1));
        a.ta(0);
        a.nop();
    });
    let t = trap_of(&words);
    assert_eq!(t, Trap::OddFpPair { pc: RAM_BASE });
    assert_eq!(
        t.to_string(),
        format!("odd FP register pair at 0x{RAM_BASE:08x}")
    );
    assert!(!t.is_recoverable());
}

#[test]
fn odd_int_pair() {
    // `ldd` names register pairs: an odd `rd` is illegal per SPARC V8
    // (B.11). It used to be misreported as `Illegal { word: 0 }`,
    // losing the actual instruction word and the pair semantics.
    let ldd = asm(|a| {
        a.ld(MemSize::Double, false, Reg::l(0), 0, Reg::l(1));
        a.ta(0);
        a.nop();
    });
    let t = trap_of(&ldd);
    assert_eq!(t, Trap::OddIntPair { pc: RAM_BASE });
    assert_eq!(
        t.to_string(),
        format!("odd integer register pair at 0x{RAM_BASE:08x}")
    );
    assert!(!t.is_recoverable());

    // Same for `std`.
    let std_ = asm(|a| {
        a.st(MemSize::Double, Reg::o(3), Reg::l(0), 0);
        a.ta(0);
        a.nop();
    });
    assert_eq!(trap_of(&std_), Trap::OddIntPair { pc: RAM_BASE });
}

#[test]
fn trap_pc_accessor_matches_payload() {
    let traps = [
        Trap::Illegal { pc: 1, word: 2 },
        Trap::Misaligned {
            pc: 3,
            addr: 4,
            size: 2,
        },
        Trap::Unmapped { pc: 5, addr: 6 },
        Trap::DivZero { pc: 7 },
        Trap::WindowOverflow { pc: 8 },
        Trap::WindowUnderflow { pc: 9 },
        Trap::FpDisabled { pc: 10 },
        Trap::OddFpPair { pc: 11 },
        Trap::OddIntPair { pc: 12 },
    ];
    assert_eq!(
        traps.iter().map(Trap::pc).collect::<Vec<_>>(),
        vec![1, 3, 5, 7, 8, 9, 10, 11, 12]
    );
}

#[test]
fn recoverable_traps_are_absorbed_only_under_recover_policy() {
    // A cross-check of the classification: every recoverable trap
    // program completes under Recover, dies under Abort.
    let misaligned = asm(|a| {
        a.set32(RAM_BASE + 0x103, Reg::l(0));
        a.ld(MemSize::Word, false, Reg::l(0), 0, Reg::l(1));
        a.mov(0, Reg::o(0));
        a.ta(0);
        a.nop();
    });
    let mut m = Machine::boot(&misaligned);
    m.set_trap_policy(TrapPolicy::Recover);
    assert_eq!(m.run(100).expect("absorbed").exit_code, 0);
    assert_eq!(m.trap_stats().misaligned_skips, 1);
}
