//! Linker: lays out compiled functions and global data into a flat
//! boot image and resolves all relocations.
//!
//! The image starts with the `_start` stub at the load base (the
//! simulator's entry point), followed by every function reachable from
//! it, then an 8-aligned data section holding referenced globals and
//! the double-constant pool. Unreachable functions and globals are
//! dropped.

use crate::ast::{Global, GlobalInit, Type};
use crate::codegen::DoublePool;
use crate::emit::{FuncCode, Item, Label};
use nfp_sparc::cond::ICond;
use nfp_sparc::regs::G0;
use nfp_sparc::{encode, AluOp, Instr, Operand, Reg};
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

/// Link-time error.
#[allow(missing_docs)]
#[derive(Debug, Clone, PartialEq)]
pub enum LinkError {
    /// A referenced symbol has no definition.
    Undefined {
        symbol: String,
        referenced_from: String,
    },
    /// Two definitions share one name.
    Duplicate { symbol: String },
    /// A global initialiser does not fit its type.
    BadInitialiser { symbol: String, reason: String },
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::Undefined {
                symbol,
                referenced_from,
            } => write!(
                f,
                "undefined symbol `{symbol}` referenced from `{referenced_from}`"
            ),
            LinkError::Duplicate { symbol } => write!(f, "duplicate symbol `{symbol}`"),
            LinkError::BadInitialiser { symbol, reason } => {
                write!(f, "bad initialiser for `{symbol}`: {reason}")
            }
        }
    }
}

impl std::error::Error for LinkError {}

/// A linked, loadable program image.
#[derive(Debug, Clone)]
pub struct Program {
    /// Load address of the first word.
    pub base: u32,
    /// The image, text followed by data.
    pub words: Vec<u32>,
    /// Symbol table (functions and data), for debugging.
    pub symbols: HashMap<String, u32>,
    /// Number of text words (the rest is data).
    pub text_words: usize,
}

impl Program {
    /// Address of a symbol, if present.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// Disassembles the text section.
    pub fn disassemble(&self) -> String {
        nfp_sparc::disasm::disassemble_block(&self.words[..self.text_words], self.base)
    }
}

fn global_bytes(g: &Global) -> Result<Vec<u8>, LinkError> {
    let elem_size = g.ty.size() as usize;
    let total = elem_size * g.count as usize;
    let mut bytes = vec![0u8; total];
    let write_elem =
        |bytes: &mut [u8], idx: usize, fv: f64, iv: i64, is_f: bool| -> Result<(), LinkError> {
            let start = idx * elem_size;
            match g.ty {
                Type::Double => {
                    let v = if is_f { fv } else { iv as f64 };
                    bytes[start..start + 8].copy_from_slice(&v.to_bits().to_be_bytes());
                }
                Type::U64 => {
                    if is_f {
                        return Err(LinkError::BadInitialiser {
                            symbol: g.name.clone(),
                            reason: "float literal for u64".into(),
                        });
                    }
                    bytes[start..start + 8].copy_from_slice(&(iv as u64).to_be_bytes());
                }
                Type::Int | Type::UInt | Type::Ptr(_) => {
                    if is_f {
                        return Err(LinkError::BadInitialiser {
                            symbol: g.name.clone(),
                            reason: "float literal for integer".into(),
                        });
                    }
                    bytes[start..start + 4].copy_from_slice(&(iv as u32).to_be_bytes());
                }
                Type::UChar => {
                    if is_f {
                        return Err(LinkError::BadInitialiser {
                            symbol: g.name.clone(),
                            reason: "float literal for uchar".into(),
                        });
                    }
                    bytes[start] = iv as u8;
                }
                Type::Void => unreachable!("void global rejected by the parser"),
            }
            Ok(())
        };
    match &g.init {
        GlobalInit::Zero => {}
        GlobalInit::Scalar(fv, iv, is_f) => write_elem(&mut bytes, 0, *fv, *iv, *is_f)?,
        GlobalInit::List(items) => {
            for (i, (fv, iv, is_f)) in items.iter().enumerate() {
                write_elem(&mut bytes, i, *fv, *iv, *is_f)?;
            }
        }
    }
    Ok(bytes)
}

/// The `_start` stub: call `main`, then `ta 0` with `%o0` holding the
/// exit code main returned.
pub fn start_stub() -> FuncCode {
    FuncCode {
        name: "_start".to_string(),
        items: vec![
            Item::CallSym("main".to_string()),
            Item::I(Instr::NOP),
            Item::I(Instr::Ticc {
                cond: ICond::A,
                rs1: G0,
                op2: Operand::Imm(0),
            }),
            Item::I(Instr::NOP),
        ],
    }
}

/// Links functions and globals into a program image at `base`.
pub fn link(
    funcs: Vec<FuncCode>,
    globals: &[Global],
    pool: &DoublePool,
    base: u32,
) -> Result<Program, LinkError> {
    // Symbol universe.
    let mut func_by_name: HashMap<&str, &FuncCode> = HashMap::new();
    for f in &funcs {
        if func_by_name.insert(f.name.as_str(), f).is_some() {
            return Err(LinkError::Duplicate {
                symbol: f.name.clone(),
            });
        }
    }
    let mut global_by_name: HashMap<&str, &Global> = HashMap::new();
    for g in globals {
        if global_by_name.insert(g.name.as_str(), g).is_some()
            || func_by_name.contains_key(g.name.as_str())
        {
            return Err(LinkError::Duplicate {
                symbol: g.name.clone(),
            });
        }
    }
    let pool_syms: HashSet<&str> = pool.entries.iter().map(|(n, _)| n.as_str()).collect();

    // Reachability from _start.
    let mut reachable_funcs: Vec<&FuncCode> = Vec::new();
    let mut seen: HashSet<&str> = HashSet::new();
    let mut used_globals: HashSet<&str> = HashSet::new();
    let mut used_pool: HashSet<&str> = HashSet::new();
    let mut queue: VecDeque<&str> = VecDeque::new();
    queue.push_back("_start");
    seen.insert("_start");
    while let Some(name) = queue.pop_front() {
        let f = func_by_name
            .get(name)
            .copied()
            .ok_or_else(|| LinkError::Undefined {
                symbol: name.to_string(),
                referenced_from: "<reachability>".to_string(),
            })?;
        reachable_funcs.push(f);
        for sym in f.referenced_symbols() {
            if func_by_name.contains_key(sym) {
                if seen.insert(sym) {
                    queue.push_back(sym);
                }
            } else if global_by_name.contains_key(sym) {
                used_globals.insert(sym);
            } else if pool_syms.contains(sym) {
                used_pool.insert(sym);
            } else {
                return Err(LinkError::Undefined {
                    symbol: sym.to_string(),
                    referenced_from: f.name.clone(),
                });
            }
        }
    }
    // Deterministic order: _start first, then original order.
    let order: HashMap<&str, usize> = funcs
        .iter()
        .enumerate()
        .map(|(i, f)| (f.name.as_str(), i))
        .collect();
    reachable_funcs.sort_by_key(|f| {
        if f.name == "_start" {
            (0, 0)
        } else {
            (1, order[f.name.as_str()])
        }
    });

    // Text layout.
    let mut symbols: HashMap<String, u32> = HashMap::new();
    let mut addr = base;
    let mut func_addrs: Vec<(&FuncCode, u32)> = Vec::new();
    for f in &reachable_funcs {
        symbols.insert(f.name.clone(), addr);
        func_addrs.push((f, addr));
        addr += (f.len_words() as u32) * 4;
    }
    let text_end = addr;
    let text_words = ((text_end - base) / 4) as usize;

    // Data layout: globals in declaration order, then the pool.
    let mut data_addr = (text_end + 7) & !7;
    let mut global_layout: Vec<(&Global, u32)> = Vec::new();
    for g in globals {
        if !used_globals.contains(g.name.as_str()) {
            continue;
        }
        let align = g.ty.align().max(4);
        data_addr = (data_addr + align - 1) & !(align - 1);
        symbols.insert(g.name.clone(), data_addr);
        global_layout.push((g, data_addr));
        let size = g.ty.size() * g.count;
        data_addr += (size + 3) & !3;
    }
    let mut pool_layout: Vec<(u32, u64)> = Vec::new();
    for (name, bits) in &pool.entries {
        if !used_pool.contains(name.as_str()) {
            continue;
        }
        data_addr = (data_addr + 7) & !7;
        symbols.insert(name.clone(), data_addr);
        pool_layout.push((data_addr, *bits));
        data_addr += 8;
    }
    let image_words = ((data_addr - base) / 4 + 1) as usize;
    let mut words = vec![0u32; image_words];

    // Emit text.
    for (f, faddr) in &func_addrs {
        // Local label positions (word offsets within the function).
        let mut label_pos: HashMap<Label, u32> = HashMap::new();
        let mut w = 0u32;
        for item in &f.items {
            match item {
                Item::Label(l) => {
                    label_pos.insert(*l, w);
                }
                _ => w += 1,
            }
        }
        let lookup = |sym: &str| -> Result<u32, LinkError> {
            symbols
                .get(sym)
                .copied()
                .ok_or_else(|| LinkError::Undefined {
                    symbol: sym.to_string(),
                    referenced_from: f.name.clone(),
                })
        };
        let mut w = 0u32;
        for item in &f.items {
            let pc = faddr + w * 4;
            let word = match item {
                Item::Label(_) => continue,
                Item::I(i) => encode(*i),
                Item::Branch { cond, target } => {
                    let t = label_pos[target];
                    encode(Instr::Branch {
                        cond: *cond,
                        annul: false,
                        disp22: t as i32 - w as i32,
                    })
                }
                Item::FBranch { cond, target } => {
                    let t = label_pos[target];
                    encode(Instr::FBranch {
                        cond: *cond,
                        annul: false,
                        disp22: t as i32 - w as i32,
                    })
                }
                Item::CallSym(sym) => {
                    let t = lookup(sym)?;
                    encode(Instr::Call {
                        disp30: ((t as i64 - pc as i64) / 4) as i32,
                    })
                }
                Item::SetHi { sym, rd } => {
                    let t = lookup(sym)?;
                    encode(Instr::Sethi {
                        rd: *rd,
                        imm22: t >> 10,
                    })
                }
                Item::OrLo { sym, rd } => {
                    let t = lookup(sym)?;
                    encode(Instr::Alu {
                        op: AluOp::Or,
                        rd: *rd,
                        rs1: *rd,
                        op2: Operand::Imm((t & 0x3ff) as i32),
                    })
                }
            };
            words[((pc - base) / 4) as usize] = word;
            w += 1;
        }
    }

    // Emit data.
    let mut write_bytes = |addr: u32, bytes: &[u8]| {
        for (i, b) in bytes.iter().enumerate() {
            let byte_off = (addr - base) as usize + i;
            let wi = byte_off / 4;
            let shift = 24 - 8 * (byte_off % 4);
            words[wi] |= (*b as u32) << shift;
        }
    };
    for (g, gaddr) in &global_layout {
        let bytes = global_bytes(g)?;
        write_bytes(*gaddr, &bytes);
    }
    for (paddr, bits) in &pool_layout {
        write_bytes(*paddr, &bits.to_be_bytes());
    }

    Ok(Program {
        base,
        words,
        symbols,
        text_words,
    })
}

/// `Reg` is re-exported for doc purposes in stubs.
#[allow(dead_code)]
fn _reg_is_used(_: Reg) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emit::Emitter;

    fn leaf(name: &str) -> FuncCode {
        let mut e = Emitter::new();
        e.mov(7, Reg::o(0));
        e.push(Instr::Jmpl {
            rd: G0,
            rs1: nfp_sparc::regs::O7,
            op2: Operand::Imm(8),
        });
        e.nop();
        e.finish(name)
    }

    #[test]
    fn start_first_and_dead_code_dropped() {
        let mut e = Emitter::new();
        e.call("used");
        e.push(Instr::Jmpl {
            rd: G0,
            rs1: nfp_sparc::regs::O7,
            op2: Operand::Imm(8),
        });
        e.nop();
        let main = e.finish("main");
        let prog = link(
            vec![start_stub(), leaf("unused"), main, leaf("used")],
            &[],
            &DoublePool::default(),
            0x4000_0000,
        )
        .unwrap();
        assert_eq!(prog.symbol("_start"), Some(0x4000_0000));
        assert!(prog.symbol("used").is_some());
        assert_eq!(prog.symbol("unused"), None);
    }

    #[test]
    fn undefined_symbol_reports_referent() {
        let mut e = Emitter::new();
        e.call("missing");
        let main = e.finish("main");
        let err = link(
            vec![start_stub(), main],
            &[],
            &DoublePool::default(),
            0x4000_0000,
        )
        .unwrap_err();
        match err {
            LinkError::Undefined {
                symbol,
                referenced_from,
            } => {
                assert_eq!(symbol, "missing");
                assert_eq!(referenced_from, "main");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn duplicate_function_rejected() {
        let err = link(
            vec![start_stub(), leaf("main"), leaf("main")],
            &[],
            &DoublePool::default(),
            0x4000_0000,
        )
        .unwrap_err();
        assert!(matches!(err, LinkError::Duplicate { .. }));
    }

    #[test]
    fn global_data_is_emitted_big_endian() {
        use crate::ast::{Global, GlobalInit};
        let mut e = Emitter::new();
        e.load_sym("tbl", Reg::o(0));
        e.push(Instr::Jmpl {
            rd: G0,
            rs1: nfp_sparc::regs::O7,
            op2: Operand::Imm(8),
        });
        e.nop();
        let main = e.finish("main");
        let globals = vec![Global {
            ty: Type::Int,
            name: "tbl".into(),
            count: 3,
            is_array: true,
            init: GlobalInit::List(vec![(0.0, 0x0102_0304, false), (0.0, -1, false)]),
            line: 1,
        }];
        let prog = link(
            vec![start_stub(), main],
            &globals,
            &DoublePool::default(),
            0x4000_0000,
        )
        .unwrap();
        let tbl = prog.symbol("tbl").unwrap();
        let wi = ((tbl - prog.base) / 4) as usize;
        assert_eq!(prog.words[wi], 0x0102_0304);
        assert_eq!(prog.words[wi + 1], 0xffff_ffff);
        assert_eq!(prog.words[wi + 2], 0); // zero-filled tail
    }
}
