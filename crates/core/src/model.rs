//! The mechanistic cost model (paper Eq. 1) and instruction
//! classifiers.
//!
//! `Ê = Σ_c e_c·n_c` and `T̂ = Σ_c t_c·n_c`: per-class specific
//! energies/times multiplied by dynamic instruction counts. The paper
//! uses nine classes (Table I); the [`Coarse`] and [`Fine`]
//! classifiers exist for the granularity ablation (what happens with
//! one class, or with integer multiply/divide split out).

use nfp_sim::{ExecInfo, Observer};
use nfp_sparc::{AluOp, Category, Instr, CATEGORY_COUNT};

/// Maps instructions onto model classes. Classification must be
/// static (a property of the decoded instruction), because the ISS
/// counts instructions without dynamic context.
pub trait Classifier {
    /// Number of classes.
    fn class_count(&self) -> usize;
    /// Class index of an instruction.
    fn classify(&self, instr: &Instr) -> usize;
    /// Human-readable class name.
    fn class_name(&self, class: usize) -> &'static str;
}

/// The paper's nine Table I categories.
#[derive(Debug, Clone, Copy, Default)]
pub struct Paper;

impl Classifier for Paper {
    fn class_count(&self) -> usize {
        CATEGORY_COUNT
    }
    fn classify(&self, instr: &Instr) -> usize {
        instr.category().index()
    }
    fn class_name(&self, class: usize) -> &'static str {
        Category::ALL[class].name()
    }
}

/// A single class: every instruction costs the same (the crudest
/// mechanistic model; ablation baseline).
#[derive(Debug, Clone, Copy, Default)]
pub struct Coarse;

impl Classifier for Coarse {
    fn class_count(&self) -> usize {
        1
    }
    fn classify(&self, _instr: &Instr) -> usize {
        0
    }
    fn class_name(&self, _class: usize) -> &'static str {
        "Any instruction"
    }
}

/// Eleven classes: Table I with integer multiply and divide split out
/// of "Integer Arithmetic" (they have very different latencies on the
/// iterative LEON3 units).
#[derive(Debug, Clone, Copy, Default)]
pub struct Fine;

/// Class indices of [`Fine`] beyond the paper's nine.
pub const FINE_INT_MUL: usize = 9;
/// Integer divide class of [`Fine`].
pub const FINE_INT_DIV: usize = 10;

impl Classifier for Fine {
    fn class_count(&self) -> usize {
        CATEGORY_COUNT + 2
    }
    fn classify(&self, instr: &Instr) -> usize {
        if let Instr::Alu { op, .. } = instr {
            match op {
                AluOp::UMul | AluOp::UMulCc | AluOp::SMul | AluOp::SMulCc => return FINE_INT_MUL,
                AluOp::UDiv | AluOp::UDivCc | AluOp::SDiv | AluOp::SDivCc => return FINE_INT_DIV,
                _ => {}
            }
        }
        instr.category().index()
    }
    fn class_name(&self, class: usize) -> &'static str {
        match class {
            FINE_INT_MUL => "Integer Multiply",
            FINE_INT_DIV => "Integer Divide",
            c => Category::ALL[c].name(),
        }
    }
}

/// Per-class instruction counter, attachable to a simulator run as an
/// observer (the generalisation of the ISS's built-in nine counters).
pub struct ClassCounter<C: Classifier> {
    classifier: C,
    counts: Vec<u64>,
}

impl<C: Classifier> ClassCounter<C> {
    /// Zeroed counters for `classifier`.
    pub fn new(classifier: C) -> Self {
        let n = classifier.class_count();
        ClassCounter {
            classifier,
            counts: vec![0; n],
        }
    }

    /// The per-class counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total instructions counted.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

impl<C: Classifier> Observer for ClassCounter<C> {
    #[inline]
    fn observe(&mut self, info: &ExecInfo) {
        self.counts[self.classifier.classify(&info.instr)] += 1;
    }
}

/// The calibrated model: specific time and energy per class
/// (the paper's Table I content).
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Specific time per class in seconds.
    pub time_s: Vec<f64>,
    /// Specific energy per class in joules.
    pub energy_j: Vec<f64>,
}

/// An estimate produced by the model (Eq. 1).
///
/// ```
/// use nfp_core::paper_table1;
/// // One million integer instructions at the paper's Table I costs:
/// let mut counts = [0u64; 9];
/// counts[0] = 1_000_000; // Integer Arithmetic
/// let est = paper_table1().estimate(&counts);
/// assert!((est.time_s - 0.045).abs() < 1e-12);   // 45 ns each
/// assert!((est.energy_j - 0.015).abs() < 1e-12); // 15 nJ each
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Estimated processing time in seconds.
    pub time_s: f64,
    /// Estimated energy in joules.
    pub energy_j: f64,
}

impl CostModel {
    /// Applies Eq. 1 to a count vector.
    ///
    /// # Panics
    /// Panics if `counts` has a different class count than the model.
    pub fn estimate(&self, counts: &[u64]) -> Estimate {
        assert_eq!(counts.len(), self.time_s.len(), "class count mismatch");
        let mut time_s = 0.0;
        let mut energy_j = 0.0;
        for (i, &n) in counts.iter().enumerate() {
            time_s += self.time_s[i] * n as f64;
            energy_j += self.energy_j[i] * n as f64;
        }
        Estimate { time_s, energy_j }
    }
}

/// The paper's published Table I values (nine classes, Table I
/// order), for comparison against calibrated values in reports.
pub fn paper_table1() -> CostModel {
    CostModel {
        time_s: vec![
            45e-9, 238e-9, 700e-9, 376e-9, 46e-9, 41e-9, 46e-9, 431e-9, 612e-9,
        ],
        energy_j: vec![
            15e-9, 76e-9, 229e-9, 166e-9, 13e-9, 13e-9, 14e-9, 431e-9, 88e-9,
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfp_sparc::{Operand, Reg};

    fn add() -> Instr {
        Instr::Alu {
            op: AluOp::Add,
            rd: Reg::o(0),
            rs1: Reg::o(1),
            op2: Operand::Imm(1),
        }
    }

    fn mul() -> Instr {
        Instr::Alu {
            op: AluOp::SMul,
            rd: Reg::o(0),
            rs1: Reg::o(1),
            op2: Operand::Imm(3),
        }
    }

    #[test]
    fn paper_classifier_matches_categories() {
        let p = Paper;
        assert_eq!(p.class_count(), 9);
        assert_eq!(p.classify(&add()), Category::IntArith.index());
        assert_eq!(p.classify(&Instr::NOP), Category::Nop.index());
    }

    #[test]
    fn fine_classifier_splits_mul_div() {
        let f = Fine;
        assert_eq!(f.class_count(), 11);
        assert_eq!(f.classify(&add()), Category::IntArith.index());
        assert_eq!(f.classify(&mul()), FINE_INT_MUL);
        let div = Instr::Alu {
            op: AluOp::UDiv,
            rd: Reg::o(0),
            rs1: Reg::o(1),
            op2: Operand::Imm(3),
        };
        assert_eq!(f.classify(&div), FINE_INT_DIV);
        assert_eq!(f.class_name(FINE_INT_MUL), "Integer Multiply");
    }

    #[test]
    fn coarse_maps_everything_to_one() {
        let c = Coarse;
        assert_eq!(c.classify(&add()), 0);
        assert_eq!(c.classify(&Instr::NOP), 0);
    }

    #[test]
    fn estimate_is_dot_product() {
        let model = CostModel {
            time_s: vec![1e-9, 10e-9],
            energy_j: vec![2e-9, 20e-9],
        };
        let est = model.estimate(&[1000, 100]);
        assert!((est.time_s - 2e-6).abs() < 1e-18);
        assert!((est.energy_j - 4e-6).abs() < 1e-18);
    }

    #[test]
    fn paper_table1_has_nine_rows() {
        let m = paper_table1();
        assert_eq!(m.time_s.len(), 9);
        assert_eq!(m.energy_j.len(), 9);
        // Spot values from the paper.
        assert_eq!(m.time_s[Category::MemLoad.index()], 700e-9);
        assert_eq!(m.energy_j[Category::FpuDiv.index()], 431e-9);
    }

    #[test]
    #[should_panic]
    fn estimate_rejects_wrong_length() {
        paper_table1().estimate(&[0; 3]);
    }
}
