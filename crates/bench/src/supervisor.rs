//! Crash-safe campaign supervisor: journaled resume and panic
//! isolation for long fault-injection campaigns.
//!
//! A multi-hour campaign must survive the two ways it actually dies in
//! practice: the host kills the process (OOM, preemption, ^C) and a
//! latent harness bug panics mid-replay. The supervisor addresses both
//! without giving up the campaign contract that a fixed seed yields a
//! bit-identical [`CampaignResult`]:
//!
//! * **Write-ahead journal** — with [`SupervisorConfig::journal`] set,
//!   every classified injection is appended to a JSONL file and
//!   flushed before the next record is accepted. The first line is a
//!   header binding the journal to its campaign (kernel, mode, seed,
//!   injection count, watchdog settings, golden instruction count), so
//!   a stale journal from a different campaign is rejected instead of
//!   silently corrupting a resume. All writes happen on the supervisor
//!   thread, so the journal is never torn by concurrency; a trailing
//!   partial line from a mid-write kill is detected and truncated on
//!   resume.
//! * **Resume** — [`SupervisorConfig::resume`] replays the journal,
//!   marks its injections complete, and runs only the remainder. The
//!   merged result is identical to an uninterrupted campaign.
//! * **Panic isolation** — each replay runs under
//!   [`std::panic::catch_unwind`] on its worker. A panicking replay is
//!   retried once on a freshly prepared rig (the panicked rig may hold
//!   a half-armed fault); a second panic quarantines the injection as
//!   [`Outcome::HarnessFault`] with its full fault spec logged, and
//!   the campaign carries on. Harness faults are excluded from the
//!   vulnerability quotient — they measure the harness, not the
//!   kernel. A worker that cannot even rebuild its rig retires, and
//!   the remaining workers absorb its share of the plan: the pool
//!   degrades in parallelism, never in coverage.
//!
//! The journal is deliberately human-greppable:
//!
//! ```text
//! {"v":1,"kind":"nfp-campaign-journal","kernel":"fse_distance",...}
//! {"i":0,"at":8317,"target":"IntReg","a":19,"b":7,"cat":2,"outcome":"masked","attempts":1}
//! {"i":1,"at":90211,"target":"Ram","a":1090523136,"b":30,"cat":0,"outcome":"SDC","attempts":1}
//! ```

use crate::campaign::{assemble, CampaignConfig, CampaignResult, CampaignRig, InjectionRecord};
use crate::evaluation::Mode;
use nfp_core::{NfpError, Outcome};
use nfp_sim::fault::plan;
use nfp_sim::{Fault, FaultTarget, SimError};
use nfp_sparc::Category;
use nfp_workloads::Kernel;
use std::io::{BufRead, Seek, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Duration;

/// Supervisor parameters wrapping a [`CampaignConfig`].
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// The campaign to supervise.
    pub campaign: CampaignConfig,
    /// Write-ahead journal path. `None` runs without crash safety.
    pub journal: Option<PathBuf>,
    /// Resume from an existing journal at [`SupervisorConfig::journal`]
    /// instead of starting fresh (which truncates any existing file).
    pub resume: bool,
    /// Worker thread count; `None` uses available parallelism.
    pub workers: Option<usize>,
    /// Test hook: panic inside the replay of injection `.0` on its
    /// first `.1` attempts (so `(i, 1)` recovers on retry and `(i, 2)`
    /// quarantines).
    #[doc(hidden)]
    pub test_panic_at: Option<(usize, u32)>,
    /// Test hook: patch an unconditional self-loop at the injection
    /// point of this plan index so the replay genuinely hangs.
    #[doc(hidden)]
    pub test_spin_at: Option<usize>,
    /// Test hook: simulate a kill after this many journal writes — the
    /// supervisor stops accepting results, exactly as if the process
    /// had died with a valid journal on disk.
    #[doc(hidden)]
    pub test_abort_after: Option<usize>,
}

impl SupervisorConfig {
    /// A supervisor for `campaign` with journaling off and defaults
    /// everywhere else.
    pub fn new(campaign: CampaignConfig) -> Self {
        SupervisorConfig {
            campaign,
            journal: None,
            resume: false,
            workers: None,
            test_panic_at: None,
            test_spin_at: None,
            test_abort_after: None,
        }
    }
}

/// An injection whose replay panicked twice and was excluded from the
/// vulnerability quotient.
#[derive(Debug, Clone)]
pub struct QuarantineEntry {
    /// Plan index of the quarantined injection.
    pub index: usize,
    /// The fault whose replay panicked.
    pub fault: Fault,
    /// Panic payload text (or a note when loaded from a journal).
    pub panic: String,
}

/// What a supervised campaign produced.
#[derive(Debug)]
pub struct SupervisorOutcome {
    /// The assembled campaign result. For an aborted run
    /// ([`SupervisorOutcome::aborted`]) it covers only the completed
    /// injections.
    pub result: CampaignResult,
    /// Injections quarantined as [`Outcome::HarnessFault`].
    pub quarantined: Vec<QuarantineEntry>,
    /// Records restored from the journal instead of replayed.
    pub resumed: usize,
    /// Total completed injections (equals the plan length unless the
    /// run aborted).
    pub completed: usize,
    /// True when the `test_abort_after` hook simulated a kill.
    pub aborted: bool,
}

// ---------------------------------------------------------------------
// Hand-rolled flat JSON (the workspace deliberately has no serde).
// ---------------------------------------------------------------------

/// A value in a flat journal object: unsigned number, string, bool, or
/// null. That is the whole grammar the journal needs.
#[derive(Debug, Clone, PartialEq)]
enum Jv {
    U(u64),
    S(String),
    B(bool),
    Null,
}

/// Escapes a string for a JSON literal (quotes, backslashes, control
/// characters — panic payloads can contain anything).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parses one flat JSON object line (`{"k":v,...}`) into key/value
/// pairs. Returns `None` on any malformation — the caller decides
/// whether that means "torn trailing line" or "corrupt journal".
fn parse_flat(line: &str) -> Option<Vec<(String, Jv)>> {
    let mut c = line.trim().chars().peekable();
    let mut out = Vec::new();
    if c.next()? != '{' {
        return None;
    }
    loop {
        match c.peek()? {
            '}' => {
                c.next();
                break;
            }
            ',' => {
                c.next();
            }
            _ => {}
        }
        if *c.peek()? != '"' {
            return None;
        }
        let key = parse_string(&mut c)?;
        if c.next()? != ':' {
            return None;
        }
        let val = match c.peek()? {
            '"' => Jv::S(parse_string(&mut c)?),
            't' => parse_lit(&mut c, "true", Jv::B(true))?,
            'f' => parse_lit(&mut c, "false", Jv::B(false))?,
            'n' => parse_lit(&mut c, "null", Jv::Null)?,
            d if d.is_ascii_digit() => {
                let mut n: u64 = 0;
                while c.peek().is_some_and(char::is_ascii_digit) {
                    n = n
                        .checked_mul(10)?
                        .checked_add(c.next()? as u64 - '0' as u64)?;
                }
                Jv::U(n)
            }
            _ => return None,
        };
        out.push((key, val));
    }
    // Trailing garbage after the closing brace is a malformed line.
    if c.next().is_some() {
        return None;
    }
    Some(out)
}

fn parse_string(c: &mut std::iter::Peekable<std::str::Chars>) -> Option<String> {
    if c.next()? != '"' {
        return None;
    }
    let mut s = String::new();
    loop {
        match c.next()? {
            '"' => return Some(s),
            '\\' => match c.next()? {
                '"' => s.push('"'),
                '\\' => s.push('\\'),
                'n' => s.push('\n'),
                'r' => s.push('\r'),
                't' => s.push('\t'),
                'u' => {
                    let mut v = 0u32;
                    for _ in 0..4 {
                        v = v * 16 + c.next()?.to_digit(16)?;
                    }
                    s.push(char::from_u32(v)?);
                }
                _ => return None,
            },
            ch => s.push(ch),
        }
    }
}

fn parse_lit(c: &mut std::iter::Peekable<std::str::Chars>, lit: &str, val: Jv) -> Option<Jv> {
    for expect in lit.chars() {
        if c.next()? != expect {
            return None;
        }
    }
    Some(val)
}

/// Key/value accessor over one parsed journal line.
struct Obj(Vec<(String, Jv)>);

impl Obj {
    fn get(&self, key: &str) -> Option<&Jv> {
        self.0.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
    fn u64(&self, key: &str) -> Option<u64> {
        match self.get(key)? {
            Jv::U(n) => Some(*n),
            _ => None,
        }
    }
    fn str(&self, key: &str) -> Option<&str> {
        match self.get(key)? {
            Jv::S(s) => Some(s),
            _ => None,
        }
    }
    fn bool(&self, key: &str) -> Option<bool> {
        match self.get(key)? {
            Jv::B(b) => Some(*b),
            _ => None,
        }
    }
    /// `Some(None)` for an explicit `null`, `Some(Some(n))` for a
    /// number, `None` for a missing or mistyped key.
    fn opt_u64(&self, key: &str) -> Option<Option<u64>> {
        match self.get(key)? {
            Jv::Null => Some(None),
            Jv::U(n) => Some(Some(*n)),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------
// Journal header and records.
// ---------------------------------------------------------------------

/// The campaign identity a journal is bound to. Every field must match
/// for a resume to proceed.
#[derive(Debug, Clone, PartialEq)]
struct JournalHeader {
    kernel: String,
    mode: &'static str,
    injections: u64,
    seed: u64,
    checkpoints: u64,
    step_mode: bool,
    escalation: u64,
    wall_ms: Option<u64>,
    golden_instret: u64,
}

impl JournalHeader {
    fn bind(kernel: &Kernel, mode: Mode, cfg: &CampaignConfig, golden_instret: u64) -> Self {
        JournalHeader {
            kernel: kernel.name.to_string(),
            mode: mode.suffix(),
            injections: cfg.injections as u64,
            seed: cfg.seed,
            checkpoints: cfg.checkpoints as u64,
            step_mode: cfg.step_mode,
            escalation: cfg.escalation.max(1) as u64,
            wall_ms: cfg.wall.map(|d| d.as_millis() as u64),
            golden_instret,
        }
    }

    fn render(&self) -> String {
        format!(
            concat!(
                "{{\"v\":1,\"kind\":\"nfp-campaign-journal\",\"kernel\":\"{}\",",
                "\"mode\":\"{}\",\"injections\":{},\"seed\":{},\"checkpoints\":{},",
                "\"step_mode\":{},\"escalation\":{},\"wall_ms\":{},\"golden_instret\":{}}}"
            ),
            esc(&self.kernel),
            self.mode,
            self.injections,
            self.seed,
            self.checkpoints,
            self.step_mode,
            self.escalation,
            self.wall_ms.map_or("null".to_string(), |n| n.to_string()),
            self.golden_instret,
        )
    }

    /// Validates a parsed header line against this campaign, naming the
    /// first mismatching field.
    fn check(&self, path: &str, line: &str) -> Result<(), NfpError> {
        let corrupt = |reason: &str| NfpError::Journal {
            path: path.to_string(),
            reason: reason.to_string(),
        };
        let obj = Obj(parse_flat(line).ok_or_else(|| corrupt("missing or corrupt header line"))?);
        if obj.str("kind") != Some("nfp-campaign-journal") {
            return Err(corrupt("not a campaign journal (bad \"kind\")"));
        }
        if obj.u64("v") != Some(1) {
            return Err(corrupt("unsupported journal version"));
        }
        let mismatch = |field: &'static str, journal: String, campaign: String| {
            Err(NfpError::JournalMismatch {
                path: path.to_string(),
                field,
                journal,
                campaign,
            })
        };
        macro_rules! check_field {
            ($field:literal, $got:expr, $want:expr) => {{
                let got = $got.ok_or_else(|| corrupt(concat!("header lacks ", $field)))?;
                if got != $want {
                    return mismatch($field, format!("{:?}", got), format!("{:?}", $want));
                }
            }};
        }
        check_field!("kernel", obj.str("kernel"), self.kernel.as_str());
        check_field!("mode", obj.str("mode"), self.mode);
        check_field!("injections", obj.u64("injections"), self.injections);
        check_field!("seed", obj.u64("seed"), self.seed);
        check_field!("checkpoints", obj.u64("checkpoints"), self.checkpoints);
        check_field!("step_mode", obj.bool("step_mode"), self.step_mode);
        check_field!("escalation", obj.u64("escalation"), self.escalation);
        check_field!("wall_ms", obj.opt_u64("wall_ms"), self.wall_ms);
        check_field!(
            "golden_instret",
            obj.u64("golden_instret"),
            self.golden_instret
        );
        Ok(())
    }
}

/// `(kind, a, b)` encoding of a fault target for the journal.
fn target_fields(t: FaultTarget) -> (&'static str, u64, u64) {
    match t {
        FaultTarget::IntReg { index, bit } => ("IntReg", index as u64, bit as u64),
        FaultTarget::FpReg { index, bit } => ("FpReg", index as u64, bit as u64),
        FaultTarget::Icc { bit } => ("Icc", bit as u64, 0),
        FaultTarget::YReg { bit } => ("YReg", bit as u64, 0),
        FaultTarget::Fcc { bit } => ("Fcc", bit as u64, 0),
        FaultTarget::Ram { addr, bit } => ("Ram", addr as u64, bit as u64),
        FaultTarget::Code { index, bit } => ("Code", index as u64, bit as u64),
    }
}

fn target_from_fields(kind: &str, a: u64, b: u64) -> Option<FaultTarget> {
    Some(match kind {
        "IntReg" => FaultTarget::IntReg {
            index: u8::try_from(a).ok()?,
            bit: u8::try_from(b).ok()?,
        },
        "FpReg" => FaultTarget::FpReg {
            index: u8::try_from(a).ok()?,
            bit: u8::try_from(b).ok()?,
        },
        "Icc" => FaultTarget::Icc {
            bit: u8::try_from(a).ok()?,
        },
        "YReg" => FaultTarget::YReg {
            bit: u8::try_from(a).ok()?,
        },
        "Fcc" => FaultTarget::Fcc {
            bit: u8::try_from(a).ok()?,
        },
        "Ram" => FaultTarget::Ram {
            addr: u32::try_from(a).ok()?,
            bit: u8::try_from(b).ok()?,
        },
        "Code" => FaultTarget::Code {
            index: u32::try_from(a).ok()?,
            bit: u8::try_from(b).ok()?,
        },
        _ => return None,
    })
}

fn record_line(index: usize, rec: &InjectionRecord, attempts: u32) -> String {
    let (kind, a, b) = target_fields(rec.fault.target);
    format!(
        "{{\"i\":{},\"at\":{},\"target\":\"{}\",\"a\":{},\"b\":{},\"cat\":{},\"outcome\":\"{}\",\"attempts\":{}}}",
        index,
        rec.fault.at,
        kind,
        a,
        b,
        rec.category
            .map_or("null".to_string(), |c| c.index().to_string()),
        rec.outcome.name(),
        attempts,
    )
}

fn parse_record(line: &str) -> Option<(usize, InjectionRecord, u32)> {
    let obj = Obj(parse_flat(line)?);
    let index = usize::try_from(obj.u64("i")?).ok()?;
    let fault = Fault {
        at: obj.u64("at")?,
        target: target_from_fields(obj.str("target")?, obj.u64("a")?, obj.u64("b")?)?,
    };
    let category = match obj.opt_u64("cat")? {
        None => None,
        Some(i) => Some(*Category::ALL.get(usize::try_from(i).ok()?)?),
    };
    let outcome = Outcome::from_name(obj.str("outcome")?)?;
    let attempts = u32::try_from(obj.u64("attempts")?).ok()?;
    Some((
        index,
        InjectionRecord {
            fault,
            category,
            outcome,
        },
        attempts,
    ))
}

/// Journal contents that survived validation: completed records by plan
/// index, plus the byte length of the intact prefix (everything past it
/// is a torn trailing line to truncate before appending).
struct LoadedJournal {
    records: Vec<(usize, InjectionRecord, u32)>,
    intact_len: u64,
}

fn load_journal(
    path: &Path,
    header: &JournalHeader,
    faults: &[Fault],
) -> Result<LoadedJournal, NfpError> {
    let shown = path.display().to_string();
    let journal_err = |reason: String| NfpError::Journal {
        path: shown.clone(),
        reason,
    };
    let file = std::fs::File::open(path)
        .map_err(|e| journal_err(format!("cannot open for resume: {e}")))?;
    let mut reader = std::io::BufReader::new(file);
    let mut line = String::new();
    let mut offset = 0u64;
    let mut lineno = 0usize;
    let mut records = Vec::new();
    let mut intact_len = 0u64;
    loop {
        line.clear();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| journal_err(format!("read failed at byte {offset}: {e}")))?;
        if n == 0 {
            break;
        }
        offset += n as u64;
        lineno += 1;
        let complete = line.ends_with('\n');
        if lineno == 1 {
            header.check(&shown, &line)?;
            intact_len = offset;
            continue;
        }
        match parse_record(&line) {
            Some((index, rec, attempts)) if complete => {
                if index >= faults.len() {
                    return Err(journal_err(format!(
                        "record at line {lineno} indexes injection {index} of a {}-injection plan",
                        faults.len()
                    )));
                }
                if rec.fault != faults[index] {
                    return Err(journal_err(format!(
                        "record at line {lineno} disagrees with the fault plan for injection \
                         {index} (journal: {}, plan: {}) — wrong seed or stale journal",
                        rec.fault, faults[index]
                    )));
                }
                records.push((index, rec, attempts));
                intact_len = offset;
            }
            // An unparseable or newline-less *final* line is the torn
            // tail of a mid-write kill: drop it and resume from the
            // intact prefix. Anywhere else it is corruption.
            _ => {
                let at_eof = reader.fill_buf().map_or(true, <[u8]>::is_empty);
                if !(at_eof && lineno > 1) {
                    return Err(journal_err(format!("corrupt record at line {lineno}")));
                }
            }
        }
    }
    if lineno == 0 {
        return Err(journal_err("journal is empty (no header)".to_string()));
    }
    Ok(LoadedJournal {
        records,
        intact_len,
    })
}

// ---------------------------------------------------------------------
// The supervisor itself.
// ---------------------------------------------------------------------

/// Message from a replay worker to the journaling supervisor thread.
enum Msg {
    Done {
        index: usize,
        record: InjectionRecord,
        attempts: u32,
        panic: Option<String>,
    },
    Fatal {
        error: NfpError,
    },
}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The quarantine record for an injection whose replay panicked twice.
/// Category attribution comes from the replay that panicked, so it is
/// untrusted and left empty.
fn quarantine_record(fault: Fault) -> InjectionRecord {
    InjectionRecord {
        fault,
        category: None,
        outcome: Outcome::HarnessFault,
    }
}

/// Replays one injection with an unconditional self-loop patched over
/// the injection point (the `test_spin_at` hook): a guaranteed genuine
/// hang that must flow through the escalating watchdog — or the wall
/// deadline — and classify as [`Outcome::Hang`].
fn replay_spinning(
    rig: &mut CampaignRig,
    fault: &Fault,
    wall: Option<Duration>,
) -> Result<InjectionRecord, NfpError> {
    rig.seek(fault.at)?;
    let category = rig.machine.next_category();
    let pc = rig.machine.cpu.pc;
    let index = pc.wrapping_sub(rig.machine.code_base()) as usize / 4;
    // `ba .` with a nop in its delay slot: a two-word self-loop.
    let old_branch = rig.machine.patch_code_word(index, 0x1080_0000)?;
    let old_slot = rig.machine.patch_code_word(index + 1, 0x0100_0000)?;
    let soft = rig.budget.saturating_sub(fault.at).max(1);
    let run = rig.run_escalating(soft, wall);
    rig.machine.patch_code_word(index, old_branch)?;
    rig.machine.patch_code_word(index + 1, old_slot)?;
    let outcome = match run {
        Err(SimError::WatchdogExpired { .. }) => Outcome::Hang,
        Err(SimError::Trap(_)) | Err(SimError::UnknownSoftTrap { .. }) => Outcome::Trap,
        Ok(_) => Outcome::Sdc,
        Err(e) => return Err(e.into()),
    };
    Ok(InjectionRecord {
        fault: *fault,
        category,
        outcome,
    })
}

/// Runs a supervised campaign: journaling, resume, panic isolation, and
/// graceful pool degradation around the plain deterministic campaign.
/// Without a journal or hooks this is behaviourally
/// [`crate::run_campaign_parallel`] with per-replay panic isolation.
pub fn run_supervised(
    kernel: &Kernel,
    mode: Mode,
    cfg: &SupervisorConfig,
) -> Result<SupervisorOutcome, NfpError> {
    let campaign = &cfg.campaign;
    let (rig, space) = CampaignRig::prepare(kernel, mode, campaign)?;
    let faults = plan(&space, campaign.injections, campaign.seed);
    let header = JournalHeader::bind(kernel, mode, campaign, rig.golden_instret);

    let mut slots: Vec<Option<(InjectionRecord, u32)>> = vec![None; faults.len()];
    let mut quarantined = Vec::new();
    let mut resumed = 0usize;

    // Resume: replay the journal into the slot table, then truncate any
    // torn tail so appended records start on a fresh line.
    let mut journal_file = match (&cfg.journal, cfg.resume) {
        (None, true) => {
            return Err(NfpError::Journal {
                path: "(none)".to_string(),
                reason: "resume requested without a journal path".to_string(),
            })
        }
        (None, false) => None,
        (Some(path), resume) => {
            let shown = path.display().to_string();
            let io_err = |e: std::io::Error| NfpError::Journal {
                path: shown.clone(),
                reason: e.to_string(),
            };
            let mut file;
            if resume {
                let loaded = load_journal(path, &header, &faults)?;
                for (index, rec, attempts) in loaded.records {
                    if slots[index].is_none() {
                        resumed += 1;
                    }
                    if rec.outcome == Outcome::HarnessFault {
                        quarantined.push(QuarantineEntry {
                            index,
                            fault: rec.fault,
                            panic: "quarantined in a previous run (restored from journal)"
                                .to_string(),
                        });
                    }
                    slots[index] = Some((rec, attempts));
                }
                file = std::fs::OpenOptions::new()
                    .write(true)
                    .open(path)
                    .map_err(io_err)?;
                file.set_len(loaded.intact_len).map_err(io_err)?;
                file.seek(std::io::SeekFrom::End(0)).map_err(io_err)?;
            } else {
                file = std::fs::File::create(path).map_err(io_err)?;
                writeln!(file, "{}", header.render()).map_err(io_err)?;
                file.flush().map_err(io_err)?;
            }
            Some(file)
        }
    };

    let pending: Vec<usize> = slots
        .iter()
        .enumerate()
        .filter_map(|(i, s)| s.is_none().then_some(i))
        .collect();
    let workers = cfg
        .workers
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        })
        .clamp(1, pending.len().max(1));

    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let (tx, rx) = mpsc::channel::<Msg>();

    let mut fatal: Option<NfpError> = None;
    let mut written = 0usize;
    let mut aborted = false;

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let (next, stop, pending, faults) = (&next, &stop, &pending, &faults);
            scope.spawn(move || {
                let mut rig = match CampaignRig::prepare(kernel, mode, campaign) {
                    Ok((r, _)) => r,
                    Err(error) => {
                        let _ = tx.send(Msg::Fatal { error });
                        return;
                    }
                };
                while !stop.load(Ordering::Relaxed) {
                    let Some(&index) = pending.get(next.fetch_add(1, Ordering::Relaxed)) else {
                        return;
                    };
                    let fault = faults[index];
                    let mut attempts = 0u32;
                    let msg = loop {
                        attempts += 1;
                        let force_panic = cfg
                            .test_panic_at
                            .is_some_and(|(i, n)| i == index && attempts <= n);
                        let run = catch_unwind(AssertUnwindSafe(|| {
                            if force_panic {
                                panic!("supervisor test hook: forced panic on injection {index}");
                            }
                            if cfg.test_spin_at == Some(index) {
                                replay_spinning(&mut rig, &fault, campaign.wall)
                            } else {
                                rig.run_one(&fault, campaign.wall)
                            }
                        }));
                        match run {
                            Ok(Ok(record)) => {
                                break Msg::Done {
                                    index,
                                    record,
                                    attempts,
                                    panic: None,
                                }
                            }
                            Ok(Err(error)) => break Msg::Fatal { error },
                            Err(payload) => {
                                let text = panic_text(payload);
                                // The panicked rig may hold a half-armed
                                // fault or a mid-seek machine: replace it
                                // before judging whether to retry.
                                let rebuilt = catch_unwind(AssertUnwindSafe(|| {
                                    CampaignRig::prepare(kernel, mode, campaign)
                                }));
                                let retired = match rebuilt {
                                    Ok(Ok((fresh, _))) => {
                                        rig = fresh;
                                        false
                                    }
                                    _ => true,
                                };
                                if attempts >= 2 || retired {
                                    let msg = Msg::Done {
                                        index,
                                        record: quarantine_record(fault),
                                        attempts,
                                        panic: Some(text),
                                    };
                                    if retired {
                                        // No rig to continue with: hand the
                                        // quarantined record over and retire;
                                        // the surviving workers drain the
                                        // rest of the plan.
                                        let _ = tx.send(msg);
                                        return;
                                    }
                                    break msg;
                                }
                            }
                        }
                    };
                    if tx.send(msg).is_err() {
                        return;
                    }
                }
            });
        }
        drop(tx);

        while let Ok(msg) = rx.recv() {
            match msg {
                Msg::Done {
                    index,
                    record,
                    attempts,
                    panic,
                } => {
                    if let Some(file) = journal_file.as_mut() {
                        let line = record_line(index, &record, attempts);
                        let io = writeln!(file, "{line}").and_then(|()| file.flush());
                        if let Err(e) = io {
                            fatal = Some(NfpError::Journal {
                                path: cfg
                                    .journal
                                    .as_ref()
                                    .map_or_else(String::new, |p| p.display().to_string()),
                                reason: format!("write failed: {e}"),
                            });
                            stop.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                    if let Some(text) = panic {
                        eprintln!(
                            "supervisor: quarantined injection {index} ({}) after {attempts} \
                             attempts: {text}",
                            record.fault
                        );
                        quarantined.push(QuarantineEntry {
                            index,
                            fault: record.fault,
                            panic: text,
                        });
                    }
                    slots[index] = Some((record, attempts));
                    written += 1;
                    if cfg.test_abort_after == Some(written) {
                        aborted = true;
                        stop.store(true, Ordering::Relaxed);
                        break;
                    }
                }
                Msg::Fatal { error } => {
                    fatal = Some(error);
                    stop.store(true, Ordering::Relaxed);
                    break;
                }
            }
        }
        // Falling out of the loop with the stop flag raised: workers
        // exit at their next claim; the scope joins them. In-flight
        // sends go nowhere — after an abort the journal must look
        // exactly as a kill would have left it.
    });

    if let Some(error) = fatal {
        return Err(error);
    }

    let completed = slots.iter().flatten().count();
    let records: Vec<InjectionRecord> = if aborted {
        slots.into_iter().flatten().map(|(r, _)| r).collect()
    } else {
        slots
            .into_iter()
            .enumerate()
            .map(|(i, s)| {
                s.map(|(r, _)| r).ok_or_else(|| NfpError::WorkerLost {
                    job: format!("injection {i} ({})", faults[i]),
                })
            })
            .collect::<Result<_, _>>()?
    };
    Ok(SupervisorOutcome {
        result: assemble(kernel, mode, &rig, records),
        quarantined,
        resumed,
        completed,
        aborted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_json_roundtrips_records() {
        let rec = InjectionRecord {
            fault: Fault {
                at: 12345,
                target: FaultTarget::Ram {
                    addr: 0x4100_0040,
                    bit: 31,
                },
            },
            category: Some(Category::MemLoad),
            outcome: Outcome::Sdc,
        };
        let line = record_line(7, &rec, 2);
        let (i, parsed, attempts) = parse_record(&line).unwrap();
        assert_eq!(i, 7);
        assert_eq!(parsed, rec);
        assert_eq!(attempts, 2);
    }

    #[test]
    fn flat_json_roundtrips_every_target_kind() {
        let targets = [
            FaultTarget::IntReg { index: 3, bit: 9 },
            FaultTarget::FpReg { index: 31, bit: 0 },
            FaultTarget::Icc { bit: 2 },
            FaultTarget::YReg { bit: 17 },
            FaultTarget::Fcc { bit: 1 },
            FaultTarget::Ram {
                addr: 0xffff_fffc,
                bit: 5,
            },
            FaultTarget::Code {
                index: 999,
                bit: 30,
            },
        ];
        for (n, target) in targets.into_iter().enumerate() {
            let rec = InjectionRecord {
                fault: Fault {
                    at: n as u64,
                    target,
                },
                category: None,
                outcome: Outcome::HarnessFault,
            };
            let (_, parsed, _) = parse_record(&record_line(n, &rec, 1)).unwrap();
            assert_eq!(parsed, rec);
        }
    }

    #[test]
    fn malformed_lines_parse_to_none() {
        for bad in [
            "",
            "{",
            "{}garbage",
            "{\"i\":}",
            "{\"i\":1",
            "{\"i\":18446744073709551616}", // u64 overflow
            "not json at all",
            "{\"i\":1,\"at\":2,\"target\":\"Warp\",\"a\":0,\"b\":0,\"cat\":null,\"outcome\":\"SDC\",\"attempts\":1}",
        ] {
            assert!(parse_record(bad).is_none(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn escaped_strings_roundtrip() {
        let nasty = "quote\" slash\\ newline\n tab\t bell\u{7}";
        let line = format!("{{\"s\":\"{}\"}}", esc(nasty));
        let obj = Obj(parse_flat(&line).unwrap());
        assert_eq!(obj.str("s"), Some(nasty));
    }

    #[test]
    fn header_mismatch_names_the_field() {
        let header = JournalHeader {
            kernel: "fse_distance".to_string(),
            mode: "float",
            injections: 100,
            seed: 1,
            checkpoints: 16,
            step_mode: false,
            escalation: 2,
            wall_ms: None,
            golden_instret: 5000,
        };
        let mut other = header.clone();
        other.seed = 2;
        let line = other.render();
        match header.check("j.jsonl", &line) {
            Err(NfpError::JournalMismatch { field, .. }) => assert_eq!(field, "seed"),
            other => panic!("expected JournalMismatch, got {other:?}"),
        }
        // And an identical header passes.
        header.check("j.jsonl", &header.render()).unwrap();
    }
}
