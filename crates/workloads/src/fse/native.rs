#![allow(clippy::needless_range_loop)] // loops mirror the mini-C decoder

//! Native reference implementation of Frequency Selective
//! Extrapolation (Seiler & Kaup, frequency-domain formulation).
//!
//! Per lost 8×8 block, the 16×16 surrounding area is approximated as a
//! weighted superposition of 2-D Fourier basis functions: in every
//! iteration the FFT of the weighted residual selects the dominant
//! basis function, whose (compensated) coefficient joins the model and
//! whose contribution is subtracted from the residual. The model —
//! defined over the whole area — directly extends the signal into the
//! unknown samples.
//!
//! The mini-C implementation mirrors this routine operation for
//! operation; outputs must match bit-exactly.

use super::tables::*;
use crate::pixels::{clip255, Image};

/// 16-point in-place complex FFT over strided storage. Iterative
/// radix-2 DIT with the shared twiddle tables — the exact loop
/// structure the mini-C version uses.
fn fft16(re: &mut [f64], im: &mut [f64], base: usize, stride: usize) {
    let rev = bit_reverse16();
    let (wre, wim) = twiddles();
    for i in 0..16 {
        let j = rev[i];
        if j > i {
            re.swap(base + i * stride, base + j * stride);
            im.swap(base + i * stride, base + j * stride);
        }
    }
    let mut len = 2;
    while len <= 16 {
        let half = len / 2;
        let step = 16 / len;
        let mut i = 0;
        while i < 16 {
            for k in 0..half {
                let wr = wre[k * step];
                let wi = wim[k * step];
                let a = base + (i + k) * stride;
                let b = base + (i + k + half) * stride;
                let tr = re[b] * wr - im[b] * wi;
                let ti = re[b] * wi + im[b] * wr;
                re[b] = re[a] - tr;
                im[b] = im[a] - ti;
                re[a] += tr;
                im[a] += ti;
            }
            i += len;
        }
        len *= 2;
    }
}

/// 2-D 16×16 FFT: rows, then columns.
fn fft2d(re: &mut [f64; 256], im: &mut [f64; 256]) {
    for y in 0..16 {
        fft16(re, im, y * 16, 1);
    }
    for x in 0..16 {
        fft16(re, im, x, 16);
    }
}

/// Chebyshev distance of an area coordinate from the central 8×8
/// block (area coordinates 4..12 are the block).
fn block_distance(ax: usize, ay: usize) -> u32 {
    let d1 = |v: usize| -> u32 {
        if v < BORDER {
            (BORDER - v) as u32
        } else if v >= BORDER + 8 {
            (v - (BORDER + 8) + 1) as u32
        } else {
            0
        }
    };
    d1(ax).max(d1(ay))
}

/// ρ^d by repeated multiplication (identical to the mini-C loop).
fn rho_pow(d: u32) -> f64 {
    let mut w = 1.0;
    for _ in 0..d {
        w *= RHO;
    }
    w
}

/// Extrapolates one lost block at block coordinates (bx, by) in place;
/// `mask[i] != 0` marks unknown samples. Returns false if the block
/// has no known support at all (left untouched).
fn extrapolate_block(
    img: &mut Image,
    mask: &[u8],
    bx: usize,
    by: usize,
    iterations: usize,
) -> bool {
    let width = img.width;
    let x0 = bx * 8 - BORDER;
    let y0 = by * 8 - BORDER;
    let (ctab, stab) = basis_tables();

    // Weighted residual and weights over the area.
    let mut w = [0.0f64; 256];
    let mut r = [0.0f64; 256];
    let mut w00 = 0.0f64;
    for ay in 0..16 {
        for ax in 0..16 {
            let gx = x0 + ax;
            let gy = y0 + ay;
            if mask[gy * width + gx] == 0 {
                let wv = rho_pow(block_distance(ax, ay));
                w[ay * 16 + ax] = wv;
                r[ay * 16 + ax] = wv * img.get(gx, gy) as f64;
                w00 += wv;
            }
        }
    }
    if w00 == 0.0 {
        return false;
    }

    // Accumulated spatial model estimate.
    let mut gest = [0.0f64; 256];
    let mut re = [0.0f64; 256];
    let mut im = [0.0f64; 256];

    for _ in 0..iterations {
        re.copy_from_slice(&r);
        im.fill(0.0);
        fft2d(&mut re, &mut im);

        // Dominant basis function (first strict maximum wins; the
        // mini-C scan order is identical).
        let mut best = 0usize;
        let mut best_mag = -1.0f64;
        for u in 0..16 {
            for v in 0..16 {
                let idx = u * 16 + v;
                let mag = re[idx] * re[idx] + im[idx] * im[idx];
                if mag > best_mag {
                    best_mag = mag;
                    best = idx;
                }
            }
        }
        if best_mag <= 0.0 {
            break;
        }
        let u = best / 16;
        let v = best % 16;
        let dc_re = GAMMA * re[best] / w00;
        let dc_im = GAMMA * im[best] / w00;
        // Conjugate-symmetric partner keeps the model real.
        let uc = (16 - u) % 16;
        let vc = (16 - v) % 16;
        let self_conjugate = uc == u && vc == v;

        // Subtract the (paired) contribution from the weighted
        // residual and add it to the model estimate.
        for ay in 0..16 {
            for ax in 0..16 {
                let phase = (u * ay + v * ax) % 16;
                let c = ctab[phase];
                let s = stab[phase];
                let contribution = if self_conjugate {
                    dc_re * c - dc_im * s
                } else {
                    2.0 * (dc_re * c - dc_im * s)
                };
                gest[ay * 16 + ax] += contribution;
                r[ay * 16 + ax] -= w[ay * 16 + ax] * contribution;
            }
        }
    }

    // Write the model into the unknown samples of the central block.
    for y in 0..8 {
        for x in 0..8 {
            let gx = bx * 8 + x;
            let gy = by * 8 + y;
            if mask[gy * width + gx] != 0 {
                let v = gest[(y + BORDER) * 16 + (x + BORDER)] + 0.5;
                img.set(gx, gy, clip255(v as i32));
            }
        }
    }
    true
}

/// Conceals all lost blocks of an image. `mask[i] != 0` marks unknown
/// samples; masks must be 8×8-block-aligned and keep the outer block
/// ring intact (as produced by [`crate::synth::loss_mask`]). Blocks
/// are processed in raster order and already-concealed blocks serve as
/// support for later ones.
pub fn conceal(img: &mut Image, mask: &[bool], iterations: usize) {
    assert_eq!(mask.len(), img.width * img.height);
    let mut mask: Vec<u8> = mask.iter().map(|&m| m as u8).collect();
    let bw = img.width / 8;
    let bh = img.height / 8;
    for by in 0..bh {
        for bx in 0..bw {
            if mask[(by * 8) * img.width + bx * 8] != 0 {
                assert!(
                    bx > 0 && by > 0 && bx < bw - 1 && by < bh - 1,
                    "lost blocks must not touch the border"
                );
                if extrapolate_block(img, &mask, bx, by, iterations) {
                    // The block is now known; later blocks may use it.
                    for y in 0..8 {
                        for x in 0..8 {
                            mask[(by * 8 + y) * img.width + bx * 8 + x] = 0;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pixels::psnr;
    use crate::synth::{loss_mask, test_image};

    #[test]
    fn concealment_improves_over_gray_fill() {
        let original = test_image(48, 48, 11);
        let mask = loss_mask(48, 48, 4, 3);

        let mut lost = original.clone();
        for (i, &m) in mask.iter().enumerate() {
            if m {
                lost.data[i] = 0;
            }
        }
        let mut gray = lost.clone();
        for (i, &m) in mask.iter().enumerate() {
            if m {
                gray.data[i] = 128;
            }
        }
        let mut concealed = lost.clone();
        conceal(&mut concealed, &mask, ITERATIONS);

        let p_gray = psnr(&original, &gray);
        let p_fse = psnr(&original, &concealed);
        assert!(
            p_fse > p_gray + 3.0,
            "FSE ({p_fse:.1} dB) should clearly beat gray fill ({p_gray:.1} dB)"
        );
        // Known samples must be untouched.
        for (i, &m) in mask.iter().enumerate() {
            if !m {
                assert_eq!(concealed.data[i], original.data[i]);
            }
        }
    }

    #[test]
    fn concealment_is_deterministic() {
        let mask = loss_mask(48, 48, 4, 5);
        let mut a = test_image(48, 48, 2);
        let mut b = a.clone();
        conceal(&mut a, &mask, ITERATIONS);
        conceal(&mut b, &mask, ITERATIONS);
        assert_eq!(a, b);
    }

    #[test]
    fn smooth_content_is_reconstructed_well() {
        // A pure gradient is almost perfectly extrapolated.
        let mut img = Image::new(48, 48);
        for y in 0..48 {
            for x in 0..48 {
                img.set(x, y, clip255((60 + 2 * x + y) as i32));
            }
        }
        let original = img.clone();
        let mask = loss_mask(48, 48, 3, 1);
        for (i, &m) in mask.iter().enumerate() {
            if m {
                img.data[i] = 0;
            }
        }
        conceal(&mut img, &mask, ITERATIONS);
        let p = psnr(&original, &img);
        assert!(p > 30.0, "gradient reconstruction too poor: {p:.1} dB");
    }

    #[test]
    fn fft_parseval_sanity() {
        // FFT of a delta is flat; FFT magnitudes satisfy Parseval.
        let mut re = [0.0f64; 256];
        let mut im = [0.0f64; 256];
        re[0] = 1.0;
        fft2d(&mut re, &mut im);
        for i in 0..256 {
            assert!((re[i] - 1.0).abs() < 1e-12);
            assert!(im[i].abs() < 1e-12);
        }
    }

    #[test]
    fn fft_of_basis_is_single_peak() {
        let (c, _s) = basis_tables();
        let mut re = [0.0f64; 256];
        let mut im = [0.0f64; 256];
        // cos over x with frequency 3
        for y in 0..16 {
            for x in 0..16 {
                re[y * 16 + x] = c[(3 * x) % 16];
            }
        }
        fft2d(&mut re, &mut im);
        // Expect peaks at (u=0, v=3) and (u=0, v=13).
        let mag = |u: usize, v: usize| {
            let i = u * 16 + v;
            (re[i] * re[i] + im[i] * im[i]).sqrt()
        };
        assert!(mag(0, 3) > 100.0);
        assert!(mag(0, 13) > 100.0);
        assert!(mag(1, 1) < 1e-9);
        assert!(mag(5, 0) < 1e-9);
    }
}
