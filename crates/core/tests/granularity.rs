//! End-to-end tests of the alternative classifier granularities used
//! by the E6 ablation: each must calibrate successfully and behave
//! sensibly on a known workload.

use nfp_core::{calibrate, ClassCounter, Classifier, Coarse, Fine, Paper};
use nfp_sim::{Machine, RAM_BASE};
use nfp_sparc::asm::Assembler;
use nfp_sparc::cond::ICond;
use nfp_sparc::{AluOp, Instr, Operand, Reg};
use nfp_testbed::Testbed;

/// A multiply-heavy loop: the class where Paper and Fine disagree.
fn mul_loop(iters: u32) -> Vec<u32> {
    let mut a = Assembler::new(RAM_BASE);
    a.set32(iters, Reg::l(0));
    a.mov(3, Reg::l(2));
    a.label("loop");
    for _ in 0..8 {
        a.alu(AluOp::SMul, Reg::l(2), Operand::Reg(Reg::l(2)), Reg::l(3));
    }
    a.alu(AluOp::SubCc, Reg::l(0), 1, Reg::l(0));
    a.b(ICond::Ne, "loop");
    a.nop();
    a.mov(0, Reg::o(0));
    a.ta(0);
    a.nop();
    a.finish().unwrap()
}

fn counts_for<C: Classifier + Copy>(classifier: C, words: &[u32]) -> Vec<u64> {
    let mut machine = Machine::boot(words);
    let mut counter = ClassCounter::new(classifier);
    machine.run_observed(100_000_000, &mut counter).unwrap();
    counter.counts().to_vec()
}

#[test]
fn fine_model_beats_paper_on_multiply_heavy_code() {
    let testbed = Testbed::new();
    let paper_cal = calibrate(&testbed, &Paper, 3).unwrap();
    let fine_cal = calibrate(&testbed, &Fine, 3).unwrap();

    let words = mul_loop(200_000);
    let paper_est = paper_cal.model.estimate(&counts_for(Paper, &words));
    let fine_est = fine_cal.model.estimate(&counts_for(Fine, &words));

    let mut machine = Machine::boot(&words);
    let measured = testbed.run(&mut machine, 77, 1_000_000_000).unwrap();
    let truth = measured.measurement.time_s;

    let paper_err = ((paper_est.time_s - truth) / truth).abs();
    let fine_err = ((fine_est.time_s - truth) / truth).abs();
    // A multiply costs 4 cycles but Paper calibrates IntArith on 2-cycle
    // adds, so Paper must underestimate this kernel badly while Fine
    // (with its own multiply kernel) nails it.
    assert!(
        paper_err > 0.15,
        "paper model should miss on pure multiplies: {:.1}%",
        paper_err * 100.0
    );
    assert!(
        fine_err < 0.05,
        "fine model should be accurate: {:.1}%",
        fine_err * 100.0
    );
}

#[test]
fn coarse_model_is_exact_only_on_its_own_blend() {
    // The single-class model fits the average instruction of its
    // calibration blend; on a NOP-only loop it overestimates hugely.
    let testbed = Testbed::new();
    let coarse_cal = calibrate(&testbed, &Coarse, 4).unwrap();
    let mut a = Assembler::new(RAM_BASE);
    a.set32(200_000, Reg::l(0));
    a.label("loop");
    for _ in 0..8 {
        a.nop();
    }
    a.alu(AluOp::SubCc, Reg::l(0), 1, Reg::l(0));
    a.b(ICond::Ne, "loop");
    a.nop();
    a.mov(0, Reg::o(0));
    a.ta(0);
    a.nop();
    let words = a.finish().unwrap();

    let est = coarse_cal.model.estimate(&counts_for(Coarse, &words));
    let mut machine = Machine::boot(&words);
    let truth = testbed
        .run(&mut machine, 5, 1_000_000_000)
        .unwrap()
        .measurement
        .time_s;
    let err = (est.time_s - truth) / truth;
    assert!(
        err > 0.5,
        "coarse model should grossly overestimate a NOP loop: {:+.1}%",
        err * 100.0
    );
}

#[test]
fn classifier_counts_partition_the_instruction_stream() {
    let words = mul_loop(1_000);
    let total_paper: u64 = counts_for(Paper, &words).iter().sum();
    let total_fine: u64 = counts_for(Fine, &words).iter().sum();
    let total_coarse: u64 = counts_for(Coarse, &words).iter().sum();
    assert_eq!(total_paper, total_fine);
    assert_eq!(total_paper, total_coarse);
    // Fine moves the multiplies out of IntArith without losing any.
    let paper = counts_for(Paper, &words);
    let fine = counts_for(Fine, &words);
    let int_idx = nfp_sparc::Category::IntArith.index();
    assert_eq!(
        paper[int_idx],
        fine[int_idx] + fine[nfp_core::model::FINE_INT_MUL]
    );
    assert!(fine[nfp_core::model::FINE_INT_MUL] >= 8_000);
}

#[test]
fn class_counter_matches_builtin_category_counters() {
    let words = mul_loop(500);
    // Built-in counters from the machine.
    let mut machine = Machine::boot(&words);
    let run = machine.run(10_000_000).unwrap();
    // Observer-based Paper counter.
    let observed = counts_for(Paper, &words);
    for (cat, &n) in nfp_sparc::Category::ALL.iter().zip(&observed) {
        assert_eq!(run.counts[*cat], n, "{cat}");
    }
    let _ = Instr::NOP; // keep the import meaningful under cfg changes
}
