//! Crash-safe campaign supervisor: journaled resume and panic
//! isolation for long fault-injection campaigns.
//!
//! A multi-hour campaign must survive the two ways it actually dies in
//! practice: the host kills the process (OOM, preemption, ^C) and a
//! latent harness bug panics mid-replay. The supervisor addresses both
//! without giving up the campaign contract that a fixed seed yields a
//! bit-identical [`CampaignResult`]:
//!
//! * **Write-ahead journal** — with [`SupervisorConfig::journal`] set,
//!   every classified injection is appended to a JSONL file and
//!   flushed before the next record is accepted. The first line is a
//!   header binding the journal to its campaign (kernel, mode, seed,
//!   injection count, watchdog settings, golden instruction count), so
//!   a stale journal from a different campaign is rejected instead of
//!   silently corrupting a resume. All writes happen on the supervisor
//!   thread, so the journal is never torn by concurrency; a trailing
//!   partial line from a mid-write kill is detected and truncated on
//!   resume.
//! * **Resume** — [`SupervisorConfig::resume`] replays the journal,
//!   marks its injections complete, and runs only the remainder. The
//!   merged result is identical to an uninterrupted campaign.
//! * **Panic isolation** — each replay runs under
//!   [`std::panic::catch_unwind`] on its worker. A panicking replay is
//!   retried once on a freshly prepared rig (the panicked rig may hold
//!   a half-armed fault); a second panic quarantines the injection as
//!   [`Outcome::HarnessFault`] with its full fault spec logged, and
//!   the campaign carries on. Harness faults are excluded from the
//!   vulnerability quotient — they measure the harness, not the
//!   kernel. A worker that cannot even rebuild its rig retires, and
//!   the remaining workers absorb its share of the plan: the pool
//!   degrades in parallelism, never in coverage.
//! * **Process isolation** — [`WorkerIsolation::Process`] moves each
//!   replay slot into a `repro worker` subprocess driven over the
//!   line-delimited JSON protocol of [`crate::worker`]. Threads cannot
//!   survive an `abort()`, a segfault, or a replay that wedges inside
//!   native code; processes can. A worker that dies takes only its
//!   in-flight injection with it; one that goes heartbeat-silent while
//!   idle or overruns its per-injection deadline is SIGKILLed. Either
//!   way the injection is retried once on a freshly spawned process and
//!   quarantined on a second failure — exactly the panic-isolation
//!   semantics, lifted to process granularity. Respawns back off
//!   exponentially (capped, with deterministic seeded jitter so wall
//!   clocks never leak into results); a slot that keeps crash-looping
//!   retires and the pool degrades in parallelism, never in coverage.
//!   Journals and reports are byte-compatible with thread mode: the
//!   same seed yields the same report regardless of isolation mode or
//!   kill/respawn interleaving.
//!
//! The journal is deliberately human-greppable:
//!
//! ```text
//! {"v":1,"kind":"nfp-campaign-journal","kernel":"fse_distance",...}
//! {"i":0,"at":8317,"target":"IntReg","a":19,"b":7,"cat":2,"outcome":"masked","attempts":1}
//! {"i":1,"at":90211,"target":"Ram","a":1090523136,"b":30,"cat":0,"outcome":"SDC","attempts":1}
//! ```

use crate::backoff::{backoff_sleep, TICK};
use crate::campaign::{assemble, CampaignConfig, CampaignResult, CampaignRig, InjectionRecord};
use crate::crc::{crc32, crc32_finish, crc32_update, CRC_INIT};
use crate::evaluation::Mode;
use crate::flatjson::{esc, parse_flat, Obj};
use crate::shards::{shard_range, ShardSpec};
use crate::worker::{
    check_index, parse_reply, read_frame, render_hello, render_run, Reply, WorkerHello,
    WorkerPreset,
};
use nfp_core::{HarnessCause, NfpError, Outcome};
use nfp_sim::fault::plan;
use nfp_sim::{Dispatch, DispatchStats, Fault, FaultTarget, SimError};
use nfp_sparc::Category;
use nfp_workloads::Kernel;
use std::io::{BufRead, Seek, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, Command, ExitStatus, Stdio};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// How the supervisor isolates its replay workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerIsolation {
    /// Worker threads in the supervisor's own process, with panic
    /// isolation per replay. No defence against aborts, segfaults, or
    /// runaway native loops inside a replay.
    Thread,
    /// One `repro worker` subprocess per slot, driven over
    /// line-delimited JSON on stdin/stdout. A worker that dies, goes
    /// heartbeat-silent, or overruns its injection deadline is
    /// SIGKILLed and respawned with capped exponential backoff; the
    /// in-flight injection is retried once on a fresh process and then
    /// quarantined. Falls back to [`WorkerIsolation::Thread`] (with a
    /// logged warning) when subprocesses cannot be spawned at all.
    Process,
}

/// Supervisor parameters wrapping a [`CampaignConfig`].
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// The campaign to supervise.
    pub campaign: CampaignConfig,
    /// Write-ahead journal path. `None` runs without crash safety.
    pub journal: Option<PathBuf>,
    /// Resume from an existing journal at [`SupervisorConfig::journal`]
    /// instead of starting fresh (which truncates any existing file).
    pub resume: bool,
    /// Worker thread count; `None` uses available parallelism.
    pub workers: Option<usize>,
    /// Worker isolation mode. The same seed yields a byte-identical
    /// report either way; [`WorkerIsolation::Process`] additionally
    /// survives worker aborts, segfaults, and harness-level hangs.
    pub isolation: WorkerIsolation,
    /// Workload preset the worker processes rebuild their kernel from.
    /// Must be the preset that produced the supervised [`Kernel`]; the
    /// handshake cross-checks the golden instruction count to catch a
    /// mismatch.
    pub preset: WorkerPreset,
    /// Heartbeat emission interval for worker processes. Workers
    /// heartbeat between replays (and during rig preparation), never
    /// mid-replay, so an idle silence longer than a few intervals means
    /// the worker is dead or wedged.
    pub heartbeat: Duration,
    /// Per-injection wall deadline for worker processes. A replay still
    /// in flight past the deadline gets its worker SIGKILLed and the
    /// injection is retried on a fresh process. `None` relies on the
    /// guest watchdog (and [`CampaignConfig::wall`]) to bound replays.
    pub deadline: Option<Duration>,
    /// Consecutive worker-process failures (kills, deaths, failed
    /// spawns) a slot tolerates before it retires. Each respawn backs
    /// off exponentially (capped, deterministically jittered). A
    /// successful injection resets the count.
    pub max_respawns: u32,
    /// Worker executable for [`WorkerIsolation::Process`]. `None` uses
    /// the current executable (correct for the `repro` binary; tests
    /// must point at `env!("CARGO_BIN_EXE_repro")`).
    pub worker_bin: Option<PathBuf>,
    /// Run only this shard's contiguous slice of the fault plan. The
    /// journal header binds the shard identity and range, and the run
    /// completes when exactly that range is covered. `None` runs the
    /// whole plan (equivalently, shard 0 of 1).
    pub shard: Option<ShardSpec>,
    /// Test hook: panic inside the replay of injection `.0` on its
    /// first `.1` attempts (so `(i, 1)` recovers on retry and `(i, 2)`
    /// quarantines). Thread isolation only.
    #[doc(hidden)]
    pub test_panic_at: Option<(usize, u32)>,
    /// Test hook: patch an unconditional self-loop at the injection
    /// point of this plan index so the replay genuinely hangs.
    #[doc(hidden)]
    pub test_spin_at: Option<usize>,
    /// Test hook: simulate a kill after this many journal writes — the
    /// supervisor stops accepting results, exactly as if the process
    /// had died with a valid journal on disk.
    #[doc(hidden)]
    pub test_abort_after: Option<usize>,
    /// Test hook: worker processes `abort()` whenever asked to replay
    /// this plan index (SIGABRT, no unwinding — only process isolation
    /// survives it).
    #[doc(hidden)]
    pub test_worker_abort_at: Option<usize>,
}

impl SupervisorConfig {
    /// A supervisor for `campaign` with journaling off and defaults
    /// everywhere else.
    pub fn new(campaign: CampaignConfig) -> Self {
        SupervisorConfig {
            campaign,
            journal: None,
            resume: false,
            workers: None,
            isolation: WorkerIsolation::Thread,
            preset: WorkerPreset::Quick,
            heartbeat: Duration::from_millis(200),
            deadline: None,
            max_respawns: 3,
            worker_bin: None,
            shard: None,
            test_panic_at: None,
            test_spin_at: None,
            test_abort_after: None,
            test_worker_abort_at: None,
        }
    }
}

/// An injection whose replay failed twice (panic, worker death, or
/// liveness kill) and was excluded from the vulnerability quotient.
#[derive(Debug, Clone)]
pub struct QuarantineEntry {
    /// Plan index of the quarantined injection.
    pub index: usize,
    /// The fault whose replay failed.
    pub fault: Fault,
    /// What killed the replay.
    pub cause: HarnessCause,
    /// Panic payload, kill detail, or a note when loaded from a
    /// journal.
    pub detail: String,
}

/// What a supervised campaign produced.
#[derive(Debug)]
pub struct SupervisorOutcome {
    /// The assembled campaign result. For an aborted run
    /// ([`SupervisorOutcome::aborted`]) it covers only the completed
    /// injections.
    pub result: CampaignResult,
    /// Injections quarantined as [`Outcome::HarnessFault`].
    pub quarantined: Vec<QuarantineEntry>,
    /// Records restored from the journal instead of replayed.
    pub resumed: usize,
    /// Total completed injections (equals the plan length unless the
    /// run aborted).
    pub completed: usize,
    /// True when the `test_abort_after` hook simulated a kill.
    pub aborted: bool,
    /// True when worker processes were actually used (false in thread
    /// mode and after the spawn-unavailable fallback).
    pub process_isolation: bool,
    /// Worker processes the supervisor SIGKILLed (deadline or
    /// heartbeat-silence).
    pub kills: usize,
    /// Worker processes respawned after a kill, death, or failed
    /// spawn.
    pub respawns: usize,
    /// Simulator dispatch counters from the golden run (the replay
    /// workers run on their own rigs; the golden run is the
    /// deterministic reference every mode shares).
    pub dispatch: DispatchStats,
}

// ---------------------------------------------------------------------
// Journal header and records.
// ---------------------------------------------------------------------

/// The campaign identity a journal is bound to. Every field must match
/// for a resume (or a merge) to proceed. The shard fields bind a
/// journal to one contiguous slice of the fault plan: a sequential
/// journal is shard 0 of 1 covering the whole plan, and a merge rejects
/// any journal whose claimed range disagrees with the deterministic
/// split its `shard_index`/`shard_count` imply.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct JournalHeader {
    pub(crate) kernel: String,
    pub(crate) mode: &'static str,
    pub(crate) injections: u64,
    pub(crate) seed: u64,
    pub(crate) checkpoints: u64,
    pub(crate) dispatch: Dispatch,
    pub(crate) escalation: u64,
    pub(crate) wall_ms: Option<u64>,
    pub(crate) golden_instret: u64,
    pub(crate) shard_index: u32,
    pub(crate) shard_count: u32,
    pub(crate) range_start: u64,
    pub(crate) range_end: u64,
}

impl JournalHeader {
    pub(crate) fn bind(
        kernel: &Kernel,
        mode: Mode,
        cfg: &CampaignConfig,
        golden_instret: u64,
        shard: Option<ShardSpec>,
    ) -> Self {
        let spec = shard.unwrap_or(ShardSpec { index: 0, count: 1 });
        let (start, end) = shard_range(cfg.injections, spec.index, spec.count);
        JournalHeader {
            kernel: kernel.name.to_string(),
            mode: mode.suffix(),
            injections: cfg.injections as u64,
            seed: cfg.seed,
            checkpoints: cfg.checkpoints as u64,
            dispatch: cfg.dispatch,
            escalation: cfg.escalation.max(1) as u64,
            wall_ms: cfg.wall.map(|d| d.as_millis() as u64),
            golden_instret,
            shard_index: spec.index,
            shard_count: spec.count.max(1),
            range_start: start as u64,
            range_end: end as u64,
        }
    }

    /// The plan slice this journal is bound to.
    pub(crate) fn range(&self) -> (usize, usize) {
        (self.range_start as usize, self.range_end as usize)
    }

    /// True when `other` binds the same campaign — every field except
    /// the shard slice. A connected worker keys its rig cache on this:
    /// two leases of different shards of one campaign share the rig
    /// and the fault plan, costing one golden run instead of two.
    pub(crate) fn same_campaign(&self, other: &JournalHeader) -> bool {
        self.kernel == other.kernel
            && self.mode == other.mode
            && self.injections == other.injections
            && self.seed == other.seed
            && self.checkpoints == other.checkpoints
            && self.dispatch == other.dispatch
            && self.escalation == other.escalation
            && self.wall_ms == other.wall_ms
            && self.golden_instret == other.golden_instret
    }

    pub(crate) fn render(&self) -> String {
        format!(
            concat!(
                "{{\"v\":1,\"kind\":\"nfp-campaign-journal\",\"kernel\":\"{}\",",
                "\"mode\":\"{}\",\"injections\":{},\"seed\":{},\"checkpoints\":{},",
                "\"dispatch\":\"{}\",\"escalation\":{},\"wall_ms\":{},\"golden_instret\":{},",
                "\"shard_index\":{},\"shard_count\":{},\"range_start\":{},\"range_end\":{}}}"
            ),
            esc(&self.kernel),
            self.mode,
            self.injections,
            self.seed,
            self.checkpoints,
            self.dispatch.as_str(),
            self.escalation,
            self.wall_ms.map_or("null".to_string(), |n| n.to_string()),
            self.golden_instret,
            self.shard_index,
            self.shard_count,
            self.range_start,
            self.range_end,
        )
    }

    /// Validates a parsed header line against this campaign, naming the
    /// first mismatching field.
    pub(crate) fn check(&self, path: &str, line: &str) -> Result<(), NfpError> {
        let corrupt = |reason: &str| NfpError::Journal {
            path: path.to_string(),
            reason: reason.to_string(),
        };
        let obj = Obj(parse_flat(line).ok_or_else(|| corrupt("missing or corrupt header line"))?);
        if obj.str("kind") != Some("nfp-campaign-journal") {
            return Err(corrupt("not a campaign journal (bad \"kind\")"));
        }
        if obj.u64("v") != Some(1) {
            return Err(corrupt("unsupported journal version"));
        }
        let mismatch = |field: &'static str, journal: String, campaign: String| {
            Err(NfpError::JournalMismatch {
                path: path.to_string(),
                field,
                journal,
                campaign,
            })
        };
        macro_rules! check_field {
            ($field:literal, $got:expr, $want:expr) => {{
                let got = $got.ok_or_else(|| corrupt(concat!("header lacks ", $field)))?;
                if got != $want {
                    return mismatch($field, format!("{:?}", got), format!("{:?}", $want));
                }
            }};
        }
        check_field!("kernel", obj.str("kernel"), self.kernel.as_str());
        check_field!("mode", obj.str("mode"), self.mode);
        check_field!("injections", obj.u64("injections"), self.injections);
        check_field!("seed", obj.u64("seed"), self.seed);
        check_field!("checkpoints", obj.u64("checkpoints"), self.checkpoints);
        check_field!("dispatch", obj.str("dispatch"), self.dispatch.as_str());
        check_field!("escalation", obj.u64("escalation"), self.escalation);
        check_field!("wall_ms", obj.opt_u64("wall_ms"), self.wall_ms);
        check_field!(
            "golden_instret",
            obj.u64("golden_instret"),
            self.golden_instret
        );
        check_field!(
            "shard_index",
            obj.u64("shard_index"),
            u64::from(self.shard_index)
        );
        check_field!(
            "shard_count",
            obj.u64("shard_count"),
            u64::from(self.shard_count)
        );
        check_field!("range_start", obj.u64("range_start"), self.range_start);
        check_field!("range_end", obj.u64("range_end"), self.range_end);
        Ok(())
    }
}

/// Parses a journal header line into a [`JournalHeader`] without
/// validating it against any campaign — the merge path uses this to
/// discover which campaign (and which shard) a journal *claims* to
/// belong to before cross-checking the claim.
pub(crate) fn parse_header(line: &str) -> Option<JournalHeader> {
    let obj = Obj(parse_flat(line)?);
    if obj.str("kind") != Some("nfp-campaign-journal") || obj.u64("v") != Some(1) {
        return None;
    }
    Some(JournalHeader {
        kernel: obj.str("kernel")?.to_string(),
        mode: Mode::from_suffix(obj.str("mode")?)?.suffix(),
        injections: obj.u64("injections")?,
        seed: obj.u64("seed")?,
        checkpoints: obj.u64("checkpoints")?,
        dispatch: Dispatch::parse(obj.str("dispatch")?)?,
        escalation: obj.u64("escalation")?,
        wall_ms: obj.opt_u64("wall_ms")?,
        golden_instret: obj.u64("golden_instret")?,
        shard_index: u32::try_from(obj.u64("shard_index")?).ok()?,
        shard_count: u32::try_from(obj.u64("shard_count")?).ok()?,
        range_start: obj.u64("range_start")?,
        range_end: obj.u64("range_end")?,
    })
}

/// `(kind, a, b)` encoding of a fault target for the journal.
pub(crate) fn target_fields(t: FaultTarget) -> (&'static str, u64, u64) {
    match t {
        FaultTarget::IntReg { index, bit } => ("IntReg", index as u64, bit as u64),
        FaultTarget::FpReg { index, bit } => ("FpReg", index as u64, bit as u64),
        FaultTarget::Icc { bit } => ("Icc", bit as u64, 0),
        FaultTarget::YReg { bit } => ("YReg", bit as u64, 0),
        FaultTarget::Fcc { bit } => ("Fcc", bit as u64, 0),
        FaultTarget::Ram { addr, bit } => ("Ram", addr as u64, bit as u64),
        FaultTarget::Code { index, bit } => ("Code", index as u64, bit as u64),
    }
}

pub(crate) fn target_from_fields(kind: &str, a: u64, b: u64) -> Option<FaultTarget> {
    Some(match kind {
        "IntReg" => FaultTarget::IntReg {
            index: u8::try_from(a).ok()?,
            bit: u8::try_from(b).ok()?,
        },
        "FpReg" => FaultTarget::FpReg {
            index: u8::try_from(a).ok()?,
            bit: u8::try_from(b).ok()?,
        },
        "Icc" => FaultTarget::Icc {
            bit: u8::try_from(a).ok()?,
        },
        "YReg" => FaultTarget::YReg {
            bit: u8::try_from(a).ok()?,
        },
        "Fcc" => FaultTarget::Fcc {
            bit: u8::try_from(a).ok()?,
        },
        "Ram" => FaultTarget::Ram {
            addr: u32::try_from(a).ok()?,
            bit: u8::try_from(b).ok()?,
        },
        "Code" => FaultTarget::Code {
            index: u32::try_from(a).ok()?,
            bit: u8::try_from(b).ok()?,
        },
        _ => return None,
    })
}

/// The canonical record rendering the per-record CRC covers — every
/// field except the CRC itself. The shard digest is computed over these
/// canonical bytes too, so it is independent of incidental formatting.
pub(crate) fn record_line_base(index: usize, rec: &InjectionRecord, attempts: u32) -> String {
    let (kind, a, b) = target_fields(rec.fault.target);
    format!(
        "{{\"i\":{},\"at\":{},\"target\":\"{}\",\"a\":{},\"b\":{},\"cat\":{},\"outcome\":\"{}\",\"attempts\":{}}}",
        index,
        rec.fault.at,
        kind,
        a,
        b,
        rec.category
            .map_or("null".to_string(), |c| c.index().to_string()),
        rec.outcome.name(),
        attempts,
    )
}

/// Splices `,"crc":N` into a canonical rendering just before its
/// closing brace, where `N` checksums the canonical bytes.
pub(crate) fn with_crc(base: String) -> String {
    let crc = crc32(base.as_bytes());
    format!("{},\"crc\":{crc}}}", &base[..base.len() - 1])
}

pub(crate) fn record_line(index: usize, rec: &InjectionRecord, attempts: u32) -> String {
    with_crc(record_line_base(index, rec, attempts))
}

/// Parses and *verifies* a record line: the stored CRC must match the
/// checksum of the canonical re-rendering of the parsed fields, so any
/// bit flip — in a value or in the CRC itself — returns `None`.
pub(crate) fn parse_record(line: &str) -> Option<(usize, InjectionRecord, u32)> {
    let obj = Obj(parse_flat(line)?);
    let crc = u32::try_from(obj.u64("crc")?).ok()?;
    let index = usize::try_from(obj.u64("i")?).ok()?;
    let fault = Fault {
        at: obj.u64("at")?,
        target: target_from_fields(obj.str("target")?, obj.u64("a")?, obj.u64("b")?)?,
    };
    let category = match obj.opt_u64("cat")? {
        None => None,
        Some(i) => Some(*Category::ALL.get(usize::try_from(i).ok()?)?),
    };
    let outcome = Outcome::from_name(obj.str("outcome")?)?;
    let attempts = u32::try_from(obj.u64("attempts")?).ok()?;
    let rec = InjectionRecord {
        fault,
        category,
        outcome,
    };
    if crc32(record_line_base(index, &rec, attempts).as_bytes()) != crc {
        return None;
    }
    Some((index, rec, attempts))
}

/// The shard-final summary record: written once, as the last line, when
/// a journal covers its whole bound range. Its presence is the
/// machine-checkable claim "this shard is complete"; its digest is a
/// CRC-32 over every canonical record rendering (each followed by a
/// newline) in plan order, so a dropped or substituted record trips the
/// shard-level check even when each surviving line is individually
/// intact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct FinRecord {
    pub(crate) records: u64,
    pub(crate) range_start: u64,
    pub(crate) range_end: u64,
    pub(crate) digest: u32,
}

fn fin_base(fin: &FinRecord) -> String {
    format!(
        "{{\"fin\":1,\"records\":{},\"range_start\":{},\"range_end\":{},\"digest\":{}}}",
        fin.records, fin.range_start, fin.range_end, fin.digest
    )
}

pub(crate) fn fin_line(fin: &FinRecord) -> String {
    with_crc(fin_base(fin))
}

/// Parses and verifies a shard-final summary line. `None` for record
/// lines and anything tampered.
pub(crate) fn parse_fin(line: &str) -> Option<FinRecord> {
    let obj = Obj(parse_flat(line)?);
    if obj.u64("fin")? != 1 {
        return None;
    }
    let crc = u32::try_from(obj.u64("crc")?).ok()?;
    let fin = FinRecord {
        records: obj.u64("records")?,
        range_start: obj.u64("range_start")?,
        range_end: obj.u64("range_end")?,
        digest: u32::try_from(obj.u64("digest")?).ok()?,
    };
    if crc32(fin_base(&fin).as_bytes()) != crc {
        return None;
    }
    Some(fin)
}

/// The order-independent digest a shard's summary record must carry:
/// CRC-32 over the canonical rendering of every completed record in
/// `range`, each followed by `\n`, in plan order (journal write order is
/// a race artefact; plan order is not).
pub(crate) fn range_digest(slots: &[Option<(InjectionRecord, u32)>], range: (usize, usize)) -> u32 {
    let mut state = CRC_INIT;
    for (offset, slot) in slots[range.0..range.1].iter().enumerate() {
        if let Some((rec, attempts)) = slot {
            let base = record_line_base(range.0 + offset, rec, *attempts);
            state = crc32_update(state, base.as_bytes());
            state = crc32_update(state, b"\n");
        }
    }
    crc32_finish(state)
}

/// What survived journal validation. Records are written directly into
/// the caller's slot table as they stream past — the loader holds one
/// line buffer at a time, never the whole file or an intermediate
/// record vector, so a multi-million-injection shard journal loads at
/// O(line) transient memory.
pub(crate) struct LoadedJournal {
    /// Byte length of the intact prefix: everything past it is the torn
    /// trailing line of a mid-write kill, to truncate before appending.
    pub(crate) intact_len: u64,
    /// The shard-final summary record, when the journal carries one —
    /// i.e. when a previous run completed this journal's whole range.
    pub(crate) fin: Option<FinRecord>,
    /// Plan indices restored into previously empty slots.
    pub(crate) restored: usize,
}

/// Streams a journal line-by-line, verifying each record's CRC and plan
/// binding, and fills `slots` (indexed by absolute plan index) with the
/// completed records. A torn final line is tolerated and excluded from
/// `intact_len`; corruption anywhere else — a failed CRC, an
/// out-of-range index, a duplicate, a record after the summary, or a
/// summary that disagrees with the records — is a hard error.
pub(crate) fn load_journal(
    path: &Path,
    header: &JournalHeader,
    faults: &[Fault],
    slots: &mut [Option<(InjectionRecord, u32)>],
) -> Result<LoadedJournal, NfpError> {
    let shown = path.display().to_string();
    let journal_err = |reason: String| NfpError::Journal {
        path: shown.clone(),
        reason,
    };
    let file = std::fs::File::open(path)
        .map_err(|e| journal_err(format!("cannot open for resume: {e}")))?;
    let range = header.range();
    let mut reader = std::io::BufReader::new(file);
    let mut line = String::new();
    let mut offset = 0u64;
    let mut lineno = 0usize;
    let mut intact_len = 0u64;
    let mut fin: Option<FinRecord> = None;
    let mut restored = 0usize;
    loop {
        line.clear();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| journal_err(format!("read failed at byte {offset}: {e}")))?;
        if n == 0 {
            break;
        }
        offset += n as u64;
        lineno += 1;
        let complete = line.ends_with('\n');
        if lineno == 1 {
            header.check(&shown, &line)?;
            intact_len = offset;
            continue;
        }
        if !complete {
            // A newline-less final line is the torn tail of a mid-write
            // kill (records are appended and flushed whole): drop it
            // and resume from the intact prefix.
            let at_eof = reader.fill_buf().map_or(true, <[u8]>::is_empty);
            if at_eof {
                break;
            }
            return Err(journal_err(format!("corrupt record at line {lineno}")));
        }
        if fin.is_some() {
            return Err(journal_err(format!(
                "record at line {lineno} appears after the shard summary"
            )));
        }
        if let Some((index, rec, attempts)) = parse_record(&line) {
            if index < range.0 || index >= range.1 {
                return Err(journal_err(format!(
                    "record at line {lineno} indexes injection {index}, outside this journal's \
                     bound range {}..{}",
                    range.0, range.1
                )));
            }
            if rec.fault != faults[index] {
                return Err(journal_err(format!(
                    "record at line {lineno} disagrees with the fault plan for injection \
                     {index} (journal: {}, plan: {}) — wrong seed or stale journal",
                    rec.fault, faults[index]
                )));
            }
            if slots[index].is_some() {
                return Err(journal_err(format!(
                    "duplicate record for injection {index} at line {lineno}"
                )));
            }
            slots[index] = Some((rec, attempts));
            restored += 1;
            intact_len = offset;
        } else if let Some(summary) = parse_fin(&line) {
            if (summary.range_start, summary.range_end) != (range.0 as u64, range.1 as u64) {
                return Err(journal_err(format!(
                    "shard summary at line {lineno} covers {}..{} but the header binds \
                     {}..{}",
                    summary.range_start, summary.range_end, range.0, range.1
                )));
            }
            let have = slots[range.0..range.1].iter().flatten().count() as u64;
            if summary.records != have {
                return Err(journal_err(format!(
                    "shard summary claims {} records but the journal holds {have}",
                    summary.records
                )));
            }
            if summary.digest != range_digest(slots, range) {
                return Err(journal_err(
                    "shard summary digest disagrees with the records it covers".to_string(),
                ));
            }
            fin = Some(summary);
            intact_len = offset;
        } else {
            return Err(journal_err(format!("corrupt record at line {lineno}")));
        }
    }
    if lineno == 0 {
        return Err(journal_err("journal is empty (no header)".to_string()));
    }
    Ok(LoadedJournal {
        intact_len,
        fin,
        restored,
    })
}

// ---------------------------------------------------------------------
// The supervisor itself.
// ---------------------------------------------------------------------

/// Message from a replay worker to the journaling supervisor thread.
enum Msg {
    Done {
        index: usize,
        record: InjectionRecord,
        attempts: u32,
        /// `Some` when the record is a quarantine: what killed the
        /// replay, and the payload/detail text.
        quarantine: Option<(HarnessCause, String)>,
    },
    Fatal {
        error: NfpError,
    },
}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The quarantine record for an injection whose replay panicked twice.
/// Category attribution comes from the replay that panicked, so it is
/// untrusted and left empty.
pub(crate) fn quarantine_record(fault: Fault) -> InjectionRecord {
    InjectionRecord {
        fault,
        category: None,
        outcome: Outcome::HarnessFault,
    }
}

/// Replays one injection with an unconditional self-loop patched over
/// the injection point (the `test_spin_at` hook): a guaranteed genuine
/// hang that must flow through the escalating watchdog — or the wall
/// deadline — and classify as [`Outcome::Hang`].
pub(crate) fn replay_spinning(
    rig: &mut CampaignRig,
    fault: &Fault,
    wall: Option<Duration>,
) -> Result<InjectionRecord, NfpError> {
    rig.seek(fault.at)?;
    let category = rig.machine.next_category();
    let pc = rig.machine.cpu.pc;
    let index = pc.wrapping_sub(rig.machine.code_base()) as usize / 4;
    // `ba .` with a nop in its delay slot: a two-word self-loop.
    let old_branch = rig.machine.patch_code_word(index, 0x1080_0000)?;
    let old_slot = rig.machine.patch_code_word(index + 1, 0x0100_0000)?;
    let soft = rig.budget.saturating_sub(fault.at).max(1);
    let run = rig.run_escalating(soft, wall);
    rig.machine.patch_code_word(index, old_branch)?;
    rig.machine.patch_code_word(index + 1, old_slot)?;
    let outcome = match run {
        Err(SimError::WatchdogExpired { .. }) => Outcome::Hang,
        Err(SimError::Trap(_)) | Err(SimError::UnknownSoftTrap { .. }) => Outcome::Trap,
        Ok(_) => Outcome::Sdc,
        Err(e) => return Err(e.into()),
    };
    Ok(InjectionRecord {
        fault: *fault,
        category,
        outcome,
    })
}

// ---------------------------------------------------------------------
// The process-isolated worker pool.
// ---------------------------------------------------------------------

/// A live worker subprocess: the child handle, its stdin, and a channel
/// fed by a detached reader thread framing the child's stdout (blocking
/// pipe reads cannot carry timeouts; a channel can).
struct WorkerProc {
    child: Child,
    stdin: ChildStdin,
    lines: mpsc::Receiver<Result<String, NfpError>>,
}

/// Why a slot failed to produce a live, handshaken worker process.
enum SpawnFailure {
    /// Deterministic — every respawn would hit it again, so the whole
    /// campaign fails (mirrors a thread worker's rig-prepare error).
    Fatal(NfpError),
    /// This process is gone but a respawn may well succeed. `killed`
    /// records whether the supervisor itself put the worker down.
    Dead {
        cause: HarnessCause,
        detail: String,
        killed: bool,
    },
}

#[cfg(unix)]
fn status_signal(status: &ExitStatus) -> Option<i32> {
    use std::os::unix::process::ExitStatusExt;
    status.signal()
}

#[cfg(not(unix))]
fn status_signal(_status: &ExitStatus) -> Option<i32> {
    None
}

/// SIGKILLs a worker and reaps it, reporting the terminating signal
/// (from the kill, or from whatever felled the child first).
fn kill_and_reap(child: &mut Child) -> Option<i32> {
    let _ = child.kill();
    child.wait().ok().as_ref().and_then(status_signal)
}

/// Reaps a worker found dead on its own (EOF on stdout) and classifies
/// the death from its exit status.
fn death_of(child: &mut Child) -> (HarnessCause, String) {
    match child.wait() {
        Ok(status) => (
            HarnessCause::WorkerKilled {
                signal: status_signal(&status),
            },
            format!("worker process died: {status}"),
        ),
        Err(e) => (
            HarnessCause::WorkerKilled { signal: None },
            format!("worker process died (reap failed: {e})"),
        ),
    }
}

/// Asks a worker to exit by closing its stdin, grants it a short grace
/// period, then makes sure. The grace matters on the happy path — a
/// drained plan should not end with a gratuitous SIGKILL in the logs —
/// and the kill matters on the unhappy one, where the worker is wedged
/// mid-replay and will never see the EOF.
fn shutdown(mut w: WorkerProc) {
    drop(w.stdin);
    for _ in 0..50 {
        match w.child.try_wait() {
            Ok(Some(_)) => return,
            Ok(None) => std::thread::sleep(TICK),
            Err(_) => break,
        }
    }
    let _ = w.child.kill();
    let _ = w.child.wait();
}

/// Probes that worker subprocesses can be spawned at all. The probe
/// child gets an immediate EOF on stdin (a clean-exit condition for the
/// worker) and is killed and reaped regardless, so it cannot linger.
fn probe_worker(bin: &Path) -> bool {
    match Command::new(bin)
        .arg("worker")
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
    {
        Ok(mut child) => {
            drop(child.stdin.take());
            let _ = child.kill();
            let _ = child.wait();
            true
        }
        Err(_) => false,
    }
}

/// Spawns one worker process and walks it through the handshake: send
/// the hello, accept heartbeats, take `ready`, and cross-check the
/// golden instruction count. The handshake is policed by the idle
/// watchdog — the worker heartbeats while it prepares its rig, so
/// silence here always means a dead or wedged process.
fn spawn_worker(
    bin: &Path,
    hello: &WorkerHello,
    idle_timeout: Duration,
    stop: &AtomicBool,
) -> Result<WorkerProc, SpawnFailure> {
    let dead = |cause: HarnessCause, detail: String, killed: bool| SpawnFailure::Dead {
        cause,
        detail,
        killed,
    };
    let mut child = Command::new(bin)
        .arg("worker")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .map_err(|e| {
            dead(
                HarnessCause::WorkerKilled { signal: None },
                format!("spawn of {} failed: {e}", bin.display()),
                false,
            )
        })?;
    let (Some(mut stdin), Some(stdout)) = (child.stdin.take(), child.stdout.take()) else {
        kill_and_reap(&mut child);
        return Err(dead(
            HarnessCause::WorkerKilled { signal: None },
            "spawned worker came up without stdio pipes".to_string(),
            true,
        ));
    };
    // The reader thread is detached on purpose: it parks in a blocking
    // pipe read and exits on worker EOF, or on send failure once the
    // receiver is gone. Framing errors travel the channel as values.
    let (line_tx, lines) = mpsc::channel();
    std::thread::spawn(move || {
        let mut out = std::io::BufReader::new(stdout);
        loop {
            match read_frame(&mut out) {
                Ok(Some(line)) => {
                    if line_tx.send(Ok(line)).is_err() {
                        return;
                    }
                }
                Ok(None) => return,
                Err(e) => {
                    let _ = line_tx.send(Err(e));
                    return;
                }
            }
        }
    });
    if let Err(e) = writeln!(stdin, "{}", render_hello(hello)).and_then(|()| stdin.flush()) {
        let signal = kill_and_reap(&mut child);
        return Err(dead(
            HarnessCause::WorkerKilled { signal },
            format!("worker would not accept the hello: {e}"),
            false,
        ));
    }
    let mut last_line = Instant::now();
    loop {
        if stop.load(Ordering::Relaxed) {
            kill_and_reap(&mut child);
            return Err(dead(
                HarnessCause::Unknown,
                "campaign stopped during worker handshake".to_string(),
                true,
            ));
        }
        if last_line.elapsed() >= idle_timeout {
            kill_and_reap(&mut child);
            return Err(dead(
                HarnessCause::HeartbeatTimeout,
                format!(
                    "no heartbeat for {}ms during handshake; worker SIGKILLed",
                    idle_timeout.as_millis()
                ),
                true,
            ));
        }
        match lines.recv_timeout(TICK) {
            Ok(Ok(line)) => {
                last_line = Instant::now();
                match parse_reply(&line) {
                    Ok(Reply::Hb) => {}
                    Ok(Reply::Ready { golden_instret }) => {
                        if golden_instret != hello.header.golden_instret {
                            kill_and_reap(&mut child);
                            return Err(SpawnFailure::Fatal(NfpError::ProtocolViolation {
                                detail: format!(
                                    "worker rebuilt a different campaign: its golden run retired \
                                     {golden_instret} instructions, the supervisor's retired {} — \
                                     worker binary or preset skew",
                                    hello.header.golden_instret
                                ),
                            }));
                        }
                        return Ok(WorkerProc {
                            child,
                            stdin,
                            lines,
                        });
                    }
                    Ok(Reply::Error { detail }) => {
                        kill_and_reap(&mut child);
                        return Err(SpawnFailure::Fatal(NfpError::Workload {
                            what: "campaign worker".to_string(),
                            reason: detail,
                        }));
                    }
                    Ok(Reply::Done { .. }) => {
                        kill_and_reap(&mut child);
                        return Err(dead(
                            HarnessCause::ProtocolViolation,
                            "worker sent done before ready".to_string(),
                            true,
                        ));
                    }
                    Err(e) => {
                        kill_and_reap(&mut child);
                        return Err(dead(HarnessCause::ProtocolViolation, e.to_string(), true));
                    }
                }
            }
            Ok(Err(e)) => {
                kill_and_reap(&mut child);
                return Err(dead(HarnessCause::ProtocolViolation, e.to_string(), true));
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                let (cause, detail) = death_of(&mut child);
                return Err(dead(cause, detail, false));
            }
        }
    }
}

/// What [`await_done`] observed.
enum Wait {
    /// The in-flight injection, classified.
    Done(InjectionRecord),
    /// The worker failed (died, was killed, or lost protocol sync) and
    /// has been reaped; `killed` says whether the supervisor initiated
    /// the kill.
    Failed {
        cause: HarnessCause,
        detail: String,
        killed: bool,
    },
    /// The worker reported a deterministic campaign error.
    Fatal(NfpError),
    /// The supervisor is stopping; abandon the wait.
    Stopping,
}

/// Waits for the `done` frame answering injection `expect`. Mid-replay
/// the worker is heartbeat-silent *by design*, so the only things that
/// may end the wait are the done frame itself, worker death, a protocol
/// violation, the per-injection `deadline`, and the stop flag — idle
/// silence is policed around replays (see [`spawn_worker`]), never
/// during them.
fn await_done(
    w: &mut WorkerProc,
    expect: usize,
    deadline: Option<Duration>,
    stop: &AtomicBool,
) -> Wait {
    let started = Instant::now();
    let failed = |cause: HarnessCause, detail: String, killed: bool| Wait::Failed {
        cause,
        detail,
        killed,
    };
    loop {
        if stop.load(Ordering::Relaxed) {
            return Wait::Stopping;
        }
        match w.lines.recv_timeout(TICK) {
            Ok(Ok(line)) => match parse_reply(&line) {
                Ok(Reply::Hb) => {}
                Ok(Reply::Done { index, record }) => match check_index(index, expect) {
                    Ok(()) => return Wait::Done(record),
                    Err(e) => {
                        kill_and_reap(&mut w.child);
                        return failed(HarnessCause::ProtocolViolation, e.to_string(), true);
                    }
                },
                Ok(Reply::Ready { .. }) => {
                    kill_and_reap(&mut w.child);
                    return failed(
                        HarnessCause::ProtocolViolation,
                        "unexpected ready frame mid-campaign".to_string(),
                        true,
                    );
                }
                Ok(Reply::Error { detail }) => {
                    kill_and_reap(&mut w.child);
                    return Wait::Fatal(NfpError::Workload {
                        what: "campaign worker".to_string(),
                        reason: detail,
                    });
                }
                Err(e) => {
                    kill_and_reap(&mut w.child);
                    return failed(HarnessCause::ProtocolViolation, e.to_string(), true);
                }
            },
            Ok(Err(e)) => {
                kill_and_reap(&mut w.child);
                return failed(HarnessCause::ProtocolViolation, e.to_string(), true);
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if let Some(d) = deadline {
                    if started.elapsed() >= d {
                        kill_and_reap(&mut w.child);
                        return failed(
                            HarnessCause::DeadlineExceeded,
                            format!(
                                "replay overran its {}ms deadline; worker SIGKILLed",
                                d.as_millis()
                            ),
                            true,
                        );
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                let (cause, detail) = death_of(&mut w.child);
                return failed(cause, detail, false);
            }
        }
    }
}

/// Everything one process slot borrows from [`run_supervised`].
struct SlotCtx<'a> {
    bin: &'a Path,
    hello: &'a WorkerHello,
    seed: u64,
    deadline: Option<Duration>,
    heartbeat: Duration,
    max_respawns: u32,
    slot: usize,
    pending: &'a [usize],
    faults: &'a [Fault],
    next: &'a AtomicUsize,
    stop: &'a AtomicBool,
    kills: &'a AtomicUsize,
    respawns: &'a AtomicUsize,
}

/// Drives one process slot: claims plan indices, dispatches each to a
/// (re)spawned worker, polices liveness, and reports results upstream.
/// Per injection: retry once on a fresh process, quarantine on the
/// second failure. Per slot: more than `max_respawns` *consecutive*
/// process failures retires the slot (quarantining whatever was in
/// flight) and the remaining slots absorb its share of the plan; any
/// successful injection resets the count.
fn drive_process_slot(ctx: &SlotCtx, tx: &mpsc::Sender<Msg>) {
    let idle_timeout = (ctx.heartbeat * 10).max(Duration::from_secs(2));
    let mut proc: Option<WorkerProc> = None;
    let mut consecutive: u32 = 0;

    'plan: while !ctx.stop.load(Ordering::Relaxed) {
        let Some(&index) = ctx.pending.get(ctx.next.fetch_add(1, Ordering::Relaxed)) else {
            break;
        };
        let fault = ctx.faults[index];
        let mut attempts = 0u32;

        // Each pass dispatches `index` once (or dies trying). Two
        // failed dispatch attempts quarantine the injection — the
        // panic-isolation retry policy at process granularity.
        let verdict: Result<InjectionRecord, (HarnessCause, String)> = 'attempt: loop {
            let w = match proc.as_mut() {
                Some(w) => w,
                None => {
                    if consecutive > 0 {
                        ctx.respawns.fetch_add(1, Ordering::Relaxed);
                        backoff_sleep(ctx.seed, ctx.slot, consecutive, ctx.stop);
                        if ctx.stop.load(Ordering::Relaxed) {
                            break 'plan;
                        }
                    }
                    match spawn_worker(ctx.bin, ctx.hello, idle_timeout, ctx.stop) {
                        Ok(w) => proc.insert(w),
                        Err(SpawnFailure::Fatal(error)) => {
                            let _ = tx.send(Msg::Fatal { error });
                            return;
                        }
                        Err(SpawnFailure::Dead {
                            cause,
                            detail,
                            killed,
                        }) => {
                            if killed {
                                ctx.kills.fetch_add(1, Ordering::Relaxed);
                            }
                            consecutive += 1;
                            if consecutive > ctx.max_respawns {
                                break 'attempt Err((cause, detail));
                            }
                            continue 'attempt;
                        }
                    }
                }
            };

            attempts += 1;
            if let Err(e) =
                writeln!(w.stdin, "{}", render_run(index)).and_then(|()| w.stdin.flush())
            {
                let signal = kill_and_reap(&mut w.child);
                proc = None;
                consecutive += 1;
                let failure = (
                    HarnessCause::WorkerKilled { signal },
                    format!("worker would not accept a run dispatch: {e}"),
                );
                if attempts >= 2 || consecutive > ctx.max_respawns {
                    break 'attempt Err(failure);
                }
                continue 'attempt;
            }

            match await_done(w, index, ctx.deadline, ctx.stop) {
                Wait::Done(record) => break 'attempt Ok(record),
                Wait::Stopping => break 'plan,
                Wait::Fatal(error) => {
                    let _ = tx.send(Msg::Fatal { error });
                    return;
                }
                Wait::Failed {
                    cause,
                    detail,
                    killed,
                } => {
                    if killed {
                        ctx.kills.fetch_add(1, Ordering::Relaxed);
                    }
                    proc = None;
                    consecutive += 1;
                    if attempts >= 2 || consecutive > ctx.max_respawns {
                        break 'attempt Err((cause, detail));
                    }
                }
            }
        };

        match verdict {
            Ok(record) => {
                consecutive = 0;
                let sent = tx.send(Msg::Done {
                    index,
                    record,
                    attempts,
                    quarantine: None,
                });
                if sent.is_err() {
                    break;
                }
            }
            Err((cause, detail)) => {
                let retire = consecutive > ctx.max_respawns;
                let sent = tx.send(Msg::Done {
                    index,
                    record: quarantine_record(fault),
                    attempts,
                    quarantine: Some((cause, detail)),
                });
                if retire {
                    eprintln!(
                        "supervisor: worker slot {} retired after {consecutive} consecutive \
                         process failures; remaining slots absorb its share",
                        ctx.slot
                    );
                }
                if sent.is_err() || retire {
                    break;
                }
            }
        }
    }
    if let Some(w) = proc.take() {
        shutdown(w);
    }
}

/// Runs a supervised campaign: journaling, resume, panic isolation, and
/// graceful pool degradation around the plain deterministic campaign.
/// Without a journal or hooks this is behaviourally
/// [`crate::run_campaign_parallel`] with per-replay panic isolation.
pub fn run_supervised(
    kernel: &Kernel,
    mode: Mode,
    cfg: &SupervisorConfig,
) -> Result<SupervisorOutcome, NfpError> {
    let campaign = &cfg.campaign;
    if let Some(spec) = cfg.shard {
        if spec.count == 0 || spec.index >= spec.count {
            return Err(NfpError::Workload {
                what: format!("shard {} of {}", spec.index, spec.count),
                reason: "shard index must be < shard count (and count nonzero)".to_string(),
            });
        }
    }
    let (rig, space) = CampaignRig::prepare(kernel, mode, campaign)?;
    let faults = plan(&space, campaign.injections, campaign.seed);
    let header = JournalHeader::bind(kernel, mode, campaign, rig.golden_instret, cfg.shard);
    let range = header.range();

    let mut slots: Vec<Option<(InjectionRecord, u32)>> = vec![None; faults.len()];
    let mut quarantined = Vec::new();
    let mut resumed = 0usize;
    let mut has_fin = false;

    // Resume: stream the journal into the slot table, then truncate any
    // torn tail so appended records start on a fresh line.
    let mut journal_file = match (&cfg.journal, cfg.resume) {
        (None, true) => {
            return Err(NfpError::Journal {
                path: "(none)".to_string(),
                reason: "resume requested without a journal path".to_string(),
            })
        }
        (None, false) => None,
        (Some(path), resume) => {
            let shown = path.display().to_string();
            let io_err = |e: std::io::Error| NfpError::Journal {
                path: shown.clone(),
                reason: e.to_string(),
            };
            let mut file;
            if resume {
                let loaded = load_journal(path, &header, &faults, &mut slots)?;
                resumed = loaded.restored;
                has_fin = loaded.fin.is_some();
                for (index, slot) in slots.iter().enumerate() {
                    let Some((rec, _)) = slot else { continue };
                    if rec.outcome == Outcome::HarnessFault {
                        quarantined.push(QuarantineEntry {
                            index,
                            fault: rec.fault,
                            cause: HarnessCause::Unknown,
                            detail: "quarantined in a previous run (restored from journal)"
                                .to_string(),
                        });
                    }
                }
                file = std::fs::OpenOptions::new()
                    .write(true)
                    .open(path)
                    .map_err(io_err)?;
                file.set_len(loaded.intact_len).map_err(io_err)?;
                file.seek(std::io::SeekFrom::End(0)).map_err(io_err)?;
            } else {
                file = std::fs::File::create(path).map_err(io_err)?;
                writeln!(file, "{}", header.render()).map_err(io_err)?;
                file.flush().map_err(io_err)?;
            }
            Some(file)
        }
    };

    let pending: Vec<usize> = (range.0..range.1).filter(|&i| slots[i].is_none()).collect();
    let workers = cfg
        .workers
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        })
        .clamp(1, pending.len().max(1));

    // Process isolation: resolve and probe the worker binary up front,
    // falling back to thread isolation when subprocesses are
    // unavailable (no binary, or an environment that cannot fork).
    let process_bin: Option<PathBuf> = match cfg.isolation {
        WorkerIsolation::Thread => None,
        WorkerIsolation::Process => {
            let bin = cfg
                .worker_bin
                .clone()
                .or_else(|| std::env::current_exe().ok());
            match bin {
                Some(bin) if probe_worker(&bin) => Some(bin),
                Some(bin) => {
                    eprintln!(
                        "supervisor: cannot spawn worker processes from {}; falling back to \
                         in-process thread isolation",
                        bin.display()
                    );
                    None
                }
                None => {
                    eprintln!(
                        "supervisor: no worker binary (current_exe unavailable); falling back \
                         to in-process thread isolation"
                    );
                    None
                }
            }
        }
    };
    let hello = WorkerHello {
        header: header.clone(),
        preset: cfg.preset,
        heartbeat_ms: (cfg.heartbeat.as_millis() as u64).max(1),
        spin_at: cfg.test_spin_at.map(|i| i as u64),
        abort_at: cfg.test_worker_abort_at.map(|i| i as u64),
    };
    let kills = AtomicUsize::new(0);
    let respawns = AtomicUsize::new(0);

    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let (tx, rx) = mpsc::channel::<Msg>();

    let mut fatal: Option<NfpError> = None;
    let mut written = 0usize;
    let mut aborted = false;

    std::thread::scope(|scope| {
        for slot in 0..workers {
            let tx = tx.clone();
            let (next, stop, pending, faults) = (&next, &stop, &pending, &faults);
            if let Some(bin) = process_bin.as_deref() {
                let ctx = SlotCtx {
                    bin,
                    hello: &hello,
                    seed: campaign.seed,
                    deadline: cfg.deadline,
                    heartbeat: cfg.heartbeat,
                    max_respawns: cfg.max_respawns,
                    slot,
                    pending,
                    faults,
                    next,
                    stop,
                    kills: &kills,
                    respawns: &respawns,
                };
                scope.spawn(move || drive_process_slot(&ctx, &tx));
                continue;
            }
            scope.spawn(move || {
                let mut rig = match CampaignRig::prepare(kernel, mode, campaign) {
                    Ok((r, _)) => r,
                    Err(error) => {
                        let _ = tx.send(Msg::Fatal { error });
                        return;
                    }
                };
                while !stop.load(Ordering::Relaxed) {
                    let Some(&index) = pending.get(next.fetch_add(1, Ordering::Relaxed)) else {
                        return;
                    };
                    let fault = faults[index];
                    let mut attempts = 0u32;
                    let msg = loop {
                        attempts += 1;
                        let force_panic = cfg
                            .test_panic_at
                            .is_some_and(|(i, n)| i == index && attempts <= n);
                        let run = catch_unwind(AssertUnwindSafe(|| {
                            if force_panic {
                                panic!("supervisor test hook: forced panic on injection {index}");
                            }
                            if cfg.test_spin_at == Some(index) {
                                replay_spinning(&mut rig, &fault, campaign.wall)
                            } else {
                                rig.run_one(&fault, campaign.wall)
                            }
                        }));
                        match run {
                            Ok(Ok(record)) => {
                                break Msg::Done {
                                    index,
                                    record,
                                    attempts,
                                    quarantine: None,
                                }
                            }
                            Ok(Err(error)) => break Msg::Fatal { error },
                            Err(payload) => {
                                let text = panic_text(payload);
                                // The panicked rig may hold a half-armed
                                // fault or a mid-seek machine: replace it
                                // before judging whether to retry.
                                let rebuilt = catch_unwind(AssertUnwindSafe(|| {
                                    CampaignRig::prepare(kernel, mode, campaign)
                                }));
                                let retired = match rebuilt {
                                    Ok(Ok((fresh, _))) => {
                                        rig = fresh;
                                        false
                                    }
                                    _ => true,
                                };
                                if attempts >= 2 || retired {
                                    let msg = Msg::Done {
                                        index,
                                        record: quarantine_record(fault),
                                        attempts,
                                        quarantine: Some((HarnessCause::Panic, text)),
                                    };
                                    if retired {
                                        // No rig to continue with: hand the
                                        // quarantined record over and retire;
                                        // the surviving workers drain the
                                        // rest of the plan.
                                        let _ = tx.send(msg);
                                        return;
                                    }
                                    break msg;
                                }
                            }
                        }
                    };
                    if tx.send(msg).is_err() {
                        return;
                    }
                }
            });
        }
        drop(tx);

        while let Ok(msg) = rx.recv() {
            match msg {
                Msg::Done {
                    index,
                    record,
                    attempts,
                    quarantine,
                } => {
                    if let Some(file) = journal_file.as_mut() {
                        let line = record_line(index, &record, attempts);
                        let io = writeln!(file, "{line}").and_then(|()| file.flush());
                        if let Err(e) = io {
                            fatal = Some(NfpError::Journal {
                                path: cfg
                                    .journal
                                    .as_ref()
                                    .map_or_else(String::new, |p| p.display().to_string()),
                                reason: format!("write failed: {e}"),
                            });
                            stop.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                    if let Some((cause, detail)) = quarantine {
                        eprintln!(
                            "supervisor: quarantined injection {index} ({}) after {attempts} \
                             attempts — {cause}: {detail}",
                            record.fault
                        );
                        quarantined.push(QuarantineEntry {
                            index,
                            fault: record.fault,
                            cause,
                            detail,
                        });
                    }
                    slots[index] = Some((record, attempts));
                    written += 1;
                    if cfg.test_abort_after == Some(written) {
                        aborted = true;
                        stop.store(true, Ordering::Relaxed);
                        break;
                    }
                }
                Msg::Fatal { error } => {
                    fatal = Some(error);
                    stop.store(true, Ordering::Relaxed);
                    break;
                }
            }
        }
        // Falling out of the loop with the stop flag raised: workers
        // exit at their next claim; the scope joins them. In-flight
        // sends go nowhere — after an abort the journal must look
        // exactly as a kill would have left it.
    });

    if let Some(error) = fatal {
        return Err(error);
    }

    let completed = slots.iter().flatten().count();
    let complete = slots[range.0..range.1].iter().all(Option::is_some);
    // Seal a freshly completed journal with the shard summary record —
    // the machine-checkable claim "this range is fully covered", plus
    // the plan-order digest the merge recomputes. A resumed journal
    // that already carried one is left alone.
    if complete && !aborted && !has_fin {
        if let Some(file) = journal_file.as_mut() {
            let fin = FinRecord {
                records: (range.1 - range.0) as u64,
                range_start: range.0 as u64,
                range_end: range.1 as u64,
                digest: range_digest(&slots, range),
            };
            let io = writeln!(file, "{}", fin_line(&fin)).and_then(|()| file.flush());
            io.map_err(|e| NfpError::Journal {
                path: cfg
                    .journal
                    .as_ref()
                    .map_or_else(String::new, |p| p.display().to_string()),
                reason: format!("write of shard summary failed: {e}"),
            })?;
        }
    }
    let records: Vec<InjectionRecord> = if aborted {
        slots.into_iter().flatten().map(|(r, _)| r).collect()
    } else {
        slots
            .drain(range.0..range.1)
            .enumerate()
            .map(|(offset, s)| {
                s.map(|(r, _)| r).ok_or_else(|| NfpError::WorkerLost {
                    job: format!(
                        "injection {} ({})",
                        range.0 + offset,
                        faults[range.0 + offset]
                    ),
                })
            })
            .collect::<Result<_, _>>()?
    };
    Ok(SupervisorOutcome {
        dispatch: rig.machine.dispatch_stats(),
        result: assemble(kernel, mode, &rig, records),
        quarantined,
        resumed,
        completed,
        aborted,
        process_isolation: process_bin.is_some(),
        kills: kills.load(Ordering::Relaxed),
        respawns: respawns.load(Ordering::Relaxed),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_json_roundtrips_records() {
        let rec = InjectionRecord {
            fault: Fault {
                at: 12345,
                target: FaultTarget::Ram {
                    addr: 0x4100_0040,
                    bit: 31,
                },
            },
            category: Some(Category::MemLoad),
            outcome: Outcome::Sdc,
        };
        let line = record_line(7, &rec, 2);
        let (i, parsed, attempts) = parse_record(&line).unwrap();
        assert_eq!(i, 7);
        assert_eq!(parsed, rec);
        assert_eq!(attempts, 2);
    }

    #[test]
    fn flat_json_roundtrips_every_target_kind() {
        let targets = [
            FaultTarget::IntReg { index: 3, bit: 9 },
            FaultTarget::FpReg { index: 31, bit: 0 },
            FaultTarget::Icc { bit: 2 },
            FaultTarget::YReg { bit: 17 },
            FaultTarget::Fcc { bit: 1 },
            FaultTarget::Ram {
                addr: 0xffff_fffc,
                bit: 5,
            },
            FaultTarget::Code {
                index: 999,
                bit: 30,
            },
        ];
        for (n, target) in targets.into_iter().enumerate() {
            let rec = InjectionRecord {
                fault: Fault {
                    at: n as u64,
                    target,
                },
                category: None,
                outcome: Outcome::HarnessFault,
            };
            let (_, parsed, _) = parse_record(&record_line(n, &rec, 1)).unwrap();
            assert_eq!(parsed, rec);
        }
    }

    #[test]
    fn malformed_lines_parse_to_none() {
        for bad in [
            "",
            "{",
            "{}garbage",
            "{\"i\":}",
            "{\"i\":1",
            "{\"i\":18446744073709551616}", // u64 overflow
            "not json at all",
            "{\"i\":1,\"at\":2,\"target\":\"Warp\",\"a\":0,\"b\":0,\"cat\":null,\"outcome\":\"SDC\",\"attempts\":1}",
        ] {
            assert!(parse_record(bad).is_none(), "accepted: {bad:?}");
        }
    }

    fn test_header() -> JournalHeader {
        JournalHeader {
            kernel: "fse_distance".to_string(),
            mode: "float",
            injections: 100,
            seed: 1,
            checkpoints: 16,
            dispatch: Dispatch::Traced,
            escalation: 2,
            wall_ms: None,
            golden_instret: 5000,
            shard_index: 0,
            shard_count: 1,
            range_start: 0,
            range_end: 100,
        }
    }

    #[test]
    fn header_mismatch_names_the_field() {
        let header = test_header();
        let mut other = header.clone();
        other.seed = 2;
        let line = other.render();
        match header.check("j.jsonl", &line) {
            Err(NfpError::JournalMismatch { field, .. }) => assert_eq!(field, "seed"),
            other => panic!("expected JournalMismatch, got {other:?}"),
        }
        // And an identical header passes.
        header.check("j.jsonl", &header.render()).unwrap();
    }

    #[test]
    fn header_shard_binding_mismatch_names_the_field() {
        let header = test_header();
        let mut other = header.clone();
        other.range_end = 50;
        match header.check("j.jsonl", &other.render()) {
            Err(NfpError::JournalMismatch { field, .. }) => assert_eq!(field, "range_end"),
            got => panic!("expected JournalMismatch, got {got:?}"),
        }
        let mut other = header.clone();
        other.shard_index = 1;
        other.shard_count = 4;
        match header.check("j.jsonl", &other.render()) {
            Err(NfpError::JournalMismatch { field, .. }) => assert_eq!(field, "shard_index"),
            got => panic!("expected JournalMismatch, got {got:?}"),
        }
    }

    #[test]
    fn header_parses_back_exactly() {
        let mut header = test_header();
        header.shard_index = 2;
        header.shard_count = 4;
        header.range_start = 50;
        header.range_end = 75;
        assert_eq!(parse_header(&header.render()), Some(header));
        assert_eq!(parse_header("{\"v\":1,\"kind\":\"other\"}"), None);
        assert_eq!(parse_header("not json"), None);
    }

    #[test]
    fn record_crc_rejects_any_bit_flip() {
        let rec = InjectionRecord {
            fault: Fault {
                at: 8317,
                target: FaultTarget::IntReg { index: 19, bit: 7 },
            },
            category: Some(Category::IntArith),
            outcome: Outcome::Masked,
        };
        let line = record_line(3, &rec, 1);
        assert!(parse_record(&line).is_some(), "untampered line must parse");
        // Flip every bit of every byte in turn: each tampering must be
        // rejected (unparseable or CRC mismatch — either way `None`).
        let mut bytes = line.clone().into_bytes();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                bytes[byte] ^= 1 << bit;
                if let Ok(tampered) = std::str::from_utf8(&bytes) {
                    assert!(
                        parse_record(tampered).is_none(),
                        "accepted a flip at {byte}:{bit}: {tampered}"
                    );
                }
                bytes[byte] ^= 1 << bit;
            }
        }
    }

    #[test]
    fn fin_roundtrips_and_rejects_tampering() {
        let fin = FinRecord {
            records: 25,
            range_start: 50,
            range_end: 75,
            digest: 0xdead_beef,
        };
        let line = fin_line(&fin);
        assert_eq!(parse_fin(&line), Some(fin));
        // A record line is not a fin and vice versa.
        let rec = InjectionRecord {
            fault: Fault {
                at: 1,
                target: FaultTarget::Icc { bit: 0 },
            },
            category: None,
            outcome: Outcome::Masked,
        };
        assert_eq!(parse_fin(&record_line(0, &rec, 1)), None);
        assert!(parse_record(&line).is_none());
        // Tampering with a count field trips the CRC.
        let tampered = line.replace("\"records\":25", "\"records\":24");
        assert_eq!(parse_fin(&tampered), None);
    }
}
