//! The campaign worker-process protocol and the worker side of it.
//!
//! [`crate::supervisor`] in [`WorkerIsolation::Process`] mode drives
//! one `repro worker` subprocess per slot over line-delimited flat JSON
//! on stdin/stdout (the same grammar as the campaign journal — see
//! [`crate::flatjson`]). The conversation is deliberately tiny:
//!
//! ```text
//! supervisor → worker   {"v":1,"kind":"hello","kernel":...}   once
//! worker → supervisor   {"kind":"ready","golden_instret":N}   once
//! supervisor → worker   {"kind":"run","i":17}                 per injection
//! worker → supervisor   {"kind":"done","i":17,...}            per injection
//! worker → supervisor   {"kind":"hb"}                         while idle
//! worker → supervisor   {"kind":"error","detail":"..."}       fatal, then exit
//! ```
//!
//! The hello carries the exact campaign-binding fields of the journal
//! header, so a worker rebuilds the *same* deterministic rig the
//! supervisor would have used in-process; the `ready` reply echoes the
//! golden instruction count as a cross-check that both sides really
//! built the same campaign. Heartbeats are gated on a busy flag: a
//! worker is silent *by design* mid-replay (the deadline watchdog owns
//! that phase) and audible everywhere else (handshake, idle), so idle
//! silence is always a dead or wedged process, never a slow replay.
//!
//! Framing is one JSON object per `\n`-terminated line, capped at
//! [`MAX_LINE`]. Anything else — an oversized line, a line torn by a
//! dying peer, invalid UTF-8, an unknown or out-of-order frame — is a
//! [`NfpError::ProtocolViolation`], never a hang and never a panic.
//!
//! [`WorkerIsolation::Process`]: crate::supervisor::WorkerIsolation::Process

use crate::backoff::{backoff_sleep, splitmix64};
use crate::campaign::{CampaignConfig, CampaignRig, InjectionRecord};
use crate::evaluation::Mode;
use crate::flatjson::{esc, parse_flat, Obj};
use crate::net::{render_join, write_frame, FrameReader, JoinFrame, Recv};
use crate::supervisor::{
    fin_line, quarantine_record, range_digest, record_line, replay_spinning, target_fields,
    target_from_fields, FinRecord, JournalHeader,
};
use nfp_core::{NfpError, Outcome};
use nfp_sim::fault::plan;
use nfp_sim::{Dispatch, Fault};
use nfp_sparc::Category;
use nfp_workloads::Preset;
use std::io::{BufRead, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Workload preset a worker process rebuilds its kernel registry from.
/// Carried by name in the hello frame ([`Preset`] itself is a bag of
/// sizes; the two named presets are the only ones the CLI can ask for).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerPreset {
    /// [`Preset::quick`] — reduced workload sizes.
    Quick,
    /// [`Preset::paper`] — evaluation-scale workloads.
    Paper,
}

impl WorkerPreset {
    /// Wire name of this preset.
    pub fn name(self) -> &'static str {
        match self {
            WorkerPreset::Quick => "quick",
            WorkerPreset::Paper => "paper",
        }
    }

    /// Inverse of [`WorkerPreset::name`].
    pub fn from_name(s: &str) -> Option<WorkerPreset> {
        match s {
            "quick" => Some(WorkerPreset::Quick),
            "paper" => Some(WorkerPreset::Paper),
            _ => None,
        }
    }

    /// The workload sizes this preset names.
    pub fn build(self) -> Preset {
        match self {
            WorkerPreset::Quick => Preset::quick(),
            WorkerPreset::Paper => Preset::paper(),
        }
    }
}

// ---------------------------------------------------------------------
// Framing.
// ---------------------------------------------------------------------

/// Longest protocol line either side will accept. Real frames are a few
/// hundred bytes; the cap exists so a corrupt or hostile peer cannot
/// make the reader buffer unboundedly.
pub(crate) const MAX_LINE: usize = 64 * 1024;

fn violation(detail: impl Into<String>) -> NfpError {
    NfpError::ProtocolViolation {
        detail: detail.into(),
    }
}

/// Reads one `\n`-terminated protocol line. `Ok(None)` is a clean EOF
/// (the peer closed the stream between frames); everything irregular —
/// an oversized line, a final line torn mid-write, invalid UTF-8 — is a
/// [`NfpError::ProtocolViolation`].
pub(crate) fn read_frame<R: BufRead>(r: &mut R) -> Result<Option<String>, NfpError> {
    let mut buf = Vec::new();
    let n = r
        .by_ref()
        .take(MAX_LINE as u64 + 1)
        .read_until(b'\n', &mut buf)
        .map_err(|e| violation(format!("frame read failed: {e}")))?;
    if n == 0 {
        return Ok(None);
    }
    if buf.last() != Some(&b'\n') {
        if n > MAX_LINE {
            return Err(violation(format!(
                "oversized frame: line exceeds {MAX_LINE} bytes"
            )));
        }
        return Err(violation(format!(
            "truncated frame: stream ended mid-line after {n} bytes"
        )));
    }
    buf.pop();
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| violation("frame is not valid UTF-8"))
}

fn opt_u64_json(v: Option<u64>) -> String {
    v.map_or_else(|| "null".to_string(), |n| n.to_string())
}

// ---------------------------------------------------------------------
// Supervisor → worker frames.
// ---------------------------------------------------------------------

/// The handshake the supervisor opens each worker process with: the
/// campaign identity (the journal-header binding fields) plus the
/// knobs only a subprocess needs.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct WorkerHello {
    /// Campaign binding — same fields, same meaning as the journal
    /// header, so the worker rebuilds the identical deterministic rig.
    pub(crate) header: JournalHeader,
    /// Preset to rebuild the kernel registry from.
    pub(crate) preset: WorkerPreset,
    /// Heartbeat emission interval while idle.
    pub(crate) heartbeat_ms: u64,
    /// Test hook: replay this plan index with a patched self-loop.
    pub(crate) spin_at: Option<u64>,
    /// Test hook: `abort()` when asked to replay this plan index.
    pub(crate) abort_at: Option<u64>,
}

pub(crate) fn render_hello(h: &WorkerHello) -> String {
    format!(
        concat!(
            "{{\"v\":1,\"kind\":\"hello\",\"kernel\":\"{}\",\"mode\":\"{}\",",
            "\"preset\":\"{}\",\"injections\":{},\"seed\":{},\"checkpoints\":{},",
            "\"dispatch\":\"{}\",\"escalation\":{},\"wall_ms\":{},\"golden_instret\":{},",
            "\"shard_index\":{},\"shard_count\":{},\"range_start\":{},\"range_end\":{},",
            "\"heartbeat_ms\":{},\"spin_at\":{},\"abort_at\":{}}}"
        ),
        esc(&h.header.kernel),
        h.header.mode,
        h.preset.name(),
        h.header.injections,
        h.header.seed,
        h.header.checkpoints,
        h.header.dispatch.as_str(),
        h.header.escalation,
        opt_u64_json(h.header.wall_ms),
        h.header.golden_instret,
        h.header.shard_index,
        h.header.shard_count,
        h.header.range_start,
        h.header.range_end,
        h.heartbeat_ms,
        opt_u64_json(h.spin_at),
        opt_u64_json(h.abort_at),
    )
}

pub(crate) fn parse_hello(line: &str) -> Result<WorkerHello, NfpError> {
    let obj = Obj(parse_flat(line).ok_or_else(|| violation("malformed hello frame"))?);
    if obj.str("kind") != Some("hello") {
        return Err(violation(format!(
            "expected a hello frame, got kind {:?}",
            obj.str("kind")
        )));
    }
    match obj.u64("v") {
        Some(1) => {}
        v => {
            return Err(violation(format!(
                "worker protocol version mismatch: supervisor speaks {}, this worker speaks v1",
                v.map_or_else(|| "(none)".to_string(), |n| format!("v{n}")),
            )))
        }
    }
    let field = |k: &str| violation(format!("hello lacks \"{k}\""));
    let mode = Mode::from_suffix(obj.str("mode").ok_or_else(|| field("mode"))?)
        .ok_or_else(|| violation("hello names an unknown mode"))?;
    let preset = WorkerPreset::from_name(obj.str("preset").ok_or_else(|| field("preset"))?)
        .ok_or_else(|| violation("hello names an unknown preset"))?;
    Ok(WorkerHello {
        header: JournalHeader {
            kernel: obj
                .str("kernel")
                .ok_or_else(|| field("kernel"))?
                .to_string(),
            mode: mode.suffix(),
            injections: obj.u64("injections").ok_or_else(|| field("injections"))?,
            seed: obj.u64("seed").ok_or_else(|| field("seed"))?,
            checkpoints: obj.u64("checkpoints").ok_or_else(|| field("checkpoints"))?,
            dispatch: obj
                .str("dispatch")
                .and_then(Dispatch::parse)
                .ok_or_else(|| field("dispatch"))?,
            escalation: obj.u64("escalation").ok_or_else(|| field("escalation"))?,
            wall_ms: obj.opt_u64("wall_ms").ok_or_else(|| field("wall_ms"))?,
            golden_instret: obj
                .u64("golden_instret")
                .ok_or_else(|| field("golden_instret"))?,
            shard_index: obj
                .u64("shard_index")
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| field("shard_index"))?,
            shard_count: obj
                .u64("shard_count")
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| field("shard_count"))?,
            range_start: obj.u64("range_start").ok_or_else(|| field("range_start"))?,
            range_end: obj.u64("range_end").ok_or_else(|| field("range_end"))?,
        },
        preset,
        heartbeat_ms: obj
            .u64("heartbeat_ms")
            .ok_or_else(|| field("heartbeat_ms"))?,
        spin_at: obj.opt_u64("spin_at").ok_or_else(|| field("spin_at"))?,
        abort_at: obj.opt_u64("abort_at").ok_or_else(|| field("abort_at"))?,
    })
}

pub(crate) fn render_run(index: usize) -> String {
    format!("{{\"kind\":\"run\",\"i\":{index}}}")
}

pub(crate) fn parse_run(line: &str) -> Result<usize, NfpError> {
    let obj = Obj(parse_flat(line).ok_or_else(|| violation("malformed run frame"))?);
    if obj.str("kind") != Some("run") {
        return Err(violation(format!(
            "expected a run frame, got kind {:?}",
            obj.str("kind")
        )));
    }
    usize::try_from(
        obj.u64("i")
            .ok_or_else(|| violation("run frame lacks \"i\""))?,
    )
    .map_err(|_| violation("run frame index overflows usize"))
}

// ---------------------------------------------------------------------
// Worker → supervisor frames.
// ---------------------------------------------------------------------

/// One frame a worker process sends upstream.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Reply {
    /// Handshake complete; echoes the golden instruction count the
    /// worker's own rig measured, as a campaign-identity cross-check.
    Ready { golden_instret: u64 },
    /// Idle keepalive.
    Hb,
    /// One injection replayed and classified.
    Done {
        index: usize,
        record: InjectionRecord,
    },
    /// The worker hit a deterministic error and is about to exit.
    Error { detail: String },
}

pub(crate) fn render_ready(golden_instret: u64) -> String {
    format!("{{\"kind\":\"ready\",\"golden_instret\":{golden_instret}}}")
}

pub(crate) const HB_FRAME: &str = "{\"kind\":\"hb\"}";

pub(crate) fn render_done(index: usize, rec: &InjectionRecord) -> String {
    let (kind, a, b) = target_fields(rec.fault.target);
    format!(
        "{{\"kind\":\"done\",\"i\":{},\"at\":{},\"target\":\"{}\",\"a\":{},\"b\":{},\"cat\":{},\"outcome\":\"{}\"}}",
        index,
        rec.fault.at,
        kind,
        a,
        b,
        rec.category
            .map_or_else(|| "null".to_string(), |c| c.index().to_string()),
        rec.outcome.name(),
    )
}

pub(crate) fn render_error(detail: &str) -> String {
    format!("{{\"kind\":\"error\",\"detail\":\"{}\"}}", esc(detail))
}

pub(crate) fn parse_reply(line: &str) -> Result<Reply, NfpError> {
    let bad = |what: &str| violation(format!("{what} in worker frame: {line:?}"));
    let obj = Obj(parse_flat(line).ok_or_else(|| bad("malformed JSON"))?);
    match obj.str("kind") {
        Some("hb") => Ok(Reply::Hb),
        Some("ready") => Ok(Reply::Ready {
            golden_instret: obj
                .u64("golden_instret")
                .ok_or_else(|| bad("missing golden_instret"))?,
        }),
        Some("error") => Ok(Reply::Error {
            detail: obj
                .str("detail")
                .ok_or_else(|| bad("missing detail"))?
                .to_string(),
        }),
        Some("done") => {
            let index = usize::try_from(obj.u64("i").ok_or_else(|| bad("missing index"))?)
                .map_err(|_| bad("index overflow"))?;
            let fault = Fault {
                at: obj.u64("at").ok_or_else(|| bad("missing at"))?,
                target: target_from_fields(
                    obj.str("target").ok_or_else(|| bad("missing target"))?,
                    obj.u64("a").ok_or_else(|| bad("missing a"))?,
                    obj.u64("b").ok_or_else(|| bad("missing b"))?,
                )
                .ok_or_else(|| bad("unknown fault target"))?,
            };
            let category = match obj.opt_u64("cat").ok_or_else(|| bad("missing cat"))? {
                None => None,
                Some(i) => Some(
                    *usize::try_from(i)
                        .ok()
                        .and_then(|i| Category::ALL.get(i))
                        .ok_or_else(|| bad("category out of range"))?,
                ),
            };
            let outcome =
                Outcome::from_name(obj.str("outcome").ok_or_else(|| bad("missing outcome"))?)
                    .ok_or_else(|| bad("unknown outcome"))?;
            Ok(Reply::Done {
                index,
                record: InjectionRecord {
                    fault,
                    category,
                    outcome,
                },
            })
        }
        other => Err(violation(format!(
            "unknown worker frame kind {other:?}: {line:?}"
        ))),
    }
}

/// Validates that a done frame answers the injection actually in
/// flight. The protocol is strictly one-run-one-done, so any other
/// index means the two sides have lost sync and the worker must go.
pub(crate) fn check_index(got: usize, expect: usize) -> Result<(), NfpError> {
    if got == expect {
        Ok(())
    } else {
        Err(violation(format!(
            "out-of-order done: worker answered injection {got} while {expect} was in flight"
        )))
    }
}

// ---------------------------------------------------------------------
// The worker side.
// ---------------------------------------------------------------------

/// Writes one frame to stdout, atomically and flushed (the supervisor
/// reads line-by-line; a buffered half-line would look like a torn
/// frame).
fn emit(line: &str) {
    let mut out = std::io::stdout().lock();
    let _ = out.write_all(line.as_bytes());
    let _ = out.write_all(b"\n");
    let _ = out.flush();
}

/// The `repro worker` entry point: speaks the protocol on
/// stdin/stdout until EOF. Returns the process exit code — 0 for a
/// clean shutdown (supervisor closed stdin), 1 after emitting an
/// `error` frame.
pub fn run_worker() -> i32 {
    match worker_main() {
        Ok(()) => 0,
        Err(e) => {
            emit(&render_error(&e.to_string()));
            1
        }
    }
}

fn worker_main() -> Result<(), NfpError> {
    let stdin = std::io::stdin();
    let mut stdin = std::io::BufReader::new(stdin.lock());
    let Some(line) = read_frame(&mut stdin)? else {
        // EOF before the hello: the supervisor was only probing that
        // worker processes can spawn at all.
        return Ok(());
    };
    let hello = parse_hello(&line)?;
    let campaign = campaign_of(&hello.header)?;
    let kernels = nfp_workloads::all_kernels(&hello.preset.build())?;
    let kernel = kernels
        .iter()
        .find(|k| k.name == hello.header.kernel)
        .ok_or_else(|| {
            violation(format!(
                "hello names kernel {:?}, which the {} preset does not contain",
                hello.header.kernel,
                hello.preset.name()
            ))
        })?;
    let mode = Mode::from_suffix(hello.header.mode).ok_or_else(|| violation("bad mode"))?;

    // Heartbeats start before the (potentially slow) rig build so the
    // supervisor's liveness watchdog covers the handshake too. The
    // busy gate silences them for exactly the span of each replay.
    let busy = Arc::new(AtomicBool::new(false));
    let alive = Arc::new(AtomicBool::new(true));
    let interval = Duration::from_millis(hello.heartbeat_ms.max(1));
    {
        let (busy, alive) = (Arc::clone(&busy), Arc::clone(&alive));
        std::thread::spawn(move || {
            while alive.load(Ordering::Relaxed) {
                if !busy.load(Ordering::Relaxed) {
                    emit(HB_FRAME);
                }
                std::thread::sleep(interval);
            }
        });
    }

    let (mut rig, space) = CampaignRig::prepare(kernel, mode, &campaign)?;
    if rig.golden_instret != hello.header.golden_instret {
        return Err(violation(format!(
            "golden instruction count mismatch: supervisor expects {}, this worker's rig ran {} \
             — preset or kernel registry skew between the two binaries",
            hello.header.golden_instret, rig.golden_instret
        )));
    }
    let faults = plan(&space, campaign.injections, campaign.seed);
    emit(&render_ready(rig.golden_instret));

    loop {
        let Some(line) = read_frame(&mut stdin)? else {
            alive.store(false, Ordering::Relaxed);
            return Ok(());
        };
        let index = parse_run(&line)?;
        let fault = *faults.get(index).ok_or_else(|| {
            violation(format!(
                "run frame indexes injection {index} of a {}-injection plan",
                faults.len()
            ))
        })?;
        if hello.abort_at == Some(index as u64) {
            // Test hook: die the way a heap-corrupting harness bug
            // would — no unwinding, no goodbye frame.
            std::process::abort();
        }
        busy.store(true, Ordering::Relaxed);
        let replayed = if hello.spin_at == Some(index as u64) {
            replay_spinning(&mut rig, &fault, campaign.wall)
        } else {
            rig.run_one(&fault, campaign.wall)
        };
        busy.store(false, Ordering::Relaxed);
        emit(&render_done(index, &replayed?));
    }
}

/// Reconstructs the [`CampaignConfig`] a hello's binding fields name.
fn campaign_of(header: &JournalHeader) -> Result<CampaignConfig, NfpError> {
    Ok(CampaignConfig {
        injections: usize::try_from(header.injections)
            .map_err(|_| violation("hello injection count overflows usize"))?,
        seed: header.seed,
        checkpoints: usize::try_from(header.checkpoints)
            .map_err(|_| violation("hello checkpoint count overflows usize"))?,
        wall: header.wall_ms.map(Duration::from_millis),
        dispatch: header.dispatch,
        escalation: u32::try_from(header.escalation)
            .map_err(|_| violation("hello escalation overflows u32"))?,
    })
}

// ---------------------------------------------------------------------
// The remote (TCP) worker side: `repro worker --connect <addr>`.
// ---------------------------------------------------------------------

/// How long a connect attempt may block before it counts as a failed
/// attempt (and backs off).
const CONNECT_TIMEOUT: Duration = Duration::from_secs(5);

/// Socket write deadline: a coordinator that cannot drain a few
/// hundred bytes in this long is as good as gone.
const WRITE_TIMEOUT: Duration = Duration::from_secs(5);

/// Socket read deadline per poll — the worker's idle-loop tick.
const READ_TICK: Duration = Duration::from_millis(50);

/// How long the worker tolerates total coordinator silence while idle
/// before it drops the connection and reconnects. The coordinator
/// heartbeats idle peers every few hundred milliseconds, so this is an
/// order of magnitude of slack.
const COORD_SILENCE: Duration = Duration::from_secs(10);

/// Heartbeat interval before the first lease names one.
const DEFAULT_HEARTBEAT_MS: u64 = 200;

/// Writes one frame to the shared TCP write side. Whole frames go out
/// under the lock so the heartbeat thread can never interleave bytes
/// into a record.
fn send(writer: &Mutex<TcpStream>, frame: &str) -> std::io::Result<()> {
    let mut w = writer
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    write_frame(&mut *w, frame)
}

/// Clears the heartbeat thread's liveness flag on every session exit
/// path, so a stale thread never keeps writing into a dead socket.
struct Alive(Arc<AtomicBool>);

impl Drop for Alive {
    fn drop(&mut self) {
        self.0.store(false, Ordering::Relaxed);
    }
}

/// The deterministic campaign state a connected worker keeps between
/// leases: rebuilding rig and plan costs a golden run, so consecutive
/// leases of the same campaign reuse them.
struct ConnectRig {
    header: JournalHeader,
    preset: WorkerPreset,
    campaign: CampaignConfig,
    rig: CampaignRig,
    faults: Vec<Fault>,
}

fn build_rig(hello: &WorkerHello) -> Result<ConnectRig, NfpError> {
    let campaign = campaign_of(&hello.header)?;
    let kernels = nfp_workloads::all_kernels(&hello.preset.build())?;
    let kernel = kernels
        .iter()
        .find(|k| k.name == hello.header.kernel)
        .ok_or_else(|| {
            violation(format!(
                "lease names kernel {:?}, which the {} preset does not contain",
                hello.header.kernel,
                hello.preset.name()
            ))
        })?;
    let mode = Mode::from_suffix(hello.header.mode).ok_or_else(|| violation("bad mode"))?;
    let (rig, space) = CampaignRig::prepare(kernel, mode, &campaign)?;
    let faults = plan(&space, campaign.injections, campaign.seed);
    Ok(ConnectRig {
        header: hello.header.clone(),
        preset: hello.preset,
        campaign,
        rig,
        faults,
    })
}

/// How one TCP session with the coordinator ended.
enum SessionEnd {
    /// The coordinator said goodbye: clean exit, no reconnect.
    Bye,
    /// The connection (or the coordinator) failed; reconnect with
    /// backoff. `leases` counts leases completed this session — any
    /// progress resets the consecutive-failure budget.
    Lost { leases: u64, detail: String },
}

/// Why a lease could not be completed.
enum LeaseFail {
    /// The transport failed mid-lease: reconnect and let the
    /// coordinator re-dispatch the shard.
    Send(String),
    /// A deterministic error (unknown kernel, golden mismatch, replay
    /// error): reconnecting would hit it again, so the worker reports
    /// it and exits.
    Fatal(NfpError),
}

/// Test-only saboteur knobs for `repro worker --connect`: lie on a
/// deterministic `rate` fraction of records, keyed by `seed` and the
/// plan index. A lying worker flips only the recorded *outcome* — the
/// fault fields, CRC, and fin digest all cover the falsified record, so
/// every transport-level integrity check passes and only redundant
/// re-execution (the audit tier) can catch it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LiePlan {
    /// Fraction of records to falsify, in `[0, 1]`.
    pub rate: f64,
    /// Seed decorrelating this liar's choices from the audit sampler.
    pub seed: u64,
}

impl LiePlan {
    /// Whether this plan falsifies the record at `index` — a pure
    /// function of `(seed, index)` so reconnects and retries lie
    /// identically, which keeps the liar's fin digests self-consistent.
    pub(crate) fn lies_at(self, index: usize) -> bool {
        // Same 53-bit uniform-fraction construction as the coordinator's
        // audit sampler; the salt keeps seed 0 from degenerating.
        let x = splitmix64(self.seed ^ (index as u64) ^ 0x5ab0_7a9e_11e5_eed1);
        ((x >> 11) as f64) / ((1u64 << 53) as f64) < self.rate
    }
}

/// A stable per-worker identity sent in the join frame: pid in the high
/// bits (decorrelates a fleet of processes), a process-global sequence
/// starting at 1 in the low bits (decorrelates threads sharing a pid —
/// the in-process chaos tests run several workers per test binary).
/// Never 0: zero is the wire's "peer sent no identity" sentinel and is
/// exempt from blacklisting.
fn fresh_wid() -> u64 {
    static SEQ: AtomicU64 = AtomicU64::new(1);
    (u64::from(std::process::id()) << 20) | (SEQ.fetch_add(1, Ordering::Relaxed) & 0xf_ffff)
}

/// The `repro worker --connect <addr>` entry point: joins a
/// coordinator over TCP, executes shard leases until told goodbye, and
/// survives coordinator restarts with capped jittered backoff. Returns
/// the process exit code — 0 after a `bye`, 1 on a fatal error or an
/// exhausted reconnect budget.
pub fn run_worker_connect(addr: &str, max_retries: u32) -> i32 {
    run_worker_connect_with(addr, max_retries, None)
}

/// [`run_worker_connect`] with an optional [`LiePlan`] — the test-only
/// `--lie-rate`/`--lie-seed` saboteur that returns plausible
/// wrong-but-CRC-valid outcomes to exercise the coordinator's audit
/// tier over a live socket.
pub fn run_worker_connect_with(addr: &str, max_retries: u32, lies: Option<LiePlan>) -> i32 {
    // Jitter key: no campaign seed exists before a lease arrives, and
    // reconnect timing never influences results — the pid decorrelates
    // a fleet of workers launched together.
    let seed = u64::from(std::process::id());
    let wid = fresh_wid();
    if let Some(l) = lies {
        eprintln!(
            "worker: SABOTEUR enabled — lying on ~{:.0}% of records (seed {:#x}, wid {wid})",
            l.rate * 100.0,
            l.seed
        );
    }
    let mut reconnects = 0u64;
    let mut failures = 0u32;
    let mut cache: Option<ConnectRig> = None;
    loop {
        match connect_session(addr, reconnects, wid, lies, &mut cache) {
            Ok(SessionEnd::Bye) => {
                eprintln!("worker: coordinator said goodbye; exiting");
                return 0;
            }
            Ok(SessionEnd::Lost { leases, detail }) => {
                if leases > 0 {
                    failures = 0;
                }
                failures += 1;
                if failures > max_retries {
                    let e = NfpError::Net {
                        addr: addr.to_string(),
                        detail: format!(
                            "gave up after {max_retries} consecutive failed connections: {detail}"
                        ),
                    };
                    eprintln!("worker: {e}");
                    return 1;
                }
                eprintln!(
                    "worker: connection lost ({detail}); reconnect attempt \
                     {failures}/{max_retries} after backoff"
                );
                backoff_sleep(seed, 0, failures, &AtomicBool::new(false));
                reconnects += 1;
            }
            Err(e) => {
                eprintln!("worker: fatal: {e}");
                return 1;
            }
        }
    }
}

pub(crate) fn tcp_connect(addr: &str) -> Result<TcpStream, String> {
    let addrs = addr
        .to_socket_addrs()
        .map_err(|e| format!("cannot resolve '{addr}': {e}"))?;
    let mut last = format!("'{addr}' resolved to no addresses");
    for sa in addrs {
        match TcpStream::connect_timeout(&sa, CONNECT_TIMEOUT) {
            Ok(s) => return Ok(s),
            Err(e) => last = format!("connect to {sa} failed: {e}"),
        }
    }
    Err(last)
}

/// One TCP session: connect, join, then serve leases until the stream
/// dies or the coordinator says goodbye. `Err` is fatal; everything
/// transport-shaped comes back as [`SessionEnd::Lost`].
fn connect_session(
    addr: &str,
    reconnects: u64,
    wid: u64,
    lies: Option<LiePlan>,
    cache: &mut Option<ConnectRig>,
) -> Result<SessionEnd, NfpError> {
    let lost = |leases: u64, detail: String| Ok(SessionEnd::Lost { leases, detail });
    let mut stream = match tcp_connect(addr) {
        Ok(s) => s,
        Err(detail) => return lost(0, detail),
    };
    let _ = stream.set_nodelay(true);
    let io_lost = |what: &str, e: std::io::Error| format!("{what}: {e}");
    if let Err(e) = stream.set_read_timeout(Some(READ_TICK)) {
        return lost(0, io_lost("set read timeout", e));
    }
    if let Err(e) = stream.set_write_timeout(Some(WRITE_TIMEOUT)) {
        return lost(0, io_lost("set write timeout", e));
    }
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(e) => return lost(0, io_lost("clone stream", e)),
    };
    let join = JoinFrame {
        preset: cache.as_ref().map_or(WorkerPreset::Quick, |c| c.preset),
        reconnects,
        wid,
    };
    if let Err(e) = send(&writer, &render_join(&join)) {
        return lost(0, io_lost("send join", e));
    }

    // Unlike the stdin worker's busy-gated heartbeat, this one keeps
    // beating *through* replays: over TCP the coordinator revokes
    // silent leases, so only a real freeze (SIGSTOP, death, scheduler
    // starvation) may silence the worker — a slow replay must not.
    let alive = Arc::new(AtomicBool::new(true));
    let hb_ms = Arc::new(AtomicU64::new(DEFAULT_HEARTBEAT_MS));
    {
        let (alive, hb_ms, writer) = (Arc::clone(&alive), Arc::clone(&hb_ms), Arc::clone(&writer));
        std::thread::spawn(move || {
            while alive.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(hb_ms.load(Ordering::Relaxed).max(1)));
                if !alive.load(Ordering::Relaxed) || send(&writer, HB_FRAME).is_err() {
                    break;
                }
            }
        });
    }
    let _alive = Alive(Arc::clone(&alive));

    let mut reader = FrameReader::new(addr);
    let mut leases = 0u64;
    let mut idle = Instant::now();
    loop {
        match reader.recv(&mut stream) {
            Err(e) => return lost(leases, e.to_string()),
            Ok(Recv::Eof) => return lost(leases, "coordinator closed the connection".to_string()),
            Ok(Recv::Idle) => {
                if idle.elapsed() > COORD_SILENCE {
                    return lost(
                        leases,
                        format!(
                            "coordinator silent for {}s while idle",
                            COORD_SILENCE.as_secs()
                        ),
                    );
                }
            }
            Ok(Recv::Frame(line)) => {
                idle = Instant::now();
                let Some(obj) = parse_flat(&line).map(Obj) else {
                    return lost(
                        leases,
                        format!("unparseable frame from coordinator: {line:?}"),
                    );
                };
                match obj.str("kind") {
                    Some("hb") => {}
                    Some("bye") => return Ok(SessionEnd::Bye),
                    Some("hello") => {
                        let hello = match parse_hello(&line) {
                            Ok(h) => h,
                            Err(e) => {
                                let _ = send(&writer, &render_error(&e.to_string()));
                                return Err(e);
                            }
                        };
                        hb_ms.store(hello.heartbeat_ms.max(1), Ordering::Relaxed);
                        match execute_lease(&hello, cache, lies, &writer) {
                            Ok(()) => {
                                leases += 1;
                                idle = Instant::now();
                            }
                            Err(LeaseFail::Send(detail)) => return lost(leases, detail),
                            Err(LeaseFail::Fatal(e)) => {
                                let _ = send(&writer, &render_error(&e.to_string()));
                                return Err(e);
                            }
                        }
                    }
                    other => {
                        return lost(
                            leases,
                            format!("unknown frame kind {other:?} from coordinator"),
                        )
                    }
                }
            }
        }
    }
}

/// Executes one shard lease: (re)build the deterministic rig if the
/// campaign binding changed, cross-check the golden count, replay the
/// leased range in plan order, and stream journal-identical record
/// lines followed by a digest-carrying fin.
fn execute_lease(
    hello: &WorkerHello,
    cache: &mut Option<ConnectRig>,
    lies: Option<LiePlan>,
    writer: &Mutex<TcpStream>,
) -> Result<(), LeaseFail> {
    let stale = !cache
        .as_ref()
        .is_some_and(|c| c.header.same_campaign(&hello.header) && c.preset == hello.preset);
    if stale {
        // Drop the old rig before building its replacement: two full
        // rigs of different campaigns never need to coexist.
        *cache = None;
        eprintln!(
            "worker: building rig for '{}' ({} injections, seed {:#x})",
            hello.header.kernel, hello.header.injections, hello.header.seed
        );
        *cache = Some(build_rig(hello).map_err(LeaseFail::Fatal)?);
    }
    let c = cache.as_mut().expect("rig built above");
    if c.rig.golden_instret != hello.header.golden_instret {
        return Err(LeaseFail::Fatal(violation(format!(
            "golden instruction count mismatch: coordinator expects {}, this worker's rig ran {} \
             — preset or kernel registry skew between the two binaries",
            hello.header.golden_instret, c.rig.golden_instret
        ))));
    }
    let (start, end) = hello.header.range();
    if start > end || end > c.faults.len() {
        return Err(LeaseFail::Fatal(violation(format!(
            "lease range {start}..{end} does not fit the {}-injection plan",
            c.faults.len()
        ))));
    }
    let send_or = |frame: &str, what: &str| {
        send(writer, frame).map_err(|e| LeaseFail::Send(format!("{what}: {e}")))
    };
    send_or(&render_ready(c.rig.golden_instret), "send ready")?;
    eprintln!(
        "worker: leased shard {} of {} (injections {start}..{end})",
        hello.header.shard_index, hello.header.shard_count
    );

    let mut slots: Vec<Option<(InjectionRecord, u32)>> = vec![None; c.faults.len()];
    // An index loop, not an iterator: the body rebuilds `c` (and with
    // it `c.faults`) when a replay panics mid-range.
    #[allow(clippy::needless_range_loop)]
    for index in start..end {
        let fault = c.faults[index];
        if hello.abort_at == Some(index as u64) {
            // Test hook: die the way a heap-corrupting harness bug
            // would — no unwinding, no goodbye frame.
            std::process::abort();
        }
        let mut attempts = 0u32;
        let record = loop {
            attempts += 1;
            let wall = c.campaign.wall;
            let run = catch_unwind(AssertUnwindSafe(|| {
                if hello.spin_at == Some(index as u64) {
                    replay_spinning(&mut c.rig, &fault, wall)
                } else {
                    c.rig.run_one(&fault, wall)
                }
            }));
            match run {
                Ok(Ok(rec)) => break rec,
                Ok(Err(e)) => return Err(LeaseFail::Fatal(e)),
                Err(_) => {
                    // The panicked rig may hold a half-armed fault:
                    // replace it before judging whether to retry —
                    // exactly the supervisor's thread-worker policy,
                    // so quarantine decisions stay byte-identical.
                    match catch_unwind(AssertUnwindSafe(|| build_rig(hello))) {
                        Ok(Ok(fresh)) => *c = fresh,
                        _ => {
                            return Err(LeaseFail::Fatal(violation(format!(
                                "replay of injection {index} panicked and the rig could not \
                                 be rebuilt"
                            ))))
                        }
                    }
                    if attempts >= 2 {
                        eprintln!(
                            "worker: quarantined injection {index} after {attempts} attempts"
                        );
                        break quarantine_record(fault);
                    }
                }
            }
        };
        let record = match lies {
            // The lie happens *before* the record line, the slot fill,
            // and therefore the fin digest: the saboteur's CRC, stream,
            // and digest are all internally consistent — only a second
            // opinion from a disjoint worker can expose it.
            Some(l) if l.lies_at(index) => falsify(record),
            _ => record,
        };
        send_or(&record_line(index, &record, attempts), "send record")?;
        slots[index] = Some((record, attempts));
    }
    let fin = FinRecord {
        records: (end - start) as u64,
        range_start: start as u64,
        range_end: end as u64,
        digest: range_digest(&slots, (start, end)),
    };
    send_or(&fin_line(&fin), "send fin")?;
    Ok(())
}

/// Falsifies one record the way a subtly-broken (or malicious) worker
/// would: the fault fields stay truthful — they are what the
/// coordinator cross-checks against its own plan — and only the
/// *outcome* flips to a plausible neighbour. Masked becomes SDC (a
/// false alarm that inflates the vulnerability factor); everything else
/// collapses to masked (a cover-up that deflates it).
fn falsify(mut record: InjectionRecord) -> InjectionRecord {
    record.outcome = match record.outcome {
        Outcome::Masked => Outcome::Sdc,
        _ => Outcome::Masked,
    };
    record
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfp_sim::FaultTarget;

    fn hello() -> WorkerHello {
        WorkerHello {
            header: JournalHeader {
                kernel: "fse_img00".to_string(),
                mode: "float",
                injections: 24,
                seed: 0xfeed_5eed,
                checkpoints: 8,
                dispatch: Dispatch::Traced,
                escalation: 2,
                wall_ms: Some(400),
                golden_instret: 123_456,
                shard_index: 1,
                shard_count: 4,
                range_start: 6,
                range_end: 12,
            },
            preset: WorkerPreset::Quick,
            heartbeat_ms: 200,
            spin_at: None,
            abort_at: Some(5),
        }
    }

    #[test]
    fn hello_roundtrips() {
        let h = hello();
        assert_eq!(parse_hello(&render_hello(&h)).unwrap(), h);
        let plain = WorkerHello {
            spin_at: Some(3),
            abort_at: None,
            ..hello()
        };
        assert_eq!(parse_hello(&render_hello(&plain)).unwrap(), plain);
    }

    #[test]
    fn version_mismatch_handshake_is_a_protocol_violation() {
        let v2 = render_hello(&hello()).replacen("\"v\":1", "\"v\":2", 1);
        match parse_hello(&v2) {
            Err(NfpError::ProtocolViolation { detail }) => {
                assert!(detail.contains("version"), "detail: {detail}");
                assert!(detail.contains("v2"), "detail: {detail}");
            }
            other => panic!("expected ProtocolViolation, got {other:?}"),
        }
        // A frame that is not a hello at all is also a violation.
        assert!(parse_hello(HB_FRAME).is_err());
    }

    #[test]
    fn oversized_frame_is_a_protocol_violation() {
        let line = vec![b'x'; MAX_LINE + 10];
        match read_frame(&mut &line[..]) {
            Err(NfpError::ProtocolViolation { detail }) => {
                assert!(detail.contains("oversized"), "detail: {detail}");
            }
            other => panic!("expected ProtocolViolation, got {other:?}"),
        }
        // Exactly at the cap (plus the newline) still passes.
        let mut max = vec![b'y'; MAX_LINE];
        max.push(b'\n');
        assert_eq!(read_frame(&mut &max[..]).unwrap().unwrap().len(), MAX_LINE);
    }

    #[test]
    fn truncated_frame_is_a_protocol_violation() {
        // A peer that died mid-write leaves a newline-less tail.
        match read_frame(&mut &b"{\"kind\":\"hb\""[..]) {
            Err(NfpError::ProtocolViolation { detail }) => {
                assert!(detail.contains("truncated"), "detail: {detail}");
            }
            other => panic!("expected ProtocolViolation, got {other:?}"),
        }
        // Invalid UTF-8 cannot become a frame either.
        assert!(read_frame(&mut &b"\xff\xfe\n"[..]).is_err());
        // And a closed stream between frames is a clean EOF, not an error.
        assert_eq!(read_frame(&mut &b""[..]).unwrap(), None);
    }

    #[test]
    fn truncated_json_inside_a_frame_is_a_protocol_violation() {
        for bad in ["{\"kind\":\"done\",\"i\":3", "{\"kind\":\"done\",\"i\":}"] {
            assert!(
                matches!(parse_reply(bad), Err(NfpError::ProtocolViolation { .. })),
                "accepted: {bad:?}"
            );
        }
        // Structurally valid JSON with missing done fields is equally dead.
        assert!(parse_reply("{\"kind\":\"done\",\"i\":3}").is_err());
        assert!(parse_reply("{\"kind\":\"warp\"}").is_err());
    }

    #[test]
    fn out_of_order_done_is_a_protocol_violation() {
        check_index(3, 3).unwrap();
        match check_index(7, 3) {
            Err(NfpError::ProtocolViolation { detail }) => {
                assert!(detail.contains("out-of-order"), "detail: {detail}");
                assert!(
                    detail.contains('7') && detail.contains('3'),
                    "detail: {detail}"
                );
            }
            other => panic!("expected ProtocolViolation, got {other:?}"),
        }
    }

    #[test]
    fn replies_roundtrip() {
        assert_eq!(
            parse_reply(&render_ready(99)).unwrap(),
            Reply::Ready { golden_instret: 99 }
        );
        assert_eq!(parse_reply(HB_FRAME).unwrap(), Reply::Hb);
        let nasty = "panic: \"quoted\"\nwith newline";
        assert_eq!(
            parse_reply(&render_error(nasty)).unwrap(),
            Reply::Error {
                detail: nasty.to_string()
            }
        );
        let record = InjectionRecord {
            fault: Fault {
                at: 8_317,
                target: FaultTarget::Ram {
                    addr: 0x4100_0040,
                    bit: 31,
                },
            },
            category: Some(Category::MemLoad),
            outcome: Outcome::Sdc,
        };
        assert_eq!(
            parse_reply(&render_done(7, &record)).unwrap(),
            Reply::Done { index: 7, record }
        );
    }

    #[test]
    fn run_frames_roundtrip() {
        assert_eq!(parse_run(&render_run(41)).unwrap(), 41);
        assert!(parse_run("{\"kind\":\"hb\"}").is_err());
        assert!(parse_run("{\"kind\":\"run\"}").is_err());
    }

    #[test]
    fn lie_plans_are_deterministic_and_hit_the_requested_fraction() {
        let plan = LiePlan {
            rate: 0.25,
            seed: 9,
        };
        let first: Vec<bool> = (0..4096).map(|i| plan.lies_at(i)).collect();
        let second: Vec<bool> = (0..4096).map(|i| plan.lies_at(i)).collect();
        assert_eq!(first, second, "lie decisions must be pure");
        let hits = first.iter().filter(|&&b| b).count();
        assert!(
            (700..=1350).contains(&hits),
            "rate 0.25 over 4096 indices hit {hits} times"
        );
        let always = LiePlan { rate: 1.0, seed: 9 };
        assert!((0..256).all(|i| always.lies_at(i)));
        let never = LiePlan { rate: 0.0, seed: 9 };
        assert!(!(0..256).any(|i| never.lies_at(i)));
        // A different seed reshuffles which indices are lied about.
        let other = LiePlan {
            rate: 0.25,
            seed: 10,
        };
        assert_ne!(
            first,
            (0..4096).map(|i| other.lies_at(i)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn falsified_records_flip_only_the_outcome() {
        let truth = InjectionRecord {
            fault: Fault {
                at: 8_317,
                target: FaultTarget::Ram {
                    addr: 0x4100_0040,
                    bit: 31,
                },
            },
            category: Some(Category::MemLoad),
            outcome: Outcome::Masked,
        };
        let lie = falsify(truth.clone());
        assert_eq!(lie.outcome, Outcome::Sdc, "masked inflates to SDC");
        assert_eq!(lie.fault, truth.fault, "fault fields stay truthful");
        assert_eq!(lie.category, truth.category);
        for covered in [
            Outcome::Sdc,
            Outcome::Trap,
            Outcome::Hang,
            Outcome::HarnessFault,
        ] {
            let rec = InjectionRecord {
                outcome: covered,
                ..truth.clone()
            };
            assert_eq!(
                falsify(rec).outcome,
                Outcome::Masked,
                "{covered:?} covers up"
            );
        }
    }

    #[test]
    fn fresh_wids_are_unique_and_never_the_unattributable_zero() {
        let a = fresh_wid();
        let b = fresh_wid();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(
            a, b,
            "two workers in one process must be attributable apart"
        );
        assert_eq!(
            a >> 20,
            u64::from(std::process::id()),
            "pid in the high bits"
        );
    }
}
