//! Recursive-descent parser for the mini-C dialect.
//!
//! Grammar (precedence climbing for expressions):
//!
//! ```text
//! unit       := (global | function)*
//! function   := type ident '(' params ')' block
//! global     := type ident ('[' int ']')? ('=' init)? ';'
//! init       := literal | '{' literal (',' literal)* '}'
//! stmt       := decl | if | while | for | return | break | continue
//!             | block | expr ';'
//! ```

use crate::ast::*;
use crate::lexer::{lex, LexError, Tok, Token};
use std::fmt;

/// Parse error with source line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            line: e.line,
        }
    }
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

type PResult<T> = Result<T, ParseError>;

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> PResult<T> {
        Err(ParseError {
            message: message.into(),
            line: self.line(),
        })
    }

    fn expect(&mut self, want: Tok) -> PResult<()> {
        if *self.peek() == want {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {want:?}, found {:?}", self.peek()))
        }
    }

    fn eat(&mut self, want: Tok) -> bool {
        if *self.peek() == want {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> PResult<String> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    /// Parses a base type keyword followed by `*`s; `None` if the next
    /// token does not start a type.
    fn try_type(&mut self) -> Option<Type> {
        let base = match self.peek() {
            Tok::KwVoid => Type::Void,
            Tok::KwUChar => Type::UChar,
            Tok::KwInt => Type::Int,
            Tok::KwUInt => Type::UInt,
            Tok::KwU64 => Type::U64,
            Tok::KwDouble => Type::Double,
            _ => return None,
        };
        self.bump();
        let mut ty = base;
        while self.eat(Tok::Star) {
            ty = ty.ptr();
        }
        Some(ty)
    }

    fn type_required(&mut self) -> PResult<Type> {
        match self.try_type() {
            Some(t) => Ok(t),
            None => self.err(format!("expected a type, found {:?}", self.peek())),
        }
    }

    // ---- expressions ----

    fn expr(&mut self) -> PResult<Expr> {
        self.assignment()
    }

    fn assignment(&mut self) -> PResult<Expr> {
        let lhs = self.ternary()?;
        let op = match self.peek() {
            Tok::Assign => None,
            Tok::PlusAssign => Some(BinOp::Add),
            Tok::MinusAssign => Some(BinOp::Sub),
            Tok::StarAssign => Some(BinOp::Mul),
            Tok::SlashAssign => Some(BinOp::Div),
            Tok::PercentAssign => Some(BinOp::Rem),
            Tok::AmpAssign => Some(BinOp::And),
            Tok::PipeAssign => Some(BinOp::Or),
            Tok::CaretAssign => Some(BinOp::Xor),
            Tok::ShlAssign => Some(BinOp::Shl),
            Tok::ShrAssign => Some(BinOp::Shr),
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.assignment()?;
        let rhs = match op {
            // Compound assignment desugars to `lhs = lhs op rhs`; the
            // lvalue is duplicated, which is fine because the dialect
            // has no side-effecting lvalue expressions.
            Some(op) => Expr::Binary(op, Box::new(lhs.clone()), Box::new(rhs)),
            None => rhs,
        };
        Ok(Expr::Assign(Box::new(lhs), Box::new(rhs)))
    }

    fn ternary(&mut self) -> PResult<Expr> {
        let cond = self.binary(0)?;
        if self.eat(Tok::Question) {
            let a = self.expr()?;
            self.expect(Tok::Colon)?;
            let b = self.ternary()?;
            Ok(Expr::Ternary(Box::new(cond), Box::new(a), Box::new(b)))
        } else {
            Ok(cond)
        }
    }

    /// Precedence levels, loosest first.
    fn binop_at(&self, level: u8) -> Option<BinOp> {
        let op = match (level, self.peek()) {
            (0, Tok::OrOr) => BinOp::LogOr,
            (1, Tok::AndAnd) => BinOp::LogAnd,
            (2, Tok::Pipe) => BinOp::Or,
            (3, Tok::Caret) => BinOp::Xor,
            (4, Tok::Amp) => BinOp::And,
            (5, Tok::EqEq) => BinOp::Eq,
            (5, Tok::NotEq) => BinOp::Ne,
            (6, Tok::Lt) => BinOp::Lt,
            (6, Tok::Le) => BinOp::Le,
            (6, Tok::Gt) => BinOp::Gt,
            (6, Tok::Ge) => BinOp::Ge,
            (7, Tok::Shl) => BinOp::Shl,
            (7, Tok::Shr) => BinOp::Shr,
            (8, Tok::Plus) => BinOp::Add,
            (8, Tok::Minus) => BinOp::Sub,
            (9, Tok::Star) => BinOp::Mul,
            (9, Tok::Slash) => BinOp::Div,
            (9, Tok::Percent) => BinOp::Rem,
            _ => return None,
        };
        Some(op)
    }

    fn binary(&mut self, level: u8) -> PResult<Expr> {
        if level > 9 {
            return self.unary();
        }
        let mut lhs = self.binary(level + 1)?;
        while let Some(op) = self.binop_at(level) {
            self.bump();
            let rhs = self.binary(level + 1)?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> PResult<Expr> {
        match self.peek() {
            Tok::Minus => {
                self.bump();
                Ok(Expr::Unary(UnOp::Neg, Box::new(self.unary()?)))
            }
            Tok::Tilde => {
                self.bump();
                Ok(Expr::Unary(UnOp::Not, Box::new(self.unary()?)))
            }
            Tok::Bang => {
                self.bump();
                Ok(Expr::Unary(UnOp::LogNot, Box::new(self.unary()?)))
            }
            Tok::Star => {
                self.bump();
                Ok(Expr::Deref(Box::new(self.unary()?)))
            }
            Tok::Amp => {
                self.bump();
                Ok(Expr::AddrOf(Box::new(self.unary()?)))
            }
            Tok::LParen => {
                // Either a cast or a parenthesised expression.
                let save = self.pos;
                self.bump();
                if let Some(ty) = self.try_type() {
                    if self.eat(Tok::RParen) {
                        return Ok(Expr::Cast(ty, Box::new(self.unary()?)));
                    }
                }
                self.pos = save;
                self.postfix()
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> PResult<Expr> {
        let mut e = self.primary()?;
        loop {
            if self.eat(Tok::LBracket) {
                let idx = self.expr()?;
                self.expect(Tok::RBracket)?;
                e = Expr::Index(Box::new(e), Box::new(idx));
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> PResult<Expr> {
        let line = self.line();
        match self.bump() {
            Tok::Int(v) => Ok(Expr::IntLit(v)),
            Tok::UInt(v) => Ok(Expr::UIntLit(v)),
            Tok::Float(v) => Ok(Expr::FloatLit(v)),
            Tok::Ident(name) => {
                if self.eat(Tok::LParen) {
                    let mut args = Vec::new();
                    if !self.eat(Tok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.eat(Tok::RParen) {
                                break;
                            }
                            self.expect(Tok::Comma)?;
                        }
                    }
                    Ok(Expr::Call(name, args))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            other => Err(ParseError {
                message: format!("expected expression, found {other:?}"),
                line,
            }),
        }
    }

    // ---- statements ----

    fn block(&mut self) -> PResult<Vec<Stmt>> {
        self.expect(Tok::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat(Tok::RBrace) {
            if *self.peek() == Tok::Eof {
                return self.err("unterminated block");
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> PResult<Stmt> {
        let line = self.line();
        match self.peek() {
            Tok::LBrace => Ok(Stmt::Block(self.block()?)),
            Tok::KwIf => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                let then_branch = self.stmt_as_block()?;
                let else_branch = if self.eat(Tok::KwElse) {
                    self.stmt_as_block()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                    line,
                })
            }
            Tok::KwWhile => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                let body = self.stmt_as_block()?;
                Ok(Stmt::While { cond, body, line })
            }
            Tok::KwFor => {
                self.bump();
                self.expect(Tok::LParen)?;
                let init = if self.eat(Tok::Semi) {
                    None
                } else {
                    let s = self.decl_or_expr_stmt()?;
                    Some(Box::new(s))
                };
                let cond = if *self.peek() == Tok::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(Tok::Semi)?;
                let step = if *self.peek() == Tok::RParen {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(Tok::RParen)?;
                let body = self.stmt_as_block()?;
                Ok(Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                    line,
                })
            }
            Tok::KwReturn => {
                self.bump();
                let value = if *self.peek() == Tok::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(Tok::Semi)?;
                Ok(Stmt::Return(value, line))
            }
            Tok::KwBreak => {
                self.bump();
                self.expect(Tok::Semi)?;
                Ok(Stmt::Break(line))
            }
            Tok::KwContinue => {
                self.bump();
                self.expect(Tok::Semi)?;
                Ok(Stmt::Continue(line))
            }
            _ => self.decl_or_expr_stmt(),
        }
    }

    fn stmt_as_block(&mut self) -> PResult<Vec<Stmt>> {
        if *self.peek() == Tok::LBrace {
            self.block()
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    /// Declaration or expression statement, consuming the trailing `;`.
    fn decl_or_expr_stmt(&mut self) -> PResult<Stmt> {
        let line = self.line();
        if let Some(ty) = self.try_type() {
            let name = self.ident()?;
            if self.eat(Tok::LBracket) {
                let len = match self.bump() {
                    Tok::Int(v) if v > 0 && v <= (1 << 24) => v as u32,
                    other => {
                        return self.err(format!(
                            "array length must be a positive integer literal, found {other:?}"
                        ))
                    }
                };
                self.expect(Tok::RBracket)?;
                self.expect(Tok::Semi)?;
                return Ok(Stmt::ArrayDecl {
                    elem: ty,
                    name,
                    len,
                    line,
                });
            }
            let init = if self.eat(Tok::Assign) {
                Some(self.expr()?)
            } else {
                None
            };
            self.expect(Tok::Semi)?;
            return Ok(Stmt::Decl {
                ty,
                name,
                init,
                line,
            });
        }
        let e = self.expr()?;
        self.expect(Tok::Semi)?;
        Ok(Stmt::Expr(e, line))
    }

    // ---- top level ----

    fn literal_init(&mut self) -> PResult<(f64, i64, bool)> {
        let neg = self.eat(Tok::Minus);
        match self.bump() {
            Tok::Int(v) => Ok((0.0, if neg { -v } else { v }, false)),
            Tok::UInt(v) => Ok((0.0, if neg { -(v as i64) } else { v as i64 }, false)),
            Tok::Float(v) => Ok((if neg { -v } else { v }, 0, true)),
            other => self.err(format!("expected literal initialiser, found {other:?}")),
        }
    }

    fn unit(&mut self) -> PResult<Unit> {
        let mut unit = Unit::default();
        while *self.peek() != Tok::Eof {
            let line = self.line();
            let ty = self.type_required()?;
            let name = self.ident()?;
            if self.eat(Tok::LParen) {
                // function definition
                let mut params = Vec::new();
                if !self.eat(Tok::RParen) {
                    loop {
                        let pty = self.type_required()?;
                        let pname = self.ident()?;
                        params.push(Param {
                            ty: pty,
                            name: pname,
                        });
                        if self.eat(Tok::RParen) {
                            break;
                        }
                        self.expect(Tok::Comma)?;
                    }
                }
                let body = self.block()?;
                unit.functions.push(Function {
                    ret: ty,
                    name,
                    params,
                    body,
                    line,
                });
                continue;
            }
            // global variable
            if ty == Type::Void {
                return self.err("global of type void");
            }
            let (count, is_array) = if self.eat(Tok::LBracket) {
                let len = match self.bump() {
                    Tok::Int(v) if v > 0 && v <= (1 << 24) => v as u32,
                    other => {
                        return self.err(format!(
                            "array length must be a positive integer literal, found {other:?}"
                        ))
                    }
                };
                self.expect(Tok::RBracket)?;
                (len, true)
            } else {
                (1, false)
            };
            let init = if self.eat(Tok::Assign) {
                if self.eat(Tok::LBrace) {
                    let mut items = Vec::new();
                    loop {
                        items.push(self.literal_init()?);
                        if self.eat(Tok::RBrace) {
                            break;
                        }
                        self.expect(Tok::Comma)?;
                        // allow trailing comma
                        if self.eat(Tok::RBrace) {
                            break;
                        }
                    }
                    if !is_array {
                        return self.err("brace initialiser on a scalar global");
                    }
                    if items.len() as u32 > count {
                        return self.err(format!(
                            "too many initialisers ({} for array of {count})",
                            items.len()
                        ));
                    }
                    GlobalInit::List(items)
                } else {
                    let (fv, iv, is_f) = self.literal_init()?;
                    if is_array {
                        return self.err("array global needs a brace initialiser");
                    }
                    GlobalInit::Scalar(fv, iv, is_f)
                }
            } else {
                GlobalInit::Zero
            };
            self.expect(Tok::Semi)?;
            unit.globals.push(Global {
                ty,
                name,
                count,
                is_array,
                init,
                line,
            });
        }
        Ok(unit)
    }
}

/// Parses a translation unit from source text.
pub fn parse(source: &str) -> PResult<Unit> {
    let toks = lex(source)?;
    let mut p = Parser { toks, pos: 0 };
    p.unit()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> Unit {
        parse(src).expect("parse failed")
    }

    #[test]
    fn function_with_params() {
        let u = parse_ok("int add(int a, int b) { return a + b; }");
        assert_eq!(u.functions.len(), 1);
        let f = &u.functions[0];
        assert_eq!(f.name, "add");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.ret, Type::Int);
        assert!(matches!(f.body[0], Stmt::Return(Some(_), _)));
    }

    #[test]
    fn precedence() {
        let u = parse_ok("int f() { return 1 + 2 * 3; }");
        match &u.functions[0].body[0] {
            Stmt::Return(Some(Expr::Binary(BinOp::Add, _, rhs)), _) => {
                assert!(matches!(**rhs, Expr::Binary(BinOp::Mul, _, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cast_vs_parens() {
        let u = parse_ok("int f(int x) { return (int)(x) + (x); }");
        match &u.functions[0].body[0] {
            Stmt::Return(Some(Expr::Binary(BinOp::Add, lhs, _)), _) => {
                assert!(matches!(**lhs, Expr::Cast(Type::Int, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn pointer_types_and_deref() {
        let u = parse_ok("uint f(uchar* p, double** q) { return *p; }");
        assert_eq!(u.functions[0].params[0].ty, Type::UChar.ptr());
        assert_eq!(u.functions[0].params[1].ty, Type::Double.ptr().ptr());
    }

    #[test]
    fn globals() {
        let u = parse_ok(
            "int x = 5;\nuint mask = 0xffu;\ndouble pi = 3.25;\nint tbl[4] = {1, -2, 3};\nuchar buf[64];",
        );
        assert_eq!(u.globals.len(), 5);
        assert_eq!(u.globals[0].init, GlobalInit::Scalar(0.0, 5, false));
        assert_eq!(u.globals[2].init, GlobalInit::Scalar(3.25, 0, true));
        match &u.globals[3].init {
            GlobalInit::List(items) => assert_eq!(items[1], (0.0, -2, false)),
            other => panic!("{other:?}"),
        }
        assert_eq!(u.globals[4].init, GlobalInit::Zero);
        assert_eq!(u.globals[4].count, 64);
    }

    #[test]
    fn control_flow() {
        let u = parse_ok(
            "void f(int n) { for (int i = 0; i < n; i = i + 1) { if (i == 3) break; else continue; } while (n) n = n - 1; }",
        );
        assert!(matches!(u.functions[0].body[0], Stmt::For { .. }));
        assert!(matches!(u.functions[0].body[1], Stmt::While { .. }));
    }

    #[test]
    fn compound_assign_desugars() {
        let u = parse_ok("void f(int a) { a += 2; }");
        match &u.functions[0].body[0] {
            Stmt::Expr(Expr::Assign(lhs, rhs), _) => {
                assert!(matches!(**lhs, Expr::Var(_)));
                assert!(matches!(**rhs, Expr::Binary(BinOp::Add, _, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn ternary_and_logical() {
        parse_ok("int f(int a, int b) { return a && b ? a | b : a ^ ~b; }");
    }

    #[test]
    fn array_indexing_chain() {
        parse_ok("int f(int* p) { return p[1] + p[2]; }");
    }

    #[test]
    fn errors_are_reported_with_lines() {
        let e = parse("int f() {\n return 1 +; \n}").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(parse("int f( { }").is_err());
        assert!(parse("int a[0];").is_err());
        assert!(parse("double d = {1.0};").is_err());
    }

    #[test]
    fn multiline_block_comment() {
        parse_ok("/* multi\nline\ncomment */ int x = 1;");
    }
}
