//! Textual disassembly, in GNU `as` style.
//!
//! This is the "disassembler" stage of the paper's Fig. 2 — used for
//! simulator debug output and for human-readable compiler dumps.

use crate::insn::{Instr, MemSize, Operand};
use std::fmt;

struct Op2(Operand);

impl fmt::Display for Op2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "{v}"),
        }
    }
}

/// Formats `[rs1 + op2]` address syntax, eliding zero offsets.
struct Addr(crate::Reg, Operand);

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.1 {
            Operand::Imm(0) => write!(f, "[{}]", self.0),
            Operand::Imm(v) if v < 0 => write!(f, "[{} - {}]", self.0, -(v as i64)),
            _ => write!(f, "[{} + {}]", self.0, Op2(self.1)),
        }
    }
}

/// Disassembles one instruction. `pc` is used to resolve PC-relative
/// branch/call targets to absolute addresses.
pub fn disassemble(instr: &Instr, pc: u32) -> String {
    use Instr::*;
    match *instr {
        i if i.is_nop() => "nop".to_string(),
        Sethi { rd, imm22 } => format!("sethi %hi(0x{:x}), {rd}", imm22 << 10),
        Branch {
            cond,
            annul,
            disp22,
        } => {
            let target = pc.wrapping_add((disp22 as u32).wrapping_mul(4));
            format!("b{cond}{} 0x{target:x}", if annul { ",a" } else { "" })
        }
        FBranch {
            cond,
            annul,
            disp22,
        } => {
            let target = pc.wrapping_add((disp22 as u32).wrapping_mul(4));
            format!("fb{cond}{} 0x{target:x}", if annul { ",a" } else { "" })
        }
        Call { disp30 } => {
            let target = pc.wrapping_add((disp30 as u32).wrapping_mul(4));
            format!("call 0x{target:x}")
        }
        Alu { op, rd, rs1, op2 } => {
            format!("{} {rs1}, {}, {rd}", op.mnemonic(), Op2(op2))
        }
        Jmpl { rd, rs1, op2 } => format!("jmpl {rs1} + {}, {rd}", Op2(op2)),
        RdY { rd } => format!("rd %y, {rd}"),
        WrY { rs1, op2 } => format!("wr {rs1}, {}, %y", Op2(op2)),
        Save { rd, rs1, op2 } => format!("save {rs1}, {}, {rd}", Op2(op2)),
        Restore { rd, rs1, op2 } => format!("restore {rs1}, {}, {rd}", Op2(op2)),
        Ticc { cond, rs1, op2 } => format!("t{cond} {rs1} + {}", Op2(op2)),
        Flush { rs1, op2 } => format!("flush {rs1} + {}", Op2(op2)),
        Load {
            size,
            signed,
            rd,
            rs1,
            op2,
        } => {
            let m = match (size, signed) {
                (MemSize::Word, _) => "ld",
                (MemSize::Double, _) => "ldd",
                (MemSize::Byte, false) => "ldub",
                (MemSize::Byte, true) => "ldsb",
                (MemSize::Half, false) => "lduh",
                (MemSize::Half, true) => "ldsh",
            };
            format!("{m} {}, {rd}", Addr(rs1, op2))
        }
        Store { size, rd, rs1, op2 } => {
            let m = match size {
                MemSize::Word => "st",
                MemSize::Double => "std",
                MemSize::Byte => "stb",
                MemSize::Half => "sth",
            };
            format!("{m} {rd}, {}", Addr(rs1, op2))
        }
        LoadF {
            double,
            rd,
            rs1,
            op2,
        } => format!(
            "{} {}, {rd}",
            if double { "ldd" } else { "ld" },
            Addr(rs1, op2)
        ),
        StoreF {
            double,
            rd,
            rs1,
            op2,
        } => format!(
            "{} {rd}, {}",
            if double { "std" } else { "st" },
            Addr(rs1, op2)
        ),
        FpOp { op, rd, rs1, rs2 } => {
            if op.is_unary() {
                format!("{} {rs2}, {rd}", op.mnemonic())
            } else {
                format!("{} {rs1}, {rs2}, {rd}", op.mnemonic())
            }
        }
        FCmp {
            double,
            exception,
            rs1,
            rs2,
        } => {
            let m = match (double, exception) {
                (false, false) => "fcmps",
                (true, false) => "fcmpd",
                (false, true) => "fcmpes",
                (true, true) => "fcmped",
            };
            format!("{m} {rs1}, {rs2}")
        }
        Unimp { const22 } => format!("unimp 0x{const22:x}"),
        Illegal { word } => format!(".word 0x{word:08x} ! illegal"),
    }
}

/// Disassembles a code region, one line per word, with addresses.
pub fn disassemble_block(words: &[u32], base: u32) -> String {
    use std::fmt::Write;
    let mut out = String::with_capacity(words.len() * 32);
    for (i, &w) in words.iter().enumerate() {
        let pc = base + (i as u32) * 4;
        let instr = crate::decode(w);
        writeln!(out, "{pc:08x}:  {w:08x}  {}", disassemble(&instr, pc)).unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cond::ICond;
    use crate::insn::AluOp;
    use crate::regs::{FReg, Reg};

    #[test]
    fn representative_text() {
        assert_eq!(disassemble(&Instr::NOP, 0), "nop");
        assert_eq!(
            disassemble(
                &Instr::Alu {
                    op: AluOp::Add,
                    rd: Reg::o(1),
                    rs1: Reg::o(0),
                    op2: Operand::Imm(42),
                },
                0
            ),
            "add %o0, 42, %o1"
        );
        assert_eq!(
            disassemble(
                &Instr::Branch {
                    cond: ICond::Ne,
                    annul: true,
                    disp22: -1,
                },
                0x100
            ),
            "bne,a 0xfc"
        );
        assert_eq!(
            disassemble(
                &Instr::Load {
                    size: MemSize::Word,
                    signed: false,
                    rd: Reg::l(0),
                    rs1: Reg::o(0),
                    op2: Operand::Imm(-4),
                },
                0
            ),
            "ld [%o0 - 4], %l0"
        );
        assert_eq!(
            disassemble(
                &Instr::FpOp {
                    op: crate::insn::FpOp::FSqrtD,
                    rd: FReg::new(2),
                    rs1: FReg::new(0),
                    rs2: FReg::new(4),
                },
                0
            ),
            "fsqrtd %f4, %f2"
        );
    }

    #[test]
    fn block_lines_carry_addresses() {
        let words = [0x0100_0000u32, 0x0100_0000];
        let text = disassemble_block(&words, 0x4000_0000);
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("40000000:"));
        assert!(lines[1].starts_with("40000004:"));
        assert!(lines[0].ends_with("nop"));
    }
}
