//! Report-rendering tests over fabricated results (no simulation), plus
//! a smoke test of the full report path on a tiny kernel.

use nfp_bench::{report_fig4, report_table3, report_table4, KernelResult, Mode};
use nfp_core::Estimate;
use nfp_testbed::{HwTotals, Measurement};

fn result(
    base: &str,
    mode: Mode,
    t_meas: f64,
    e_meas: f64,
    t_est: f64,
    e_est: f64,
) -> KernelResult {
    KernelResult {
        name: format!("{base}_{}", mode.suffix()),
        base_name: base.to_string(),
        mode,
        counts: vec![0; 9],
        estimate: Estimate {
            time_s: t_est,
            energy_j: e_est,
        },
        measured: Measurement {
            time_s: t_meas,
            energy_j: e_meas,
        },
        totals: HwTotals::default(),
        instret: 1,
    }
}

#[test]
fn table3_report_contains_summary_lines() {
    let results = vec![
        result("fse_a", Mode::Float, 1.0, 1.0, 1.02, 0.99),
        result("fse_a", Mode::Fixed, 10.0, 10.0, 9.7, 10.2),
    ];
    let text = report_table3(&results);
    assert!(text.contains("TABLE III"));
    assert!(text.contains("Mean absolute error"));
    assert!(text.contains("Maximum absolute error"));
    assert!(text.contains("M = 2"));
    assert!(text.contains("paper: 2.68%"));
}

#[test]
fn table4_report_computes_signed_changes() {
    let results = vec![
        result("fse_a", Mode::Fixed, 10.0, 20.0, 0.0, 0.0),
        result("fse_a", Mode::Float, 1.0, 2.0, 0.0, 0.0),
        result("hevc_b", Mode::Fixed, 2.0, 4.0, 0.0, 0.0),
        result("hevc_b", Mode::Float, 1.0, 2.0, 0.0, 0.0),
    ];
    let text = report_table4(&results);
    assert!(text.contains("TABLE IV"));
    // FSE: -90 % both; HEVC: -50 % both.
    assert!(text.contains("-90.0%"), "{text}");
    assert!(text.contains("-50.0%"), "{text}");
    assert!(text.contains("logical elements"));
}

#[test]
fn fig4_report_lists_each_kernel_with_errors() {
    let results = vec![result("hevc_x", Mode::Float, 2.0, 3.0, 1.9, 3.15)];
    let text = report_fig4(&results);
    assert!(text.contains("hevc_x_float"));
    assert!(text.contains("-5.00%")); // time error
    assert!(text.contains("5.00%")); // energy error
}

#[test]
fn kernel_result_error_helpers() {
    let r = result("k", Mode::Float, 100.0, 200.0, 103.0, 194.0);
    assert!((r.time_error() - 0.03).abs() < 1e-12);
    assert!((r.energy_error() + 0.03).abs() < 1e-12);
}
