//! Fault-tolerant sharded campaigns: split a fault plan into contiguous
//! injection ranges, run each range as an independent supervised
//! sub-campaign with its own journal, and merge the per-shard journals
//! into one report byte-identical to a sequential same-seed run.
//!
//! The safety argument rests on two properties the rest of the crate
//! already guarantees:
//!
//! * **Determinism** — a campaign is a pure function of (kernel, mode,
//!   config). Two executions of the same shard produce byte-identical
//!   records, so a lost shard can be re-executed, and a straggling one
//!   speculatively duplicated with first-valid-result-wins, without any
//!   risk of the winner mattering.
//! * **Cheap verification** — every journal record carries a CRC-32 of
//!   its canonical rendering, every completed journal ends with a
//!   summary record binding the covered range and a plan-order digest,
//!   and every header binds the full campaign identity plus the shard's
//!   slice of the plan. Distrusting a shard therefore costs one
//!   streaming pass over its journal, not a re-simulation.
//!
//! [`run_sharded`] orchestrates: dispatch every shard, quarantine and
//! re-dispatch the ones that fail (capped deterministic backoff, a
//! retry budget per shard), speculatively duplicate stragglers, and
//! finally [`merge_journals`] — which re-validates *everything* and
//! rejects binding mismatches, CRC failures, range gaps/overlaps, and
//! duplicate records with typed [`NfpError`]s. With
//! [`ShardConfig::allow_partial`] a shard that exhausts its budget
//! degrades the report to explicit missing ranges instead of failing
//! the campaign.

use crate::backoff::backoff_sleep;
use crate::campaign::{assemble, CampaignConfig, CampaignResult, CampaignRig, InjectionRecord};
use crate::evaluation::Mode;
use crate::supervisor::{
    load_journal, parse_header, run_supervised, JournalHeader, SupervisorConfig, SupervisorOutcome,
};
use nfp_core::NfpError;
use nfp_sim::fault::plan;
use nfp_workloads::Kernel;
use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// One shard's identity: which contiguous slice of the plan it owns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// Shard index, `0..count`.
    pub index: u32,
    /// Total shard count of the campaign.
    pub count: u32,
}

impl ShardSpec {
    /// This shard's injection range under the deterministic balanced
    /// split of an `injections`-entry plan.
    pub fn range(self, injections: usize) -> (usize, usize) {
        shard_range(injections, self.index, self.count)
    }
}

/// The deterministic balanced split: shard `index` of `count` owns
/// `[injections·index/count, injections·(index+1)/count)`. Contiguous,
/// disjoint, exhaustive, and sizes differ by at most one — every party
/// (supervisor, worker, merge) recomputes the same split, which is what
/// lets the merge treat a journal's claimed range as a checkable fact
/// rather than a trusted input.
pub(crate) fn shard_range(injections: usize, index: u32, count: u32) -> (usize, usize) {
    let count = u128::from(count.max(1));
    let i = u128::from(index).min(count - 1);
    let n = injections as u128;
    ((n * i / count) as usize, (n * (i + 1) / count) as usize)
}

/// Empties every filled slot in `range`, returning how many were
/// dropped. The distrust path of the audit tier: records produced by a
/// convicted worker leave the in-memory plan (and, rewritten, its
/// records file) before the range is re-dispatched.
pub(crate) fn clear_range<T>(slots: &mut [Option<T>], range: (usize, usize)) -> usize {
    slots[range.0..range.1]
        .iter_mut()
        .filter_map(Option::take)
        .count()
}

/// Parameters for a sharded campaign.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Template for each shard's supervisor. [`SupervisorConfig::journal`]
    /// is the *base* path shard journal names derive from (required);
    /// [`SupervisorConfig::shard`] must be `None` (the orchestrator owns
    /// shard assignment); `resume` is likewise managed per attempt.
    pub supervisor: SupervisorConfig,
    /// Number of shards to split the plan into.
    pub shards: u32,
    /// Re-dispatch budget per shard: how many failed or interrupted
    /// attempts a shard may burn before it is lost. Lost shards fail
    /// the campaign ([`NfpError::ShardLost`]) unless
    /// [`ShardConfig::allow_partial`] is set.
    pub shard_retries: u32,
    /// Straggler deadline: a shard still running past this gets one
    /// speculative duplicate dispatched to a separate journal, and the
    /// first valid result wins. Safe by construction — determinism
    /// makes duplicates byte-equal. `None` disables speculation.
    pub straggler: Option<Duration>,
    /// Degrade to a partial report with explicit missing ranges instead
    /// of failing the campaign when a shard exhausts its retry budget.
    pub allow_partial: bool,
    /// Test hook: `(shard, after_writes, first_attempts)` — attempts
    /// numbered below `first_attempts` of this shard stop accepting
    /// results after `after_writes` journal writes, exactly as if the
    /// shard process had been SIGKILLed with a valid journal on disk.
    #[doc(hidden)]
    pub test_abort_shard: Option<(u32, usize, u32)>,
    /// Test hook: the first attempt of this shard sleeps this long
    /// before starting work, so a short [`ShardConfig::straggler`]
    /// deadline reliably triggers speculation.
    #[doc(hidden)]
    pub test_stall_shard: Option<(u32, Duration)>,
}

impl ShardConfig {
    /// A sharded campaign over `supervisor`'s campaign with default
    /// robustness knobs: two re-dispatches per shard, no speculation,
    /// no partial degradation.
    pub fn new(supervisor: SupervisorConfig, shards: u32) -> Self {
        ShardConfig {
            supervisor,
            shards,
            shard_retries: 2,
            straggler: None,
            allow_partial: false,
            test_abort_shard: None,
            test_stall_shard: None,
        }
    }
}

/// What a sharded campaign produced.
#[derive(Debug)]
pub struct ShardOutcome {
    /// The merged campaign result — byte-identical to a sequential
    /// same-seed run when no ranges are missing.
    pub result: CampaignResult,
    /// Shard count the campaign ran with.
    pub shards: u32,
    /// Worker processes SIGKILLed across all shard attempts.
    pub kills: usize,
    /// Worker processes respawned across all shard attempts.
    pub respawns: usize,
    /// Shard attempts that failed or were interrupted and were
    /// re-dispatched (or written off).
    pub shard_retries: usize,
    /// Straggling shards speculatively duplicated.
    pub speculated: usize,
    /// Injection ranges absent from the merged result (only ever
    /// non-empty with [`ShardConfig::allow_partial`]).
    pub missing_ranges: Vec<(u64, u64)>,
    /// Simulator dispatch counters from the merge's golden run.
    pub dispatch: nfp_sim::DispatchStats,
}

/// What [`merge_journals`] produced.
#[derive(Debug)]
pub struct MergeOutcome {
    /// The merged campaign result.
    pub result: CampaignResult,
    /// Shard count the journal set declared.
    pub shards: u32,
    /// Uncovered injection ranges (only ever non-empty when merging
    /// with `allow_partial`).
    pub missing_ranges: Vec<(u64, u64)>,
    /// Simulator dispatch counters from the merge's golden run.
    pub dispatch: nfp_sim::DispatchStats,
}

/// The canonical journal path for shard `index` of `count` derived from
/// the base path: `c.jsonl` → `c.shard2of4.jsonl`.
pub fn shard_journal_path(base: &Path, index: u32, count: u32) -> PathBuf {
    base.with_extension(format!("shard{index}of{count}.jsonl"))
}

/// The journal path a speculative duplicate of shard `index` writes to
/// (first valid result wins; both paths must exist simultaneously).
fn spec_journal_path(base: &Path, index: u32, count: u32) -> PathBuf {
    base.with_extension(format!("shard{index}of{count}.spec.jsonl"))
}

/// Where a failed shard journal is moved so a fresh attempt can start
/// from a clean path without destroying the evidence.
pub(crate) fn quarantined_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".quarantined");
    PathBuf::from(os)
}

/// Per-shard orchestration state.
struct ShardState {
    /// Journal path of the first valid completed attempt.
    done: Option<PathBuf>,
    /// Set when the retry budget is exhausted under `allow_partial`.
    lost: bool,
    /// Failed or interrupted attempts charged against the budget.
    retries: u32,
    /// Total attempts dispatched (backoff ordinal and hook gate).
    attempts: u32,
    /// Attempts currently in flight (canonical plus speculative).
    in_flight: usize,
    /// Whether a speculative duplicate has been dispatched.
    speculated: bool,
    /// When the most recent attempt was dispatched.
    started: Instant,
}

/// Runs a campaign as `cfg.shards` independent supervised sub-campaigns
/// and merges their journals. Shards whose canonical journals already
/// exist are resumed (a complete journal short-circuits immediately),
/// so re-running the orchestrator after a crash — or after chaos —
/// repairs the campaign instead of redoing it.
pub fn run_sharded(
    kernel: &Kernel,
    mode: Mode,
    cfg: &ShardConfig,
) -> Result<ShardOutcome, NfpError> {
    let Some(base) = cfg.supervisor.journal.clone() else {
        return Err(NfpError::Journal {
            path: "(none)".to_string(),
            reason: "a sharded campaign needs a journal base path".to_string(),
        });
    };
    if cfg.shards == 0 {
        return Err(NfpError::Workload {
            what: "shard orchestrator".to_string(),
            reason: "shard count must be nonzero".to_string(),
        });
    }
    if cfg.supervisor.shard.is_some() {
        return Err(NfpError::Workload {
            what: "shard orchestrator".to_string(),
            reason: "the supervisor template must not pin a shard; the orchestrator assigns them"
                .to_string(),
        });
    }
    let campaign = &cfg.supervisor.campaign;
    let injections = campaign.injections;
    let seed = campaign.seed;

    let (tx, rx) = mpsc::channel::<(u32, PathBuf, Result<SupervisorOutcome, NfpError>)>();
    let done_flags: Vec<Arc<AtomicBool>> = (0..cfg.shards)
        .map(|_| Arc::new(AtomicBool::new(false)))
        .collect();

    // Attempts run on detached threads so a genuinely wedged shard can
    // never hang the orchestrator: losers of a speculation race (and
    // attempts outlasting an error return) die quietly when their send
    // fails or their done flag short-circuits them.
    let dispatch = |shard: u32, journal: PathBuf, resume: bool, attempt: u32| {
        let kernel = kernel.clone();
        let tx = tx.clone();
        let done = Arc::clone(&done_flags[shard as usize]);
        let mut sup = cfg.supervisor.clone();
        sup.journal = Some(journal.clone());
        sup.resume = resume;
        sup.shard = Some(ShardSpec {
            index: shard,
            count: cfg.shards,
        });
        sup.test_abort_after = match cfg.test_abort_shard {
            Some((s, after, first)) if s == shard && attempt < first => Some(after),
            _ => None,
        };
        let stall = match cfg.test_stall_shard {
            Some((s, d)) if s == shard && attempt == 0 => Some(d),
            _ => None,
        };
        std::thread::spawn(move || {
            if let Some(d) = stall {
                std::thread::sleep(d);
            }
            if attempt > 0 {
                // Deterministically jittered, capped — shard index
                // doubles as the slot so crash-looping shards do not
                // re-dispatch in lockstep.
                backoff_sleep(seed, shard as usize, attempt, &AtomicBool::new(false));
            }
            if done.load(Ordering::Relaxed) {
                return;
            }
            let outcome = run_supervised(&kernel, mode, &sup);
            let _ = tx.send((shard, journal, outcome));
        });
    };

    let mut states: Vec<ShardState> = (0..cfg.shards)
        .map(|shard| {
            let path = shard_journal_path(&base, shard, cfg.shards);
            // An existing canonical journal is resumed: complete ones
            // short-circuit inside the supervisor, torn ones continue
            // from their intact prefix, corrupt ones fail the attempt
            // and flow through quarantine + fresh re-dispatch below.
            let resume = path.exists();
            dispatch(shard, path, resume, 0);
            ShardState {
                done: None,
                lost: false,
                retries: 0,
                attempts: 1,
                in_flight: 1,
                speculated: false,
                started: Instant::now(),
            }
        })
        .collect();

    let mut kills = 0usize;
    let mut respawns = 0usize;
    let mut total_retries = 0usize;
    let mut speculated = 0usize;

    while states.iter().any(|s| s.done.is_none() && !s.lost) {
        match rx.recv_timeout(Duration::from_millis(25)) {
            Ok((shard, path, result)) => {
                let idx = shard as usize;
                states[idx].in_flight = states[idx].in_flight.saturating_sub(1);
                if states[idx].done.is_some() || states[idx].lost {
                    continue; // late loser of a speculation race
                }
                match result {
                    Ok(o) if !o.aborted => {
                        kills += o.kills;
                        respawns += o.respawns;
                        states[idx].done = Some(path);
                        done_flags[idx].store(true, Ordering::Relaxed);
                    }
                    Ok(o) => {
                        // Interrupted mid-run with a valid journal on
                        // disk (the simulated-SIGKILL hook): resume it.
                        kills += o.kills;
                        respawns += o.respawns;
                        if states[idx].in_flight > 0 {
                            continue; // a duplicate attempt is still going
                        }
                        states[idx].retries += 1;
                        total_retries += 1;
                        if states[idx].retries > cfg.shard_retries {
                            let (start, end) = shard_range(injections, shard, cfg.shards);
                            let lost = NfpError::ShardLost {
                                shard,
                                start: start as u64,
                                end: end as u64,
                                detail: "interrupted on every attempt".to_string(),
                            };
                            if !cfg.allow_partial {
                                return Err(lost);
                            }
                            eprintln!("shards: {lost}; continuing under --allow-partial");
                            states[idx].lost = true;
                            continue;
                        }
                        eprintln!(
                            "shards: shard {shard} interrupted; re-dispatching with resume \
                             (retry {} of {})",
                            states[idx].retries, cfg.shard_retries
                        );
                        let attempt = states[idx].attempts;
                        dispatch(shard, path, true, attempt);
                        states[idx].attempts += 1;
                        states[idx].in_flight += 1;
                        states[idx].started = Instant::now();
                    }
                    Err(e) => {
                        // A lost/torn/corrupt attempt: move the journal
                        // aside (evidence, and a clean path for the
                        // fresh attempt) and re-dispatch from scratch.
                        let q = quarantined_path(&path);
                        let _ = std::fs::rename(&path, &q);
                        eprintln!(
                            "shards: shard {shard} attempt failed ({e}); journal quarantined \
                             to {}",
                            q.display()
                        );
                        if states[idx].in_flight > 0 {
                            continue; // a duplicate attempt is still going
                        }
                        states[idx].retries += 1;
                        total_retries += 1;
                        if states[idx].retries > cfg.shard_retries {
                            let (start, end) = shard_range(injections, shard, cfg.shards);
                            let lost = NfpError::ShardLost {
                                shard,
                                start: start as u64,
                                end: end as u64,
                                detail: e.to_string(),
                            };
                            if !cfg.allow_partial {
                                return Err(lost);
                            }
                            eprintln!("shards: {lost}; continuing under --allow-partial");
                            states[idx].lost = true;
                            continue;
                        }
                        let attempt = states[idx].attempts;
                        let fresh = shard_journal_path(&base, shard, cfg.shards);
                        dispatch(shard, fresh, false, attempt);
                        states[idx].attempts += 1;
                        states[idx].in_flight += 1;
                        states[idx].started = Instant::now();
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => break, // unreachable: tx lives here
        }
        if let Some(limit) = cfg.straggler {
            for shard in 0..cfg.shards {
                let s = &mut states[shard as usize];
                if s.done.is_none()
                    && !s.lost
                    && !s.speculated
                    && s.in_flight > 0
                    && s.started.elapsed() >= limit
                {
                    s.speculated = true;
                    speculated += 1;
                    let spec = spec_journal_path(&base, shard, cfg.shards);
                    let _ = std::fs::remove_file(&spec);
                    eprintln!(
                        "shards: shard {shard} straggling past {}ms; speculative duplicate \
                         dispatched (first valid result wins)",
                        limit.as_millis()
                    );
                    let attempt = s.attempts;
                    dispatch(shard, spec, false, attempt);
                    s.attempts += 1;
                    s.in_flight += 1;
                }
            }
        }
    }

    let paths: Vec<PathBuf> = states.iter().filter_map(|s| s.done.clone()).collect();
    let merged = merge_journals(kernel, mode, campaign, &paths, cfg.allow_partial)?;
    Ok(ShardOutcome {
        result: merged.result,
        shards: cfg.shards,
        kills,
        respawns,
        shard_retries: total_retries,
        speculated,
        missing_ranges: merged.missing_ranges,
        dispatch: merged.dispatch,
    })
}

/// Reads a journal's first line and returns the campaign identity it
/// claims: kernel name, mode, and the reconstructed [`CampaignConfig`].
/// The claim is *not* trusted — [`merge_journals`] re-derives the
/// golden run and cross-checks every binding field — but it lets the
/// CLI merge a journal set without re-stating the campaign flags.
pub fn peek_campaign(path: &Path) -> Result<(String, Mode, CampaignConfig), NfpError> {
    let shown = path.display().to_string();
    let err = |reason: String| NfpError::ShardMerge {
        path: shown.clone(),
        reason,
    };
    let file = std::fs::File::open(path).map_err(|e| err(format!("cannot open: {e}")))?;
    let mut first = String::new();
    std::io::BufReader::new(file)
        .read_line(&mut first)
        .map_err(|e| err(format!("read failed: {e}")))?;
    let h =
        parse_header(&first).ok_or_else(|| err("missing or corrupt header line".to_string()))?;
    let mode =
        Mode::from_suffix(h.mode).ok_or_else(|| err("header names an unknown mode".to_string()))?;
    let campaign = CampaignConfig {
        injections: usize::try_from(h.injections)
            .map_err(|_| err("injection count overflows usize".to_string()))?,
        seed: h.seed,
        checkpoints: usize::try_from(h.checkpoints)
            .map_err(|_| err("checkpoint count overflows usize".to_string()))?,
        wall: h.wall_ms.map(Duration::from_millis),
        dispatch: h.dispatch,
        escalation: u32::try_from(h.escalation)
            .map_err(|_| err("escalation overflows u32".to_string()))?,
    };
    Ok((h.kernel, mode, campaign))
}

/// Coalesces the `None` runs of a slot table into `(start, end)` ranges.
pub(crate) fn missing_ranges_of(slots: &[Option<(InjectionRecord, u32)>]) -> Vec<(u64, u64)> {
    let mut out: Vec<(u64, u64)> = Vec::new();
    for (i, slot) in slots.iter().enumerate() {
        if slot.is_some() {
            continue;
        }
        match out.last_mut() {
            Some((_, end)) if *end == i as u64 => *end += 1,
            _ => out.push((i as u64, i as u64 + 1)),
        }
    }
    out
}

fn render_ranges(ranges: &[(u64, u64)]) -> String {
    ranges
        .iter()
        .map(|(s, e)| format!("{s}..{e}"))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Merges per-shard journals into one campaign result after a full
/// integrity pass: every header is cross-checked against the campaign
/// and the deterministic split its claimed shard identity implies,
/// every record's CRC and fault-plan binding is re-verified, shard
/// summaries (count, range, plan-order digest) are recomputed, and the
/// union of ranges is checked for gaps, overlaps, and duplicates.
/// Any violation is a typed [`NfpError`] naming the offending journal —
/// never a panic, never silent acceptance.
pub fn merge_journals(
    kernel: &Kernel,
    mode: Mode,
    campaign: &CampaignConfig,
    paths: &[PathBuf],
    allow_partial: bool,
) -> Result<MergeOutcome, NfpError> {
    let (rig, space) = CampaignRig::prepare(kernel, mode, campaign)?;
    let faults = plan(&space, campaign.injections, campaign.seed);
    let mut slots: Vec<Option<(InjectionRecord, u32)>> = vec![None; faults.len()];
    let mut shard_count: Option<u32> = None;
    let mut seen: Vec<Option<PathBuf>> = Vec::new();

    for path in paths {
        let shown = path.display().to_string();
        let merge_err = |reason: String| NfpError::ShardMerge {
            path: shown.clone(),
            reason,
        };
        let file = std::fs::File::open(path).map_err(|e| merge_err(format!("cannot open: {e}")))?;
        let mut first = String::new();
        std::io::BufReader::new(file)
            .read_line(&mut first)
            .map_err(|e| merge_err(format!("read failed: {e}")))?;
        let claimed = parse_header(&first)
            .ok_or_else(|| merge_err("missing or corrupt header line".to_string()))?;
        if claimed.shard_count == 0 || claimed.shard_index >= claimed.shard_count {
            return Err(merge_err(format!(
                "header claims shard {} of {}",
                claimed.shard_index, claimed.shard_count
            )));
        }
        match shard_count {
            None => {
                shard_count = Some(claimed.shard_count);
                seen = vec![None; claimed.shard_count as usize];
            }
            Some(n) if n != claimed.shard_count => {
                return Err(merge_err(format!(
                    "shard count disagreement: this journal says {}, earlier journals said {n}",
                    claimed.shard_count
                )));
            }
            Some(_) => {}
        }
        if let Some(prev) = &seen[claimed.shard_index as usize] {
            return Err(merge_err(format!(
                "duplicate shard {}: its range was already merged from '{}'",
                claimed.shard_index,
                prev.display()
            )));
        }
        seen[claimed.shard_index as usize] = Some(path.clone());

        // The expected header is *recomputed* from the campaign and the
        // claimed shard identity — so a tampered range, seed, or any
        // other binding field fails here with the field named.
        let expected = JournalHeader::bind(
            kernel,
            mode,
            campaign,
            rig.golden_instret,
            Some(ShardSpec {
                index: claimed.shard_index,
                count: claimed.shard_count,
            }),
        );
        expected.check(&shown, &first)?;

        // Stream the records into the shared slot table. The loader
        // verifies per-record CRCs, fault-plan agreement, in-range
        // indices, duplicates, and the shard summary's count/digest.
        let loaded = load_journal(path, &expected, &faults, &mut slots).map_err(|e| match e {
            NfpError::Journal { path, reason } => NfpError::ShardMerge { path, reason },
            other => other,
        })?;
        if loaded.fin.is_none() && !allow_partial {
            return Err(merge_err(
                "journal lacks its shard summary record — the shard never completed \
                 (re-run it, or merge with --allow-partial)"
                    .to_string(),
            ));
        }
    }

    let missing = missing_ranges_of(&slots);
    if !missing.is_empty() && !allow_partial {
        return Err(NfpError::ShardMerge {
            path: "(journal set)".to_string(),
            reason: format!(
                "range gap: injections {} are covered by no journal",
                render_ranges(&missing)
            ),
        });
    }
    let records: Vec<InjectionRecord> = slots.into_iter().flatten().map(|(r, _)| r).collect();
    Ok(MergeOutcome {
        dispatch: rig.machine.dispatch_stats(),
        result: assemble(kernel, mode, &rig, records),
        shards: shard_count.unwrap_or(0),
        missing_ranges: missing,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_is_contiguous_disjoint_and_exhaustive() {
        for injections in [0usize, 1, 7, 100, 101, 1000] {
            for count in [1u32, 2, 3, 4, 7, 16] {
                let mut next = 0usize;
                for index in 0..count {
                    let (start, end) = shard_range(injections, index, count);
                    assert_eq!(start, next, "{injections} over {count}, shard {index}");
                    assert!(end >= start);
                    next = end;
                }
                assert_eq!(next, injections, "{injections} over {count}");
            }
        }
    }

    #[test]
    fn split_is_balanced() {
        for count in [3u32, 4, 7] {
            let sizes: Vec<usize> = (0..count)
                .map(|i| {
                    let (s, e) = shard_range(100, i, count);
                    e - s
                })
                .collect();
            let min = *sizes.iter().min().unwrap();
            let max = *sizes.iter().max().unwrap();
            assert!(max - min <= 1, "unbalanced: {sizes:?}");
        }
    }

    #[test]
    fn degenerate_specs_are_clamped() {
        // count 0 behaves as 1; an out-of-range index owns the tail.
        assert_eq!(shard_range(10, 0, 0), (0, 10));
        assert_eq!(shard_range(10, 9, 4), (7, 10));
    }

    #[test]
    fn journal_paths_are_derived_from_the_base() {
        let base = PathBuf::from("/tmp/c.jsonl");
        assert_eq!(
            shard_journal_path(&base, 2, 4),
            PathBuf::from("/tmp/c.shard2of4.jsonl")
        );
        assert_eq!(
            spec_journal_path(&base, 2, 4),
            PathBuf::from("/tmp/c.shard2of4.spec.jsonl")
        );
        assert_eq!(
            quarantined_path(&shard_journal_path(&base, 2, 4)),
            PathBuf::from("/tmp/c.shard2of4.jsonl.quarantined")
        );
    }

    #[test]
    fn missing_ranges_coalesce() {
        let rec = || {
            Some((
                InjectionRecord {
                    fault: nfp_sim::Fault {
                        at: 0,
                        target: nfp_sim::FaultTarget::Icc { bit: 0 },
                    },
                    category: None,
                    outcome: nfp_core::Outcome::Masked,
                },
                1,
            ))
        };
        let slots = vec![None, None, rec(), None, rec(), None, None];
        assert_eq!(missing_ranges_of(&slots), vec![(0, 2), (3, 4), (5, 7)]);
        assert_eq!(render_ranges(&[(0, 2), (5, 7)]), "0..2, 5..7");
        assert!(missing_ranges_of(&[rec(), rec()]).is_empty());
    }
}
