//! Expression, condition, and statement generation plus the
//! per-function driver. See `mod.rs` for the overall strategy.

use super::*;

/// Integer branch condition for a comparison operator.
fn icond_for(op: BinOp, unsigned: bool) -> ICond {
    match (op, unsigned) {
        (BinOp::Lt, false) => ICond::L,
        (BinOp::Le, false) => ICond::Le,
        (BinOp::Gt, false) => ICond::G,
        (BinOp::Ge, false) => ICond::Ge,
        (BinOp::Lt, true) => ICond::Cs,
        (BinOp::Le, true) => ICond::Leu,
        (BinOp::Gt, true) => ICond::Gu,
        (BinOp::Ge, true) => ICond::Cc,
        (BinOp::Eq, _) => ICond::E,
        (BinOp::Ne, _) => ICond::Ne,
        _ => unreachable!("not a comparison"),
    }
}

/// FP branch condition for a comparison operator.
fn fcond_for(op: BinOp) -> FCond {
    match op {
        BinOp::Lt => FCond::L,
        BinOp::Le => FCond::Le,
        BinOp::Gt => FCond::G,
        BinOp::Ge => FCond::Ge,
        BinOp::Eq => FCond::E,
        BinOp::Ne => FCond::Ne,
        _ => unreachable!("not a comparison"),
    }
}

impl<'a> FnGen<'a> {
    // ---- loads and stores by type ----

    /// Loads a value of `ty` from `[base + off]`.
    fn load_from(&mut self, base: Reg, off: i32, ty: &Type) -> GResult<Loc> {
        match self.width_of(ty) {
            Width::W => {
                let r = self.alloc_word()?;
                let (size, signed) = match ty {
                    Type::UChar => (MemSize::Byte, false),
                    _ => (MemSize::Word, false),
                };
                self.e.push(Instr::Load {
                    size,
                    signed,
                    rd: r,
                    rs1: base,
                    op2: Operand::Imm(off),
                });
                Ok(Loc::W(r))
            }
            Width::Pair => {
                let hi = self.alloc_word()?;
                let lo = self.alloc_word()?;
                self.e.push(Instr::Load {
                    size: MemSize::Word,
                    signed: false,
                    rd: hi,
                    rs1: base,
                    op2: Operand::Imm(off),
                });
                self.e.push(Instr::Load {
                    size: MemSize::Word,
                    signed: false,
                    rd: lo,
                    rs1: base,
                    op2: Operand::Imm(off + 4),
                });
                Ok(Loc::Pair(hi, lo))
            }
            Width::F => {
                let f = self.alloc_fpair()?;
                self.e.push(Instr::LoadF {
                    double: true,
                    rd: f,
                    rs1: base,
                    op2: Operand::Imm(off),
                });
                Ok(Loc::F(f))
            }
        }
    }

    /// Stores `val` (of type `ty`) to `[base + off]`, returning the
    /// value of the assignment expression.
    fn store_to(&mut self, base: Reg, off: i32, ty: &Type, val: Loc) -> GResult<Loc> {
        match self.width_of(ty) {
            Width::W => {
                let r = self.ensure_w(val)?;
                let size = match ty {
                    Type::UChar => MemSize::Byte,
                    _ => MemSize::Word,
                };
                self.e.push(Instr::Store {
                    size,
                    rd: r,
                    rs1: base,
                    op2: Operand::Imm(off),
                });
                if *ty == Type::UChar {
                    // The value of a uchar assignment is the truncated
                    // byte.
                    self.e.alu(AluOp::And, r, 0xff, r);
                }
                Ok(Loc::W(r))
            }
            Width::Pair => {
                let (hi, lo) = self.ensure_pair(val)?;
                self.e.push(Instr::Store {
                    size: MemSize::Word,
                    rd: hi,
                    rs1: base,
                    op2: Operand::Imm(off),
                });
                self.e.push(Instr::Store {
                    size: MemSize::Word,
                    rd: lo,
                    rs1: base,
                    op2: Operand::Imm(off + 4),
                });
                Ok(Loc::Pair(hi, lo))
            }
            Width::F => {
                let f = self.ensure_f(val)?;
                self.e.push(Instr::StoreF {
                    double: true,
                    rd: f,
                    rs1: base,
                    op2: Operand::Imm(off),
                });
                Ok(Loc::F(f))
            }
        }
    }

    /// Moves a hard-mode double's raw bits into an integer pair.
    fn f_to_bits(&mut self, loc: Loc) -> GResult<Loc> {
        let f = self.ensure_f(loc)?;
        self.e.push(Instr::StoreF {
            double: true,
            rd: f,
            rs1: SP,
            op2: Operand::Imm(SCRATCH_OFF as i32),
        });
        self.free_fpairs.push(f);
        let hi = self.alloc_word()?;
        let lo = self.alloc_word()?;
        self.ld_frame(hi, SCRATCH_OFF, MemSize::Word, false);
        self.ld_frame(lo, SCRATCH_OFF + 4, MemSize::Word, false);
        Ok(Loc::Pair(hi, lo))
    }

    /// Moves an integer pair's bits into an FPU double register.
    fn bits_to_f(&mut self, loc: Loc) -> GResult<Loc> {
        let (hi, lo) = self.ensure_pair(loc)?;
        self.st_frame(hi, SCRATCH_OFF, MemSize::Word);
        self.st_frame(lo, SCRATCH_OFF + 4, MemSize::Word);
        self.free_words.push(hi);
        self.free_words.push(lo);
        let f = self.alloc_fpair()?;
        self.e.push(Instr::LoadF {
            double: true,
            rd: f,
            rs1: SP,
            op2: Operand::Imm(SCRATCH_OFF as i32),
        });
        Ok(Loc::F(f))
    }

    // ---- expressions ----

    /// Evaluates `e`, pushing its value. Returns `false` for `void`
    /// calls, which push nothing.
    fn gen_expr(&mut self, e: &Typed) -> GResult<bool> {
        match &e.kind {
            TKind::ConstWord(v) => {
                self.push_loc(Loc::ImmW(*v));
                Ok(true)
            }
            TKind::ConstU64(v) => {
                self.push_loc(Loc::ImmPair(*v));
                Ok(true)
            }
            TKind::ConstDouble(d) => {
                self.push_loc(Loc::ImmPair(d.to_bits()));
                Ok(true)
            }
            TKind::Local(id) => {
                let off = self.local_off[*id];
                let ty = self.func.locals[*id].ty.clone();
                let (base, imm) = self.frame_addr(off);
                let loc = self.load_from(base, imm, &ty)?;
                self.push_loc(loc);
                Ok(true)
            }
            TKind::Global(name) => {
                let addr = self.alloc_word()?;
                self.e.load_sym(name, addr);
                let loc = self.load_from(addr, 0, &e.ty)?;
                self.free_words.push(addr);
                self.push_loc(loc);
                Ok(true)
            }
            TKind::AddrLocal(id) => {
                let off = self.local_off[*id];
                let r = self.alloc_word()?;
                if off <= 4095 {
                    self.e.alu(AluOp::Add, SP, off as i32, r);
                } else {
                    self.e.set32(off, r);
                    self.e.alu(AluOp::Add, SP, r, r);
                }
                self.push_loc(Loc::W(r));
                Ok(true)
            }
            TKind::AddrGlobal(name) => {
                let r = self.alloc_word()?;
                self.e.load_sym(name, r);
                self.push_loc(Loc::W(r));
                Ok(true)
            }
            TKind::Load(addr) => {
                self.gen_expr(addr)?;
                let a = self.pop_loc();
                let r = self.ensure_w(a)?;
                let loc = self.load_from(r, 0, &e.ty)?;
                self.free_words.push(r);
                self.push_loc(loc);
                Ok(true)
            }
            TKind::Unary(op, inner) => {
                self.gen_unary(*op, inner, &e.ty)?;
                Ok(true)
            }
            TKind::Binary(op, a, b) => {
                if op.is_comparison() || matches!(op, BinOp::LogAnd | BinOp::LogOr) {
                    let r = self.materialize_cond(e)?;
                    self.push_loc(r);
                } else {
                    let loc = self.gen_binary(*op, a, b, &e.ty)?;
                    self.push_loc(loc);
                }
                Ok(true)
            }
            TKind::Ternary(c, a, b) => {
                self.gen_ternary(c, a, b, &e.ty)?;
                Ok(true)
            }
            TKind::Assign(lv, rhs) => {
                let loc = self.gen_assign(lv, rhs, &e.ty)?;
                self.push_loc(loc);
                Ok(true)
            }
            TKind::Call(name, args) => {
                let result = self.gen_call(name, args, &e.ty)?;
                match result {
                    Some(loc) => {
                        self.push_loc(loc);
                        Ok(true)
                    }
                    None => Ok(false),
                }
            }
            TKind::Cast { from, inner } => {
                self.gen_expr(inner)?;
                let v = self.pop_loc();
                let out = self.gen_cast(from, &e.ty, v)?;
                self.push_loc(out);
                Ok(true)
            }
        }
    }

    /// Evaluates `e` and pops its value (must not be void).
    fn gen_value(&mut self, e: &Typed) -> GResult<Loc> {
        if !self.gen_expr(e)? {
            return self.err("void value used where a value is required");
        }
        Ok(self.pop_loc())
    }

    fn gen_unary(&mut self, op: UnOp, inner: &Typed, ty: &Type) -> GResult<()> {
        match op {
            UnOp::LogNot => {
                // !e is the inverse boolean of e.
                let lt = self.e.new_label();
                let lf = self.e.new_label();
                let end = self.e.new_label();
                let r = self.alloc_word()?;
                self.gen_cond(inner, lf, lt)?; // swapped
                self.e.bind(lt);
                self.e.mov(1, r);
                self.e.ba(end);
                self.e.bind(lf);
                self.e.mov(0, r);
                self.e.bind(end);
                self.push_loc(Loc::W(r));
                Ok(())
            }
            UnOp::Neg => {
                let v = self.gen_value(inner)?;
                match self.width_of(ty) {
                    Width::W => {
                        let r = self.ensure_w(v)?;
                        self.e.alu(AluOp::Sub, G0, r, r);
                        self.push_loc(Loc::W(r));
                    }
                    Width::Pair if *ty == Type::Double => {
                        // Soft-float negate: flip the sign bit.
                        let (hi, lo) = self.ensure_pair(v)?;
                        let m = self.alloc_word()?;
                        self.e.set32(0x8000_0000, m);
                        self.e.alu(AluOp::Xor, hi, m, hi);
                        self.free_words.push(m);
                        self.push_loc(Loc::Pair(hi, lo));
                    }
                    Width::Pair => {
                        let (hi, lo) = self.ensure_pair(v)?;
                        self.e.alu(AluOp::SubCc, G0, lo, lo);
                        self.e.alu(AluOp::SubX, G0, hi, hi);
                        self.push_loc(Loc::Pair(hi, lo));
                    }
                    Width::F => {
                        let f = self.ensure_f(v)?;
                        let fs = f; // in place: negate the high single
                        self.e.push(Instr::FpOp {
                            op: FpOp::FNegS,
                            rd: fs,
                            rs1: FReg::new(0),
                            rs2: fs,
                        });
                        self.push_loc(Loc::F(f));
                    }
                }
                Ok(())
            }
            UnOp::Not => {
                let v = self.gen_value(inner)?;
                match self.width_of(ty) {
                    Width::W => {
                        let r = self.ensure_w(v)?;
                        self.e.alu(AluOp::XNor, r, G0, r);
                        self.push_loc(Loc::W(r));
                    }
                    _ => {
                        let (hi, lo) = self.ensure_pair(v)?;
                        self.e.alu(AluOp::XNor, hi, G0, hi);
                        self.e.alu(AluOp::XNor, lo, G0, lo);
                        self.push_loc(Loc::Pair(hi, lo));
                    }
                }
                Ok(())
            }
        }
    }

    fn gen_ternary(&mut self, c: &Typed, a: &Typed, b: &Typed, ty: &Type) -> GResult<()> {
        let lt = self.e.new_label();
        let lf = self.e.new_label();
        let end = self.e.new_label();
        // Pre-allocate the join location so both arms write the same
        // registers.
        let dst = match self.width_of(ty) {
            Width::W => Loc::W(self.alloc_word()?),
            Width::Pair => {
                let hi = self.alloc_word()?;
                let lo = self.alloc_word()?;
                Loc::Pair(hi, lo)
            }
            Width::F => Loc::F(self.alloc_fpair()?),
        };
        self.gen_cond(c, lt, lf)?;
        self.e.bind(lt);
        let va = self.gen_value(a)?;
        self.move_into(va, dst)?;
        self.e.ba(end);
        self.e.bind(lf);
        let vb = self.gen_value(b)?;
        self.move_into(vb, dst)?;
        self.e.bind(end);
        self.push_loc(dst);
        Ok(())
    }

    /// Moves `src` into the fixed registers of `dst`, freeing `src`.
    fn move_into(&mut self, src: Loc, dst: Loc) -> GResult<()> {
        match dst {
            Loc::W(rd) => match src {
                Loc::ImmW(v) => self.e.set32(v, rd),
                other => {
                    let r = self.ensure_w(other)?;
                    self.e.mov(r, rd);
                    if r != rd {
                        self.free_words.push(r);
                    }
                }
            },
            Loc::Pair(dhi, dlo) => match src {
                Loc::ImmPair(v) => {
                    self.e.set32((v >> 32) as u32, dhi);
                    self.e.set32(v as u32, dlo);
                }
                other => {
                    let (hi, lo) = self.ensure_pair(other)?;
                    self.e.mov(hi, dhi);
                    self.e.mov(lo, dlo);
                    if hi != dhi {
                        self.free_words.push(hi);
                    }
                    if lo != dlo {
                        self.free_words.push(lo);
                    }
                }
            },
            Loc::F(fd) => {
                let f = self.ensure_f(src)?;
                if f != fd {
                    self.e.push(Instr::FpOp {
                        op: FpOp::FMovS,
                        rd: fd,
                        rs1: FReg::new(0),
                        rs2: f,
                    });
                    self.e.push(Instr::FpOp {
                        op: FpOp::FMovS,
                        rd: FReg::new(fd.num() + 1),
                        rs1: FReg::new(0),
                        rs2: FReg::new(f.num() + 1),
                    });
                    self.free_fpairs.push(f);
                }
            }
            other => return self.err(format!("bad move destination {other:?}")),
        }
        Ok(())
    }

    // ---- binary operations ----

    fn gen_binary(&mut self, op: BinOp, a: &Typed, b: &Typed, ty: &Type) -> GResult<Loc> {
        // Pointer arithmetic: scale the integer offset by element size.
        if let Type::Ptr(elem) = &a.ty {
            debug_assert_eq!(op, BinOp::Add);
            self.gen_expr(a)?;
            self.gen_expr(b)?;
            let idx = self.pop_loc();
            let base = self.pop_loc();
            let size = elem.size().max(1);
            let base_r = self.ensure_w(base)?;
            match idx {
                Loc::ImmW(v) => {
                    let byte_off = (v as i32).wrapping_mul(size as i32);
                    if Operand::fits_simm13(byte_off) {
                        self.e.alu(AluOp::Add, base_r, byte_off, base_r);
                    } else {
                        let t = self.alloc_word()?;
                        self.e.set32(byte_off as u32, t);
                        self.e.alu(AluOp::Add, base_r, t, base_r);
                        self.free_words.push(t);
                    }
                }
                other => {
                    let i = self.ensure_w(other)?;
                    match size {
                        1 => {}
                        4 => self.e.alu(AluOp::Sll, i, 2, i),
                        8 => self.e.alu(AluOp::Sll, i, 3, i),
                        s => {
                            let t = self.alloc_word()?;
                            self.e.set32(s, t);
                            self.e.alu(AluOp::SMul, i, t, i);
                            self.free_words.push(t);
                        }
                    }
                    self.e.alu(AluOp::Add, base_r, i, base_r);
                    self.free_words.push(i);
                }
            }
            return Ok(Loc::W(base_r));
        }

        match self.width_of(ty) {
            Width::W => self.gen_binary_word(op, a, b, ty),
            Width::Pair if *ty == Type::Double => self.gen_binary_soft_double(op, a, b),
            Width::Pair => self.gen_binary_u64(op, a, b),
            Width::F => self.gen_binary_hard_double(op, a, b),
        }
    }

    fn gen_binary_word(&mut self, op: BinOp, a: &Typed, b: &Typed, ty: &Type) -> GResult<Loc> {
        self.gen_expr(a)?;
        self.gen_expr(b)?;
        let vb = self.pop_loc();
        let va = self.pop_loc();
        let ra = self.ensure_w(va)?;
        let unsigned = ty.is_unsigned();
        match op {
            BinOp::Add
            | BinOp::Sub
            | BinOp::And
            | BinOp::Or
            | BinOp::Xor
            | BinOp::Shl
            | BinOp::Shr
            | BinOp::Mul => {
                let alu = match op {
                    BinOp::Add => AluOp::Add,
                    BinOp::Sub => AluOp::Sub,
                    BinOp::And => AluOp::And,
                    BinOp::Or => AluOp::Or,
                    BinOp::Xor => AluOp::Xor,
                    BinOp::Shl => AluOp::Sll,
                    BinOp::Shr => {
                        if unsigned {
                            AluOp::Srl
                        } else {
                            AluOp::Sra
                        }
                    }
                    BinOp::Mul => {
                        if unsigned {
                            AluOp::UMul
                        } else {
                            AluOp::SMul
                        }
                    }
                    _ => unreachable!(),
                };
                let (op2, reg) = self.operand_w(vb)?;
                self.e.alu(alu, ra, op2, ra);
                if let Some(r) = reg {
                    self.free_words.push(r);
                }
                Ok(Loc::W(ra))
            }
            BinOp::Div => {
                let (op2, reg) = self.operand_w(vb)?;
                self.emit_divide(ra, op2, unsigned, ra);
                if let Some(r) = reg {
                    self.free_words.push(r);
                }
                Ok(Loc::W(ra))
            }
            BinOp::Rem => {
                // r = a - (a / b) * b
                let rb = self.ensure_w(vb)?;
                let q = self.alloc_word()?;
                self.emit_divide(ra, Operand::Reg(rb), unsigned, q);
                self.e.alu(AluOp::SMul, q, rb, q);
                self.e.alu(AluOp::Sub, ra, q, ra);
                self.free_words.push(q);
                self.free_words.push(rb);
                Ok(Loc::W(ra))
            }
            other => self.err(format!("unexpected word op {other:?}")),
        }
    }

    /// `dst = dividend / divisor` with the mandated `wr %y` setup and
    /// the three architectural delay slots before the divide.
    fn emit_divide(&mut self, dividend: Reg, divisor: Operand, unsigned: bool, dst: Reg) {
        let g5 = Reg::g(5);
        if unsigned {
            self.e.push(Instr::WrY {
                rs1: G0,
                op2: Operand::Imm(0),
            });
        } else {
            self.e.alu(AluOp::Sra, dividend, 31, g5);
            self.e.push(Instr::WrY {
                rs1: g5,
                op2: Operand::Imm(0),
            });
        }
        self.e.nop();
        self.e.nop();
        self.e.nop();
        let op = if unsigned { AluOp::UDiv } else { AluOp::SDiv };
        self.e.alu(op, dividend, divisor, dst);
    }

    fn gen_binary_u64(&mut self, op: BinOp, a: &Typed, b: &Typed) -> GResult<Loc> {
        match op {
            BinOp::Add | BinOp::Sub | BinOp::And | BinOp::Or | BinOp::Xor => {
                self.gen_expr(a)?;
                self.gen_expr(b)?;
                let vb = self.pop_loc();
                let va = self.pop_loc();
                let (ahi, alo) = self.ensure_pair(va)?;
                let (bhi, blo) = self.ensure_pair(vb)?;
                match op {
                    BinOp::Add => {
                        self.e.alu(AluOp::AddCc, alo, blo, alo);
                        self.e.alu(AluOp::AddX, ahi, bhi, ahi);
                    }
                    BinOp::Sub => {
                        self.e.alu(AluOp::SubCc, alo, blo, alo);
                        self.e.alu(AluOp::SubX, ahi, bhi, ahi);
                    }
                    BinOp::And => {
                        self.e.alu(AluOp::And, alo, blo, alo);
                        self.e.alu(AluOp::And, ahi, bhi, ahi);
                    }
                    BinOp::Or => {
                        self.e.alu(AluOp::Or, alo, blo, alo);
                        self.e.alu(AluOp::Or, ahi, bhi, ahi);
                    }
                    BinOp::Xor => {
                        self.e.alu(AluOp::Xor, alo, blo, alo);
                        self.e.alu(AluOp::Xor, ahi, bhi, ahi);
                    }
                    _ => unreachable!(),
                }
                self.free_words.push(bhi);
                self.free_words.push(blo);
                Ok(Loc::Pair(ahi, alo))
            }
            BinOp::Mul | BinOp::Div | BinOp::Rem => {
                let name = match op {
                    BinOp::Mul => "__muldi3",
                    BinOp::Div => "__udivdi3",
                    _ => "__umoddi3",
                };
                self.gen_expr(a)?;
                self.gen_expr(b)?;
                let vb = self.pop_loc();
                let va = self.pop_loc();
                let r = self.emit_call(
                    name,
                    vec![(va, Width::Pair), (vb, Width::Pair)],
                    Some(Width::Pair),
                )?;
                Ok(r.unwrap())
            }
            BinOp::Shl | BinOp::Shr => {
                self.gen_expr(a)?;
                self.gen_expr(b)?;
                let vb = self.pop_loc();
                let va = self.pop_loc();
                if let Loc::ImmW(k) = vb {
                    return self.gen_u64_shift_const(va, op, k & 63);
                }
                let name = if op == BinOp::Shl {
                    "__ashldi3"
                } else {
                    "__lshrdi3"
                };
                let r = self.emit_call(
                    name,
                    vec![(va, Width::Pair), (vb, Width::W)],
                    Some(Width::Pair),
                )?;
                Ok(r.unwrap())
            }
            other => self.err(format!("unexpected u64 op {other:?}")),
        }
    }

    /// Inline u64 shift by a compile-time constant.
    fn gen_u64_shift_const(&mut self, v: Loc, op: BinOp, k: u32) -> GResult<Loc> {
        if let Loc::ImmPair(x) = v {
            let r = match op {
                BinOp::Shl => x.wrapping_shl(k),
                _ => x.wrapping_shr(k),
            };
            return Ok(Loc::ImmPair(r));
        }
        let (hi, lo) = self.ensure_pair(v)?;
        match (op, k) {
            (_, 0) => {}
            (BinOp::Shl, 32) => {
                self.e.mov(lo, hi);
                self.e.mov(0, lo);
            }
            (BinOp::Shl, k) if k > 32 => {
                self.e.alu(AluOp::Sll, lo, (k - 32) as i32, hi);
                self.e.mov(0, lo);
            }
            (BinOp::Shl, k) => {
                let t = self.alloc_word()?;
                self.e.alu(AluOp::Srl, lo, (32 - k) as i32, t);
                self.e.alu(AluOp::Sll, hi, k as i32, hi);
                self.e.alu(AluOp::Or, hi, t, hi);
                self.e.alu(AluOp::Sll, lo, k as i32, lo);
                self.free_words.push(t);
            }
            (BinOp::Shr, 32) => {
                self.e.mov(hi, lo);
                self.e.mov(0, hi);
            }
            (BinOp::Shr, k) if k > 32 => {
                self.e.alu(AluOp::Srl, hi, (k - 32) as i32, lo);
                self.e.mov(0, hi);
            }
            (BinOp::Shr, k) => {
                let t = self.alloc_word()?;
                self.e.alu(AluOp::Sll, hi, (32 - k) as i32, t);
                self.e.alu(AluOp::Srl, lo, k as i32, lo);
                self.e.alu(AluOp::Or, lo, t, lo);
                self.e.alu(AluOp::Srl, hi, k as i32, hi);
                self.free_words.push(t);
            }
            _ => unreachable!(),
        }
        Ok(Loc::Pair(hi, lo))
    }

    fn gen_binary_hard_double(&mut self, op: BinOp, a: &Typed, b: &Typed) -> GResult<Loc> {
        self.gen_expr(a)?;
        self.gen_expr(b)?;
        let vb = self.pop_loc();
        let va = self.pop_loc();
        let fa = self.ensure_f(va)?;
        let fb = self.ensure_f(vb)?;
        let fpop = match op {
            BinOp::Add => FpOp::FAddD,
            BinOp::Sub => FpOp::FSubD,
            BinOp::Mul => FpOp::FMulD,
            BinOp::Div => FpOp::FDivD,
            other => return self.err(format!("unexpected double op {other:?}")),
        };
        self.e.push(Instr::FpOp {
            op: fpop,
            rd: fa,
            rs1: fa,
            rs2: fb,
        });
        self.free_fpairs.push(fb);
        Ok(Loc::F(fa))
    }

    fn gen_binary_soft_double(&mut self, op: BinOp, a: &Typed, b: &Typed) -> GResult<Loc> {
        let name = match op {
            BinOp::Add => "__adddf3",
            BinOp::Sub => "__subdf3",
            BinOp::Mul => "__muldf3",
            BinOp::Div => "__divdf3",
            other => return self.err(format!("unexpected double op {other:?}")),
        };
        self.gen_expr(a)?;
        self.gen_expr(b)?;
        let vb = self.pop_loc();
        let va = self.pop_loc();
        let r = self.emit_call(
            name,
            vec![(va, Width::Pair), (vb, Width::Pair)],
            Some(Width::Pair),
        )?;
        Ok(r.unwrap())
    }

    // ---- conditions ----

    /// Evaluates `e` as a branch: jumps to `lt` when true, `lf` when
    /// false. Leaves the value stack unchanged.
    fn gen_cond(&mut self, e: &Typed, lt: Label, lf: Label) -> GResult<()> {
        match &e.kind {
            TKind::ConstWord(v) => {
                self.e.ba(if *v != 0 { lt } else { lf });
                Ok(())
            }
            TKind::Unary(UnOp::LogNot, inner) => self.gen_cond(inner, lf, lt),
            TKind::Binary(BinOp::LogAnd, a, b) => {
                let mid = self.e.new_label();
                self.gen_cond(a, mid, lf)?;
                self.e.bind(mid);
                self.gen_cond(b, lt, lf)
            }
            TKind::Binary(BinOp::LogOr, a, b) => {
                let mid = self.e.new_label();
                self.gen_cond(a, lt, mid)?;
                self.e.bind(mid);
                self.gen_cond(b, lt, lf)
            }
            TKind::Binary(op, a, b) if op.is_comparison() => self.gen_compare(*op, a, b, lt, lf),
            _ => {
                // Truthiness of a plain value.
                if e.ty == Type::Double {
                    let zero = Typed {
                        ty: Type::Double,
                        kind: TKind::ConstDouble(0.0),
                    };
                    let ne = Typed {
                        ty: Type::Int,
                        kind: TKind::Binary(BinOp::Ne, Box::new(e.clone()), Box::new(zero)),
                    };
                    return self.gen_cond(&ne, lt, lf);
                }
                let v = self.gen_value(e)?;
                match v {
                    Loc::ImmPair(x) => {
                        self.e.ba(if x != 0 { lt } else { lf });
                    }
                    Loc::Pair(..) | Loc::SpillPair(_) => {
                        let (hi, lo) = self.ensure_pair(v)?;
                        self.e.alu(AluOp::OrCc, hi, lo, G0);
                        self.e.branch(ICond::Ne, lt);
                        self.e.ba(lf);
                        self.free_words.push(hi);
                        self.free_words.push(lo);
                    }
                    other => {
                        let r = self.ensure_w(other)?;
                        self.e.cmp(r, 0);
                        self.e.branch(ICond::Ne, lt);
                        self.e.ba(lf);
                        self.free_words.push(r);
                    }
                }
                Ok(())
            }
        }
    }

    fn gen_compare(
        &mut self,
        op: BinOp,
        a: &Typed,
        b: &Typed,
        lt: Label,
        lf: Label,
    ) -> GResult<()> {
        match (&a.ty, self.mode) {
            (Type::U64, _) => self.gen_compare_u64(op, a, b, lt, lf),
            (Type::Double, FloatMode::Hard) => {
                self.gen_expr(a)?;
                self.gen_expr(b)?;
                let vb = self.pop_loc();
                let va = self.pop_loc();
                let fa = self.ensure_f(va)?;
                let fb = self.ensure_f(vb)?;
                self.e.push(Instr::FCmp {
                    double: true,
                    exception: false,
                    rs1: fa,
                    rs2: fb,
                });
                // The architecture requires one instruction between
                // FCMP and FBfcc.
                self.e.nop();
                self.e.fbranch(fcond_for(op), lt);
                self.e.ba(lf);
                self.free_fpairs.push(fa);
                self.free_fpairs.push(fb);
                Ok(())
            }
            (Type::Double, FloatMode::Soft) => {
                // Map onto the runtime predicates (<, <=, ==), possibly
                // with swapped operands or an inverted branch.
                let (name, swap, invert) = match op {
                    BinOp::Lt => ("__dlt", false, false),
                    BinOp::Le => ("__dle", false, false),
                    BinOp::Gt => ("__dlt", true, false),
                    BinOp::Ge => ("__dle", true, false),
                    BinOp::Eq => ("__deq", false, false),
                    BinOp::Ne => ("__deq", false, true),
                    _ => unreachable!(),
                };
                self.gen_expr(a)?;
                self.gen_expr(b)?;
                let vb = self.pop_loc();
                let va = self.pop_loc();
                let (first, second) = if swap { (vb, va) } else { (va, vb) };
                let r = self
                    .emit_call(
                        name,
                        vec![(first, Width::Pair), (second, Width::Pair)],
                        Some(Width::W),
                    )?
                    .unwrap();
                let rr = self.ensure_w(r)?;
                self.e.cmp(rr, 0);
                let (t, f) = if invert { (lf, lt) } else { (lt, lf) };
                self.e.branch(ICond::Ne, t);
                self.e.ba(f);
                self.free_words.push(rr);
                Ok(())
            }
            _ => {
                // Word-sized integers and pointers.
                self.gen_expr(a)?;
                self.gen_expr(b)?;
                let vb = self.pop_loc();
                let va = self.pop_loc();
                let ra = self.ensure_w(va)?;
                let (op2, rb) = self.operand_w(vb)?;
                self.e.cmp(ra, op2);
                self.e.branch(icond_for(op, a.ty.is_unsigned()), lt);
                self.e.ba(lf);
                self.free_words.push(ra);
                if let Some(r) = rb {
                    self.free_words.push(r);
                }
                Ok(())
            }
        }
    }

    fn gen_compare_u64(
        &mut self,
        op: BinOp,
        a: &Typed,
        b: &Typed,
        lt: Label,
        lf: Label,
    ) -> GResult<()> {
        self.gen_expr(a)?;
        self.gen_expr(b)?;
        let vb = self.pop_loc();
        let va = self.pop_loc();
        let (ahi, alo) = self.ensure_pair(va)?;
        let (bhi, blo) = self.ensure_pair(vb)?;
        match op {
            BinOp::Eq | BinOp::Ne => {
                let (t, f) = if op == BinOp::Eq { (lt, lf) } else { (lf, lt) };
                self.e.cmp(ahi, bhi);
                self.e.branch(ICond::Ne, f);
                self.e.cmp(alo, blo);
                self.e.branch(ICond::E, t);
                self.e.ba(f);
            }
            _ => {
                // High words decide unless equal; low words compared
                // unsigned.
                let (hi_less, hi_greater) = match op {
                    BinOp::Lt | BinOp::Le => (lt, lf),
                    _ => (lf, lt),
                };
                let low_cond = match op {
                    BinOp::Lt => ICond::Cs,
                    BinOp::Le => ICond::Leu,
                    BinOp::Gt => ICond::Gu,
                    BinOp::Ge => ICond::Cc,
                    _ => unreachable!(),
                };
                self.e.cmp(ahi, bhi);
                self.e.branch(ICond::Cs, hi_less);
                self.e.branch(ICond::Gu, hi_greater);
                self.e.cmp(alo, blo);
                self.e.branch(low_cond, lt);
                self.e.ba(lf);
            }
        }
        self.free_words.push(ahi);
        self.free_words.push(alo);
        self.free_words.push(bhi);
        self.free_words.push(blo);
        Ok(())
    }

    /// Materialises a boolean expression into a register (0/1).
    fn materialize_cond(&mut self, e: &Typed) -> GResult<Loc> {
        let lt = self.e.new_label();
        let lf = self.e.new_label();
        let end = self.e.new_label();
        let r = self.alloc_word()?;
        self.gen_cond(e, lt, lf)?;
        self.e.bind(lt);
        self.e.mov(1, r);
        self.e.ba(end);
        self.e.bind(lf);
        self.e.mov(0, r);
        self.e.bind(end);
        Ok(Loc::W(r))
    }

    // ---- assignment ----

    fn gen_assign(&mut self, lv: &LValue, rhs: &Typed, ty: &Type) -> GResult<Loc> {
        match lv {
            LValue::Local(id) => {
                let v = self.gen_value(rhs)?;
                let off = self.local_off[*id];
                let (base, imm) = self.frame_addr(off);
                self.store_to(base, imm, ty, v)
            }
            LValue::Global(name) => {
                let v = self.gen_value(rhs)?;
                let addr = self.alloc_word()?;
                self.e.load_sym(name, addr);
                let out = self.store_to(addr, 0, ty, v)?;
                self.free_words.push(addr);
                Ok(out)
            }
            LValue::Mem { addr, elem } => {
                let v = self.gen_value(rhs)?;
                self.push_loc(v); // keep it spill-safe while computing the address
                self.gen_expr(addr)?;
                let a = self.pop_loc();
                let v = self.pop_loc();
                let ar = self.ensure_w(a)?;
                let out = self.store_to(ar, 0, elem, v)?;
                self.free_words.push(ar);
                Ok(out)
            }
        }
    }

    // ---- casts ----

    fn gen_cast(&mut self, from: &Type, to: &Type, v: Loc) -> GResult<Loc> {
        use Type::*;
        if from == to {
            return Ok(v);
        }
        match (from, to) {
            // Word-to-word: only uchar narrowing changes bits.
            (a, UChar) if a.is_word() => {
                if let Loc::ImmW(x) = v {
                    return Ok(Loc::ImmW(x & 0xff));
                }
                let r = self.ensure_w(v)?;
                self.e.alu(AluOp::And, r, 0xff, r);
                Ok(Loc::W(r))
            }
            (a, b) if a.is_word() && b.is_word() => Ok(v),

            // Word to u64.
            (Int, U64) => {
                if let Loc::ImmW(x) = v {
                    return Ok(Loc::ImmPair(x as i32 as i64 as u64));
                }
                let lo = self.ensure_w(v)?;
                let hi = self.alloc_word()?;
                self.e.alu(AluOp::Sra, lo, 31, hi);
                Ok(Loc::Pair(hi, lo))
            }
            (a, U64) if a.is_word() => {
                if let Loc::ImmW(x) = v {
                    return Ok(Loc::ImmPair(x as u64));
                }
                let lo = self.ensure_w(v)?;
                let hi = self.alloc_word()?;
                self.e.mov(0, hi);
                Ok(Loc::Pair(hi, lo))
            }

            // U64 to word.
            (U64, b) if b.is_word() => {
                if let Loc::ImmPair(x) = v {
                    let w = x as u32;
                    return Ok(Loc::ImmW(if *b == UChar { w & 0xff } else { w }));
                }
                let (hi, lo) = self.ensure_pair(v)?;
                self.free_words.push(hi);
                if *b == UChar {
                    self.e.alu(AluOp::And, lo, 0xff, lo);
                }
                Ok(Loc::W(lo))
            }

            // Integer to double.
            (Int, Double) => match self.mode {
                FloatMode::Hard => {
                    let r = self.ensure_w(v)?;
                    self.st_frame(r, SCRATCH_OFF, MemSize::Word);
                    self.free_words.push(r);
                    let f = self.alloc_fpair()?;
                    self.e.push(Instr::LoadF {
                        double: false,
                        rd: f,
                        rs1: SP,
                        op2: Operand::Imm(SCRATCH_OFF as i32),
                    });
                    self.e.push(Instr::FpOp {
                        op: FpOp::FiToD,
                        rd: f,
                        rs1: FReg::new(0),
                        rs2: f,
                    });
                    Ok(Loc::F(f))
                }
                FloatMode::Soft => Ok(self
                    .emit_call("__floatsidf", vec![(v, Width::W)], Some(Width::Pair))?
                    .unwrap()),
            },
            (UChar, Double) => {
                // Always non-negative; the signed path is exact.
                self.gen_cast(&Int, &Double, v)
            }
            (UInt, Double) => match self.mode {
                FloatMode::Hard => {
                    let r = self.ensure_w(v)?;
                    self.st_frame(r, SCRATCH_OFF, MemSize::Word);
                    let f = self.alloc_fpair()?;
                    self.e.push(Instr::LoadF {
                        double: false,
                        rd: f,
                        rs1: SP,
                        op2: Operand::Imm(SCRATCH_OFF as i32),
                    });
                    self.e.push(Instr::FpOp {
                        op: FpOp::FiToD,
                        rd: f,
                        rs1: FReg::new(0),
                        rs2: f,
                    });
                    // If the value had the sign bit set, compensate by
                    // adding 2^32.
                    let done = self.e.new_label();
                    self.e.cmp(r, 0);
                    self.e.branch(ICond::Pos, done);
                    let k = self.ensure_f(Loc::ImmPair(4294967296.0f64.to_bits()))?;
                    self.e.push(Instr::FpOp {
                        op: FpOp::FAddD,
                        rd: f,
                        rs1: f,
                        rs2: k,
                    });
                    self.e.bind(done);
                    self.free_fpairs.push(k);
                    self.free_words.push(r);
                    Ok(Loc::F(f))
                }
                FloatMode::Soft => Ok(self
                    .emit_call("__floatunsidf", vec![(v, Width::W)], Some(Width::Pair))?
                    .unwrap()),
            },
            (U64, Double) => {
                let bits = self
                    .emit_call("__floatundidf", vec![(v, Width::Pair)], Some(Width::Pair))?
                    .unwrap();
                match self.mode {
                    FloatMode::Hard => self.bits_to_f(bits),
                    FloatMode::Soft => Ok(bits),
                }
            }

            // Double to integer (truncating).
            (Double, Int) => match self.mode {
                FloatMode::Hard => {
                    let f = self.ensure_f(v)?;
                    self.e.push(Instr::FpOp {
                        op: FpOp::FdToI,
                        rd: f,
                        rs1: FReg::new(0),
                        rs2: f,
                    });
                    self.e.push(Instr::StoreF {
                        double: false,
                        rd: f,
                        rs1: SP,
                        op2: Operand::Imm(SCRATCH_OFF as i32),
                    });
                    self.free_fpairs.push(f);
                    let r = self.alloc_word()?;
                    self.ld_frame(r, SCRATCH_OFF, MemSize::Word, false);
                    Ok(Loc::W(r))
                }
                FloatMode::Soft => Ok(self
                    .emit_call("__fixdfsi", vec![(v, Width::Pair)], Some(Width::W))?
                    .unwrap()),
            },
            (Double, UInt) => match self.mode {
                FloatMode::Hard => {
                    // if (d < 2^31) (uint)(int)d
                    // else 0x80000000 + (int)(d - 2^31)
                    let fa = self.ensure_f(v)?;
                    let fk = self.ensure_f(Loc::ImmPair(2147483648.0f64.to_bits()))?;
                    let big = self.e.new_label();
                    let done = self.e.new_label();
                    self.e.push(Instr::FCmp {
                        double: true,
                        exception: false,
                        rs1: fa,
                        rs2: fk,
                    });
                    self.e.nop();
                    self.e.fbranch(FCond::Uge, big);
                    // small path
                    self.e.push(Instr::FpOp {
                        op: FpOp::FdToI,
                        rd: fa,
                        rs1: FReg::new(0),
                        rs2: fa,
                    });
                    self.e.push(Instr::StoreF {
                        double: false,
                        rd: fa,
                        rs1: SP,
                        op2: Operand::Imm(SCRATCH_OFF as i32),
                    });
                    let r = self.alloc_word()?;
                    self.ld_frame(r, SCRATCH_OFF, MemSize::Word, false);
                    self.e.ba(done);
                    // big path
                    self.e.bind(big);
                    self.e.push(Instr::FpOp {
                        op: FpOp::FSubD,
                        rd: fa,
                        rs1: fa,
                        rs2: fk,
                    });
                    self.e.push(Instr::FpOp {
                        op: FpOp::FdToI,
                        rd: fa,
                        rs1: FReg::new(0),
                        rs2: fa,
                    });
                    self.e.push(Instr::StoreF {
                        double: false,
                        rd: fa,
                        rs1: SP,
                        op2: Operand::Imm(SCRATCH_OFF as i32),
                    });
                    self.ld_frame(r, SCRATCH_OFF, MemSize::Word, false);
                    let t = Reg::g(5);
                    self.e.push(Instr::Sethi {
                        rd: t,
                        imm22: 0x8000_0000u32 >> 10,
                    });
                    self.e.alu(AluOp::Add, r, t, r);
                    self.e.bind(done);
                    self.free_fpairs.push(fa);
                    self.free_fpairs.push(fk);
                    Ok(Loc::W(r))
                }
                FloatMode::Soft => Ok(self
                    .emit_call("__fixunsdfsi", vec![(v, Width::Pair)], Some(Width::W))?
                    .unwrap()),
            },
            (Double, UChar) => {
                let w = self.gen_cast(&Double, &Int, v)?;
                self.gen_cast(&Int, &UChar, w)
            }
            (Double, U64) => {
                let bits = match self.mode {
                    FloatMode::Hard => self.f_to_bits(v)?,
                    FloatMode::Soft => v,
                };
                Ok(self
                    .emit_call("__fixunsdfdi", vec![(bits, Width::Pair)], Some(Width::Pair))?
                    .unwrap())
            }
            (a, b) => self.err(format!("unsupported cast {a} -> {b}")),
        }
    }

    // ---- calls ----

    fn gen_call(&mut self, name: &str, args: &[Typed], ret: &Type) -> GResult<Option<Loc>> {
        // Compiler intrinsics first.
        match name {
            "putchar" | "emit" => {
                let v = self.gen_value(&args[0])?;
                let r = self.ensure_w(v)?;
                let addr = self.alloc_word()?;
                let dest = if name == "putchar" {
                    CONSOLE_TX
                } else {
                    CONSOLE_EMIT
                };
                self.e.set32(dest, addr);
                self.e.push(Instr::Store {
                    size: MemSize::Word,
                    rd: r,
                    rs1: addr,
                    op2: Operand::Imm(0),
                });
                self.free_words.push(r);
                self.free_words.push(addr);
                return Ok(None);
            }
            "sqrt" => {
                let v = self.gen_value(&args[0])?;
                return match self.mode {
                    FloatMode::Hard => {
                        let f = self.ensure_f(v)?;
                        self.e.push(Instr::FpOp {
                            op: FpOp::FSqrtD,
                            rd: f,
                            rs1: FReg::new(0),
                            rs2: f,
                        });
                        Ok(Some(Loc::F(f)))
                    }
                    FloatMode::Soft => Ok(Some(
                        self.emit_call("__sqrtdf2", vec![(v, Width::Pair)], Some(Width::Pair))?
                            .unwrap(),
                    )),
                };
            }
            "fabs" => {
                let v = self.gen_value(&args[0])?;
                return match self.mode {
                    FloatMode::Hard => {
                        let f = self.ensure_f(v)?;
                        self.e.push(Instr::FpOp {
                            op: FpOp::FAbsS,
                            rd: f,
                            rs1: FReg::new(0),
                            rs2: f,
                        });
                        Ok(Some(Loc::F(f)))
                    }
                    FloatMode::Soft => {
                        let (hi, lo) = self.ensure_pair(v)?;
                        let m = self.alloc_word()?;
                        self.e.set32(0x8000_0000, m);
                        self.e.alu(AluOp::AndN, hi, m, hi);
                        self.free_words.push(m);
                        Ok(Some(Loc::Pair(hi, lo)))
                    }
                };
            }
            "__umulw" => {
                let a = self.gen_value(&args[0])?;
                self.push_loc(a);
                let b = self.gen_value(&args[1])?;
                let a = { self.stack.pop().expect("arg on stack") };
                let ra = self.ensure_w(a)?;
                let (op2, rb) = self.operand_w(b)?;
                self.e.alu(AluOp::UMul, ra, op2, ra);
                let hi = self.alloc_word()?;
                self.e.push(Instr::RdY { rd: hi });
                if let Some(r) = rb {
                    self.free_words.push(r);
                }
                return Ok(Some(Loc::Pair(hi, ra)));
            }
            "__dbits" => {
                let v = self.gen_value(&args[0])?;
                return match self.mode {
                    FloatMode::Hard => Ok(Some(self.f_to_bits(v)?)),
                    FloatMode::Soft => Ok(Some(v)),
                };
            }
            "__bitsd" => {
                let v = self.gen_value(&args[0])?;
                return match self.mode {
                    FloatMode::Hard => Ok(Some(self.bits_to_f(v)?)),
                    FloatMode::Soft => Ok(Some(v)),
                };
            }
            _ => {}
        }

        // General call: evaluate arguments left to right on the value
        // stack, then hand them to the ABI lowering.
        let mut widths = Vec::with_capacity(args.len());
        for arg in args {
            if !self.gen_expr(arg)? {
                return self.err(format!("void argument in call to `{name}`"));
            }
            widths.push(self.width_of(&arg.ty));
        }
        let mut locs: Vec<Loc> = Vec::with_capacity(args.len());
        for _ in args {
            locs.push(self.pop_loc());
        }
        locs.reverse();
        let pairs: Vec<(Loc, Width)> = locs.into_iter().zip(widths).collect();
        let ret_width = match ret {
            Type::Void => None,
            t => Some(self.width_of(t)),
        };
        self.emit_call(name, pairs, ret_width)
    }

    // ---- statements ----

    fn gen_stmts(&mut self, stmts: &[CStmt]) -> GResult<()> {
        for s in stmts {
            self.gen_stmt(s)?;
        }
        Ok(())
    }

    fn gen_stmt(&mut self, s: &CStmt) -> GResult<()> {
        match s {
            CStmt::Expr(e) => {
                if self.gen_expr(e)? {
                    let v = self.pop_loc();
                    self.free_loc(v);
                }
                Ok(())
            }
            CStmt::Block(stmts) => self.gen_stmts(stmts),
            CStmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let lt = self.e.new_label();
                let lf = self.e.new_label();
                let end = self.e.new_label();
                self.gen_cond(cond, lt, lf)?;
                self.e.bind(lt);
                self.gen_stmts(then_branch)?;
                if else_branch.is_empty() {
                    self.e.bind(lf);
                } else {
                    self.e.ba(end);
                    self.e.bind(lf);
                    self.gen_stmts(else_branch)?;
                    self.e.bind(end);
                }
                Ok(())
            }
            CStmt::While { cond, body } => {
                let top = self.e.new_label();
                let lbody = self.e.new_label();
                let end = self.e.new_label();
                self.e.bind(top);
                self.gen_cond(cond, lbody, end)?;
                self.e.bind(lbody);
                self.loops.push((top, end));
                self.gen_stmts(body)?;
                self.loops.pop();
                self.e.ba(top);
                self.e.bind(end);
                Ok(())
            }
            CStmt::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(init) = init {
                    self.gen_stmt(init)?;
                }
                let top = self.e.new_label();
                let lbody = self.e.new_label();
                let lstep = self.e.new_label();
                let end = self.e.new_label();
                self.e.bind(top);
                if let Some(c) = cond {
                    self.gen_cond(c, lbody, end)?
                }
                self.e.bind(lbody);
                self.loops.push((lstep, end));
                self.gen_stmts(body)?;
                self.loops.pop();
                self.e.bind(lstep);
                if let Some(stp) = step {
                    if self.gen_expr(stp)? {
                        let v = self.pop_loc();
                        self.free_loc(v);
                    }
                }
                self.e.ba(top);
                self.e.bind(end);
                Ok(())
            }
            CStmt::Return(value) => {
                if let Some(v) = value {
                    let loc = self.gen_value(v)?;
                    self.move_to_return(loc, &v.ty)?;
                }
                self.e.ba(self.epilogue);
                Ok(())
            }
            CStmt::Break => match self.loops.last() {
                Some(&(_, brk)) => {
                    self.e.ba(brk);
                    Ok(())
                }
                None => self.err("break outside loop"),
            },
            CStmt::Continue => match self.loops.last() {
                Some(&(cont, _)) => {
                    self.e.ba(cont);
                    Ok(())
                }
                None => self.err("continue outside loop"),
            },
        }
    }

    /// Moves a value into the return registers (`%o0` / `%o0:%o1`).
    fn move_to_return(&mut self, loc: Loc, ty: &Type) -> GResult<()> {
        match self.width_of(ty) {
            Width::W => match loc {
                Loc::ImmW(v) => self.e.set32(v, Reg::o(0)),
                other => {
                    let r = self.ensure_w(other)?;
                    self.e.mov(r, Reg::o(0));
                    self.free_words.push(r);
                }
            },
            Width::Pair => match loc {
                Loc::ImmPair(v) => {
                    self.e.set32((v >> 32) as u32, Reg::o(0));
                    self.e.set32(v as u32, Reg::o(1));
                }
                other => {
                    let (hi, lo) = self.ensure_pair(other)?;
                    self.e.mov(hi, Reg::o(0));
                    self.e.mov(lo, Reg::o(1));
                    self.free_words.push(hi);
                    self.free_words.push(lo);
                }
            },
            Width::F => match loc {
                // Constant doubles return their raw bits directly.
                Loc::ImmPair(v) => {
                    self.e.set32((v >> 32) as u32, Reg::o(0));
                    self.e.set32(v as u32, Reg::o(1));
                }
                other => {
                    let f = self.ensure_f(other)?;
                    self.e.push(Instr::StoreF {
                        double: true,
                        rd: f,
                        rs1: SP,
                        op2: Operand::Imm(SCRATCH_OFF as i32),
                    });
                    self.free_fpairs.push(f);
                    self.ld_frame(Reg::o(0), SCRATCH_OFF, MemSize::Word, false);
                    self.ld_frame(Reg::o(1), SCRATCH_OFF + 4, MemSize::Word, false);
                }
            },
        }
        Ok(())
    }
}

/// Size in bytes a local slot occupies (word-aligned).
fn slot_size(def: &crate::sema::LocalDef) -> u32 {
    match def.array_len {
        Some(len) => {
            let bytes = len * def.ty.size();
            (bytes + 3) & !3
        }
        None => def.ty.size().max(4),
    }
}

/// Generates code for one checked function.
pub fn gen_function(
    func: &CFunc,
    mode: FloatMode,
    pool: &mut DoublePool,
) -> Result<FuncCode, CodegenError> {
    // Lay out locals.
    let mut local_off = Vec::with_capacity(func.locals.len());
    let mut off = LOCALS_OFF;
    for def in &func.locals {
        let align = def.ty.align().max(4);
        off = (off + align - 1) & !(align - 1);
        local_off.push(off);
        off += slot_size(def);
    }
    let frame = (off + 7) & !7;

    let mut e = Emitter::new();
    let epilogue = e.new_label();
    let mut g = FnGen {
        e,
        mode,
        func,
        pool,
        stack: Vec::new(),
        free_words: vec![
            Reg::g(1),
            Reg::g(2),
            Reg::g(3),
            Reg::g(4),
            Reg::l(0),
            Reg::l(1),
            Reg::l(2),
            Reg::l(3),
            Reg::l(4),
            Reg::l(5),
            Reg::l(6),
            Reg::l(7),
        ],
        free_fpairs: (1..16).map(|i| FReg::new(i * 2)).collect(),
        free_spills: (0..SPILL_SLOTS).collect(),
        local_off,
        epilogue,
        loops: Vec::new(),
    };

    // Prologue: allocate the frame, save the return address, home the
    // incoming arguments.
    if frame <= 4095 {
        g.e.alu(AluOp::Sub, SP, frame as i32, SP);
    } else {
        let g5 = Reg::g(5);
        g.e.set32(frame, g5);
        g.e.alu(AluOp::Sub, SP, g5, SP);
    }
    g.st_frame(nfp_sparc::regs::O7, O7_OFF, MemSize::Word);
    let mut word = 0u32;
    for pi in 0..func.param_count {
        let def = &func.locals[pi];
        let slot = g.local_off[pi];
        let words = def.ty.words();
        for k in 0..words {
            let dst_off = slot + k * 4;
            let size = if def.ty == Type::UChar {
                MemSize::Byte
            } else {
                MemSize::Word
            };
            if word < 6 {
                g.st_frame(Reg::o(word as u8), dst_off, size);
            } else {
                // Incoming stack argument: it lives in the caller's
                // outgoing area, just above our frame.
                let g5 = Reg::g(5);
                let src = frame + OUT_ARGS_OFF + (word - 6) * 4;
                g.ld_frame(g5, src, MemSize::Word, false);
                g.st_frame(g5, dst_off, size);
            }
            word += 1;
        }
    }

    g.gen_stmts(&func.body)?;
    debug_assert!(g.stack.is_empty(), "value stack left non-empty");

    // Epilogue.
    g.e.bind(epilogue);
    g.ld_frame(nfp_sparc::regs::O7, O7_OFF, MemSize::Word, false);
    if frame <= 4095 {
        g.e.alu(AluOp::Add, SP, frame as i32, SP);
    } else {
        let g5 = Reg::g(5);
        g.e.set32(frame, g5);
        g.e.alu(AluOp::Add, SP, g5, SP);
    }
    g.e.push(Instr::Jmpl {
        rd: G0,
        rs1: nfp_sparc::regs::O7,
        op2: Operand::Imm(8),
    });
    g.e.nop();

    Ok(g.e.finish(&func.name))
}
