//! Integer and floating-point register names.
//!
//! SPARC V8 exposes 32 integer registers per window (`%g0-%g7`,
//! `%o0-%o7`, `%l0-%l7`, `%i0-%i7`) and 32 single-precision FP registers
//! (`%f0-%f31`); double-precision values occupy even/odd pairs.

use std::fmt;

/// An integer register number in `0..32`.
///
/// `%g0` (register 0) reads as zero and discards writes, which the
/// simulator enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Creates a register from its architectural number.
    ///
    /// # Panics
    /// Panics if `n >= 32`.
    #[inline(always)]
    pub const fn new(n: u8) -> Self {
        assert!(n < 32, "integer register number out of range");
        Reg(n)
    }

    /// The architectural register number (`0..32`).
    #[inline(always)]
    pub const fn num(self) -> u8 {
        self.0
    }

    /// True for `%g0`, the hard-wired zero register.
    #[inline(always)]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Global register `%gN` (`n < 8`).
    #[inline(always)]
    pub const fn g(n: u8) -> Self {
        assert!(n < 8);
        Reg(n)
    }

    /// Output register `%oN` (`n < 8`).
    #[inline(always)]
    pub const fn o(n: u8) -> Self {
        assert!(n < 8);
        Reg(8 + n)
    }

    /// Local register `%lN` (`n < 8`).
    #[inline(always)]
    pub const fn l(n: u8) -> Self {
        assert!(n < 8);
        Reg(16 + n)
    }

    /// Input register `%iN` (`n < 8`).
    #[inline(always)]
    pub const fn i(n: u8) -> Self {
        assert!(n < 8);
        Reg(24 + n)
    }
}

/// `%g0`, the hard-wired zero register.
pub const G0: Reg = Reg::g(0);
/// `%o6`, the stack pointer in the SPARC ABI.
pub const SP: Reg = Reg::o(6);
/// `%i6`, the frame pointer in the windowed SPARC ABI.
pub const FP: Reg = Reg::i(6);
/// `%o7`, the call return-address register (written by `call`).
pub const O7: Reg = Reg::o(7);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (bank, idx) = match self.0 {
            n @ 0..=7 => ('g', n),
            n @ 8..=15 => ('o', n - 8),
            n @ 16..=23 => ('l', n - 16),
            n => ('i', n - 24),
        };
        write!(f, "%{bank}{idx}")
    }
}

/// A floating-point register number in `0..32`.
///
/// Double-precision operands use an even register number addressing the
/// `(f[n], f[n+1])` pair; [`FReg::is_even`] checks alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FReg(u8);

impl FReg {
    /// Creates an FP register from its architectural number.
    ///
    /// # Panics
    /// Panics if `n >= 32`.
    #[inline(always)]
    pub const fn new(n: u8) -> Self {
        assert!(n < 32, "FP register number out of range");
        FReg(n)
    }

    /// The architectural register number (`0..32`).
    #[inline(always)]
    pub const fn num(self) -> u8 {
        self.0
    }

    /// True if this register can hold the upper half of a double.
    #[inline(always)]
    pub const fn is_even(self) -> bool {
        self.0.is_multiple_of(2)
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%f{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_banks_map_to_numbers() {
        assert_eq!(Reg::g(3).num(), 3);
        assert_eq!(Reg::o(0).num(), 8);
        assert_eq!(Reg::l(7).num(), 23);
        assert_eq!(Reg::i(6).num(), 30);
    }

    #[test]
    fn display_names() {
        assert_eq!(Reg::g(0).to_string(), "%g0");
        assert_eq!(Reg::o(6).to_string(), "%o6");
        assert_eq!(Reg::l(2).to_string(), "%l2");
        assert_eq!(Reg::i(7).to_string(), "%i7");
        assert_eq!(FReg::new(10).to_string(), "%f10");
    }

    #[test]
    fn zero_register() {
        assert!(G0.is_zero());
        assert!(!SP.is_zero());
    }

    #[test]
    fn freg_parity() {
        assert!(FReg::new(0).is_even());
        assert!(!FReg::new(3).is_even());
    }

    #[test]
    #[should_panic]
    fn out_of_range_reg_panics() {
        let _ = Reg::new(32);
    }
}
