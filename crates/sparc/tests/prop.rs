//! Property tests for the ISA layer: encode/decode stability and
//! disassembly totality over the whole 32-bit word space.

use nfp_sparc::{decode, disasm, encode, Instr};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4096))]

    /// decode is total and decode(encode(decode(w))) is a fixpoint:
    /// whatever a word decodes to, its canonical re-encoding decodes to
    /// the same instruction.
    #[test]
    fn decode_encode_decode_is_stable(word in any::<u32>()) {
        let instr = decode(word);
        if !matches!(instr, Instr::Illegal { .. }) {
            let reencoded = encode(instr);
            prop_assert_eq!(decode(reencoded), instr);
        }
    }

    /// Disassembly never panics and never produces an empty string.
    #[test]
    fn disassembly_is_total(word in any::<u32>(), pc in any::<u32>()) {
        let instr = decode(word);
        let text = disasm::disassemble(&instr, pc & !3);
        prop_assert!(!text.is_empty());
    }

    /// Category assignment is total and stable across re-encoding.
    #[test]
    fn category_is_stable(word in any::<u32>()) {
        let instr = decode(word);
        let cat = instr.category();
        if !matches!(instr, Instr::Illegal { .. }) {
            prop_assert_eq!(decode(encode(instr)).category(), cat);
        }
    }
}

/// Every word that decodes legally must also re-encode to the *same
/// bits* unless the encoding has don't-care fields; spot-check that
/// the canonical subset (zero asi/reserved bits) round-trips exactly.
#[test]
fn canonical_words_roundtrip_bit_exactly() {
    // Enumerate a structured sample of format-3 words with zero
    // don't-care fields.
    for op3 in 0..64u32 {
        for i_bit in [0u32, 1] {
            let word = (0b10 << 30) | (3 << 25) | (op3 << 19) | (4 << 14) | (i_bit << 13) | 5;
            let instr = decode(word);
            if matches!(instr, Instr::Illegal { .. }) {
                continue;
            }
            // FPU ops interpret bits 13..5 as opf, so only compare when
            // the re-encoding decodes identically (always true) and the
            // words match for pure integer forms.
            let re = encode(instr);
            assert_eq!(decode(re), instr, "op3={op3:#o} i={i_bit}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4096))]

    /// Full binary -> text -> binary round-trip: every decodable word's
    /// disassembly parses back to the canonical encoding.
    #[test]
    fn disassembly_reparses_to_the_same_instruction(word in any::<u32>(), pc_words in 0u32..0x100000) {
        let pc = 0x4000_0000u32.wrapping_add(pc_words * 4);
        let instr = decode(word);
        if matches!(instr, Instr::Illegal { .. }) {
            return Ok(());
        }
        let text = disasm::disassemble(&instr, pc);
        let reparsed = nfp_sparc::parse_line(&text, pc)
            .map_err(|e| TestCaseError::fail(format!("`{text}`: {e}")))?;
        prop_assert_eq!(
            decode(reparsed),
            instr,
            "word {:#010x} -> `{}` -> {:#010x}",
            word,
            text,
            reparsed
        );
    }
}
