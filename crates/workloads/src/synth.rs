//! Synthetic test-content generation.
//!
//! The paper evaluates on 24 Kodak photographs (FSE) and 3 raw video
//! sequences (HEVC). Those data sets are not redistributable here, so
//! this module generates deterministic procedural stand-ins with
//! comparable signal structure: smooth gradients (low-frequency
//! energy), sinusoidal textures (mid frequencies), value noise (high
//! frequencies), and hard edges — plus the loss masks FSE conceals and
//! the moving scenes the video encoder compresses.

use crate::pixels::{clip255, Image};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Smooth pseudo-random value noise: bilinear interpolation of a
/// coarse random lattice.
fn value_noise(width: usize, height: usize, cell: usize, amp: f64, rng: &mut StdRng) -> Vec<f64> {
    let gw = width / cell + 2;
    let gh = height / cell + 2;
    let lattice: Vec<f64> = (0..gw * gh).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut out = vec![0.0; width * height];
    for y in 0..height {
        for x in 0..width {
            let fx = x as f64 / cell as f64;
            let fy = y as f64 / cell as f64;
            let x0 = fx.floor() as usize;
            let y0 = fy.floor() as usize;
            let tx = fx - x0 as f64;
            let ty = fy - y0 as f64;
            // smoothstep for C1 continuity
            let sx = tx * tx * (3.0 - 2.0 * tx);
            let sy = ty * ty * (3.0 - 2.0 * ty);
            let l = |gx: usize, gy: usize| lattice[gy * gw + gx];
            let a = l(x0, y0) * (1.0 - sx) + l(x0 + 1, y0) * sx;
            let b = l(x0, y0 + 1) * (1.0 - sx) + l(x0 + 1, y0 + 1) * sx;
            out[y * width + x] = amp * (a * (1.0 - sy) + b * sy);
        }
    }
    out
}

/// Generates one "Kodak-like" photograph: a smooth illumination
/// gradient, two sinusoidal textures, multi-octave value noise, and a
/// couple of hard object edges. `seed` selects the picture.
pub fn test_image(width: usize, height: usize, seed: u64) -> Image {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9).wrapping_add(1));
    let base: f64 = rng.gen_range(90.0..150.0);
    let gx: f64 = rng.gen_range(-0.8..0.8);
    let gy: f64 = rng.gen_range(-0.8..0.8);
    let f1: f64 = rng.gen_range(0.05..0.25);
    let f2: f64 = rng.gen_range(0.02..0.12);
    let a1: f64 = rng.gen_range(8.0..28.0);
    let a2: f64 = rng.gen_range(5.0..20.0);
    let phase1: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    let noise_coarse = value_noise(width, height, 12, rng.gen_range(10.0..25.0), &mut rng);
    let noise_fine = value_noise(width, height, 3, rng.gen_range(2.0..7.0), &mut rng);
    // Hard edges: a diagonal boundary and a rectangular "object".
    let edge_slope: f64 = rng.gen_range(-1.2..1.2);
    let edge_off: f64 = rng.gen_range(0.2..0.8) * height as f64;
    let edge_jump: f64 = rng.gen_range(-45.0..45.0);
    let rx0 = rng.gen_range(0..width / 2);
    let ry0 = rng.gen_range(0..height / 2);
    let rw = rng.gen_range(width / 6..width / 2);
    let rh = rng.gen_range(height / 6..height / 2);
    let rect_jump: f64 = rng.gen_range(-35.0..35.0);

    let mut img = Image::new(width, height);
    for y in 0..height {
        for x in 0..width {
            let xf = x as f64;
            let yf = y as f64;
            let mut v = base + gx * xf + gy * yf;
            v += a1 * (f1 * xf + phase1).sin() * (f1 * 0.7 * yf).cos();
            v += a2 * (f2 * (xf + 2.0 * yf)).sin();
            v += noise_coarse[y * width + x] + noise_fine[y * width + x];
            if yf > edge_slope * xf + edge_off {
                v += edge_jump;
            }
            if x >= rx0 && x < rx0 + rw && y >= ry0 && y < ry0 + rh {
                v += rect_jump;
            }
            img.set(x, y, clip255(v.round() as i32));
        }
    }
    img
}

/// A loss mask: `true` marks samples whose content is unknown and must
/// be extrapolated. Each seed yields a different pattern of lost 8x8
/// blocks plus, for odd seeds, a lost scanline stripe — mimicking slice
/// loss in transmission-error concealment.
pub fn loss_mask(width: usize, height: usize, lost_blocks: usize, seed: u64) -> Vec<bool> {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x517c_c1b7).wrapping_add(3));
    let mut mask = vec![false; width * height];
    let bw = width / 8;
    let bh = height / 8;
    let mut placed = 0;
    let mut guard = 0;
    while placed < lost_blocks && guard < 1000 {
        guard += 1;
        let bx = rng.gen_range(0..bw);
        let by = rng.gen_range(0..bh);
        // keep blocks off the outer border so every block has support
        if bx == 0 || by == 0 || bx == bw - 1 || by == bh - 1 {
            continue;
        }
        let already = mask[(by * 8) * width + bx * 8];
        if already {
            continue;
        }
        for y in 0..8 {
            for x in 0..8 {
                mask[(by * 8 + y) * width + bx * 8 + x] = true;
            }
        }
        placed += 1;
    }
    mask
}

/// A synthetic video scene.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scene {
    /// Smooth gradient panning horizontally (very compressible).
    GradientPan,
    /// A textured background with a moving rectangular object.
    MovingObject,
    /// High-entropy noise with a slow global drift (hard to code).
    NoisyDrift,
}

impl Scene {
    /// The three scenes of the evaluation (stand-ins for the paper's
    /// three raw input sequences).
    pub const ALL: [Scene; 3] = [Scene::GradientPan, Scene::MovingObject, Scene::NoisyDrift];

    /// Short name used in kernel identifiers.
    pub fn name(self) -> &'static str {
        match self {
            Scene::GradientPan => "gradpan",
            Scene::MovingObject => "movobj",
            Scene::NoisyDrift => "noisy",
        }
    }
}

/// Generates `frames` frames of a scene.
pub fn test_sequence(scene: Scene, width: usize, height: usize, frames: usize) -> Vec<Image> {
    let mut out = Vec::with_capacity(frames);
    match scene {
        Scene::GradientPan => {
            for t in 0..frames {
                let mut img = Image::new(width, height);
                for y in 0..height {
                    for x in 0..width {
                        let v = 40.0
                            + 1.4 * ((x + 3 * t) % width) as f64
                            + 0.8 * y as f64
                            + 12.0 * ((x as f64 * 0.11) + t as f64 * 0.2).sin();
                        img.set(x, y, clip255(v as i32));
                    }
                }
                out.push(img);
            }
        }
        Scene::MovingObject => {
            let mut rng = StdRng::seed_from_u64(77);
            let bg = value_noise(width, height, 6, 30.0, &mut rng);
            for t in 0..frames {
                let mut img = Image::new(width, height);
                // On frames barely larger than the object, pin it to
                // the corner instead of dividing by zero.
                let ox = (4 + 5 * t) % width.saturating_sub(16).max(1);
                let oy = (3 + 3 * t) % height.saturating_sub(16).max(1);
                for y in 0..height {
                    for x in 0..width {
                        let mut v = 120.0 + bg[y * width + x];
                        if x >= ox && x < ox + 16 && y >= oy && y < oy + 16 {
                            v = 220.0 - 4.0 * ((x - ox) as f64 - 8.0).abs();
                        }
                        img.set(x, y, clip255(v as i32));
                    }
                }
                out.push(img);
            }
        }
        Scene::NoisyDrift => {
            let mut rng = StdRng::seed_from_u64(991);
            let tex = value_noise(width * 2, height, 2, 55.0, &mut rng);
            for t in 0..frames {
                let mut img = Image::new(width, height);
                for y in 0..height {
                    for x in 0..width {
                        let sx = (x + 2 * t) % (width * 2);
                        let v = 128.0 + tex[y * width * 2 + sx];
                        img.set(x, y, clip255(v as i32));
                    }
                }
                out.push(img);
            }
        }
    }
    out
}

/// Shape of a [`random_program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgramShape {
    /// ALU and memory instructions only, ending in a clean `ta 0`
    /// exit: every instruction is block-batchable, so this shape
    /// stresses the straight-line accounting path.
    StraightLine,
    /// Conditional, annulled, and unconditional branches (forward and
    /// backward) mixed into the body. Programs may loop forever or run
    /// off the end of the image — callers compare behaviour under an
    /// instruction budget, not to completion.
    Branchy,
    /// Branchy, but the image *ends* with a CTI whose delay slot is
    /// the very last word: the edge case where batched execution must
    /// hand over to the step path exactly at the image boundary.
    CtiTail,
}

/// Generates a deterministic pseudo-random SPARC V8 program of roughly
/// `body` instructions for differential testing of simulator execution
/// modes (stepped vs block-batched accounting must agree bit-exactly
/// on any program, so the generator favours coverage over sense:
/// integer ALU traffic with and without condition codes, aligned
/// loads/stores of every size — including doubleword pairs — to a
/// scratch window, and, per [`ProgramShape`], branches to arbitrary
/// body labels). Returns the assembled words; load at
/// [`nfp_sim::RAM_BASE`].
pub fn random_program(
    body: usize,
    seed: u64,
    shape: ProgramShape,
) -> Result<Vec<u32>, nfp_core::NfpError> {
    use nfp_sparc::asm::Assembler;
    use nfp_sparc::cond::ICond;
    use nfp_sparc::{AluOp, MemSize, Operand, Reg};

    let base = 0x4000_0000u32; // nfp_sim::RAM_BASE, kept literal to
                               // avoid a dependency cycle in docs
    let scratch = base + 0x1_0000;
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x6c62_272e).wrapping_add(3));
    let mut a = Assembler::new(base);

    // Registers the program may clobber: locals, %g1-%g3, %o0-%o3.
    let pool: Vec<Reg> = (0..8)
        .map(Reg::l)
        .chain((1..4).map(Reg::g))
        .chain((0..4).map(Reg::o))
        .collect();
    let reg = |rng: &mut StdRng| pool[rng.gen_range(0usize..pool.len())];

    // Prologue: scratch window base and a few seeded values.
    a.set32(scratch, Reg::l(7));
    for i in 0..4 {
        a.mov(rng.gen_range(-512i32..512), Reg::l(i));
    }

    const ALU_OPS: [AluOp; 10] = [
        AluOp::Add,
        AluOp::AddCc,
        AluOp::Sub,
        AluOp::SubCc,
        AluOp::Or,
        AluOp::Xor,
        AluOp::And,
        AluOp::Sll,
        AluOp::Srl,
        AluOp::SMul,
    ];
    const CONDS: [ICond; 6] = [
        ICond::E,
        ICond::Ne,
        ICond::L,
        ICond::Le,
        ICond::Cs,
        ICond::A,
    ];

    let branchy = shape != ProgramShape::StraightLine;
    let mut k = 0usize;
    while k < body {
        a.label(&format!("b{k}"));
        let roll = rng.gen_range(0u32..10);
        match roll {
            // Branch plus its delay slot (two body slots).
            0 | 1 if branchy && k + 1 < body => {
                let cond = CONDS[rng.gen_range(0usize..CONDS.len())];
                let target = format!("b{}", rng.gen_range(0usize..body));
                if rng.gen_range(0u32..4) == 0 {
                    a.b_a(cond, &target);
                } else {
                    a.b(cond, &target);
                }
                // Delay slot: simple ALU so annulment has a visible
                // architectural effect to diverge on. Other branches
                // may target the slot directly (label emitted here, as
                // every index in `0..body` must resolve).
                a.label(&format!("b{}", k + 1));
                let (rd, rs1) = (reg(&mut rng), reg(&mut rng));
                a.alu(AluOp::Add, rs1, rng.gen_range(-32i32..32), rd);
                k += 2;
                continue;
            }
            2 | 3 => {
                // Aligned load from the scratch window.
                let (size, align) = match rng.gen_range(0u32..4) {
                    0 => (MemSize::Byte, 1u32),
                    1 => (MemSize::Half, 2),
                    2 => (MemSize::Word, 4),
                    _ => (MemSize::Double, 8),
                };
                let off = rng.gen_range(0u32..(256 / align)) * align;
                let rd = if size == MemSize::Double {
                    // Even destination so the pair is architecturally
                    // legal; the odd-rd trap is covered by unit tests.
                    Reg::l((rng.gen_range(0u32..3) * 2) as u8)
                } else {
                    reg(&mut rng)
                };
                let signed = size != MemSize::Double && rng.gen_range(0u32..2) == 0;
                a.ld(size, signed, Reg::l(7), off as i32, rd);
            }
            4 | 5 => {
                // Aligned store to the scratch window.
                let (size, align) = match rng.gen_range(0u32..4) {
                    0 => (MemSize::Byte, 1u32),
                    1 => (MemSize::Half, 2),
                    2 => (MemSize::Word, 4),
                    _ => (MemSize::Double, 8),
                };
                let off = rng.gen_range(0u32..(256 / align)) * align;
                let rd = if size == MemSize::Double {
                    Reg::l((rng.gen_range(0u32..3) * 2) as u8)
                } else {
                    reg(&mut rng)
                };
                a.st(size, rd, Reg::l(7), off as i32);
            }
            _ => {
                let op = ALU_OPS[rng.gen_range(0usize..ALU_OPS.len())];
                let (rd, rs1) = (reg(&mut rng), reg(&mut rng));
                if rng.gen_range(0u32..3) == 0 {
                    a.alu(op, rs1, Operand::Reg(reg(&mut rng)), rd);
                } else {
                    a.alu(op, rs1, rng.gen_range(-64i32..64), rd);
                }
            }
        }
        k += 1;
    }

    match shape {
        ProgramShape::CtiTail => {
            // The image's final word is the delay slot of this branch.
            let cond = CONDS[rng.gen_range(0usize..CONDS.len())];
            let target = format!("b{}", rng.gen_range(0usize..body.max(1)));
            a.label(&format!("b{k}"));
            a.b(cond, &target);
            a.alu(AluOp::Add, Reg::l(0), 1, Reg::l(0));
        }
        _ => {
            a.label(&format!("b{k}"));
            a.mov(0, Reg::o(0));
            a.ta(0);
            a.nop();
        }
    }
    a.finish().map_err(|e| nfp_core::NfpError::Workload {
        what: format!("synthetic program (seed {seed:#x})"),
        reason: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn images_are_deterministic_per_seed() {
        let a = test_image(48, 48, 5);
        let b = test_image(48, 48, 5);
        let c = test_image(48, 48, 6);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn images_have_nontrivial_content() {
        let img = test_image(64, 48, 1);
        let min = *img.data.iter().min().unwrap();
        let max = *img.data.iter().max().unwrap();
        assert!(max - min > 40, "image should have dynamic range");
    }

    #[test]
    fn masks_lose_whole_interior_blocks() {
        let mask = loss_mask(64, 64, 5, 9);
        let lost: usize = mask.iter().filter(|&&m| m).count();
        assert_eq!(lost, 5 * 64);
        // border must be intact
        for x in 0..64 {
            assert!(!mask[x]);
            assert!(!mask[63 * 64 + x]);
        }
        // block-aligned: each lost sample's 8x8 block is fully lost
        for y in 0..64 {
            for x in 0..64 {
                if mask[y * 64 + x] {
                    let bx = x / 8 * 8;
                    let by = y / 8 * 8;
                    assert!(mask[by * 64 + bx]);
                }
            }
        }
    }

    #[test]
    fn random_programs_are_deterministic_and_assemble() {
        for shape in [
            ProgramShape::StraightLine,
            ProgramShape::Branchy,
            ProgramShape::CtiTail,
        ] {
            let a = random_program(40, 11, shape).expect("program");
            let b = random_program(40, 11, shape).expect("program");
            assert_eq!(a, b, "{shape:?} must be deterministic");
            assert!(!a.is_empty());
            assert_ne!(
                a,
                random_program(40, 12, shape).expect("program"),
                "{shape:?} seed varies"
            );
        }
    }

    #[test]
    fn cti_tail_ends_with_branch_and_delay_slot() {
        let words = random_program(20, 3, ProgramShape::CtiTail).expect("program");
        let penult = nfp_sparc::decode(words[words.len() - 2]);
        assert!(penult.is_cti(), "penultimate word must be the CTI");
        let last = nfp_sparc::decode(words[words.len() - 1]);
        assert!(!last.ends_block(), "last word is the delay slot");
    }

    #[test]
    fn sequences_move() {
        for scene in Scene::ALL {
            let frames = test_sequence(scene, 64, 48, 3);
            assert_eq!(frames.len(), 3);
            assert_ne!(frames[0], frames[1], "{scene:?} should have motion");
            // determinism
            let again = test_sequence(scene, 64, 48, 3);
            assert_eq!(frames, again);
        }
    }
}
