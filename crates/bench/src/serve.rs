//! The remote dispatch coordinator (`repro serve`) and its client.
//!
//! [`Server`] listens on TCP and speaks the framed protocol of
//! [`crate::net`] with two kinds of peers: **workers** (`repro worker
//! --connect`) that join, receive shard leases, and stream back
//! journal-identical record lines, and **clients** (`repro submit`)
//! that submit a campaign and receive the report. The coordinator
//! trusts no peer: every record line re-verifies its CRC and its
//! fault-plan binding, every shard must close with a plan-order digest
//! that the coordinator recomputes, and a peer that violates the
//! protocol is retired, never argued with.
//!
//! Robustness model (DESIGN.md §14):
//!
//! * **Every wait is bounded.** Sockets carry read/write deadlines, a
//!   silent peer loses its lease after an idle deadline, a slow peer
//!   loses it at the lease timeout, admission waits poll a shutdown
//!   flag, and the accept loop is non-blocking.
//! * **Leases, not assignments.** A shard lease is revocable: when the
//!   holder goes silent or dies the shard re-enters the queue after a
//!   capped jittered backoff ([`crate::backoff`]), and an optional
//!   straggler deadline dispatches a speculative duplicate —
//!   first-valid-wins, which is safe because campaigns are
//!   deterministic.
//! * **Admission control.** A bounded number of campaigns run
//!   concurrently; each client may queue a bounded number more;
//!   everything beyond that is refused with a typed
//!   [`NfpError::Admission`] instead of an unbounded backlog.
//! * **Graceful degradation.** With no live workers past a grace
//!   period the coordinator runs the remaining shards on its own
//!   local pool ([`crate::supervisor`]), so a campaign never depends
//!   on the network being healthy — only faster.

use crate::backoff::{backoff_delay, splitmix64, TICK};
use crate::cache::ResultCache;
use crate::campaign::{assemble, report_campaign, CampaignConfig, CampaignRig, InjectionRecord};
use crate::evaluation::Mode;
use crate::flatjson::{esc, parse_flat, Obj};
use crate::net::{
    parse_join, render_note, render_reject, render_report_chunk, send_err, write_frame,
    FrameReader, JoinFrame, Recv, BYE_FRAME, END_FRAME, HB_FRAME, NET_VERSION,
};
use crate::reports::{report_campaign_footer, CampaignFooter};
use crate::servejournal::{load_service_journal, records_path, OpenCampaign, ServiceJournal};
use crate::shards::{clear_range, missing_ranges_of, quarantined_path, ShardSpec};
use crate::supervisor::{
    fin_line, load_journal, parse_fin, parse_record, range_digest, record_line, run_supervised,
    FinRecord, JournalHeader, SupervisorConfig, WorkerIsolation,
};
use crate::worker::{
    parse_reply, render_error, render_hello, tcp_connect, Reply, WorkerHello, WorkerPreset,
};
use nfp_core::NfpError;
use nfp_sim::fault::plan;
use nfp_sim::Fault;
use nfp_workloads::{all_kernels, Kernel};
use std::collections::{HashMap, VecDeque};
use std::fs::{File, OpenOptions};
use std::io::{ErrorKind, Seek, SeekFrom, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Socket read deadline per poll: the coordinator's event-loop tick.
const READ_TICK: Duration = Duration::from_millis(50);

/// Socket write deadline: a peer that cannot drain a few hundred bytes
/// in this long is as good as gone.
const WRITE_TIMEOUT: Duration = Duration::from_secs(5);

/// How long a fresh connection may dawdle before its first frame
/// (join or submit) before the coordinator drops it.
const FIRST_FRAME_DEADLINE: Duration = Duration::from_secs(5);

/// Heartbeat interval towards a waiting client.
const CLIENT_BEAT: Duration = Duration::from_secs(1);

/// How long the submit client tolerates total coordinator silence.
/// The coordinator heartbeats clients every [`CLIENT_BEAT`], so this
/// is more than an order of magnitude of slack.
const CLIENT_SILENCE: Duration = Duration::from_secs(60);

/// Report chunk size towards the client. Escaping can at worst double
/// a chunk (quotes, backslashes, newlines), so this stays far from
/// [`crate::net::MAX_FRAME`].
const REPORT_CHUNK: usize = 8 * 1024;

fn violation(detail: impl Into<String>) -> NfpError {
    NfpError::ProtocolViolation {
        detail: detail.into(),
    }
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One leased-record slot table, indexed by plan position.
type Slots = Vec<Option<(InjectionRecord, u32)>>;

/// Validated records of one completed lease: plan index, record, and
/// the attempt count the worker reported.
type LeaseRecords = Vec<(usize, InjectionRecord, u32)>;

// ---------------------------------------------------------------------
// Configuration and summary.
// ---------------------------------------------------------------------

/// Coordinator configuration for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7447` (`:0` picks a free port).
    pub listen: String,
    /// Workload preset leases name; workers rebuild kernels from it
    /// and the golden-count handshake catches any skew.
    pub preset: WorkerPreset,
    /// Campaigns allowed to run concurrently. `0` refuses every
    /// submission (useful only for testing admission itself).
    pub max_inflight: usize,
    /// Submissions one client may keep queued beyond the in-flight
    /// limit before further ones are refused.
    pub max_queued_per_client: usize,
    /// How long a campaign waits for a live worker before degrading to
    /// the coordinator's local worker pool.
    pub peer_grace: Duration,
    /// Hard per-lease deadline: a shard lease still open after this
    /// long is revoked and re-queued regardless of heartbeats.
    pub lease_timeout: Duration,
    /// Heartbeat interval towards (and expected from) workers. A peer
    /// silent for ten intervals (min 2 s) loses its lease.
    pub heartbeat: Duration,
    /// Re-dispatch budget per shard after failed or revoked leases.
    pub shard_retries: u32,
    /// Straggler deadline: a lease still open after this long gets a
    /// speculative duplicate dispatched (first valid result wins).
    /// `None` disables speculation.
    pub straggler: Option<Duration>,
    /// Worker isolation for the local-fallback pool.
    pub isolation: WorkerIsolation,
    /// Worker executable for a process-isolated local fallback.
    pub worker_bin: Option<PathBuf>,
    /// Stop accepting connections and shut down after this many
    /// completed campaigns. `None` serves until the process dies.
    pub campaigns: Option<usize>,
    /// Write-ahead service journal path (DESIGN.md §15). `None` runs
    /// the coordinator volatile, exactly as before PR 8.
    pub journal: Option<PathBuf>,
    /// Rebuild hub state from an existing journal at [`Self::journal`]
    /// before serving (a missing journal is a fresh start, so `--resume`
    /// is safe to pass unconditionally). Without `resume`, an existing
    /// journal is truncated.
    pub resume: bool,
    /// Drain sentinel path: once this file exists the coordinator
    /// stops admitting submissions, finishes the campaigns in flight,
    /// journals a clean drain, and exits.
    pub drain: Option<PathBuf>,
    /// Byte budget for the content-addressed result cache (LRU).
    pub cache_cap_bytes: usize,
    /// Audit tier (DESIGN.md §16): the fraction of remotely-completed
    /// shard leases whose ranges are re-dispatched to a *disjoint*
    /// worker and compared record-for-record. On disagreement the
    /// coordinator's trusted local pool re-executes the range and
    /// convicts whichever worker lied: its session is revoked, its id
    /// is blacklisted with capped-backoff parole, and every unaudited
    /// range it returned is invalidated and re-dispatched. `0.0`
    /// disables auditing; `1.0` audits every remote shard. The sampler
    /// is a pure function of the campaign seed and shard index, so a
    /// resumed coordinator audits the same shards.
    pub audit_rate: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            listen: "127.0.0.1:7447".to_string(),
            preset: WorkerPreset::Quick,
            max_inflight: 2,
            max_queued_per_client: 2,
            peer_grace: Duration::from_secs(2),
            lease_timeout: Duration::from_secs(120),
            heartbeat: Duration::from_millis(200),
            shard_retries: 2,
            straggler: None,
            isolation: WorkerIsolation::Thread,
            worker_bin: None,
            campaigns: None,
            journal: None,
            resume: false,
            drain: None,
            cache_cap_bytes: 64 * 1024 * 1024,
            audit_rate: 0.05,
        }
    }
}

/// What a coordinator served before shutting down.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Campaigns completed (reports delivered or degraded).
    pub campaigns: usize,
    /// Worker connections accepted over the server's lifetime.
    pub peers_seen: usize,
    /// Worker reconnections observed (joins carrying a nonzero
    /// reconnect ordinal).
    pub reconnects: usize,
    /// Frames rejected as corrupt, out-of-protocol, or checksum-failed.
    pub frames_rejected: usize,
    /// Peers retired after a violation, silence, or death.
    pub peers_retired: usize,
    /// Submissions answered from the result cache, no re-simulation.
    pub cache_hits: usize,
    /// Submissions that had to run (or join) a live campaign.
    pub cache_misses: usize,
    /// Concurrent identical submissions folded into one live campaign.
    pub submits_deduped: usize,
    /// Clients that re-attached to a crash-resumed campaign.
    pub sessions_resumed: usize,
    /// Cache entries evicted under the byte budget.
    pub cache_evictions: usize,
    /// Coordinator starts recorded in the journal before this one.
    pub restarts: usize,
    /// Workers convicted by the audit tier and blacklisted.
    pub workers_convicted: usize,
}

// ---------------------------------------------------------------------
// The hub: state shared between the accept loop, peers, and campaigns.
// ---------------------------------------------------------------------

/// One revocable shard assignment waiting for (or held by) a peer.
struct Lease {
    hello: WorkerHello,
    faults: Arc<Vec<Fault>>,
    shard: u32,
    attempt: u32,
    events: mpsc::Sender<LeaseEvent>,
    /// Set by the owning campaign when the shard no longer needs this
    /// lease (completed elsewhere, campaign over): peers skip it.
    abandoned: Arc<AtomicBool>,
    /// Worker id that must NOT take this lease — an audit re-execution
    /// is only a second opinion when it comes from a disjoint worker.
    exclude: Option<u64>,
}

/// What a peer reports back to the owning campaign about a lease.
enum LeaseEvent {
    /// A peer picked the lease up.
    Started { shard: u32 },
    /// The leased range completed and validated (CRCs, plan binding,
    /// fin digest). First valid result wins. `wid` attributes the
    /// records to the producing worker for the audit tier (0 when the
    /// peer sent no identity).
    Done {
        shard: u32,
        wid: u64,
        records: LeaseRecords,
    },
    /// The lease failed; `revoked` marks deadline revocations (silent
    /// or overrunning peers) as opposed to deaths and violations.
    Failed {
        shard: u32,
        detail: String,
        revoked: bool,
    },
}

/// One blacklisted worker: its conviction count and the instant its
/// capped-backoff parole expires (it may rejoin after that — and earn
/// a longer parole if it is convicted again).
struct BanState {
    strikes: u32,
    until: Instant,
}

/// Parole backoff after `strikes` convictions: 500 ms doubling per
/// strike, capped at 60 s. Deterministic (no jitter): parole gates
/// admission only, never results.
fn parole_delay(strikes: u32) -> Duration {
    let exp = strikes.saturating_sub(1).min(10);
    Duration::from_millis((500u64 << exp).min(60_000))
}

/// Shared coordinator state.
struct Hub {
    queue: Mutex<VecDeque<Lease>>,
    shutdown: AtomicBool,
    live_peers: AtomicUsize,
    peers_seen: AtomicUsize,
    reconnects: AtomicUsize,
    frames_rejected: AtomicUsize,
    peers_retired: AtomicUsize,
    next_peer: AtomicU64,
    /// Audit-tier blacklist by worker id (never wid 0 — a peer that
    /// sent no identity cannot be attributed, so it is never banned).
    bans: Mutex<HashMap<u64, BanState>>,
    /// Convictions over the server's lifetime, for the summary.
    convicted: AtomicUsize,
}

impl Hub {
    fn new() -> Self {
        Hub {
            queue: Mutex::new(VecDeque::new()),
            shutdown: AtomicBool::new(false),
            live_peers: AtomicUsize::new(0),
            peers_seen: AtomicUsize::new(0),
            reconnects: AtomicUsize::new(0),
            frames_rejected: AtomicUsize::new(0),
            peers_retired: AtomicUsize::new(0),
            next_peer: AtomicU64::new(0),
            bans: Mutex::new(HashMap::new()),
            convicted: AtomicUsize::new(0),
        }
    }

    /// Pops the next live lease the worker `wid` may take, discarding
    /// abandoned ones and skipping (but keeping, in order) leases that
    /// exclude this worker — an audit lease waits for a disjoint peer.
    fn pop_lease(&self, wid: u64) -> Option<Lease> {
        let mut q = lock(&self.queue);
        let mut skipped: Vec<Lease> = Vec::new();
        let mut found = None;
        while let Some(lease) = q.pop_front() {
            if lease.abandoned.load(Ordering::SeqCst) {
                continue;
            }
            if lease.exclude.is_some_and(|x| x == wid) {
                skipped.push(lease);
                continue;
            }
            found = Some(lease);
            break;
        }
        while let Some(lease) = skipped.pop() {
            q.push_front(lease);
        }
        found
    }

    /// Records a conviction: the strike count increments and the
    /// parole instant backs off. Returns the new strike count.
    fn ban(&self, wid: u64) -> u32 {
        let mut bans = lock(&self.bans);
        let entry = bans.entry(wid).or_insert(BanState {
            strikes: 0,
            until: Instant::now(),
        });
        entry.strikes += 1;
        entry.until = Instant::now() + parole_delay(entry.strikes);
        self.convicted.fetch_add(1, Ordering::SeqCst);
        entry.strikes
    }

    /// Replays a journaled ban on resume. Instants cannot be journaled,
    /// so parole restarts from the resume instant — strictly the
    /// distrustful direction.
    fn restore_ban(&self, wid: u64, strikes: u32) {
        lock(&self.bans).insert(
            wid,
            BanState {
                strikes,
                until: Instant::now() + parole_delay(strikes),
            },
        );
    }

    /// Whether `wid` is currently blacklisted (parole not yet up).
    fn banned(&self, wid: u64) -> bool {
        wid != 0
            && lock(&self.bans)
                .get(&wid)
                .is_some_and(|b| Instant::now() < b.until)
    }

    /// Queues a lease, compacting abandoned entries while it holds the
    /// lock so the queue never accumulates dead weight.
    fn push_lease(&self, lease: Lease) {
        let mut q = lock(&self.queue);
        q.retain(|l| !l.abandoned.load(Ordering::SeqCst));
        q.push_back(lease);
    }

    fn reject_frame(&self) {
        self.frames_rejected.fetch_add(1, Ordering::SeqCst);
    }

    /// Marks a peer retired — unless the server is shutting down, in
    /// which case departures are the plan, not a failure.
    fn retire(&self, label: &str, why: &str) {
        if !self.shutdown.load(Ordering::SeqCst) {
            self.peers_retired.fetch_add(1, Ordering::SeqCst);
            eprintln!("serve: {label} retired: {why}");
        }
    }
}

/// Everything a connection thread needs.
struct Ctx {
    cfg: ServeConfig,
    hub: Hub,
    admission: Admission,
    served: AtomicUsize,
    /// Content-addressed result cache: identical submits cost one
    /// simulation, the rest are byte-identical replays.
    cache: Mutex<ResultCache>,
    /// Live campaigns by [`campaign_key`]: concurrent identical
    /// submits subscribe to the one in flight instead of racing it.
    live: Mutex<HashMap<String, Arc<LiveEntry>>>,
    /// Write-ahead service journal, when durability is configured.
    journal: Option<ServiceJournal>,
    /// Next durable campaign id (continues past resumed ids).
    next_cid: AtomicU64,
    /// True once the drain sentinel appeared: admit nothing new,
    /// finish what is in flight, journal a clean drain, exit.
    draining: AtomicBool,
    /// Coordinator starts recorded in the journal before this one.
    restarts: usize,
    cache_hits: AtomicUsize,
    cache_misses: AtomicUsize,
    submits_deduped: AtomicUsize,
    sessions_resumed: AtomicUsize,
    cache_evictions: AtomicUsize,
}

/// One campaign in flight, shared between its leader thread and any
/// follower clients that submitted the same key while it ran.
struct LiveEntry {
    state: Mutex<LiveState>,
    cv: Condvar,
    /// True for campaigns rebuilt from the service journal: a client
    /// re-presenting this key is a resumed session, not a dedup.
    resumed: bool,
    /// Follower clients currently subscribed. A leader whose own
    /// client dies keeps running while anyone is still watching (or
    /// while the campaign is journaled).
    subscribers: AtomicUsize,
}

enum LiveState {
    Running,
    Done { notes: Vec<String>, report: String },
    Failed(String),
}

impl LiveEntry {
    fn new(resumed: bool) -> Self {
        LiveEntry {
            state: Mutex::new(LiveState::Running),
            cv: Condvar::new(),
            resumed,
            subscribers: AtomicUsize::new(0),
        }
    }

    /// Publishes the terminal state and wakes every follower.
    fn publish(&self, state: LiveState) {
        *lock(&self.state) = state;
        self.cv.notify_all();
    }
}

/// The idempotency key a submission is cached and deduplicated under:
/// every binding field of the campaign except the client label and the
/// shard count (campaign reports are shard-invariant by the merge
/// discipline, and the golden instruction length is itself a
/// deterministic function of these fields — recomputing it is the very
/// simulation the cache exists to avoid, and the records-file header
/// still enforces the full golden binding on every durable run).
pub(crate) fn campaign_key(req: &CampaignRequest) -> String {
    format!(
        "{}|{}|{}|{}|{}|{}|{}|{}|{}",
        esc(&req.kernel),
        req.mode.suffix(),
        req.campaign.injections,
        req.campaign.seed,
        req.campaign.checkpoints,
        req.campaign.dispatch.as_str(),
        req.campaign.escalation,
        req.campaign.wall.map_or_else(
            || "none".to_string(),
            |d| (d.as_millis() as u64).to_string()
        ),
        req.allow_partial,
    )
}

// ---------------------------------------------------------------------
// Admission control.
// ---------------------------------------------------------------------

struct AdmissionState {
    inflight: usize,
    queued: HashMap<String, usize>,
}

/// Bounded-concurrency gate for campaign submissions: `max_inflight`
/// campaigns run at once, each client may wait with at most
/// `max_queue` more, and everything beyond that is refused with a
/// typed [`NfpError::Admission`]. All waits are caller-paced
/// ([`Admission::wait`] with a timeout), so a waiting submission can
/// keep heartbeating its client and abandon the queue when the client
/// disappears — no unbounded block anywhere.
pub(crate) struct Admission {
    max_inflight: usize,
    max_queue: usize,
    state: Mutex<AdmissionState>,
    cv: Condvar,
}

/// Outcome of [`Admission::try_enter`].
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum Gate {
    /// A slot was free; the campaign may run now.
    Admitted,
    /// The campaign holds a queue place; poll [`Admission::wait`].
    Queued,
}

impl Admission {
    pub(crate) fn new(max_inflight: usize, max_queue: usize) -> Self {
        Admission {
            max_inflight,
            max_queue,
            state: Mutex::new(AdmissionState {
                inflight: 0,
                queued: HashMap::new(),
            }),
            cv: Condvar::new(),
        }
    }

    /// Takes a slot, takes a queue place, or refuses — never blocks.
    pub(crate) fn try_enter(&self, client: &str) -> Result<Gate, NfpError> {
        let refuse = |reason: String| {
            Err(NfpError::Admission {
                client: client.to_string(),
                reason,
            })
        };
        if self.max_inflight == 0 {
            return refuse("server admits no campaigns".to_string());
        }
        let mut s = lock(&self.state);
        if s.inflight < self.max_inflight {
            s.inflight += 1;
            return Ok(Gate::Admitted);
        }
        let q = s.queued.entry(client.to_string()).or_insert(0);
        if *q >= self.max_queue {
            let held = *q;
            return refuse(format!(
                "{held} campaigns already queued (per-client cap {})",
                self.max_queue
            ));
        }
        *q += 1;
        Ok(Gate::Queued)
    }

    /// Waits up to `patience` for a slot; returns true when admitted
    /// (the queue place converts into the slot).
    pub(crate) fn wait(&self, client: &str, patience: Duration) -> bool {
        let s = lock(&self.state);
        let (mut s, _) = self
            .cv
            .wait_timeout(s, patience)
            .unwrap_or_else(PoisonError::into_inner);
        if s.inflight < self.max_inflight {
            s.inflight += 1;
            Self::dequeue(&mut s, client);
            return true;
        }
        false
    }

    /// Gives a queue place back (the queued client went away).
    pub(crate) fn abandon_queue(&self, client: &str) {
        Self::dequeue(&mut lock(&self.state), client);
    }

    /// Releases an in-flight slot and wakes every waiter.
    pub(crate) fn finish(&self) {
        lock(&self.state).inflight -= 1;
        self.cv.notify_all();
    }

    fn dequeue(s: &mut AdmissionState, client: &str) {
        if let Some(q) = s.queued.get_mut(client) {
            *q -= 1;
            if *q == 0 {
                s.queued.remove(client);
            }
        }
    }
}

/// Releases the admission slot on every campaign exit path.
struct AdmissionGuard<'a>(&'a Admission);

impl Drop for AdmissionGuard<'_> {
    fn drop(&mut self) {
        self.0.finish();
    }
}

// ---------------------------------------------------------------------
// Submit frames.
// ---------------------------------------------------------------------

/// A campaign submission, sent by [`submit_campaign`] and executed by
/// a [`Server`].
#[derive(Debug, Clone)]
pub struct CampaignRequest {
    /// Client label for admission accounting and error messages.
    pub client: String,
    /// Kernel name within the server's preset registry.
    pub kernel: String,
    /// Float or fixed variant.
    pub mode: Mode,
    /// The campaign parameters (plan size, seed, dispatch, ...).
    pub campaign: CampaignConfig,
    /// Shards to split the plan into; `0` lets the coordinator pick
    /// one shard per live worker.
    pub shards: u32,
    /// Degrade to a partial report (with explicit missing ranges)
    /// instead of failing when a shard exhausts its retry budget.
    pub allow_partial: bool,
}

pub(crate) fn render_submit(req: &CampaignRequest) -> String {
    format!(
        concat!(
            "{{\"v\":{},\"kind\":\"submit\",\"client\":\"{}\",\"kernel\":\"{}\",",
            "\"mode\":\"{}\",\"injections\":{},\"seed\":{},\"checkpoints\":{},",
            "\"dispatch\":\"{}\",\"escalation\":{},\"wall_ms\":{},\"shards\":{},",
            "\"allow_partial\":{}}}"
        ),
        NET_VERSION,
        esc(&req.client),
        esc(&req.kernel),
        req.mode.suffix(),
        req.campaign.injections,
        req.campaign.seed,
        req.campaign.checkpoints,
        req.campaign.dispatch.as_str(),
        req.campaign.escalation,
        req.campaign.wall.map_or_else(
            || "null".to_string(),
            |d| (d.as_millis() as u64).to_string()
        ),
        req.shards,
        req.allow_partial,
    )
}

pub(crate) fn parse_submit(line: &str) -> Result<CampaignRequest, NfpError> {
    let obj = Obj(parse_flat(line).ok_or_else(|| violation("unparseable submit frame"))?);
    match obj.u64("v") {
        Some(NET_VERSION) => {}
        got => {
            return Err(violation(format!(
                "submit version mismatch: client speaks {got:?}, this coordinator speaks \
                 v{NET_VERSION}"
            )))
        }
    }
    if obj.str("kind") != Some("submit") {
        return Err(violation("frame is not a submit"));
    }
    let field = |k: &str| violation(format!("submit lacks \"{k}\""));
    Ok(CampaignRequest {
        client: obj
            .str("client")
            .ok_or_else(|| field("client"))?
            .to_string(),
        kernel: obj
            .str("kernel")
            .ok_or_else(|| field("kernel"))?
            .to_string(),
        mode: obj
            .str("mode")
            .and_then(Mode::from_suffix)
            .ok_or_else(|| violation("submit names an unknown mode"))?,
        campaign: CampaignConfig {
            injections: usize::try_from(obj.u64("injections").ok_or_else(|| field("injections"))?)
                .map_err(|_| violation("submit injection count overflows usize"))?,
            seed: obj.u64("seed").ok_or_else(|| field("seed"))?,
            checkpoints: usize::try_from(
                obj.u64("checkpoints").ok_or_else(|| field("checkpoints"))?,
            )
            .map_err(|_| violation("submit checkpoint count overflows usize"))?,
            wall: obj
                .opt_u64("wall_ms")
                .ok_or_else(|| field("wall_ms"))?
                .map(Duration::from_millis),
            dispatch: obj
                .str("dispatch")
                .and_then(nfp_sim::Dispatch::parse)
                .ok_or_else(|| violation("submit names an unknown dispatch"))?,
            escalation: u32::try_from(obj.u64("escalation").ok_or_else(|| field("escalation"))?)
                .map_err(|_| violation("submit escalation overflows u32"))?,
        },
        shards: u32::try_from(obj.u64("shards").ok_or_else(|| field("shards"))?)
            .map_err(|_| violation("submit shard count overflows u32"))?,
        allow_partial: obj
            .bool("allow_partial")
            .ok_or_else(|| field("allow_partial"))?,
    })
}

// ---------------------------------------------------------------------
// The server.
// ---------------------------------------------------------------------

/// A bound (but not yet serving) coordinator. [`Server::run`] consumes
/// it and blocks until the configured campaign budget is served.
pub struct Server {
    listener: TcpListener,
    ctx: Arc<Ctx>,
    /// Campaigns the service journal recorded as submitted but never
    /// finished: [`Server::run`] re-runs them headless, re-dispatching
    /// only the shards their records files do not already cover.
    resumed: Vec<OpenCampaign>,
}

impl Server {
    /// Binds the listen address and prepares the shared state. The
    /// socket is non-blocking; nothing is served until [`Server::run`].
    ///
    /// With [`ServeConfig::journal`] set this opens (or, under
    /// [`ServeConfig::resume`], replays) the service journal: torn
    /// tails are truncated, a corrupt journal is renamed aside to
    /// `*.quarantined` and a fresh one started, and every campaign
    /// recorded as open is queued for headless resumption.
    pub fn bind(cfg: ServeConfig) -> Result<Server, NfpError> {
        let net_err = |detail: String| NfpError::Net {
            addr: cfg.listen.clone(),
            detail,
        };
        let listener =
            TcpListener::bind(&cfg.listen).map_err(|e| net_err(format!("bind failed: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| net_err(format!("set nonblocking failed: {e}")))?;
        let admission = Admission::new(cfg.max_inflight, cfg.max_queued_per_client);
        let mut restarts = 0usize;
        let mut resumed: Vec<OpenCampaign> = Vec::new();
        let mut next_cid = 0u64;
        let mut bans: Vec<(u64, u32)> = Vec::new();
        let journal = match &cfg.journal {
            None => None,
            Some(path) => {
                let journal = if cfg.resume && path.exists() {
                    match load_service_journal(path) {
                        Ok(state) => {
                            restarts = state.starts;
                            next_cid = state.next_cid;
                            resumed = state.open;
                            bans = state.bans;
                            ServiceJournal::resume(path, state.intact_len)?
                        }
                        Err(e) => {
                            // The journal is evidence, not an oracle:
                            // set it aside and start clean rather than
                            // trusting a corrupt record.
                            let q = quarantined_path(path);
                            std::fs::rename(path, &q).map_err(|io| NfpError::Journal {
                                path: path.display().to_string(),
                                reason: format!("cannot quarantine corrupt journal: {io}"),
                            })?;
                            eprintln!("serve: service journal quarantined to {}: {e}", q.display());
                            ServiceJournal::create(path)?
                        }
                    }
                } else {
                    ServiceJournal::create(path)?
                };
                journal.start()?;
                Some(journal)
            }
        };
        if !resumed.is_empty() {
            eprintln!(
                "serve: resuming {} interrupted campaign(s) from the service journal \
                 (coordinator restart {restarts})",
                resumed.len()
            );
        }
        let hub = Hub::new();
        for (wid, strikes) in bans {
            eprintln!(
                "serve: resuming blacklist: worker {wid} blacklisted (strike {strikes}, parole \
                 {}ms)",
                parole_delay(strikes).as_millis()
            );
            hub.restore_ban(wid, strikes);
        }
        Ok(Server {
            listener,
            ctx: Arc::new(Ctx {
                cache: Mutex::new(ResultCache::new(cfg.cache_cap_bytes)),
                cfg,
                hub,
                admission,
                served: AtomicUsize::new(0),
                live: Mutex::new(HashMap::new()),
                journal,
                next_cid: AtomicU64::new(next_cid),
                draining: AtomicBool::new(false),
                restarts,
                cache_hits: AtomicUsize::new(0),
                cache_misses: AtomicUsize::new(0),
                submits_deduped: AtomicUsize::new(0),
                sessions_resumed: AtomicUsize::new(0),
                cache_evictions: AtomicUsize::new(0),
            }),
            resumed,
        })
    }

    /// The bound address — the way tests (and `--listen 127.0.0.1:0`
    /// users) learn the picked port.
    pub fn local_addr(&self) -> Result<SocketAddr, NfpError> {
        self.listener.local_addr().map_err(|e| NfpError::Net {
            addr: self.ctx.cfg.listen.clone(),
            detail: format!("local_addr failed: {e}"),
        })
    }

    /// Serves until [`ServeConfig::campaigns`] campaigns completed
    /// (forever when `None`), then says goodbye to every peer and
    /// returns the tallies.
    pub fn run(self) -> Result<ServeSummary, NfpError> {
        let Server {
            listener,
            ctx,
            resumed,
        } = self;
        let mut handles = Vec::new();
        // Resumed campaigns run headless (they were admitted before
        // the crash); registering them in the live map *before* the
        // accept loop means a client re-presenting the key attaches to
        // the resumed run instead of racing it with a duplicate.
        for open in resumed {
            let key = campaign_key(&open.req);
            let entry = Arc::new(LiveEntry::new(true));
            lock(&ctx.live).insert(key.clone(), Arc::clone(&entry));
            let ctx = Arc::clone(&ctx);
            handles.push(std::thread::spawn(move || {
                resume_campaign(open, entry, key, &ctx);
            }));
        }
        loop {
            if let Some(limit) = ctx.cfg.campaigns {
                if ctx.served.load(Ordering::SeqCst) >= limit {
                    ctx.hub.shutdown.store(true, Ordering::SeqCst);
                    break;
                }
            }
            if !ctx.draining.load(Ordering::SeqCst) {
                if let Some(sentinel) = &ctx.cfg.drain {
                    if sentinel.exists() {
                        ctx.draining.store(true, Ordering::SeqCst);
                        eprintln!(
                            "serve: drain requested; refusing new submissions, finishing {} \
                             in flight",
                            lock(&ctx.live).len()
                        );
                    }
                }
            }
            if ctx.draining.load(Ordering::SeqCst) && lock(&ctx.live).is_empty() {
                if let Some(journal) = &ctx.journal {
                    let _ = journal.drain();
                }
                eprintln!("serve: drained cleanly");
                ctx.hub.shutdown.store(true, Ordering::SeqCst);
                break;
            }
            match listener.accept() {
                Ok((stream, addr)) => {
                    let ctx = Arc::clone(&ctx);
                    handles.push(std::thread::spawn(move || {
                        handle_connection(stream, addr, &ctx);
                    }));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(TICK),
                Err(e) => {
                    ctx.hub.shutdown.store(true, Ordering::SeqCst);
                    for h in handles {
                        let _ = h.join();
                    }
                    return Err(NfpError::Net {
                        addr: ctx.cfg.listen.clone(),
                        detail: format!("accept failed: {e}"),
                    });
                }
            }
        }
        for h in handles {
            let _ = h.join();
        }
        Ok(ServeSummary {
            campaigns: ctx.served.load(Ordering::SeqCst),
            peers_seen: ctx.hub.peers_seen.load(Ordering::SeqCst),
            reconnects: ctx.hub.reconnects.load(Ordering::SeqCst),
            frames_rejected: ctx.hub.frames_rejected.load(Ordering::SeqCst),
            peers_retired: ctx.hub.peers_retired.load(Ordering::SeqCst),
            cache_hits: ctx.cache_hits.load(Ordering::SeqCst),
            cache_misses: ctx.cache_misses.load(Ordering::SeqCst),
            submits_deduped: ctx.submits_deduped.load(Ordering::SeqCst),
            sessions_resumed: ctx.sessions_resumed.load(Ordering::SeqCst),
            cache_evictions: ctx.cache_evictions.load(Ordering::SeqCst),
            restarts: ctx.restarts,
            workers_convicted: ctx.hub.convicted.load(Ordering::SeqCst),
        })
    }
}

/// Classifies a fresh connection by its first frame — a worker join or
/// a client submit — and hands it to the matching driver. Anything
/// else (silence, garbage, a torn frame) costs the connection and
/// nothing more.
fn handle_connection(mut stream: TcpStream, addr: SocketAddr, ctx: &Ctx) {
    let label = addr.to_string();
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(READ_TICK)).is_err()
        || stream.set_write_timeout(Some(WRITE_TIMEOUT)).is_err()
    {
        return;
    }
    let mut reader = FrameReader::new(label.clone());
    let opened = Instant::now();
    let first = loop {
        match reader.recv(&mut stream) {
            Ok(Recv::Frame(line)) => break line,
            Ok(Recv::Idle) => {
                if opened.elapsed() > FIRST_FRAME_DEADLINE {
                    ctx.hub.reject_frame();
                    eprintln!("serve: dropped {label}: no frame within the handshake deadline");
                    return;
                }
            }
            Ok(Recv::Eof) => return,
            Err(e) => {
                ctx.hub.reject_frame();
                eprintln!("serve: dropped {label}: {e}");
                return;
            }
        }
    };
    let kind = parse_flat(&first)
        .map(Obj)
        .and_then(|o| o.str("kind").map(str::to_string));
    match kind.as_deref() {
        Some("join") => match parse_join(&first) {
            Ok(join) => drive_peer(stream, reader, join, ctx),
            Err(e) => {
                ctx.hub.reject_frame();
                let _ = write_frame(&mut stream, &render_error(&e.to_string()));
                eprintln!("serve: dropped {label}: {e}");
            }
        },
        Some("submit") => match parse_submit(&first) {
            Ok(req) => run_remote_campaign(stream, reader, req, ctx),
            Err(e) => {
                ctx.hub.reject_frame();
                let _ = write_frame(&mut stream, &render_error(&e.to_string()));
                eprintln!("serve: dropped {label}: {e}");
            }
        },
        _ => {
            ctx.hub.reject_frame();
            let _ = write_frame(
                &mut stream,
                &render_error("first frame must be a join or a submit"),
            );
            eprintln!("serve: dropped {label}: first frame is neither join nor submit");
        }
    }
}

// ---------------------------------------------------------------------
// The peer side: one thread per joined worker.
// ---------------------------------------------------------------------

/// Keeps the live-peer census exact on every exit path.
struct PeerGuard<'a>(&'a Hub);

impl Drop for PeerGuard<'_> {
    fn drop(&mut self) {
        self.0.live_peers.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Drives one joined worker: heartbeats both ways, an idle deadline,
/// and one lease at a time popped from the hub queue. Any violation,
/// silence, or death retires the peer — its shard (if any) re-enters
/// the queue via the lease's `Failed` event, and the worker's own
/// reconnect backoff brings it back for a clean slate.
fn drive_peer(mut stream: TcpStream, mut reader: FrameReader, join: JoinFrame, ctx: &Ctx) {
    let hub = &ctx.hub;
    // The blacklist gates admission: a convicted worker is turned away
    // at the door until its parole expires.
    if hub.banned(join.wid) {
        eprintln!(
            "serve: refused worker {}: blacklisted pending parole",
            join.wid
        );
        let _ = write_frame(
            &mut stream,
            &render_error(&format!("worker {} is blacklisted", join.wid)),
        );
        return;
    }
    let id = hub.next_peer.fetch_add(1, Ordering::SeqCst) + 1;
    let label = format!("peer {id}");
    hub.peers_seen.fetch_add(1, Ordering::SeqCst);
    if join.reconnects > 0 {
        hub.reconnects.fetch_add(1, Ordering::SeqCst);
    }
    hub.live_peers.fetch_add(1, Ordering::SeqCst);
    let _census = PeerGuard(hub);
    eprintln!(
        "serve: {label} joined ({} reconnects so far, wid {})",
        join.reconnects, join.wid
    );

    let idle_limit = idle_limit(ctx.cfg.heartbeat);
    let mut last_heard = Instant::now();
    let mut last_beat = Instant::now();
    loop {
        if hub.shutdown.load(Ordering::SeqCst) {
            let _ = write_frame(&mut stream, BYE_FRAME);
            return;
        }
        if last_beat.elapsed() >= ctx.cfg.heartbeat {
            if let Err(e) = write_frame(&mut stream, HB_FRAME) {
                hub.retire(&label, &format!("heartbeat write failed: {e}"));
                return;
            }
            last_beat = Instant::now();
        }
        match reader.recv(&mut stream) {
            Ok(Recv::Idle) => {
                if last_heard.elapsed() > idle_limit {
                    hub.retire(
                        &label,
                        &format!(
                            "silent for {}ms while idle",
                            last_heard.elapsed().as_millis()
                        ),
                    );
                    return;
                }
            }
            Ok(Recv::Frame(line)) => {
                last_heard = Instant::now();
                let kind = parse_flat(&line)
                    .map(Obj)
                    .and_then(|o| o.str("kind").map(str::to_string));
                if kind.as_deref() != Some("hb") {
                    hub.reject_frame();
                    hub.retire(&label, &format!("unexpected idle frame {kind:?}"));
                    return;
                }
            }
            Ok(Recv::Eof) => {
                hub.retire(&label, "disconnected");
                return;
            }
            Err(e) => {
                if matches!(e, NfpError::ProtocolViolation { .. }) {
                    hub.reject_frame();
                }
                hub.retire(&label, &e.to_string());
                return;
            }
        }
        // A conviction can land while the session is open: revoke it.
        if hub.banned(join.wid) {
            let _ = write_frame(
                &mut stream,
                &render_error(&format!("worker {} is blacklisted", join.wid)),
            );
            hub.retire(
                &label,
                &format!("wid {} blacklisted after an audit conviction", join.wid),
            );
            return;
        }
        let Some(lease) = hub.pop_lease(join.wid) else {
            continue;
        };
        let _ = lease
            .events
            .send(LeaseEvent::Started { shard: lease.shard });
        eprintln!(
            "serve: shard {} leased to {label} (attempt {})",
            lease.shard, lease.attempt
        );
        match run_lease(&mut stream, &mut reader, &lease, ctx) {
            Ok(Some(records)) => {
                let _ = lease.events.send(LeaseEvent::Done {
                    shard: lease.shard,
                    wid: join.wid,
                    records,
                });
                last_heard = Instant::now();
                last_beat = Instant::now();
            }
            Ok(None) => {
                // Shutdown mid-lease: hand the shard back and bow out.
                let _ = lease.events.send(LeaseEvent::Failed {
                    shard: lease.shard,
                    detail: "coordinator shutting down".to_string(),
                    revoked: false,
                });
                let _ = write_frame(&mut stream, BYE_FRAME);
                return;
            }
            Err(fail) => {
                let _ = lease.events.send(LeaseEvent::Failed {
                    shard: lease.shard,
                    detail: fail.detail.clone(),
                    revoked: fail.revoked,
                });
                hub.retire(&label, &fail.detail);
                return;
            }
        }
    }
}

/// A peer silent for ten heartbeat intervals (but at least two
/// seconds) has lost its claim to liveness.
fn idle_limit(heartbeat: Duration) -> Duration {
    (heartbeat * 10).max(Duration::from_secs(2))
}

/// Why a lease failed on this peer.
struct LeaseFail {
    detail: String,
    /// True for deadline revocations (the peer may be alive but too
    /// silent or too slow); false for deaths and violations.
    revoked: bool,
}

/// Runs one lease on a connected peer: send the shard hello, verify
/// the golden-count echo, accept CRC-checked in-range records, and
/// demand a digest-valid fin. `Ok(None)` means the coordinator began
/// shutting down mid-lease. Every wait inside is bounded by the idle
/// deadline and the overall lease timeout.
fn run_lease(
    stream: &mut TcpStream,
    reader: &mut FrameReader,
    lease: &Lease,
    ctx: &Ctx,
) -> Result<Option<LeaseRecords>, LeaseFail> {
    let hub = &ctx.hub;
    let fail = |detail: String, revoked: bool| Err(LeaseFail { detail, revoked });
    if let Err(e) = write_frame(stream, &render_hello(&lease.hello)) {
        return fail(format!("lease write failed: {e}"), false);
    }
    let range = lease.hello.header.range();
    let idle_limit = idle_limit(ctx.cfg.heartbeat);
    let deadline = Instant::now() + ctx.cfg.lease_timeout;
    let mut last_heard = Instant::now();
    let mut last_beat = Instant::now();
    let mut got_ready = false;
    let mut slots: Slots = vec![None; lease.faults.len()];
    loop {
        if hub.shutdown.load(Ordering::SeqCst) {
            return Ok(None);
        }
        if Instant::now() >= deadline {
            return fail(
                format!(
                    "lease revoked: shard {} still open after the {}s lease deadline",
                    lease.shard,
                    ctx.cfg.lease_timeout.as_secs()
                ),
                true,
            );
        }
        if last_beat.elapsed() >= ctx.cfg.heartbeat {
            if let Err(e) = write_frame(stream, HB_FRAME) {
                return fail(format!("heartbeat write failed mid-lease: {e}"), false);
            }
            last_beat = Instant::now();
        }
        let line = match reader.recv(stream) {
            Ok(Recv::Idle) => {
                if last_heard.elapsed() > idle_limit {
                    return fail(
                        format!(
                            "lease revoked: peer silent for {}ms mid-lease",
                            last_heard.elapsed().as_millis()
                        ),
                        true,
                    );
                }
                continue;
            }
            Ok(Recv::Eof) => {
                return fail("peer closed the connection mid-lease".to_string(), false)
            }
            Err(e) => {
                if matches!(e, NfpError::ProtocolViolation { .. }) {
                    hub.reject_frame();
                }
                return fail(e.to_string(), false);
            }
            Ok(Recv::Frame(line)) => line,
        };
        last_heard = Instant::now();
        let Some(obj) = parse_flat(&line).map(Obj) else {
            hub.reject_frame();
            return fail("unparseable frame mid-lease".to_string(), false);
        };
        if obj.get("fin").is_some() {
            if !got_ready {
                hub.reject_frame();
                return fail("fin before the ready handshake".to_string(), false);
            }
            let Some(fin) = parse_fin(&line) else {
                hub.reject_frame();
                return fail("corrupt or checksum-failed fin".to_string(), false);
            };
            return match check_fin(&fin, range, &slots) {
                Ok(()) => Ok(Some(collect_range(slots, range))),
                Err(e) => {
                    hub.reject_frame();
                    fail(e.to_string(), false)
                }
            };
        } else if obj.get("crc").is_some() {
            if !got_ready {
                hub.reject_frame();
                return fail("record before the ready handshake".to_string(), false);
            }
            if let Err(e) = accept_record(&line, range, &lease.faults, &mut slots) {
                hub.reject_frame();
                return fail(e.to_string(), false);
            }
        } else {
            match parse_reply(&line) {
                Ok(Reply::Hb) => {}
                Ok(Reply::Ready { golden_instret }) => {
                    if got_ready {
                        hub.reject_frame();
                        return fail("duplicate ready".to_string(), false);
                    }
                    if golden_instret != lease.hello.header.golden_instret {
                        return fail(
                            format!(
                                "golden instruction count mismatch: coordinator expects {}, \
                                 peer's rig ran {golden_instret}",
                                lease.hello.header.golden_instret
                            ),
                            false,
                        );
                    }
                    got_ready = true;
                }
                Ok(Reply::Error { detail }) => {
                    return fail(format!("peer reported: {detail}"), false)
                }
                Ok(Reply::Done { .. }) => {
                    hub.reject_frame();
                    return fail(
                        "stdin-protocol done frame on the TCP transport".to_string(),
                        false,
                    );
                }
                Err(e) => {
                    hub.reject_frame();
                    return fail(e.to_string(), false);
                }
            }
        }
    }
}

/// Validates one streamed record line against the lease: CRC (inside
/// [`parse_record`]), leased range, no duplicates, and the exact fault
/// the deterministic plan holds at that index. Distrust is the default:
/// a remote peer's bytes prove themselves or the lease dies.
fn accept_record(
    line: &str,
    range: (usize, usize),
    faults: &[Fault],
    slots: &mut Slots,
) -> Result<usize, NfpError> {
    let (index, rec, attempts) =
        parse_record(line).ok_or_else(|| violation("corrupt or checksum-failed record line"))?;
    if index < range.0 || index >= range.1 {
        return Err(violation(format!(
            "record {index} is outside the leased range {}..{}",
            range.0, range.1
        )));
    }
    if slots[index].is_some() {
        return Err(violation(format!("duplicate record for injection {index}")));
    }
    if rec.fault != faults[index] {
        return Err(violation(format!(
            "record {index} does not match the deterministic fault plan"
        )));
    }
    slots[index] = Some((rec, attempts));
    Ok(index)
}

/// Validates a shard fin against what actually arrived: the claimed
/// range, the record count, full coverage, and the plan-order digest.
fn check_fin(fin: &FinRecord, range: (usize, usize), slots: &Slots) -> Result<(), NfpError> {
    let (start, end) = range;
    if (fin.range_start, fin.range_end) != (start as u64, end as u64) {
        return Err(violation(format!(
            "fin claims range {}..{} but the lease covers {start}..{end}",
            fin.range_start, fin.range_end
        )));
    }
    if fin.records != (end - start) as u64 {
        return Err(violation(format!(
            "fin claims {} records but the lease covers {}",
            fin.records,
            end - start
        )));
    }
    if let Some(missing) = (start..end).find(|&i| slots[i].is_none()) {
        return Err(violation(format!(
            "fin arrived before record {missing} of the leased range"
        )));
    }
    if fin.digest != range_digest(slots, range) {
        return Err(violation(
            "fin digest disagrees with the records it claims to cover",
        ));
    }
    Ok(())
}

fn collect_range(slots: Slots, range: (usize, usize)) -> LeaseRecords {
    slots
        .into_iter()
        .enumerate()
        .skip(range.0)
        .take(range.1 - range.0)
        .filter_map(|(i, s)| s.map(|(rec, attempts)| (i, rec, attempts)))
        .collect()
}

// ---------------------------------------------------------------------
// The campaign side: one thread per admitted submission.
// ---------------------------------------------------------------------

/// Audit posture of one shard (DESIGN.md §16).
enum AuditPhase {
    /// Not sampled (or already arbitrated): the first valid result
    /// persists immediately.
    Clear,
    /// Sampled by the deterministic audit sampler: results are held
    /// back until two disjoint workers agree — or the trusted local
    /// pool arbitrates. `streams` holds the (wid, records) pairs that
    /// arrived so far; `since` marks the first arrival, bounding how
    /// long the coordinator waits for a second opinion.
    Sampled {
        streams: Vec<(u64, LeaseRecords)>,
        since: Option<Instant>,
    },
}

/// Audit-tier tallies of one campaign, for the footer.
#[derive(Default)]
struct AuditCounters {
    ranges_audited: usize,
    audits_passed: usize,
    workers_convicted: usize,
    ranges_invalidated: usize,
}

/// The deterministic, seed-driven audit sampler: whether `shard` of a
/// campaign seeded `seed` gets a second opinion. A pure function, so a
/// resumed coordinator — and every retry of the same shard — samples
/// identically, and no clock or ambient randomness can influence which
/// ranges are checked.
fn audit_sampled(seed: u64, shard: u32, rate: f64) -> bool {
    if rate <= 0.0 {
        return false;
    }
    let x = splitmix64(seed ^ (u64::from(shard) << 32) ^ 0x00d1_7a5a_3713_e2c5);
    ((x >> 11) as f64) / ((1u64 << 53) as f64) < rate
}

/// Whether two validated record streams for the same range agree.
/// Attempt counts are deliberately ignored: an honest worker that
/// retried a panicked replay reports `attempts: 2` where another
/// reports `1`, and nobody gets convicted over retry bookkeeping.
fn streams_match(a: &LeaseRecords, b: &LeaseRecords) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|((ia, ra, _), (ib, rb, _))| ia == ib && ra == rb)
}

/// Whether a remote stream agrees with the trusted local re-execution
/// of `start..start+local.len()`. Same attempt-blindness as
/// [`streams_match`].
fn matches_local(stream: &LeaseRecords, start: usize, local: &[InjectionRecord]) -> bool {
    stream.len() == local.len()
        && stream
            .iter()
            .enumerate()
            .all(|(k, (i, rec, _))| *i == start + k && rec == &local[k])
}

/// Per-shard dispatch state inside one campaign.
struct Track {
    done: bool,
    lost: bool,
    retries: u32,
    attempts: u32,
    in_flight: usize,
    leased_at: Option<Instant>,
    speculated: bool,
    retry_at: Option<Instant>,
    abandoned: Arc<AtomicBool>,
    /// Worker id whose records currently fill this shard's range.
    /// `None` for the trusted local pool and disk-restored records.
    producer: Option<u64>,
    /// Audit posture; see [`AuditPhase`].
    audit: AuditPhase,
}

/// Handles one client submission end to end: drain gate, result-cache
/// fast path, live-campaign deduplication, admission, then the
/// dispatch loop ([`drive_campaign`]) and result publication
/// ([`finish_campaign`]).
fn run_remote_campaign(
    mut client: TcpStream,
    mut creader: FrameReader,
    req: CampaignRequest,
    ctx: &Ctx,
) {
    let label = format!("client '{}'", req.client);
    if ctx.draining.load(Ordering::SeqCst) {
        let reason = "coordinator is draining; no new campaigns are admitted";
        let _ = write_frame(&mut client, &render_reject(&req.client, reason));
        eprintln!("serve: refused {label}: {reason}");
        return;
    }
    // Idempotent fast path: a finished identical campaign is answered
    // from the cache, byte-identical and without any simulation.
    let key = campaign_key(&req);
    if let Some(report) = lock(&ctx.cache).get(&key) {
        ctx.cache_hits.fetch_add(1, Ordering::SeqCst);
        eprintln!(
            "serve: campaign '{}' for {label} served from the result cache",
            req.kernel
        );
        let note = format!(
            "result cache hit for campaign '{}' — returning the stored report",
            req.kernel
        );
        match deliver(
            &mut client,
            &req.client,
            std::slice::from_ref(&note),
            &report,
        ) {
            Ok(()) => {
                ctx.served.fetch_add(1, Ordering::SeqCst);
            }
            Err(e) => eprintln!("serve: cached report not delivered to {label}: {e}"),
        }
        return;
    }
    ctx.cache_misses.fetch_add(1, Ordering::SeqCst);
    // Concurrent deduplication: an identical campaign already in
    // flight gains a follower instead of a duplicate simulation.
    let (entry, leader) = {
        let mut live = lock(&ctx.live);
        match live.get(&key) {
            Some(entry) => (Arc::clone(entry), false),
            None => {
                let entry = Arc::new(LiveEntry::new(false));
                live.insert(key.clone(), Arc::clone(&entry));
                (entry, true)
            }
        }
    };
    if !leader {
        ctx.submits_deduped.fetch_add(1, Ordering::SeqCst);
        if entry.resumed {
            ctx.sessions_resumed.fetch_add(1, Ordering::SeqCst);
            eprintln!(
                "serve: {label} re-attached to the resumed campaign for '{}'",
                req.kernel
            );
        } else {
            eprintln!(
                "serve: {label} deduplicated into the live campaign for '{}'",
                req.kernel
            );
        }
        entry.subscribers.fetch_add(1, Ordering::SeqCst);
        follow_live(client, creader, &entry, ctx, &label);
        entry.subscribers.fetch_sub(1, Ordering::SeqCst);
        return;
    }
    // Admission next: nothing is planned, no memory is committed, for
    // a submission the server will not run. Every bail-out must also
    // unblock any follower that subscribed in the meantime.
    match ctx.admission.try_enter(&req.client) {
        Err(e) => {
            let reason = match &e {
                NfpError::Admission { reason, .. } => reason.clone(),
                other => other.to_string(),
            };
            let _ = write_frame(&mut client, &render_reject(&req.client, &reason));
            eprintln!("serve: refused {label}: {reason}");
            abort_entry(&key, &entry, &format!("admission refused: {reason}"), ctx);
            return;
        }
        Ok(Gate::Admitted) => {}
        Ok(Gate::Queued) => {
            eprintln!("serve: queued {label} behind the in-flight limit");
            let mut last_beat = Instant::now();
            loop {
                if ctx.admission.wait(&req.client, Duration::from_millis(100)) {
                    break;
                }
                if ctx.hub.shutdown.load(Ordering::SeqCst) {
                    ctx.admission.abandon_queue(&req.client);
                    let _ = write_frame(&mut client, &render_error("coordinator shutting down"));
                    abort_entry(&key, &entry, "coordinator shutting down", ctx);
                    return;
                }
                if last_beat.elapsed() >= CLIENT_BEAT {
                    if write_frame(&mut client, HB_FRAME).is_err() {
                        ctx.admission.abandon_queue(&req.client);
                        abort_entry(&key, &entry, "client left the admission queue", ctx);
                        return;
                    }
                    last_beat = Instant::now();
                }
                match creader.recv(&mut client) {
                    Ok(Recv::Idle) => {}
                    Ok(Recv::Frame(line)) if is_hb(&line) => {}
                    _ => {
                        // The queued client died or babbled: its place
                        // goes back to the pool.
                        ctx.admission.abandon_queue(&req.client);
                        eprintln!("serve: {label} left the queue");
                        abort_entry(&key, &entry, "client left the admission queue", ctx);
                        return;
                    }
                }
            }
        }
    }
    let _slot = AdmissionGuard(&ctx.admission);
    eprintln!(
        "serve: campaign '{}' ({} injections, {} mode) admitted for {label}",
        req.kernel,
        req.campaign.injections,
        req.mode.suffix()
    );
    let durable = if ctx.journal.is_some() {
        Durable::Fresh
    } else {
        Durable::No
    };
    let mut link = Some(ClientLink {
        stream: client,
        reader: creader,
    });
    let outcome = drive_campaign(&mut link, &req, &entry, durable, ctx);
    finish_campaign(outcome, link, &key, &entry, &label, ctx);
}

/// Unregisters a live campaign that never produced a result, waking
/// any followers with the failure.
fn abort_entry(key: &str, entry: &LiveEntry, detail: &str, ctx: &Ctx) {
    entry.publish(LiveState::Failed(detail.to_string()));
    lock(&ctx.live).remove(key);
}

/// Rides an existing live campaign on behalf of a second client with
/// the same key: heartbeat both ways until the leader publishes, then
/// deliver the same notes and report (or the same failure).
fn follow_live(
    mut client: TcpStream,
    mut creader: FrameReader,
    entry: &LiveEntry,
    ctx: &Ctx,
    label: &str,
) {
    let mut last_beat = Instant::now();
    loop {
        let published = {
            let guard = lock(&entry.state);
            let (guard, _) = entry
                .cv
                .wait_timeout(guard, Duration::from_millis(100))
                .unwrap_or_else(PoisonError::into_inner);
            match &*guard {
                LiveState::Running => None,
                LiveState::Done { notes, report } => Some(Ok((notes.clone(), report.clone()))),
                LiveState::Failed(detail) => Some(Err(detail.clone())),
            }
        };
        match published {
            Some(Ok((notes, report))) => {
                if let Err(e) = deliver(&mut client, label, &notes, &report) {
                    eprintln!("serve: {label} unreachable during the shared report: {e}");
                }
                return;
            }
            Some(Err(detail)) => {
                let _ = write_frame(&mut client, &render_error(&detail));
                return;
            }
            None => {}
        }
        if ctx.hub.shutdown.load(Ordering::SeqCst) {
            let _ = write_frame(&mut client, &render_error("coordinator shutting down"));
            return;
        }
        if last_beat.elapsed() >= CLIENT_BEAT {
            if write_frame(&mut client, HB_FRAME).is_err() {
                eprintln!("serve: {label} stopped following; the campaign continues");
                return;
            }
            last_beat = Instant::now();
        }
        match creader.recv(&mut client) {
            Ok(Recv::Idle) => {}
            Ok(Recv::Frame(line)) if is_hb(&line) => {}
            _ => {
                eprintln!("serve: {label} stopped following; the campaign continues");
                return;
            }
        }
    }
}

/// Total write budget towards one client for the notes and the chunked
/// report. Every frame write already carries [`WRITE_TIMEOUT`]; the
/// budget bounds their *sum*, so a slow-loris client draining a few
/// bytes per deadline cannot pin a coordinator thread (and the report
/// buffers it holds) for more than this long.
const CLIENT_WRITE_BUDGET: Duration = Duration::from_secs(30);

/// Streams notes, the chunked report, and the end frame to a client,
/// under [`CLIENT_WRITE_BUDGET`].
fn deliver(
    stream: &mut TcpStream,
    client: &str,
    notes: &[String],
    report: &str,
) -> Result<(), NfpError> {
    deliver_by(
        stream,
        client,
        notes,
        report,
        Instant::now() + CLIENT_WRITE_BUDGET,
    )
}

/// [`deliver`] against an explicit deadline. Exhausting the budget is a
/// typed [`NfpError::Admission`] refusal — the client was admitted, but
/// it has stopped holding up its end of the conversation.
fn deliver_by(
    stream: &mut TcpStream,
    client: &str,
    notes: &[String],
    report: &str,
    deadline: Instant,
) -> Result<(), NfpError> {
    let mut sent = 0usize;
    let mut put = |stream: &mut TcpStream, frame: &str| -> Result<(), NfpError> {
        if Instant::now() >= deadline {
            return Err(NfpError::Admission {
                client: client.to_string(),
                reason: format!(
                    "per-report write budget of {}s exhausted after {sent} bytes — slow client",
                    CLIENT_WRITE_BUDGET.as_secs()
                ),
            });
        }
        write_frame(stream, frame).map_err(|e| NfpError::Net {
            addr: client.to_string(),
            detail: format!("report write failed: {e}"),
        })?;
        sent += frame.len();
        Ok(())
    };
    for note in notes {
        put(stream, &render_note(note))?;
    }
    let mut rest = report;
    while !rest.is_empty() {
        let mut cut = rest.len().min(REPORT_CHUNK);
        while !rest.is_char_boundary(cut) {
            cut -= 1;
        }
        let (head, tail) = rest.split_at(cut);
        put(stream, &render_report_chunk(head))?;
        rest = tail;
    }
    put(stream, END_FRAME)
}

/// Re-runs a campaign the service journal recorded as open, headless:
/// the original client is gone (it re-attaches as a follower if it is
/// still interested), and only the shards missing from the records
/// file are re-dispatched.
fn resume_campaign(open: OpenCampaign, entry: Arc<LiveEntry>, key: String, ctx: &Ctx) {
    let label = format!("resumed campaign {} ('{}')", open.cid, open.req.kernel);
    eprintln!("serve: {label} re-dispatching from the service journal");
    let mut link = None;
    let durable = Durable::Resumed {
        cid: open.cid,
        golden_instret: open.golden_instret,
        done_shards: open.done_shards,
    };
    let outcome = drive_campaign(&mut link, &open.req, &entry, durable, ctx);
    finish_campaign(outcome, link, &key, &entry, &label, ctx);
}

/// Durability posture of one campaign run.
enum Durable {
    /// No journal configured: volatile, exactly the pre-journal
    /// behavior.
    No,
    /// Fresh submit on a journaled coordinator: allocate a campaign id
    /// and journal the submit once the golden run has bound it.
    Fresh,
    /// Rebuilt from the journal after a coordinator restart.
    /// `done_shards` is the journaled completion set net of
    /// invalidations: records-file restoration is gated on it.
    Resumed {
        cid: u64,
        golden_instret: u64,
        done_shards: Vec<u32>,
    },
}

/// How a campaign run ended when it did not produce a report.
enum DriveFail {
    /// The campaign itself is unrunnable or lost: its journal entry is
    /// closed so a restart does not retry it forever.
    Fatal(String),
    /// The coordinator is going down or nobody is listening: the
    /// journal entry stays open so a resume picks the campaign up.
    Interrupted(String),
}

impl DriveFail {
    fn detail(&self) -> &str {
        match self {
            DriveFail::Fatal(d) | DriveFail::Interrupted(d) => d,
        }
    }
}

/// What a completed dispatch loop hands back for publication.
struct DriveOutcome {
    /// Notes already streamed to the attached client mid-run (the
    /// local-fallback notice); stored for followers, not re-sent.
    live_notes: Vec<String>,
    /// Footer lines to send ahead of the report.
    footer_notes: Vec<String>,
    report: String,
    /// No missing ranges: the report is cacheable.
    complete: bool,
}

/// A submit client attached to a campaign run.
struct ClientLink {
    stream: TcpStream,
    reader: FrameReader,
}

/// The per-campaign durable record store: a supervisor-format journal
/// (binding header + CRC'd records + fin) next to the service journal,
/// appended in bulk at each shard completion and deleted once the
/// campaign's fin lands in the service journal — so disk stays
/// O(campaigns in flight), not O(history).
struct RecordsFile {
    path: PathBuf,
    file: File,
    /// The rendered binding header, kept for [`RecordsFile::rewrite`].
    header_line: String,
    /// Plan indices already persisted (the supervisor loader rejects
    /// duplicates, so appends must be exactly-once).
    journaled: Vec<bool>,
    /// True when the loaded file already carried its fin record.
    sealed: bool,
}

fn records_err(path: &Path, reason: String) -> NfpError {
    NfpError::Journal {
        path: path.display().to_string(),
        reason,
    }
}

impl RecordsFile {
    /// Opens (resuming) or creates the records file, prefilling
    /// `slots` from every intact record. A corrupt file is quarantined
    /// aside and restarted empty — re-simulation over trust.
    fn open(
        path: PathBuf,
        header: &JournalHeader,
        faults: &[Fault],
        slots: &mut Slots,
    ) -> Result<RecordsFile, NfpError> {
        let header_line = header.render();
        let mut journaled = vec![false; slots.len()];
        if path.exists() {
            match load_journal(&path, header, faults, slots) {
                Ok(loaded) => {
                    let mut file = OpenOptions::new()
                        .read(true)
                        .write(true)
                        .open(&path)
                        .map_err(|e| records_err(&path, format!("cannot reopen: {e}")))?;
                    file.set_len(loaded.intact_len)
                        .and_then(|_| file.seek(SeekFrom::End(0)))
                        .map_err(|e| {
                            records_err(&path, format!("cannot truncate torn tail: {e}"))
                        })?;
                    for (flag, slot) in journaled.iter_mut().zip(slots.iter()) {
                        *flag = slot.is_some();
                    }
                    return Ok(RecordsFile {
                        path,
                        file,
                        header_line,
                        journaled,
                        sealed: loaded.fin.is_some(),
                    });
                }
                Err(e) => {
                    let quarantine = quarantined_path(&path);
                    let _ = std::fs::rename(&path, &quarantine);
                    eprintln!(
                        "serve: records journal quarantined to {}: {e}",
                        quarantine.display()
                    );
                    slots.iter_mut().for_each(|s| *s = None);
                }
            }
        }
        let mut file =
            File::create(&path).map_err(|e| records_err(&path, format!("cannot create: {e}")))?;
        writeln!(file, "{header_line}")
            .and_then(|()| file.flush())
            .map_err(|e| records_err(&path, format!("cannot write header: {e}")))?;
        Ok(RecordsFile {
            path,
            file,
            header_line,
            journaled,
            sealed: false,
        })
    }

    /// Rewrites the whole file from the surviving slots: header first,
    /// then every retained record. The invalidation path must go
    /// through here — the supervisor loader hard-errors on duplicate
    /// indices, so a convicted worker's records have to leave the file
    /// before their ranges are re-persisted. The matching `invalidate`
    /// service-journal event is written *before* this rewrite, so a
    /// crash between the two still drops the distrusted records on
    /// resume (restoration is gated on the journaled shard_done set).
    fn rewrite(&mut self, slots: &Slots) -> Result<(), NfpError> {
        self.file
            .set_len(0)
            .and_then(|()| self.file.seek(SeekFrom::Start(0)))
            .map_err(|e| records_err(&self.path, format!("cannot truncate for rewrite: {e}")))?;
        writeln!(self.file, "{}", self.header_line)
            .map_err(|e| records_err(&self.path, format!("cannot rewrite header: {e}")))?;
        self.journaled.iter_mut().for_each(|f| *f = false);
        self.sealed = false;
        for (index, slot) in slots.iter().enumerate() {
            if let Some((rec, attempts)) = slot {
                writeln!(self.file, "{}", record_line(index, rec, *attempts))
                    .map_err(|e| records_err(&self.path, format!("rewrite failed: {e}")))?;
                self.journaled[index] = true;
            }
        }
        self.file
            .flush()
            .map_err(|e| records_err(&self.path, format!("rewrite flush failed: {e}")))
    }

    /// Appends (and flushes) every not-yet-persisted record in `range`.
    fn persist_range(&mut self, slots: &Slots, range: (usize, usize)) -> Result<(), NfpError> {
        for (index, slot) in slots.iter().enumerate().take(range.1).skip(range.0) {
            if self.journaled[index] {
                continue;
            }
            if let Some((rec, attempts)) = slot {
                writeln!(self.file, "{}", record_line(index, rec, *attempts))
                    .map_err(|e| records_err(&self.path, format!("append failed: {e}")))?;
                self.journaled[index] = true;
            }
        }
        self.file
            .flush()
            .map_err(|e| records_err(&self.path, format!("flush failed: {e}")))
    }

    /// Seals a complete run with the whole-range fin record.
    fn seal(&mut self, slots: &Slots) -> Result<(), NfpError> {
        if self.sealed {
            return Ok(());
        }
        let n = slots.len();
        let fin = FinRecord {
            records: n as u64,
            range_start: 0,
            range_end: n as u64,
            digest: range_digest(slots, (0, n)),
        };
        writeln!(self.file, "{}", fin_line(&fin))
            .and_then(|()| self.file.flush())
            .map_err(|e| records_err(&self.path, format!("cannot write fin: {e}")))?;
        self.sealed = true;
        Ok(())
    }
}

/// Durable bookkeeping of one journaled campaign run.
struct DurableRun {
    cid: u64,
    records: RecordsFile,
}

/// Closes out the durable state of a finished (or terminally failed)
/// campaign: seal the records file when the run is complete, journal
/// the service fin, and delete the records file.
fn close_durable(run: Option<DurableRun>, complete_slots: Option<&Slots>, ctx: &Ctx) {
    let Some(mut run) = run else { return };
    if let Some(slots) = complete_slots {
        let _ = run.records.seal(slots);
    }
    if let Some(journal) = &ctx.journal {
        let _ = journal.fin(run.cid);
    }
    let path = run.records.path.clone();
    drop(run);
    let _ = std::fs::remove_file(path);
}

/// Persists a completed shard's records and journals the completion.
/// On a write failure the durable state is closed out (best-effort)
/// and the campaign dies — durability was promised.
fn persist_shard(
    durable_run: &mut Option<DurableRun>,
    slots: &Slots,
    range: (usize, usize),
    shard: u32,
    ctx: &Ctx,
) -> Result<(), DriveFail> {
    let Some(run) = durable_run.as_mut() else {
        return Ok(());
    };
    match run.records.persist_range(slots, range) {
        Ok(()) => {
            if let Some(journal) = &ctx.journal {
                let _ = journal.shard_done(run.cid, shard);
            }
            Ok(())
        }
        Err(e) => {
            close_durable(durable_run.take(), None, ctx);
            Err(DriveFail::Fatal(e.to_string()))
        }
    }
}

/// Everything the audit arbitration needs that stays constant across
/// one campaign run.
struct AuditEnv<'a> {
    kernel: &'a Kernel,
    req: &'a CampaignRequest,
    campaign: &'a CampaignConfig,
    count: u32,
    label: &'a str,
    cid: Option<u64>,
    ctx: &'a Ctx,
}

/// The trusted tie-breaker: re-executes `shard` on the coordinator's
/// own pool, journals a verdict for every held-back stream (`pass` for
/// streams matching the local truth, `convict` for the rest), bans each
/// convicted worker with capped-backoff parole, invalidates and clears
/// every other range a convict returned, installs the local records,
/// and persists the shard. Called with two disagreeing streams (the
/// audit caught a liar), one stream (the second opinion never came —
/// the caller journals `inconclusive` first), or none (plain local
/// fallback). Returns `(kills, respawns, shards to re-dispatch)`.
#[allow(clippy::too_many_arguments)]
fn arbitrate_shard(
    env: &AuditEnv<'_>,
    shard: u32,
    streams: Vec<(u64, LeaseRecords)>,
    tracks: &mut [Track],
    slots: &mut Slots,
    durable_run: &mut Option<DurableRun>,
    counters: &mut AuditCounters,
) -> Result<(usize, usize, Vec<u32>), NfpError> {
    let ctx = env.ctx;
    let count = env.count;
    let spec = ShardSpec {
        index: shard,
        count,
    };
    let range = spec.range(env.campaign.injections);
    let mut sup = SupervisorConfig::new(env.campaign.clone());
    sup.isolation = ctx.cfg.isolation;
    sup.preset = ctx.cfg.preset;
    sup.worker_bin = ctx.cfg.worker_bin.clone();
    if sup.isolation == WorkerIsolation::Process {
        sup.deadline = Some(Duration::from_secs(300));
    }
    sup.shard = Some(spec);
    let out = run_supervised(env.kernel, env.req.mode, &sup)?;
    let local = out.result.records;
    let mut redispatch: Vec<u32> = Vec::new();
    let mut rewrite_needed = false;
    for (wid, stream) in streams {
        if matches_local(&stream, range.0, &local) {
            counters.audits_passed += 1;
            if let (Some(cid), Some(journal)) = (env.cid, &ctx.journal) {
                let _ = journal.audit(cid, shard, wid, "pass");
            }
            eprintln!(
                "serve: audit of shard {shard} of {}: worker {wid} agrees with the local truth",
                env.label
            );
            continue;
        }
        counters.workers_convicted += 1;
        if let (Some(cid), Some(journal)) = (env.cid, &ctx.journal) {
            let _ = journal.audit(cid, shard, wid, "convict");
        }
        if wid == 0 {
            eprintln!(
                "serve: audit of shard {shard} of {}: an unattributable worker (wid 0) returned \
                 falsified records — discarded, but there is no identity to blacklist",
                env.label
            );
            continue;
        }
        let strikes = ctx.hub.ban(wid);
        if let Some(journal) = &ctx.journal {
            let _ = journal.ban(wid, strikes);
        }
        eprintln!(
            "serve: worker {wid} convicted of falsifying shard {shard} of {}; blacklisted \
             (strike {strikes}, parole {}ms)",
            env.label,
            parole_delay(strikes).as_millis()
        );
        // Every other range the convict returned is now distrusted:
        // journal the invalidation *first*, then drop the records and
        // re-dispatch — a crash in between still drops them on resume.
        for other in 0..count {
            let t = &mut tracks[other as usize];
            if other != shard && t.done && t.producer == Some(wid) {
                if let (Some(cid), Some(journal)) = (env.cid, &ctx.journal) {
                    let _ = journal.invalidate(cid, other);
                }
                clear_range(
                    slots,
                    ShardSpec {
                        index: other,
                        count,
                    }
                    .range(env.campaign.injections),
                );
                t.done = false;
                t.producer = None;
                t.retries = 0;
                t.retry_at = None;
                // The completion set this flag; re-dispatches need a
                // fresh one or their leases are stillborn.
                t.abandoned = Arc::new(AtomicBool::new(false));
                t.audit = if audit_sampled(env.campaign.seed, other, ctx.cfg.audit_rate) {
                    AuditPhase::Sampled {
                        streams: Vec::new(),
                        since: None,
                    }
                } else {
                    AuditPhase::Clear
                };
                counters.ranges_invalidated += 1;
                rewrite_needed = true;
                redispatch.push(other);
                eprintln!(
                    "serve: shard {other} of {} invalidated (returned by convicted worker \
                     {wid}); re-dispatching",
                    env.label
                );
            }
            // Held-back streams from the convict are worthless too.
            if let AuditPhase::Sampled { streams, since } = &mut t.audit {
                streams.retain(|(w, _)| *w != wid);
                if streams.is_empty() {
                    *since = None;
                }
            }
        }
    }
    // Install the local truth — the trusted pool needs no audit.
    for (k, rec) in local.into_iter().enumerate() {
        slots[range.0 + k] = Some((rec, 1));
    }
    let t = &mut tracks[shard as usize];
    t.done = true;
    t.producer = None;
    t.audit = AuditPhase::Clear;
    t.abandoned.store(true, Ordering::SeqCst);
    if let Some(run) = durable_run.as_mut() {
        if rewrite_needed {
            run.records.rewrite(slots)?;
        }
        run.records.persist_range(slots, range)?;
        if let (Some(cid), Some(journal)) = (env.cid, &ctx.journal) {
            let _ = journal.shard_done(cid, shard);
        }
    }
    Ok((out.kills, out.respawns, redispatch))
}

/// Executes one campaign end to end: plan it, split it into shard
/// leases, ride the lease events (retry with backoff, revoke,
/// speculate, degrade to the local pool), journaling every durable
/// transition along the way. `link` carries the attached submit client
/// when there is one; a journaled (or followed) campaign survives its
/// client and keeps running headless so the result still lands in the
/// cache. Exits abandon every outstanding lease so peers never work
/// for a dead campaign.
fn drive_campaign(
    link: &mut Option<ClientLink>,
    req: &CampaignRequest,
    entry: &LiveEntry,
    durable: Durable,
    ctx: &Ctx,
) -> Result<DriveOutcome, DriveFail> {
    let label = format!("client '{}'", req.client);
    let fatal = |detail: String| Err(DriveFail::Fatal(detail));
    // Plan the campaign. The golden run here is the trust anchor every
    // remote result must re-derive (golden handshake, CRCs, digests).
    let kernels = match all_kernels(&ctx.cfg.preset.build()) {
        Ok(k) => k,
        Err(e) => return fatal(e.to_string()),
    };
    let Some(kernel) = kernels.iter().find(|k| k.name == req.kernel) else {
        return fatal(format!(
            "kernel '{}' is not in the {} preset",
            req.kernel,
            ctx.cfg.preset.name()
        ));
    };
    let campaign = req.campaign.clone();
    let (rig, space) = match CampaignRig::prepare(kernel, req.mode, &campaign) {
        Ok(r) => r,
        Err(e) => return fatal(e.to_string()),
    };
    let faults = Arc::new(plan(&space, campaign.injections, campaign.seed));
    let count = match &durable {
        // A resumed submit already carries the resolved shard count.
        Durable::Resumed { .. } => req.shards.max(1),
        _ => {
            let live_now = ctx.hub.live_peers.load(Ordering::SeqCst) as u32;
            if req.shards == 0 {
                live_now.max(1)
            } else {
                req.shards
            }
            .min(campaign.injections.max(1) as u32)
            .max(1)
        }
    };

    let mut slots: Slots = vec![None; faults.len()];
    let header = JournalHeader::bind(kernel, req.mode, &campaign, rig.golden_instret, None);
    let mut durable_run: Option<DurableRun> = match (&ctx.journal, &durable) {
        (None, _) | (_, Durable::No) => None,
        (Some(journal), Durable::Fresh) => {
            let cid = ctx.next_cid.fetch_add(1, Ordering::SeqCst);
            let mut resolved = req.clone();
            resolved.shards = count;
            if let Err(e) = journal.submit(cid, &resolved, rig.golden_instret) {
                return fatal(e.to_string());
            }
            match RecordsFile::open(
                records_path(journal.path(), cid),
                &header,
                &faults,
                &mut slots,
            ) {
                Ok(records) => Some(DurableRun { cid, records }),
                Err(e) => {
                    let _ = journal.fin(cid);
                    return fatal(e.to_string());
                }
            }
        }
        (
            Some(journal),
            Durable::Resumed {
                cid,
                golden_instret,
                done_shards,
            },
        ) => {
            if rig.golden_instret != *golden_instret {
                let _ = journal.fin(*cid);
                return fatal(format!(
                    "resumed campaign {cid} bound golden instret {golden_instret} but this \
                     coordinator's rig ran {} — stale journal",
                    rig.golden_instret
                ));
            }
            match RecordsFile::open(
                records_path(journal.path(), *cid),
                &header,
                &faults,
                &mut slots,
            ) {
                Ok(mut records) => {
                    // Restoration is gated on the journaled shard_done
                    // set (net of `invalidate` events): records of a
                    // shard never journaled as done — including a
                    // convicted worker's ranges when the crash landed
                    // between the invalidate event and the records-file
                    // rewrite — are distrusted, dropped, and re-run.
                    let mut dropped = 0usize;
                    for shard in 0..count {
                        if done_shards.contains(&shard) {
                            continue;
                        }
                        let range = ShardSpec {
                            index: shard,
                            count,
                        }
                        .range(campaign.injections);
                        dropped += clear_range(&mut slots, range);
                    }
                    if dropped > 0 {
                        eprintln!(
                            "serve: {label}: {dropped} record(s) of never-completed or \
                             invalidated shards dropped on resume"
                        );
                        if let Err(e) = records.rewrite(&slots) {
                            let _ = journal.fin(*cid);
                            return fatal(e.to_string());
                        }
                    }
                    Some(DurableRun { cid: *cid, records })
                }
                Err(e) => {
                    let _ = journal.fin(*cid);
                    return fatal(e.to_string());
                }
            }
        }
    };
    let durable_cid = durable_run.as_ref().map(|r| r.cid);
    let restored = slots.iter().filter(|s| s.is_some()).count();
    if restored > 0 {
        eprintln!(
            "serve: campaign for {label}: {restored}/{} records restored from the records \
             journal",
            slots.len()
        );
    }

    let (ev_tx, ev_rx) = mpsc::channel::<LeaseEvent>();
    let shard_range = |shard: u32| {
        ShardSpec {
            index: shard,
            count,
        }
        .range(campaign.injections)
    };
    let mut tracks: Vec<Track> = (0..count)
        .map(|shard| {
            let (start, end) = shard_range(shard);
            // A shard whose whole range was restored from the records
            // file never re-dispatches (and was audited, or unsampled,
            // before it was allowed to persist).
            let done = (start..end).all(|i| slots[i].is_some());
            Track {
                done,
                lost: false,
                retries: 0,
                attempts: 0,
                in_flight: 0,
                leased_at: None,
                speculated: false,
                retry_at: None,
                abandoned: Arc::new(AtomicBool::new(false)),
                producer: None,
                audit: if !done && audit_sampled(campaign.seed, shard, ctx.cfg.audit_rate) {
                    AuditPhase::Sampled {
                        streams: Vec::new(),
                        since: None,
                    }
                } else {
                    AuditPhase::Clear
                },
            }
        })
        .collect();
    let hello_for = |shard: u32| WorkerHello {
        header: JournalHeader::bind(
            kernel,
            req.mode,
            &campaign,
            rig.golden_instret,
            Some(ShardSpec {
                index: shard,
                count,
            }),
        ),
        preset: ctx.cfg.preset,
        heartbeat_ms: ctx.cfg.heartbeat.as_millis() as u64,
        spin_at: None,
        abort_at: None,
    };
    let dispatch = |t: &mut Track, shard: u32, exclude: Option<u64>| {
        t.attempts += 1;
        t.in_flight += 1;
        t.leased_at = None;
        if let (Some(cid), Some(journal)) = (durable_cid, &ctx.journal) {
            let _ = journal.lease(cid, shard, t.attempts);
        }
        ctx.hub.push_lease(Lease {
            hello: hello_for(shard),
            faults: Arc::clone(&faults),
            shard,
            attempt: t.attempts,
            events: ev_tx.clone(),
            abandoned: Arc::clone(&t.abandoned),
            exclude,
        });
    };
    let abandon_all = |tracks: &[Track]| {
        for t in tracks {
            t.abandoned.store(true, Ordering::SeqCst);
        }
    };
    for (shard, t) in tracks.iter_mut().enumerate() {
        if !t.done {
            dispatch(t, shard as u32, None);
        }
    }

    // Ride the lease events. Counters snapshot the hub so the footer
    // reports this campaign's share of the network churn.
    let started = Instant::now();
    let mut last_beat = Instant::now();
    let reconnects0 = ctx.hub.reconnects.load(Ordering::SeqCst);
    let rejected0 = ctx.hub.frames_rejected.load(Ordering::SeqCst);
    let retired0 = ctx.hub.peers_retired.load(Ordering::SeqCst);
    let mut kills = 0usize;
    let mut respawns = 0usize;
    let mut revoked_n = 0usize;
    let mut live_notes: Vec<String> = Vec::new();
    let mut audit = AuditCounters::default();
    let audit_patience = ctx.cfg.peer_grace.max(Duration::from_secs(2));
    let env = AuditEnv {
        kernel,
        req,
        campaign: &campaign,
        count,
        label: &label,
        cid: durable_cid,
        ctx,
    };
    // Runs the trusted tie-breaker for one shard and folds its outcome
    // back into the loop state. A macro rather than a closure because
    // the fatal path must `return` from `drive_campaign` itself.
    macro_rules! arbitrate {
        ($shard:expr, $streams:expr) => {{
            let shard: u32 = $shard;
            match arbitrate_shard(
                &env,
                shard,
                $streams,
                &mut tracks,
                &mut slots,
                &mut durable_run,
                &mut audit,
            ) {
                Ok((k, r, again)) => {
                    kills += k;
                    respawns += r;
                    for other in again {
                        dispatch(&mut tracks[other as usize], other, None);
                    }
                }
                Err(e) => {
                    if req.allow_partial && !matches!(e, NfpError::Journal { .. }) {
                        eprintln!("serve: local arbitration of shard {shard} failed: {e}");
                        tracks[shard as usize].lost = true;
                    } else {
                        abandon_all(&tracks);
                        close_durable(durable_run.take(), None, ctx);
                        return fatal(e.to_string());
                    }
                }
            }
        }};
    }
    while !tracks.iter().all(|t| t.done || t.lost) {
        match ev_rx.recv_timeout(Duration::from_millis(25)) {
            Ok(LeaseEvent::Started { shard }) => {
                tracks[shard as usize].leased_at = Some(Instant::now());
            }
            Ok(LeaseEvent::Done {
                shard,
                wid,
                records,
            }) => {
                let s = shard as usize;
                tracks[s].in_flight = tracks[s].in_flight.saturating_sub(1);
                if let (Some(cid), Some(journal)) = (durable_cid, &ctx.journal) {
                    let _ = journal.lease_return(cid, shard, true);
                }
                if tracks[s].done || tracks[s].lost {
                    // Stale speculative duplicate: the first valid
                    // stream won.
                } else if wid != 0 && ctx.hub.banned(wid) {
                    // A conviction landed while this lease was running:
                    // nothing a blacklisted worker returns is accepted.
                    eprintln!(
                        "serve: discarding shard {shard} records from blacklisted worker {wid}"
                    );
                    if tracks[s].in_flight == 0 {
                        tracks[s].retry_at = Some(Instant::now());
                    }
                } else {
                    match std::mem::replace(&mut tracks[s].audit, AuditPhase::Clear) {
                        AuditPhase::Clear => {
                            let t = &mut tracks[s];
                            t.done = true;
                            t.producer = (wid != 0).then_some(wid);
                            t.abandoned.store(true, Ordering::SeqCst);
                            for (i, rec, attempts) in records {
                                slots[i] = Some((rec, attempts));
                            }
                            eprintln!("serve: shard {shard} of {label} complete");
                            if let Err(fail) = persist_shard(
                                &mut durable_run,
                                &slots,
                                shard_range(shard),
                                shard,
                                ctx,
                            ) {
                                abandon_all(&tracks);
                                return Err(fail);
                            }
                        }
                        AuditPhase::Sampled { mut streams, since } => {
                            if streams.len() == 1 && wid != 0 && streams[0].0 == wid {
                                // The producer answered again (a
                                // speculative duplicate landed on the
                                // same peer): agreement with itself is
                                // no second opinion — keep waiting.
                                tracks[s].audit = AuditPhase::Sampled { streams, since };
                            } else {
                                streams.push((wid, records));
                                if streams.len() < 2 {
                                    audit.ranges_audited += 1;
                                    eprintln!(
                                        "serve: shard {shard} of {label} sampled for audit; \
                                         re-dispatching to a disjoint worker"
                                    );
                                    tracks[s].audit = AuditPhase::Sampled {
                                        streams,
                                        since: Some(Instant::now()),
                                    };
                                    dispatch(&mut tracks[s], shard, (wid != 0).then_some(wid));
                                } else if streams_match(&streams[0].1, &streams[1].1) {
                                    let (w1, first) = streams.swap_remove(0);
                                    let w2 = streams[0].0;
                                    audit.audits_passed += 1;
                                    if let (Some(cid), Some(journal)) = (durable_cid, &ctx.journal)
                                    {
                                        let _ = journal.audit(cid, shard, w1, "pass");
                                    }
                                    eprintln!(
                                        "serve: audit of shard {shard} of {label} passed \
                                         (workers {w1} and {w2} agree)"
                                    );
                                    let t = &mut tracks[s];
                                    t.done = true;
                                    t.producer = (w1 != 0).then_some(w1);
                                    t.abandoned.store(true, Ordering::SeqCst);
                                    for (i, rec, attempts) in first {
                                        slots[i] = Some((rec, attempts));
                                    }
                                    if let Err(fail) = persist_shard(
                                        &mut durable_run,
                                        &slots,
                                        shard_range(shard),
                                        shard,
                                        ctx,
                                    ) {
                                        abandon_all(&tracks);
                                        return Err(fail);
                                    }
                                } else {
                                    eprintln!(
                                        "serve: audit of shard {shard} of {label} found \
                                         disagreeing record streams (workers {} vs {}); \
                                         re-executing on the trusted local pool",
                                        streams[0].0, streams[1].0
                                    );
                                    arbitrate!(shard, streams);
                                }
                            }
                        }
                    }
                }
            }
            Ok(LeaseEvent::Failed {
                shard,
                detail,
                revoked,
            }) => {
                let t = &mut tracks[shard as usize];
                t.in_flight = t.in_flight.saturating_sub(1);
                if revoked {
                    revoked_n += 1;
                }
                if let (Some(cid), Some(journal)) = (durable_cid, &ctx.journal) {
                    let _ = journal.lease_return(cid, shard, false);
                }
                if !t.done && !t.lost {
                    eprintln!("serve: shard {shard} lease failed ({detail})");
                    if t.in_flight == 0 {
                        t.retries += 1;
                        if t.retries > ctx.cfg.shard_retries {
                            let held = matches!(
                                &t.audit,
                                AuditPhase::Sampled { streams, .. } if !streams.is_empty()
                            );
                            if held {
                                // The audit re-dispatch burned the
                                // retry budget without producing a
                                // second opinion: journal the verdict
                                // and let the trusted pool arbitrate.
                                let AuditPhase::Sampled { streams, .. } = std::mem::replace(
                                    &mut tracks[shard as usize].audit,
                                    AuditPhase::Clear,
                                ) else {
                                    unreachable!()
                                };
                                if let (Some(cid), Some(journal)) = (durable_cid, &ctx.journal) {
                                    let _ = journal.audit(cid, shard, streams[0].0, "inconclusive");
                                }
                                eprintln!(
                                    "serve: audit of shard {shard} of {label} inconclusive (no \
                                     disjoint second opinion); re-executing on the trusted \
                                     local pool"
                                );
                                arbitrate!(shard, streams);
                            } else {
                                let (start, end) = shard_range(shard);
                                if req.allow_partial {
                                    tracks[shard as usize].lost = true;
                                    eprintln!(
                                        "serve: shard {shard} lost after exhausting its \
                                         re-dispatch budget"
                                    );
                                } else {
                                    abandon_all(&tracks);
                                    close_durable(durable_run.take(), None, ctx);
                                    return fatal(
                                        NfpError::ShardLost {
                                            shard,
                                            start: start as u64,
                                            end: end as u64,
                                            detail,
                                        }
                                        .to_string(),
                                    );
                                }
                            }
                        } else {
                            t.retry_at = Some(
                                Instant::now()
                                    + backoff_delay(campaign.seed, shard as usize, t.retries),
                            );
                        }
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            // Unreachable: this function holds `ev_tx` until it returns.
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }

        let now = Instant::now();
        // Re-dispatch shards whose backoff expired.
        for shard in 0..count {
            let t = &mut tracks[shard as usize];
            if t.done || t.lost || t.in_flight > 0 {
                continue;
            }
            if t.retry_at.is_some_and(|at| now >= at) {
                t.retry_at = None;
                dispatch(t, shard, None);
            }
        }
        // A sampled shard whose audit lease no disjoint worker claimed
        // within the patience window falls to the trusted local pool:
        // journal the inconclusive verdict and arbitrate. Without this
        // a fleet where the producer is the only live peer would wait
        // forever for a second opinion that cannot come.
        for shard in 0..count {
            let s = shard as usize;
            if tracks[s].done || tracks[s].lost {
                continue;
            }
            // A claimed, still-running audit lease gets its full lease
            // timeout; a lease nobody claimed (`leased_at` never set)
            // or a shard with nothing in flight at all (the second
            // opinion was discarded, or came from the producer itself)
            // is what patience is for.
            if tracks[s].in_flight > 0 && tracks[s].leased_at.is_some() {
                continue;
            }
            let stalled = matches!(
                &tracks[s].audit,
                AuditPhase::Sampled { streams, since: Some(at) }
                    if !streams.is_empty() && at.elapsed() > audit_patience
            );
            if stalled {
                let AuditPhase::Sampled { streams, .. } =
                    std::mem::replace(&mut tracks[s].audit, AuditPhase::Clear)
                else {
                    unreachable!()
                };
                // Cancel the unclaimed audit lease; any later dispatch
                // of this shard needs a fresh abandonment flag.
                tracks[s].abandoned.store(true, Ordering::SeqCst);
                tracks[s].abandoned = Arc::new(AtomicBool::new(false));
                tracks[s].in_flight = 0;
                if let (Some(cid), Some(journal)) = (durable_cid, &ctx.journal) {
                    let _ = journal.audit(cid, shard, streams[0].0, "inconclusive");
                }
                eprintln!(
                    "serve: audit of shard {shard} of {label} inconclusive after {}ms (no \
                     disjoint worker claimed the re-execution); arbitrating locally",
                    audit_patience.as_millis()
                );
                arbitrate!(shard, streams);
            }
        }
        // Straggler speculation: duplicate a lease that has been held
        // too long. Determinism makes first-valid-wins safe.
        if let Some(limit) = ctx.cfg.straggler {
            for shard in 0..count {
                let t = &mut tracks[shard as usize];
                if t.done || t.lost || t.speculated || t.in_flight == 0 {
                    continue;
                }
                if t.leased_at.is_some_and(|at| at.elapsed() > limit) {
                    t.speculated = true;
                    eprintln!(
                        "serve: shard {shard} straggling; dispatching a speculative duplicate"
                    );
                    dispatch(t, shard, None);
                }
            }
        }
        // Graceful degradation: no live peers past the grace period
        // means the network is not coming to help — run what remains
        // on the local pool, byte-identically.
        if ctx.hub.live_peers.load(Ordering::SeqCst) == 0 && started.elapsed() >= ctx.cfg.peer_grace
        {
            let pending = (0..count)
                .filter(|&s| {
                    let t = &tracks[s as usize];
                    !t.done && !t.lost
                })
                .count();
            if pending > 0 {
                let note = format!(
                    "no live peers after {}ms; falling back to the local worker pool for \
                     {pending} shards",
                    ctx.cfg.peer_grace.as_millis(),
                );
                eprintln!("serve: {note}");
                if let Some(l) = link.as_mut() {
                    let _ = write_frame(&mut l.stream, &render_note(&note));
                }
                live_notes.push(note);
                abandon_all(&tracks);
                // Arbitration handles both shapes: a shard holding a
                // lone unaudited stream gets its inconclusive verdict
                // journaled and the stream judged against the local
                // truth; a clear shard is a plain local run. The loop
                // re-scans because a conviction can invalidate shards
                // that were already done when the scan started.
                while let Some(shard) = (0..count).find(|&s| {
                    let t = &tracks[s as usize];
                    !t.done && !t.lost
                }) {
                    let streams = match std::mem::replace(
                        &mut tracks[shard as usize].audit,
                        AuditPhase::Clear,
                    ) {
                        AuditPhase::Sampled { streams, .. } => {
                            if let Some((w, _)) = streams.first() {
                                if let (Some(cid), Some(journal)) = (durable_cid, &ctx.journal) {
                                    let _ = journal.audit(cid, shard, *w, "inconclusive");
                                }
                            }
                            streams
                        }
                        AuditPhase::Clear => Vec::new(),
                    };
                    arbitrate!(shard, streams);
                }
            }
        }
        // Client liveness. A journaled campaign — or one with
        // followers — outlives its client: detach and keep running
        // headless so the result lands in the cache for the session
        // to resume. Otherwise a dead client frees the workers.
        let mut client_gone = false;
        if let Some(l) = link.as_mut() {
            if last_beat.elapsed() >= CLIENT_BEAT {
                if write_frame(&mut l.stream, HB_FRAME).is_err() {
                    client_gone = true;
                } else {
                    last_beat = Instant::now();
                }
            }
            if !client_gone {
                match l.reader.recv(&mut l.stream) {
                    Ok(Recv::Idle) => {}
                    Ok(Recv::Frame(line)) => {
                        if !is_hb(&line) {
                            ctx.hub.reject_frame();
                        }
                    }
                    Ok(Recv::Eof) | Err(_) => client_gone = true,
                }
            }
        }
        if client_gone {
            *link = None;
            if durable_cid.is_some() || entry.subscribers.load(Ordering::SeqCst) > 0 {
                eprintln!("serve: {label} disconnected; the campaign continues headless");
            } else {
                eprintln!("serve: {label} disconnected; abandoning the campaign");
                abandon_all(&tracks);
                return Err(DriveFail::Interrupted(
                    "client disconnected mid-campaign".to_string(),
                ));
            }
        }
        if ctx.hub.shutdown.load(Ordering::SeqCst) {
            abandon_all(&tracks);
            return Err(DriveFail::Interrupted(
                "coordinator shutting down".to_string(),
            ));
        }
    }
    // Stale speculative leases must not outlive the campaign.
    abandon_all(&tracks);

    let missing = missing_ranges_of(&slots);
    let complete = missing.is_empty();
    close_durable(durable_run.take(), complete.then_some(&slots), ctx);
    let footer = CampaignFooter {
        kills,
        respawns,
        shards: count,
        shard_retries: tracks.iter().map(|t| t.retries as usize).sum(),
        speculated: tracks.iter().filter(|t| t.speculated).count(),
        missing_ranges: missing,
        reconnects: ctx.hub.reconnects.load(Ordering::SeqCst) - reconnects0,
        leases_revoked: revoked_n,
        frames_rejected: ctx.hub.frames_rejected.load(Ordering::SeqCst) - rejected0,
        peers_retired: ctx.hub.peers_retired.load(Ordering::SeqCst) - retired0,
        ranges_audited: audit.ranges_audited,
        audits_passed: audit.audits_passed,
        workers_convicted: audit.workers_convicted,
        ranges_invalidated: audit.ranges_invalidated,
        dispatch: Some(rig.machine.dispatch_stats()),
        cache_hits: ctx.cache_hits.load(Ordering::SeqCst),
        cache_misses: ctx.cache_misses.load(Ordering::SeqCst),
        submits_deduped: ctx.submits_deduped.load(Ordering::SeqCst),
        sessions_resumed: ctx.sessions_resumed.load(Ordering::SeqCst),
        restarts: ctx.restarts,
    };
    let records: Vec<InjectionRecord> = slots.into_iter().flatten().map(|(rec, _)| rec).collect();
    let result = assemble(kernel, req.mode, &rig, records);
    eprintln!("serve: campaign '{}' for {label} assembled", result.name);
    Ok(DriveOutcome {
        live_notes,
        footer_notes: report_campaign_footer(&footer)
            .lines()
            .map(str::to_string)
            .collect(),
        report: report_campaign(&result),
        complete,
    })
}

/// Publishes a finished campaign run: cache the report (journaling any
/// evictions), wake the followers, unregister the live entry, and
/// deliver to the attached client when one is still there.
fn finish_campaign(
    outcome: Result<DriveOutcome, DriveFail>,
    mut link: Option<ClientLink>,
    key: &str,
    entry: &LiveEntry,
    label: &str,
    ctx: &Ctx,
) {
    match outcome {
        Ok(out) => {
            // Cache first, then publish, then unregister: a submission
            // arriving at any instant finds the result through exactly
            // one of the cache, the live entry, or a fresh run.
            if out.complete {
                let evicted = lock(&ctx.cache).put(key, &out.report);
                for (evicted_key, bytes) in evicted {
                    ctx.cache_evictions.fetch_add(1, Ordering::SeqCst);
                    if let Some(journal) = &ctx.journal {
                        let _ = journal.evict(&evicted_key, bytes);
                    }
                    eprintln!("serve: result cache evicted '{evicted_key}' ({bytes} bytes)");
                }
            }
            let mut notes = out.live_notes.clone();
            notes.extend(out.footer_notes.iter().cloned());
            entry.publish(LiveState::Done {
                notes,
                report: out.report.clone(),
            });
            lock(&ctx.live).remove(key);
            ctx.served.fetch_add(1, Ordering::SeqCst);
            if let Some(l) = link.as_mut() {
                if let Err(e) = deliver(&mut l.stream, label, &out.footer_notes, &out.report) {
                    eprintln!(
                        "serve: {label} unreachable during the report ({e}); the result is cached"
                    );
                }
            }
            eprintln!("serve: campaign for {label} complete");
        }
        Err(fail) => {
            let detail = fail.detail().to_string();
            entry.publish(LiveState::Failed(detail.clone()));
            lock(&ctx.live).remove(key);
            if let Some(l) = link.as_mut() {
                let _ = write_frame(&mut l.stream, &render_error(&detail));
            }
            eprintln!("serve: campaign for {label} failed: {detail}");
        }
    }
}

fn is_hb(line: &str) -> bool {
    parse_flat(line)
        .map(Obj)
        .is_some_and(|o| o.str("kind") == Some("hb"))
}

// ---------------------------------------------------------------------
// The submit client.
// ---------------------------------------------------------------------

/// What a remote campaign submission returned.
#[derive(Debug, Clone)]
pub struct RemoteOutcome {
    /// The campaign report, byte-identical to a local same-seed run.
    pub report: String,
    /// Progress/footer notes the coordinator sent along the way
    /// (stderr material; the report stays byte-stable).
    pub notes: Vec<String>,
}

/// Submits a campaign to a coordinator and blocks until the report
/// (or a typed refusal/failure) comes back. [`submit_campaign_with`]
/// with a note sink.
pub fn submit_campaign(addr: &str, req: &CampaignRequest) -> Result<RemoteOutcome, NfpError> {
    submit_campaign_with(addr, req, |_| {})
}

/// Submits a campaign, invoking `on_note` for every progress note as
/// it arrives. Admission refusals come back as [`NfpError::Admission`],
/// transport failures as [`NfpError::Net`]; total coordinator silence
/// beyond an internal deadline is a typed error, never a hang.
pub fn submit_campaign_with(
    addr: &str,
    req: &CampaignRequest,
    mut on_note: impl FnMut(&str),
) -> Result<RemoteOutcome, NfpError> {
    let net = |detail: String| NfpError::Net {
        addr: addr.to_string(),
        detail,
    };
    let mut stream = tcp_connect(addr).map_err(net)?;
    let _ = stream.set_nodelay(true);
    stream
        .set_read_timeout(Some(READ_TICK))
        .map_err(|e| net(format!("set read timeout: {e}")))?;
    stream
        .set_write_timeout(Some(WRITE_TIMEOUT))
        .map_err(|e| net(format!("set write timeout: {e}")))?;
    write_frame(&mut stream, &render_submit(req)).map_err(|e| send_err(addr, e))?;
    let mut reader = FrameReader::new(addr);
    let mut report = String::new();
    let mut notes = Vec::new();
    let mut last_heard = Instant::now();
    loop {
        let line = match reader.recv(&mut stream)? {
            Recv::Idle => {
                if last_heard.elapsed() > CLIENT_SILENCE {
                    return Err(net(format!(
                        "coordinator silent for {}s",
                        CLIENT_SILENCE.as_secs()
                    )));
                }
                continue;
            }
            Recv::Eof => {
                return Err(net(
                    "coordinator closed the connection before the report completed".to_string(),
                ))
            }
            Recv::Frame(line) => line,
        };
        last_heard = Instant::now();
        let obj = Obj(parse_flat(&line)
            .ok_or_else(|| violation(format!("unparseable frame from coordinator: {line:?}")))?);
        match obj.str("kind") {
            Some("hb") => {}
            Some("note") => {
                let text = obj
                    .str("text")
                    .ok_or_else(|| violation("note frame lacks text"))?
                    .to_string();
                on_note(&text);
                notes.push(text);
            }
            Some("report") => {
                report.push_str(
                    obj.str("chunk")
                        .ok_or_else(|| violation("report frame lacks a chunk"))?,
                );
            }
            Some("end") => return Ok(RemoteOutcome { report, notes }),
            Some("reject") => {
                return Err(NfpError::Admission {
                    client: obj.str("client").unwrap_or(&req.client).to_string(),
                    reason: obj.str("reason").unwrap_or("(no reason given)").to_string(),
                })
            }
            Some("error") => {
                return Err(net(format!(
                    "coordinator reported: {}",
                    obj.str("detail").unwrap_or("(no detail)")
                )))
            }
            Some("bye") => return Err(net("coordinator is shutting down".to_string())),
            other => return Err(violation(format!("unknown frame kind {other:?}"))),
        }
    }
}

/// [`submit_campaign_with`] wrapped in a capped, deterministically
/// jittered retry loop (the worker's reconnect discipline, on the
/// client). Only transport failures ([`NfpError::Net`]) — connection
/// refused while a coordinator restarts, a crash mid-report — are
/// retried, up to `retries` times; admission refusals and protocol
/// violations surface immediately. Because a finished campaign is
/// cached on the coordinator keyed by its request, a retried submit is
/// idempotent: the re-presented key returns the byte-identical report
/// (or re-attaches to the still-running campaign) rather than
/// re-simulating.
pub fn submit_campaign_retry(
    addr: &str,
    req: &CampaignRequest,
    retries: u32,
    mut on_note: impl FnMut(&str),
) -> Result<RemoteOutcome, NfpError> {
    let mut attempt = 0u32;
    loop {
        match submit_campaign_with(addr, req, &mut on_note) {
            Ok(outcome) => return Ok(outcome),
            Err(NfpError::Net { detail, .. }) if attempt < retries => {
                attempt += 1;
                let delay = backoff_delay(req.campaign.seed, 0, attempt);
                on_note(&format!(
                    "submit attempt {attempt} failed ({detail}); retrying in {}ms",
                    delay.as_millis()
                ));
                std::thread::sleep(delay);
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supervisor::{fin_line, record_line};
    use nfp_core::Outcome;
    use nfp_sim::FaultTarget;

    fn fault(i: u64) -> Fault {
        Fault {
            at: 100 + i,
            target: FaultTarget::IntReg {
                index: (i % 8) as u8,
                bit: (i % 32) as u8,
            },
        }
    }

    fn record(i: u64) -> InjectionRecord {
        InjectionRecord {
            fault: fault(i),
            category: None,
            outcome: Outcome::Masked,
        }
    }

    // -- admission ----------------------------------------------------

    #[test]
    fn zero_inflight_refuses_immediately_and_typed() {
        let adm = Admission::new(0, 4);
        match adm.try_enter("tenant-a") {
            Err(NfpError::Admission { client, reason }) => {
                assert_eq!(client, "tenant-a");
                assert!(reason.contains("admits no campaigns"), "{reason}");
            }
            other => panic!("expected an admission refusal, got {other:?}"),
        }
    }

    #[test]
    fn queue_cap_refuses_the_overflowing_client() {
        let adm = Admission::new(1, 1);
        assert_eq!(adm.try_enter("a").unwrap(), Gate::Admitted);
        assert_eq!(adm.try_enter("a").unwrap(), Gate::Queued);
        match adm.try_enter("a") {
            Err(NfpError::Admission { reason, .. }) => {
                assert!(reason.contains("per-client cap"), "{reason}");
            }
            other => panic!("expected an admission refusal, got {other:?}"),
        }
        // The cap is per client: another tenant can still queue.
        assert_eq!(adm.try_enter("b").unwrap(), Gate::Queued);
    }

    #[test]
    fn queued_submission_admits_once_a_slot_frees() {
        let adm = Arc::new(Admission::new(1, 1));
        assert_eq!(adm.try_enter("a").unwrap(), Gate::Admitted);
        assert_eq!(adm.try_enter("b").unwrap(), Gate::Queued);
        // Nothing freed yet: the bounded wait comes back empty-handed.
        assert!(!adm.wait("b", Duration::from_millis(10)));
        let waiter = {
            let adm = Arc::clone(&adm);
            std::thread::spawn(move || {
                let deadline = Instant::now() + Duration::from_secs(10);
                while Instant::now() < deadline {
                    if adm.wait("b", Duration::from_millis(50)) {
                        return true;
                    }
                }
                false
            })
        };
        adm.finish();
        assert!(waiter.join().unwrap(), "queued waiter was never admitted");
        // The queue place converted; abandoning it now is a no-op.
        adm.abandon_queue("b");
        adm.finish();
    }

    // -- record acceptance (the distrust boundary) --------------------

    #[test]
    fn corrupt_or_checksum_failed_records_are_refused() {
        let faults: Vec<Fault> = (0..4).map(fault).collect();
        let mut slots: Slots = vec![None; 4];
        let good = record_line(1, &record(1), 1);
        let tampered = good.replace("\"at\":101", "\"at\":102");
        for bad in ["not json", "{\"i\":1}", tampered.as_str()] {
            let err = accept_record(bad, (0, 4), &faults, &mut slots).unwrap_err();
            assert!(
                matches!(&err, NfpError::ProtocolViolation { detail }
                    if detail.contains("corrupt or checksum-failed")),
                "{bad:?} → {err}"
            );
        }
        assert!(slots.iter().all(Option::is_none));
    }

    #[test]
    fn out_of_range_and_interleaved_records_are_refused() {
        let faults: Vec<Fault> = (0..8).map(fault).collect();
        let mut slots: Slots = vec![None; 8];
        // The lease covers 2..4; a record for 5 belongs to another
        // shard — out-of-order/interleaved shard output is a violation.
        let err =
            accept_record(&record_line(5, &record(5), 1), (2, 4), &faults, &mut slots).unwrap_err();
        assert!(
            matches!(&err, NfpError::ProtocolViolation { detail }
                if detail.contains("outside the leased range")),
            "{err}"
        );
        // In-range is fine, in either order within the range.
        accept_record(&record_line(3, &record(3), 1), (2, 4), &faults, &mut slots).unwrap();
        accept_record(&record_line(2, &record(2), 1), (2, 4), &faults, &mut slots).unwrap();
    }

    #[test]
    fn duplicate_records_are_refused() {
        let faults: Vec<Fault> = (0..4).map(fault).collect();
        let mut slots: Slots = vec![None; 4];
        let line = record_line(1, &record(1), 1);
        accept_record(&line, (0, 4), &faults, &mut slots).unwrap();
        let err = accept_record(&line, (0, 4), &faults, &mut slots).unwrap_err();
        assert!(
            matches!(&err, NfpError::ProtocolViolation { detail } if detail.contains("duplicate")),
            "{err}"
        );
    }

    #[test]
    fn plan_binding_mismatches_are_refused() {
        let faults: Vec<Fault> = (0..4).map(fault).collect();
        let mut slots: Slots = vec![None; 4];
        // A record whose CRC is fine but whose fault is not what the
        // deterministic plan holds at that index: a confused (or
        // malicious) worker answering some other campaign.
        let line = record_line(1, &record(2), 1);
        let err = accept_record(&line, (0, 4), &faults, &mut slots).unwrap_err();
        assert!(
            matches!(&err, NfpError::ProtocolViolation { detail }
                if detail.contains("deterministic fault plan")),
            "{err}"
        );
    }

    // -- fin validation -----------------------------------------------

    fn filled_slots(range: (usize, usize), len: usize) -> Slots {
        let mut slots: Slots = vec![None; len];
        for (i, slot) in slots.iter_mut().enumerate().take(range.1).skip(range.0) {
            *slot = Some((record(i as u64), 1));
        }
        slots
    }

    #[test]
    fn fin_validation_demands_range_count_coverage_and_digest() {
        let range = (2, 6);
        let slots = filled_slots(range, 8);
        let good = FinRecord {
            records: 4,
            range_start: 2,
            range_end: 6,
            digest: range_digest(&slots, range),
        };
        check_fin(&good, range, &slots).unwrap();
        // Wrong range.
        let bad = FinRecord {
            range_start: 0,
            ..good
        };
        assert!(check_fin(&bad, range, &slots).is_err());
        // Wrong count.
        let bad = FinRecord { records: 3, ..good };
        assert!(check_fin(&bad, range, &slots).is_err());
        // Wrong digest.
        let bad = FinRecord {
            digest: good.digest ^ 1,
            ..good
        };
        assert!(check_fin(&bad, range, &slots).is_err());
        // A gap in coverage (fin before every record arrived).
        let mut torn = filled_slots(range, 8);
        torn[4] = None;
        let err = check_fin(&good, range, &torn).unwrap_err();
        assert!(
            matches!(&err, NfpError::ProtocolViolation { detail } if detail.contains("record 4")),
            "{err}"
        );
        // And the round-tripped wire rendering still parses and checks.
        let fin = parse_fin(&fin_line(&good)).unwrap();
        check_fin(&fin, range, &slots).unwrap();
    }

    // -- submit frames ------------------------------------------------

    #[test]
    fn submit_frames_roundtrip() {
        let req = CampaignRequest {
            client: "tenant \"a\"".to_string(),
            kernel: "fse_img00".to_string(),
            mode: Mode::Float,
            campaign: CampaignConfig {
                injections: 400,
                seed: 0xfeed_5eed,
                checkpoints: 8,
                wall: Some(Duration::from_millis(750)),
                dispatch: nfp_sim::Dispatch::Traced,
                escalation: 2,
            },
            shards: 4,
            allow_partial: true,
        };
        let parsed = parse_submit(&render_submit(&req)).unwrap();
        assert_eq!(parsed.client, req.client);
        assert_eq!(parsed.kernel, req.kernel);
        assert_eq!(parsed.mode, req.mode);
        assert_eq!(parsed.campaign.injections, req.campaign.injections);
        assert_eq!(parsed.campaign.seed, req.campaign.seed);
        assert_eq!(parsed.campaign.checkpoints, req.campaign.checkpoints);
        assert_eq!(parsed.campaign.wall, req.campaign.wall);
        assert_eq!(parsed.campaign.dispatch, req.campaign.dispatch);
        assert_eq!(parsed.campaign.escalation, req.campaign.escalation);
        assert_eq!(parsed.shards, req.shards);
        assert_eq!(parsed.allow_partial, req.allow_partial);
        // No wall deadline survives as None, not 0.
        let req = CampaignRequest {
            campaign: CampaignConfig {
                wall: None,
                ..req.campaign
            },
            ..req
        };
        assert_eq!(
            parse_submit(&render_submit(&req)).unwrap().campaign.wall,
            None
        );
    }

    #[test]
    fn submit_version_mismatch_is_typed() {
        let req = CampaignRequest {
            client: "cli".to_string(),
            kernel: "fse_img00".to_string(),
            mode: Mode::Float,
            campaign: CampaignConfig::default(),
            shards: 0,
            allow_partial: false,
        };
        let v99 = render_submit(&req).replacen("\"v\":1", "\"v\":99", 1);
        let err = parse_submit(&v99).unwrap_err();
        assert!(
            matches!(&err, NfpError::ProtocolViolation { detail }
                if detail.contains("version mismatch")),
            "{err}"
        );
        assert!(parse_submit("garbage").is_err());
        assert!(parse_submit(HB_FRAME).is_err());
    }

    // -- the idempotency key ------------------------------------------

    #[test]
    fn campaign_key_ignores_identity_but_not_the_plan() {
        let req = CampaignRequest {
            client: "tenant-a".to_string(),
            kernel: "fse_img00".to_string(),
            mode: Mode::Float,
            campaign: CampaignConfig {
                injections: 400,
                seed: 7,
                checkpoints: 8,
                wall: None,
                dispatch: nfp_sim::Dispatch::Traced,
                escalation: 2,
            },
            shards: 4,
            allow_partial: false,
        };
        // Who asks and how the work is split don't change the report
        // bytes, so they must not change the key.
        let mut same = req.clone();
        same.client = "tenant-b".to_string();
        same.shards = 0;
        assert_eq!(campaign_key(&req), campaign_key(&same));
        // Anything the report depends on must change the key.
        for tweak in [
            |r: &mut CampaignRequest| r.kernel = "other".to_string(),
            |r: &mut CampaignRequest| r.mode = Mode::Fixed,
            |r: &mut CampaignRequest| r.campaign.injections += 1,
            |r: &mut CampaignRequest| r.campaign.seed += 1,
            |r: &mut CampaignRequest| r.campaign.checkpoints += 1,
            |r: &mut CampaignRequest| r.campaign.wall = Some(Duration::from_millis(10)),
            |r: &mut CampaignRequest| r.campaign.dispatch = nfp_sim::Dispatch::Step,
            |r: &mut CampaignRequest| r.campaign.escalation += 1,
            |r: &mut CampaignRequest| r.allow_partial = true,
        ] {
            let mut other = req.clone();
            tweak(&mut other);
            assert_ne!(campaign_key(&req), campaign_key(&other));
        }
    }

    // -- the audit tier -----------------------------------------------

    #[test]
    fn audit_sampler_is_deterministic_and_rate_faithful() {
        // Resume safety: the sample set is a pure function of
        // (campaign seed, shard), so a restarted coordinator re-derives
        // exactly the shards its predecessor had marked for audit.
        for shard in 0..256 {
            assert_eq!(
                audit_sampled(0xfeed, shard, 0.25),
                audit_sampled(0xfeed, shard, 0.25)
            );
        }
        assert!((0..4096).all(|s| !audit_sampled(7, s, 0.0)));
        assert!((0..4096).all(|s| audit_sampled(7, s, 1.0)));
        let hits = (0..4096u32).filter(|&s| audit_sampled(7, s, 0.25)).count();
        assert!((700..=1350).contains(&hits), "0.25 sampled {hits}/4096");
        // Different seeds sample different sets.
        let other = (0..4096u32).filter(|&s| audit_sampled(8, s, 0.25)).count();
        assert!(
            (0..4096u32).any(|s| audit_sampled(7, s, 0.25) != audit_sampled(8, s, 0.25)),
            "seeds 7 and 8 picked identical sets ({hits} vs {other})"
        );
    }

    #[test]
    fn parole_doubles_per_strike_and_caps() {
        assert_eq!(parole_delay(1), Duration::from_millis(500));
        assert_eq!(parole_delay(2), Duration::from_millis(1000));
        assert_eq!(parole_delay(3), Duration::from_millis(2000));
        assert_eq!(parole_delay(8), Duration::from_millis(60_000));
        // A career criminal neither overflows nor escapes the cap.
        assert_eq!(parole_delay(u32::MAX), Duration::from_millis(60_000));
        // Strike zero (never convicted) still yields a sane floor.
        assert_eq!(parole_delay(0), Duration::from_millis(500));
    }

    #[test]
    fn convictions_escalate_strikes_and_parole_gates_admission() {
        let hub = Hub::new();
        assert!(!hub.banned(5));
        assert_eq!(hub.ban(5), 1);
        assert_eq!(hub.ban(5), 2);
        assert_eq!(hub.ban(9), 1);
        assert!(hub.banned(5));
        assert!(hub.banned(9));
        assert_eq!(hub.convicted.load(Ordering::SeqCst), 3);
        // wid 0 is unattributable and can never be blacklisted, even if
        // something inserted a ban record for it.
        assert!(!hub.banned(0));
        // A journal-restored ban gates admission like a live one, and
        // an expired parole readmits.
        hub.restore_ban(11, 4);
        assert!(hub.banned(11));
        lock(&hub.bans).get_mut(&11).unwrap().until = Instant::now();
        assert!(!hub.banned(11));
    }

    fn lease_to(shard: u32, exclude: Option<u64>, events: &mpsc::Sender<LeaseEvent>) -> Lease {
        Lease {
            hello: WorkerHello {
                header: JournalHeader {
                    kernel: "k".to_string(),
                    mode: "float",
                    injections: 8,
                    seed: 1,
                    checkpoints: 2,
                    dispatch: nfp_sim::Dispatch::Traced,
                    escalation: 2,
                    wall_ms: None,
                    golden_instret: 100,
                    shard_index: shard,
                    shard_count: 4,
                    range_start: 0,
                    range_end: 2,
                },
                preset: WorkerPreset::Quick,
                heartbeat_ms: 50,
                spin_at: None,
                abort_at: None,
            },
            faults: Arc::new(Vec::new()),
            shard,
            attempt: 1,
            events: events.clone(),
            abandoned: Arc::new(AtomicBool::new(false)),
            exclude,
        }
    }

    #[test]
    fn audit_leases_wait_for_a_disjoint_worker() {
        let hub = Hub::new();
        let (tx, _rx) = mpsc::channel::<LeaseEvent>();
        hub.push_lease(lease_to(0, Some(7), &tx));
        hub.push_lease(lease_to(1, None, &tx));
        // The producer itself asks first: it must not be handed its own
        // audit back — it gets the plain lease behind it instead.
        let got = hub.pop_lease(7).expect("a non-excluded lease");
        assert_eq!(got.shard, 1);
        assert!(got.exclude.is_none());
        // The skipped audit lease stayed queued, in order, for the next
        // disjoint worker.
        let got = hub.pop_lease(8).expect("the audit lease");
        assert_eq!(got.shard, 0);
        assert_eq!(got.exclude, Some(7));
        assert!(hub.pop_lease(8).is_none());
    }

    #[test]
    fn slow_clients_get_a_typed_admission_refusal() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut stream = TcpStream::connect(addr).unwrap();
        let (_peer, _) = listener.accept().unwrap();
        // An already-expired budget refuses before the first write, no
        // matter how cooperative the socket is.
        let err = deliver_by(
            &mut stream,
            "tenant-slow",
            &["one note".to_string()],
            "report body",
            Instant::now(),
        )
        .unwrap_err();
        match err {
            NfpError::Admission { client, reason } => {
                assert_eq!(client, "tenant-slow");
                assert!(reason.contains("write budget"), "{reason}");
            }
            other => panic!("expected an admission refusal, got {other}"),
        }
        // With budget in hand the same delivery goes through.
        deliver_by(
            &mut stream,
            "tenant-slow",
            &["one note".to_string()],
            "report body",
            Instant::now() + Duration::from_secs(5),
        )
        .unwrap();
    }

    #[test]
    fn matching_streams_ignore_attempt_counts() {
        // An honest worker that needed a respawn mid-shard reports
        // attempts > 1; the audit comparison must not convict it for
        // that — only (index, record) content counts.
        let a: LeaseRecords = vec![(0, record(0), 1), (1, record(1), 1)];
        let b: LeaseRecords = vec![(0, record(0), 3), (1, record(1), 2)];
        assert!(streams_match(&a, &b));
        let local = vec![record(0), record(1)];
        assert!(matches_local(&b, 0, &local));
        assert!(!matches_local(&b, 1, &local));
        // A flipped outcome is exactly what it must catch.
        let mut lie = record(1);
        lie.outcome = Outcome::Sdc;
        let c: LeaseRecords = vec![(0, record(0), 1), (1, lie, 1)];
        assert!(!streams_match(&a, &c));
        assert!(!matches_local(&c, 0, &local));
        // As is a silently shortened stream.
        let d: LeaseRecords = vec![(0, record(0), 1)];
        assert!(!streams_match(&a, &d));
        assert!(!matches_local(&d, 0, &local));
    }
}
