//! Length-prefixed framing for the remote dispatch layer.
//!
//! The stdin/stdout worker protocol ([`crate::worker`]) frames by
//! newline because pipes deliver whole writes in order and die with
//! their process. TCP guarantees neither: reads time out mid-frame,
//! peers vanish mid-byte, and a hostile (or merely broken) peer can
//! claim an absurd length. So the wire carries `[u32 big-endian
//! length][flat-JSON payload]` frames with the same 64 KiB cap the
//! line protocol enforces, and [`FrameReader`] keeps partial state
//! across read timeouts: a deadline firing mid-frame is an [`Recv::
//! Idle`] tick, never a desynchronized stream.
//!
//! Every malformation — oversized length prefix, truncated stream,
//! non-UTF-8 payload — is a typed [`NfpError::ProtocolViolation`];
//! transport failures are typed [`NfpError::Net`]. Nothing here
//! panics, and nothing blocks past the socket's configured timeout.

use crate::flatjson::{esc, parse_flat, Obj};
use crate::worker::WorkerPreset;
use nfp_core::NfpError;
use std::io::{ErrorKind, Read, Write};

/// Maximum frame payload, matching the line protocol's `MAX_LINE`: no
/// legitimate hello, record, or report chunk comes close, and anything
/// larger is a protocol violation rather than an allocation.
pub(crate) const MAX_FRAME: usize = 64 * 1024;

/// Shorthand for the typed violation error.
fn violation(detail: impl Into<String>) -> NfpError {
    NfpError::ProtocolViolation {
        detail: detail.into(),
    }
}

/// One poll of a [`FrameReader`].
#[derive(Debug)]
pub(crate) enum Recv {
    /// A complete frame payload.
    Frame(String),
    /// The read deadline fired; partial frame state (if any) is
    /// preserved for the next poll.
    Idle,
    /// Clean end-of-stream on a frame boundary.
    Eof,
}

/// Incremental frame decoder: survives read timeouts mid-frame and
/// converts every way a stream can lie into a typed error.
pub(crate) struct FrameReader {
    /// Peer label for [`NfpError::Net`] messages.
    peer: String,
    hdr: [u8; 4],
    hdr_got: usize,
    need: usize,
    payload: Vec<u8>,
}

impl FrameReader {
    pub(crate) fn new(peer: impl Into<String>) -> Self {
        FrameReader {
            peer: peer.into(),
            hdr: [0; 4],
            hdr_got: 0,
            need: 0,
            payload: Vec::new(),
        }
    }

    /// Polls the stream once. With a read timeout configured on `r`
    /// this returns within one timeout window: a frame, an idle tick,
    /// a clean EOF, or a typed error.
    pub(crate) fn recv(&mut self, r: &mut impl Read) -> Result<Recv, NfpError> {
        loop {
            if self.hdr_got < 4 {
                match r.read(&mut self.hdr[self.hdr_got..]) {
                    Ok(0) => {
                        return if self.hdr_got == 0 {
                            Ok(Recv::Eof)
                        } else {
                            Err(violation(format!(
                                "truncated frame: stream from {} ended inside a length prefix",
                                self.peer
                            )))
                        }
                    }
                    Ok(n) => {
                        self.hdr_got += n;
                        if self.hdr_got == 4 {
                            let len = u32::from_be_bytes(self.hdr) as usize;
                            if len > MAX_FRAME {
                                return Err(violation(format!(
                                    "oversized length prefix from {}: claims {len} bytes \
                                     (cap {MAX_FRAME})",
                                    self.peer
                                )));
                            }
                            self.need = len;
                            self.payload.clear();
                        }
                        continue;
                    }
                    Err(e) => return self.io(e),
                }
            }
            if self.payload.len() < self.need {
                let mut chunk = [0u8; 4096];
                let want = (self.need - self.payload.len()).min(chunk.len());
                match r.read(&mut chunk[..want]) {
                    Ok(0) => {
                        return Err(violation(format!(
                            "truncated frame: stream from {} ended after {} of {} payload bytes",
                            self.peer,
                            self.payload.len(),
                            self.need
                        )))
                    }
                    Ok(n) => {
                        self.payload.extend_from_slice(&chunk[..n]);
                        continue;
                    }
                    Err(e) => return self.io(e),
                }
            }
            let bytes = std::mem::take(&mut self.payload);
            self.hdr_got = 0;
            self.need = 0;
            let text = String::from_utf8(bytes).map_err(|_| {
                violation(format!(
                    "frame payload from {} is not valid UTF-8",
                    self.peer
                ))
            })?;
            return Ok(Recv::Frame(text));
        }
    }

    fn io(&self, e: std::io::Error) -> Result<Recv, NfpError> {
        match e.kind() {
            ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted => Ok(Recv::Idle),
            _ => Err(NfpError::Net {
                addr: self.peer.clone(),
                detail: format!("read failed: {e}"),
            }),
        }
    }
}

/// Writes one frame (length prefix + payload) and flushes. An
/// oversized payload is refused before a byte hits the wire — the
/// receiver would only reject it anyway.
pub(crate) fn write_frame(w: &mut impl Write, payload: &str) -> std::io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(std::io::Error::new(
            ErrorKind::InvalidInput,
            format!("refusing to send oversized frame ({} bytes)", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload.as_bytes())?;
    w.flush()
}

/// Maps a frame-write failure to a typed transport error.
pub(crate) fn send_err(addr: &str, e: std::io::Error) -> NfpError {
    NfpError::Net {
        addr: addr.to_string(),
        detail: format!("write failed: {e}"),
    }
}

// ---------------------------------------------------------------------
// Control frames specific to the TCP layer. Leases reuse the worker
// hello frame verbatim; records and fins reuse the journal line
// renderings; the rest of the conversation is below.
// ---------------------------------------------------------------------

/// Protocol version of the TCP control frames (join/submit). Lease
/// frames carry the worker protocol's own version.
pub(crate) const NET_VERSION: u64 = 1;

/// A worker announcing itself to the coordinator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct JoinFrame {
    /// Workload registry the worker will build kernels from.
    pub(crate) preset: WorkerPreset,
    /// How many times this worker has reconnected so far (cumulative,
    /// so the coordinator's counter survives coordinator-side drops).
    pub(crate) reconnects: u64,
    /// Stable worker identity across reconnects (pid + session salt).
    /// The audit tier keys its blacklist on this, not on the peer
    /// address: loopback test fleets share one address, and a NAT'd
    /// fleet shares one address in production too. Zero means "the
    /// peer sent none" (a pre-audit worker or a hand-crafted frame)
    /// and is never blacklisted — such a peer just gets no parole
    /// credit either.
    pub(crate) wid: u64,
}

pub(crate) fn render_join(join: &JoinFrame) -> String {
    format!(
        "{{\"v\":{NET_VERSION},\"kind\":\"join\",\"preset\":\"{}\",\"reconnects\":{},\"wid\":{}}}",
        esc(join.preset.name()),
        join.reconnects,
        join.wid
    )
}

pub(crate) fn parse_join(line: &str) -> Result<JoinFrame, NfpError> {
    let obj = Obj(parse_flat(line).ok_or_else(|| violation("unparseable join frame"))?);
    match obj.u64("v") {
        Some(NET_VERSION) => {}
        got => {
            return Err(violation(format!(
                "join version mismatch: peer speaks {got:?}, this coordinator speaks \
                 v{NET_VERSION}"
            )))
        }
    }
    if obj.str("kind") != Some("join") {
        return Err(violation("frame is not a join"));
    }
    let preset = obj
        .str("preset")
        .and_then(WorkerPreset::from_name)
        .ok_or_else(|| violation("join names an unknown preset"))?;
    let reconnects = obj
        .u64("reconnects")
        .ok_or_else(|| violation("join lacks a reconnect count"))?;
    // Leniently default: joins predating the audit tier carry no wid.
    let wid = obj.u64("wid").unwrap_or(0);
    Ok(JoinFrame {
        preset,
        reconnects,
        wid,
    })
}

/// Coordinator → peer/client: "shutting down / lease stream over".
pub(crate) const BYE_FRAME: &str = "{\"kind\":\"bye\"}";

/// Bidirectional liveness tick, shared with the line protocol.
pub(crate) const HB_FRAME: &str = "{\"kind\":\"hb\"}";

/// Coordinator → client: a progress/footer line for the client's
/// stderr. The stdout report stays byte-stable; notes carry everything
/// else.
pub(crate) fn render_note(text: &str) -> String {
    format!("{{\"kind\":\"note\",\"text\":\"{}\"}}", esc(text))
}

/// Coordinator → client: one chunk of the final report (chunked to
/// stay under [`MAX_FRAME`]), terminated by [`END_FRAME`].
pub(crate) fn render_report_chunk(chunk: &str) -> String {
    format!("{{\"kind\":\"report\",\"chunk\":\"{}\"}}", esc(chunk))
}

/// Coordinator → client: the report stream is complete.
pub(crate) const END_FRAME: &str = "{\"kind\":\"end\"}";

/// Coordinator → client: admission control refused the submission.
pub(crate) fn render_reject(client: &str, reason: &str) -> String {
    format!(
        "{{\"kind\":\"reject\",\"client\":\"{}\",\"reason\":\"{}\"}}",
        esc(client),
        esc(reason)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A stream that yields its scripted segments one `read` at a
    /// time: `Ok` bytes, a `WouldBlock` tick, or end-of-script EOF.
    struct Script {
        segs: Vec<Option<Vec<u8>>>,
        at: usize,
    }

    impl Script {
        fn new(segs: Vec<Option<Vec<u8>>>) -> Self {
            Script { segs, at: 0 }
        }
    }

    impl Read for Script {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            match self.segs.get_mut(self.at) {
                None => Ok(0),
                Some(None) => {
                    self.at += 1;
                    Err(std::io::Error::new(ErrorKind::WouldBlock, "tick"))
                }
                Some(Some(bytes)) => {
                    let n = bytes.len().min(buf.len());
                    buf[..n].copy_from_slice(&bytes[..n]);
                    bytes.drain(..n);
                    if bytes.is_empty() {
                        self.at += 1;
                    }
                    Ok(n)
                }
            }
        }
    }

    fn framed(payload: &str) -> Vec<u8> {
        let mut out = Vec::new();
        write_frame(&mut out, payload).unwrap();
        out
    }

    #[test]
    fn frames_roundtrip_across_split_reads_and_timeouts() {
        // One frame delivered in four fragments with idle ticks
        // between them: the reader must hold partial state across
        // every boundary, including mid-length-prefix.
        let bytes = framed("{\"kind\":\"hb\"}");
        let segs = vec![
            Some(bytes[..2].to_vec()), // half the length prefix
            None,                      // timeout mid-prefix
            Some(bytes[2..5].to_vec()),
            None, // timeout mid-payload
            Some(bytes[5..].to_vec()),
        ];
        let mut reader = FrameReader::new("test");
        let mut stream = Script::new(segs);
        let mut idles = 0;
        loop {
            match reader.recv(&mut stream).unwrap() {
                Recv::Idle => idles += 1,
                Recv::Frame(f) => {
                    assert_eq!(f, "{\"kind\":\"hb\"}");
                    break;
                }
                Recv::Eof => panic!("EOF before the frame completed"),
            }
        }
        assert_eq!(idles, 2);
        // And the stream ends cleanly on the frame boundary.
        assert!(matches!(reader.recv(&mut stream).unwrap(), Recv::Eof));
    }

    #[test]
    fn oversized_length_prefix_is_a_typed_violation() {
        let mut bytes = ((MAX_FRAME + 1) as u32).to_be_bytes().to_vec();
        bytes.extend_from_slice(b"doesn't matter");
        let mut reader = FrameReader::new("test");
        let err = reader
            .recv(&mut Script::new(vec![Some(bytes)]))
            .unwrap_err();
        match err {
            NfpError::ProtocolViolation { detail } => {
                assert!(detail.contains("oversized"), "{detail}")
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn truncation_is_a_typed_violation_not_a_hang() {
        // Mid-prefix truncation...
        let mut reader = FrameReader::new("test");
        let err = reader
            .recv(&mut Script::new(vec![Some(vec![0x00, 0x00])]))
            .unwrap_err();
        assert!(
            matches!(&err, NfpError::ProtocolViolation { detail } if detail.contains("length prefix")),
            "{err}"
        );
        // ...and mid-payload truncation (a torn TCP stream).
        let bytes = framed("{\"kind\":\"bye\"}");
        let torn = bytes[..bytes.len() - 3].to_vec();
        let mut reader = FrameReader::new("test");
        let err = reader.recv(&mut Script::new(vec![Some(torn)])).unwrap_err();
        assert!(
            matches!(&err, NfpError::ProtocolViolation { detail } if detail.contains("truncated")),
            "{err}"
        );
    }

    #[test]
    fn non_utf8_payload_is_a_typed_violation() {
        let mut bytes = 2u32.to_be_bytes().to_vec();
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        let mut reader = FrameReader::new("test");
        let err = reader
            .recv(&mut Script::new(vec![Some(bytes)]))
            .unwrap_err();
        assert!(
            matches!(&err, NfpError::ProtocolViolation { detail } if detail.contains("UTF-8")),
            "{err}"
        );
    }

    #[test]
    fn oversized_payload_is_refused_before_the_wire() {
        let mut sink = Vec::new();
        let big = "x".repeat(MAX_FRAME + 1);
        assert!(write_frame(&mut sink, &big).is_err());
        assert!(sink.is_empty(), "bytes escaped onto the wire");
    }

    #[test]
    fn join_frames_roundtrip_and_version_mismatch_is_typed() {
        let join = JoinFrame {
            preset: WorkerPreset::Quick,
            reconnects: 3,
            wid: 0x8140_3000_0001,
        };
        assert_eq!(parse_join(&render_join(&join)).unwrap(), join);
        let bad = "{\"v\":2,\"kind\":\"join\",\"preset\":\"quick\",\"reconnects\":0}";
        let err = parse_join(bad).unwrap_err();
        assert!(
            matches!(&err, NfpError::ProtocolViolation { detail } if detail.contains("version mismatch")),
            "{err}"
        );
        // Garbage and wrong-kind frames are violations, not panics.
        assert!(parse_join("not json").is_err());
        assert!(parse_join("{\"v\":1,\"kind\":\"hb\"}").is_err());
    }

    #[test]
    fn join_without_a_wid_defaults_to_the_unattributable_zero() {
        // Hand-crafted and pre-audit joins carry no wid; they parse
        // fine and land as wid 0 (which the blacklist never targets).
        let old = "{\"v\":1,\"kind\":\"join\",\"preset\":\"quick\",\"reconnects\":2}";
        let join = parse_join(old).unwrap();
        assert_eq!(join.wid, 0);
        assert_eq!(join.reconnects, 2);
    }

    #[test]
    fn client_frames_escape_their_payloads() {
        let note = render_note("shard 2 re-dispatched: \"peer 1\" died\n");
        let obj = Obj(parse_flat(&note).unwrap());
        assert_eq!(
            obj.str("text"),
            Some("shard 2 re-dispatched: \"peer 1\" died\n")
        );
        let chunk = render_report_chunk("line with \"quotes\"\nand newline");
        let obj = Obj(parse_flat(&chunk).unwrap());
        assert_eq!(obj.str("chunk"), Some("line with \"quotes\"\nand newline"));
        let reject = render_reject("tenant-a", "queue full");
        let obj = Obj(parse_flat(&reject).unwrap());
        assert_eq!(obj.str("client"), Some("tenant-a"));
        assert_eq!(obj.str("reason"), Some("queue full"));
    }
}
